// Proactive security service — the paper's motivating application (§1).
//
// A 7-node service holds a (f+1)-out-of-n secret sharing and refreshes
// the shares every period Delta, with the refresh schedule driven by the
// BHHN-synchronized logical clocks. A mobile adversary sweeps the
// network, two processors per period, capturing each victim's current
// share and smashing its clock 2 hours back before leaving.
//
// The run prints the epoch audit: with the clock service the adversary
// never assembles f+1 shares of one epoch (the refreshes stay aligned,
// victims resynchronize and refresh on time); the same run with the
// clock service disabled is reproduced in bench_proactive (E10) and ends
// in compromise.
#include <cstdio>
#include <memory>

#include "analysis/world.h"
#include "proactive/audit.h"
#include "proactive/refresh.h"
#include "proactive/secret_sharing.h"

using namespace czsync;

int main() {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);  // = share-refresh period
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(100);
  s.horizon = Duration::hours(12);
  s.seed = 5;
  s.schedule = adversary::Schedule::round_robin_sweep(
      7, 2, s.model.delta_period, Duration::minutes(10), Duration::minutes(1),
      SimTau(600.0), SimTau(11.0 * 3600.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::hours(-2);

  analysis::World world(s);
  proactive::ShareStore store(7, /*secret_seed=*/0xc0ffeeULL);
  proactive::Auditor auditor(store);

  std::vector<std::unique_ptr<proactive::RefreshProcess>> refreshers;
  for (int p = 0; p < 7; ++p) {
    auto& node = world.node(p);
    refreshers.push_back(std::make_unique<proactive::RefreshProcess>(
        node.clock(), world.network(), p, store, s.model.delta_period));
    node.app_suspend = [rp = refreshers.back().get()] { rp->suspend(); };
    node.app_resume = [rp = refreshers.back().get()] { rp->resume(); };
    refreshers.back()->on_refresh = [p, &world](std::uint64_t epoch) {
      std::printf("  t=%7.0fs  proc %d refreshed its share for epoch %llu\n",
                  world.simulator().now().raw(), p,
                  static_cast<unsigned long long>(epoch));
    };
  }
  for (const auto& iv : s.schedule.intervals()) {
    world.simulator().schedule_at(iv.start, [&auditor, &store, iv, &world] {
      const auto& sh = store.share(iv.proc);
      std::printf("! t=%7.0fs  ADVERSARY captures proc %d's share (epoch %llu) "
                  "and smashes its clock -2h\n",
                  world.simulator().now().raw(), iv.proc,
                  static_cast<unsigned long long>(sh.epoch));
      auditor.capture(iv.proc);
    });
  }
  for (auto& rp : refreshers) rp->start();

  std::printf("Proactive share-refresh service, Delta = 1 h, f = 2, secret "
              "needs 3 shares of one epoch.\n\n");
  world.run();

  std::printf("\n==== audit ====\n");
  for (const auto& [epoch, procs] : auditor.by_epoch()) {
    std::printf("epoch %3llu: %zu captured share(s) from procs {",
                static_cast<unsigned long long>(epoch), procs.size());
    bool first = true;
    for (int p : procs) {
      std::printf("%s%d", first ? "" : ",", p);
      first = false;
    }
    std::printf("}\n");
  }
  std::printf("\nworst single-epoch exposure: %d of the %d needed\n",
              auditor.worst_epoch_exposure(), s.model.f + 1);
  std::printf("secret: %s\n", auditor.compromised(s.model.f + 1)
                                  ? "COMPROMISED"
                                  : "safe (exposure <= f in every epoch)");
  std::printf("clock deviation among stable processors never exceeded %.0f ms "
              "(bound %.0f ms)\n",
              world.observer().max_stable_deviation().ms(),
              world.bounds().max_deviation.ms());
  return 0;
}
