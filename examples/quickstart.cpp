// Quickstart: the smallest useful deployment.
//
// Four processors (tolerating f = 1 Byzantine fault), WAN-ish delays,
// one mobile fault in the middle of the run. Shows the three-step API:
//   1. describe the deployment in a Scenario;
//   2. run it (run_scenario);
//   3. read the metrics against the Theorem-5 bounds.
#include <cstdio>

#include "analysis/experiment.h"

using namespace czsync;

int main() {
  // 1. Describe the deployment.
  analysis::Scenario s;
  s.model.n = 4;                         // processors
  s.model.f = 1;                         // faults per period (n >= 3f+1)
  s.model.rho = 1e-4;                    // hardware drift bound
  s.model.delta = Duration::millis(50);       // message delivery bound
  s.model.delta_period = Duration::hours(1);  // the adversary's period Delta
  s.sync_int = Duration::minutes(1);          // Sync cadence
  s.initial_spread = Duration::millis(200);   // initial clock disagreement
  s.horizon = Duration::hours(2);
  s.record_series = true;

  // One break-in at t = 40 min for 10 min; the attacker sets the victim's
  // clock 5 minutes ahead and answers estimation pings with it.
  s.schedule = adversary::Schedule::single(2, SimTau(2400.0), SimTau(3000.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(5);

  // 2. Run.
  const auto r = analysis::run_scenario(s);

  // 3. Inspect.
  std::printf("Theorem 5 for this configuration: %s\n\n",
              r.bounds.summary().c_str());
  std::printf("%8s  %12s  %s\n", "t [min]", "max dev [ms]", "biases [ms]");
  for (const auto& smp : r.series) {
    const auto minute = static_cast<long>(smp.t.raw()) / 60;
    if (minute % 10 != 0 || static_cast<long>(smp.t.raw()) % 60 != 0) continue;
    std::printf("%8ld  %12.2f  [", minute, smp.stable_deviation * 1e3);
    for (std::size_t p = 0; p < smp.bias.size(); ++p) {
      const char* mark =
          smp.status[p] == analysis::ProcStatus::Faulty
              ? "*"
              : (smp.status[p] == analysis::ProcStatus::Recovering ? "~" : "");
      std::printf("%s%.1f%s", p ? ", " : "", smp.bias[p] * 1e3, mark);
    }
    std::printf("]\n");
  }
  std::printf(
      "\n(* = currently faulty, ~ = recovering; deviation is measured over\n"
      "the remaining 'stable' processors, per Definition 3.)\n\n");
  std::printf("max deviation (stable): %.2f ms  — bound gamma: %.2f ms\n",
              r.max_stable_deviation.ms(), r.bounds.max_deviation.ms());
  std::printf("victim recovered:       %s, %.1f s after the adversary left\n",
              r.all_recovered() ? "yes" : "NO", r.max_recovery_time().sec());
  std::printf("messages sent:          %llu over %.0f simulated minutes\n",
              static_cast<unsigned long long>(r.messages_sent),
              s.horizon.sec() / 60);
  return 0;
}
