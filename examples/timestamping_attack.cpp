// Timestamping under attack — the secure-time use case of §1.
//
// A client (outside the cluster, modelled as extra logic on processor 0's
// machine reading the network) requests signed timestamps for a document.
// Two designs are compared while an attacker controls up to f = 2 time
// servers and answers with clocks 10 minutes ahead (back-dating /
// post-dating attack):
//   * naive:  trust the first server that answers;
//   * quorum: collect stamps from all n servers and take the median.
// Because the BHHN layer keeps correct servers within gamma of each
// other, the median over n >= 3f+1 answers is always within gamma of a
// correct clock — the attacker's 10-minute stamps are discarded by rank.
#include <cstdio>
#include <optional>
#include <vector>

#include "analysis/world.h"

using namespace czsync;

namespace {

struct StampRound {
  double real_time = 0.0;
  std::vector<double> stamps;                 // collected per server
  std::vector<bool> answered;
  [[nodiscard]] std::optional<double> naive() const {
    // "first answer": the attacker responds fastest (it always answers).
    for (std::size_t p = 0; p < stamps.size(); ++p)
      if (answered[p]) return stamps[p];
    return std::nullopt;
  }
  [[nodiscard]] std::optional<double> median() const {
    std::vector<double> xs;
    for (std::size_t p = 0; p < stamps.size(); ++p)
      if (answered[p]) xs.push_back(stamps[p]);
    if (xs.empty()) return std::nullopt;
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  }
};

}  // namespace

int main() {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(100);
  s.horizon = Duration::hours(2);
  s.seed = 9;
  // Servers 0 and 1 are controlled for the middle hour and lie +10 min.
  s.schedule = adversary::Schedule(
      {{0, SimTau(1800.0), SimTau(5400.0)},
       {1, SimTau(1800.0), SimTau(5400.0)}});
  s.strategy = "constant-lie";
  s.strategy_scale = Duration::minutes(10);

  analysis::World world(s);

  // Wire the timestamp service on every correct server: answer
  // TimestampReq with the current logical clock. (Controlled servers are
  // answered by the constant-lie strategy, +10 min.)
  for (int p = 0; p < s.model.n; ++p) {
    auto& node = world.node(p);
    node.app_handler = [&node](const net::Message& m) {
      if (const auto* req = std::get_if<net::TimestampReq>(&m.body)) {
        node.send(m.from, net::TimestampResp{req->nonce, node.clock().read()});
      }
    };
  }

  // The client piggybacks on processor 6 (assumed honest here purely to
  // have a vantage point; a real client would talk to all servers
  // directly). Every 10 minutes it stamps a document.
  std::vector<StampRound> rounds;
  auto& client_node = world.node(6);
  std::uint64_t next_nonce = 1;
  StampRound* active = nullptr;

  auto prev_handler = client_node.app_handler;
  client_node.app_handler = [&](const net::Message& m) {
    if (const auto* resp = std::get_if<net::TimestampResp>(&m.body)) {
      if (active != nullptr) {
        active->stamps[static_cast<std::size_t>(m.from)] = resp->stamp.raw();
        active->answered[static_cast<std::size_t>(m.from)] = true;
      }
      return;
    }
    prev_handler(m);
  };

  std::function<void()> stamp_round = [&] {
    rounds.push_back(StampRound{});
    active = &rounds.back();
    active->real_time = world.simulator().now().raw();
    active->stamps.assign(7, 0.0);
    active->answered.assign(7, false);
    for (int p = 0; p < 6; ++p) {
      client_node.send(p, net::TimestampReq{next_nonce++});
    }
    // The client's own server also stamps (it is server 6).
    active->stamps[6] = client_node.clock().read().raw();
    active->answered[6] = true;
    if (world.simulator().now().raw() + 600 < s.horizon.sec())
      world.simulator().schedule_after(Duration::minutes(10), stamp_round);
  };
  world.simulator().schedule_after(Duration::minutes(5), stamp_round);

  world.run();

  std::printf("Timestamping with up to f=2 lying servers (+600 s stamps):\n\n");
  std::printf("%10s  %14s  %14s  %s\n", "t [s]", "naive err [s]",
              "median err [s]", "attack window");
  double worst_naive = 0, worst_median = 0;
  for (const auto& r : rounds) {
    const auto naive = r.naive();
    const auto median = r.median();
    if (!naive || !median) continue;
    const double ne = *naive - r.real_time;
    const double me = *median - r.real_time;
    worst_naive = std::max(worst_naive, std::abs(ne));
    worst_median = std::max(worst_median, std::abs(me));
    const bool attack = r.real_time >= 1800 && r.real_time < 5400;
    std::printf("%10.0f  %+14.3f  %+14.3f  %s\n", r.real_time, ne, me,
                attack ? "ATTACK" : "");
  }
  std::printf("\nworst naive error:  %8.3f s (the +600 s lie goes straight "
              "into documents)\n", worst_naive);
  std::printf("worst median error: %8.3f s (within gamma = %.3f s: rank "
              "statistics over a synchronized quorum discard f liars)\n",
              worst_median, world.bounds().max_deviation.sec());
  return 0;
}
