// Recovery demo: watch a single corrupted clock come back.
//
// Seven processors run quietly; at t = 30 min the adversary grabs
// processor 3 for one minute and sets its clock one hour ahead. The
// trace shows the three phases the paper's analysis promises:
//   1. while controlled, the victim's bias is ~3600 s and the six others
//      ignore it (the f+1-st order statistics trim it);
//   2. at the first Sync after the adversary leaves, the WayOff test
//      fails (its clock is "very far") and the escape branch jumps the
//      clock straight into the good range — recovery is one round, not
//      log(offset) rounds, and not the never of minimal-correction;
//   3. afterwards the victim is indistinguishable from the others.
#include <cstdio>

#include "analysis/world.h"

using namespace czsync;

int main() {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(50);
  s.horizon = Duration::hours(1);
  s.schedule = adversary::Schedule::single(3, SimTau(1800.0), SimTau(1860.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::hours(1);
  s.seed = 4;

  analysis::World world(s);
  const Duration way_off = world.protocol_params().way_off;
  std::printf("gamma = %.0f ms, WayOff = %.0f ms, SyncInt = %.0f s\n",
              world.bounds().max_deviation.ms(), way_off.ms(),
              s.sync_int.sec());
  std::printf("t=1800s: adversary breaks into processor 3, sets its clock "
              "+3600 s\nt=1860s: adversary leaves; watch the WayOff escape:\n\n");

  // Narrate processor 3's sync rounds around the incident.
  auto& victim = world.node(3);
  victim.sync().on_sync_complete = [&](const core::ConvergenceResult& r) {
    const double t = world.simulator().now().raw();
    if (t < 1700 || t > 2300) return;
    std::printf("  t=%6.1fs  proc 3 Sync: adj %+10.3f s  branch=%s  bias now "
                "%+8.3f s\n",
                t, r.adjustment.sec(), r.way_off_branch ? "WAYOFF" : "normal",
                victim.bias().sec());
  };

  // Periodic wide-angle shots.
  std::function<void()> report = [&] {
    const double t = world.simulator().now().raw();
    std::printf("t=%6.0fs  biases[ms]: ", t);
    for (int p = 0; p < 7; ++p) {
      const double b = world.node(p).bias().sec() * 1e3;
      if (std::abs(b) > 10000) {
        std::printf("%s p%d=+1h!", p ? "," : "", p);
      } else {
        std::printf("%s p%d=%.0f", p ? "," : "", p, b);
      }
    }
    std::printf("\n");
    if (t + 600 <= s.horizon.sec())
      world.simulator().schedule_after(Duration::minutes(10), report);
  };
  world.simulator().schedule_after(Duration::minutes(10), report);

  world.run();

  const auto& recov = world.observer().recoveries();
  if (!recov.empty() && recov[0].recovered) {
    std::printf("\nRecovered %.1f s after the adversary left (budget: Delta = "
                "%.0f s).\n",
                recov[0].duration.sec(), s.model.delta_period.sec());
  }
  std::printf("Post-incident max deviation among stable processors: %.1f ms "
              "(bound %.0f ms).\n",
              world.observer().max_stable_deviation().ms(),
              world.bounds().max_deviation.ms());
  return 0;
}
