// Sparse deployment — the §5 "limited number of neighbors" direction.
//
// Footnote 4 of the paper: "In the current algorithm and analysis, a
// processor needs to estimate the clocks of all other processors; we
// expect that this can be improved, so that a processor will only need
// to estimate the clocks of its local neighbors." This example deploys
// 16 processors on a random ~8-regular overlay (half the full-mesh
// degree), runs the full mobile Byzantine budget, and reports the same
// health metrics as the full mesh next to it — showing the conjecture
// holds on expander-like overlays while costing half the messages. The
// Section-5 counterexample (bench_twocliques) shows why the overlay must
// be chosen well: raw connectivity is not enough.
#include <cstdio>

#include "analysis/experiment.h"
#include "net/topology.h"

using namespace czsync;

namespace {

analysis::RunResult run_on(analysis::Scenario::TopologyKind kind,
                           std::optional<net::Topology> topo) {
  analysis::Scenario s;
  s.model.n = 16;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.topology = kind;
  s.custom_topology = std::move(topo);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::hours(8);
  s.warmup = Duration::minutes(30);
  s.seed = 12;
  s.schedule = adversary::Schedule::random_mobile(
      16, 2, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
      SimTau(6.5 * 3600.0), Rng(120));
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  return analysis::run_scenario(s);
}

void report(const char* label, const analysis::RunResult& r, int degree) {
  std::printf("%-22s degree %-3d max dev %7.1f ms (gamma %.0f ms)  "
              "recovered: %-3s  msgs: %llu\n",
              label, degree, r.max_stable_deviation.ms(),
              r.bounds.max_deviation.ms(), r.all_recovered() ? "all" : "NO",
              static_cast<unsigned long long>(r.messages_sent));
}

}  // namespace

int main() {
  std::printf("16 processors, f = 2 mobile two-faced adversary, 8 h.\n\n");

  const auto mesh = run_on(analysis::Scenario::TopologyKind::FullMesh, {});
  report("full mesh", mesh, 15);

  Rng rng(77);
  auto overlay = net::Topology::random_regular(16, 8, rng);
  const int kappa = overlay.vertex_connectivity();
  const auto sparse =
      run_on(analysis::Scenario::TopologyKind::Custom, overlay);
  report("random ~8-regular", sparse, 8);

  std::printf("\noverlay vertex connectivity: %d (needs well above 3f+1 = 7 "
              "AND expansion;\nsee bench_twocliques for a 7-connected graph "
              "that still fails)\n",
              kappa);
  std::printf("message saving: %.0f%%\n",
              100.0 * (1.0 - static_cast<double>(sparse.messages_sent) /
                                 static_cast<double>(mesh.messages_sent)));
  return 0;
}
