// czsync_cli — run any scenario from a key=value config file.
//
// Usage:
//   czsync_cli                      # run the built-in demo scenario
//   czsync_cli scenario.conf       # run a config file
//   czsync_cli scenario.conf out/  # also write series/recoveries/summary
//                                  # CSVs into the directory
//   czsync_cli --help              # list every config key
//
// Exit code 0 when the measured deviation stayed within the Theorem-5
// bound (and every judged recovery completed), 1 otherwise — so the tool
// doubles as a scriptable checker.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/trace_io.h"
#include "util/table.h"

using namespace czsync;

namespace {

constexpr const char* kDemoConfig = R"(
# Demo: n=7/f=2 WAN deployment under a mobile two-faced Byzantine attack.
n = 7
f = 2
rho = 1e-4
delta = 50ms
delta_period = 1h
sync_int = 60s
horizon = 6h
warmup = 30m
initial_spread = 200ms
adversary = mobile
strategy = two-faced
strategy_scale = 30s
schedule_end = 4.5h
seed = 1
)";

constexpr const char* kHelp = R"(czsync_cli [CONFIG_FILE [CSV_OUT_DIR]]

Config keys (all optional; defaults in parentheses):
  model:      n (7), f (2), rho (1e-4), delta (50ms), delta_period (1h)
  protocol:   sync_int (60s), convergence (bhhn|midpoint|capped-correction|
              none), capped_correction_cap (100ms)
  discipline: rate_discipline (false), discipline_gain (0.125),
              discipline_slew_interval (5s)
  clocks:     drift (constant|wander|opposed-halves), wander_interval (5m)
  network:    delay (fixed|uniform|asymmetric|jitter),
              topology (full-mesh|two-cliques|ring)
  run:        initial_spread (100ms), horizon (6h), warmup (0),
              sample_period (10s), seed (1), record_series (false)
  adversary:  adversary (none|single|mobile|sweep), strategy (silent|
              clock-smash|clock-smash-random|constant-lie|two-faced|
              max-pull|random-lie|delayed-reply), strategy_scale (10s);
              single: victim (0), break_at (1h), leave_at (1h10m);
              mobile: min_dwell (5m), max_dwell (20m), schedule_end
              (0.8*horizon); sweep: dwell (10m), slack (1m)

Durations accept us/ms/s/m/h suffixes. Unknown keys are reported.
)";

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string out_dir;
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  if (argc > 1) config_path = argv[1];
  if (argc > 2) out_dir = argv[2];

  Config cfg;
  try {
    cfg = config_path.empty() ? Config::parse(kDemoConfig)
                              : Config::load(config_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  analysis::Scenario s;
  try {
    s = analysis::scenario_from_config(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 2;
  }
  if (!out_dir.empty()) s.record_series = true;
  for (const auto& k : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unused config key '%s'\n", k.c_str());
  }
  if (!s.model.byzantine_quorum_ok()) {
    std::fprintf(stderr, "warning: n < 3f+1 — outside the model's budget\n");
  }
  if (!s.schedule.empty() &&
      !s.schedule.is_f_limited(s.model.f, s.model.delta_period)) {
    std::fprintf(stderr,
                 "warning: adversary schedule is NOT f-limited for Delta\n");
  }

  const auto r = analysis::run_scenario(s);

  std::printf("%s\n\n", r.bounds.summary().c_str());
  TextTable t({"metric", "bound", "measured"});
  char buf[64];
  auto msr = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.3f ms", v * 1e3);
    return std::string(buf);
  };
  t.row({"deviation (max, stable)", msr(r.bounds.max_deviation.sec()),
         msr(r.max_stable_deviation.sec())});
  t.row({"deviation (mean)", "-", msr(r.mean_stable_deviation.sec())});
  // A steady-state correction cancels one reading error plus the relative
  // drift accumulated since the previous Sync (the psi of Theorem 5 is
  // the *accuracy-envelope* allowance; the per-sync engineering bound
  // adds the 2 rho SyncInt drift term).
  const double adj_bound =
      r.bounds.discontinuity.sec() + 2.0 * s.model.rho * s.sync_int.sec();
  t.row({"max adjustment (psi + drift)", msr(adj_bound),
         msr(r.max_stable_discontinuity.sec())});
  std::snprintf(buf, sizeof buf, "%.3g", r.bounds.logical_drift);
  std::string drift_bound = buf;
  std::snprintf(buf, sizeof buf, "%.3g", r.max_rate_excess);
  t.row({"logical drift (rate excess)", drift_bound, buf});
  std::snprintf(buf, sizeof buf, "%.1f s", r.max_recovery_time().sec());
  t.row({"recovery (max)", "<= Delta",
         r.recoveries.empty() ? "n/a" : std::string(buf)});
  t.row({"recoveries judged ok", "-", r.all_recovered() ? "yes" : "NO"});
  t.row({"break-ins", "-", std::to_string(r.break_ins)});
  t.row({"messages", "-", std::to_string(r.messages_sent)});
  t.row({"sim events", "-", std::to_string(r.events_executed)});
  t.print(std::cout);

  if (!out_dir.empty()) {
    const std::string base =
        out_dir.back() == '/' ? out_dir : out_dir + "/";
    {
      std::ofstream f(base + "series.csv");
      analysis::write_series_csv(f, r);
    }
    {
      std::ofstream f(base + "recoveries.csv");
      analysis::write_recoveries_csv(f, r);
    }
    {
      std::ofstream f(base + "summary.csv");
      analysis::write_summary_csv(f, r);
    }
    std::printf("\nwrote %sseries.csv, %srecoveries.csv, %ssummary.csv\n",
                base.c_str(), base.c_str(), base.c_str());
  }

  const bool ok =
      r.max_stable_deviation < r.bounds.max_deviation && r.all_recovered();
  return ok ? 0 : 1;
}
