// czsync_cli — run any scenario from a key=value config file.
//
// Usage:
//   czsync_cli                      # run the built-in demo scenario
//   czsync_cli scenario.conf       # run a config file
//   czsync_cli scenario.conf out/  # also write series/recoveries/summary
//                                  # CSVs into the directory
//   czsync_cli --sweep 20 scenario.conf   # 20-seed sweep of the scenario
//   czsync_cli --sweep 20 --jobs 4 ...    # ... across 4 worker threads
//   czsync_cli --help              # list every config key
//
// Exit code 0 when the measured deviation stayed within the Theorem-5
// bound (and every judged recovery completed; in sweep mode: in EVERY
// run), 1 otherwise — so the tool doubles as a scriptable checker.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/registry.h"
#include "analysis/sweep.h"
#include "analysis/trace_io.h"
#include "trace/format.h"
#include "trace/sink.h"
#include "util/jobs.h"
#include "util/json.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace czsync;

namespace {

constexpr const char* kDemoConfig = R"(
# Demo: n=7/f=2 WAN deployment under a mobile two-faced Byzantine attack.
n = 7
f = 2
rho = 1e-4
delta = 50ms
delta_period = 1h
sync_int = 60s
horizon = 6h
warmup = 30m
initial_spread = 200ms
adversary = mobile
strategy = two-faced
strategy_scale = 30s
schedule_end = 4.5h
seed = 1
)";

constexpr const char* kHelp = R"(czsync_cli [OPTIONS] [CONFIG_FILE [CSV_OUT_DIR]]

Options:
  --sweep N   run an N-seed sweep (seeds seed, seed+1, ..., seed+N-1)
              instead of a single run, and report across-seed stats
  --jobs N    worker threads for the sweep (default: all hardware
              threads; env CZSYNC_JOBS overrides the default). Any job
              count produces bit-identical sweep results — the merge is
              seed-order-deterministic. N must be a positive integer;
              anything else is an error, not a silent default.
  --json FILE write the single run's unified MetricRegistry snapshot
              (sim/net/core/observer) as JSON to FILE
  --trace P   single run: write the full czsync-trace-v1 event trace to
              file P (inspect with czsync_trace). Sweep: run every seed
              under a flight recorder and auto-dump failing seeds to
              Pseed<seed>.cztrace (P is a path prefix; use a trailing /
              for a directory)

Config keys (all optional; defaults in parentheses):
  model:      n (7), f (2), rho (1e-4), delta (50ms), delta_period (1h)
  protocol:   sync_int (60s), convergence (bhhn|midpoint|capped-correction|
              none), capped_correction_cap (100ms)
  discipline: rate_discipline (false), discipline_gain (0.125),
              discipline_slew_interval (5s)
  clocks:     drift (constant|wander|opposed-halves), wander_interval (5m)
  network:    delay (fixed|uniform|asymmetric|jitter),
              topology (full-mesh|two-cliques|ring),
              batched_fanout (true; false = per-message events —
              identical traces, different event-pool accounting)
  run:        initial_spread (100ms), horizon (6h), warmup (0),
              sample_period (10s), seed (1), record_series (false)
  adversary:  adversary (none|single|mobile|sweep), strategy (silent|
              clock-smash|clock-smash-random|constant-lie|two-faced|
              max-pull|random-lie|delayed-reply), strategy_scale (10s);
              single: victim (0), break_at (1h), leave_at (1h10m);
              mobile: min_dwell (5m), max_dwell (20m), schedule_end
              (0.8*horizon); sweep: dwell (10m), slack (1m)

Durations accept us/ms/s/m/h suffixes. Unknown keys are reported.
)";

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string out_dir;
  int sweep_count = 0;
  int jobs = 0;
  std::string json_path;
  std::string trace_path;
  bool jobs_from_flag = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kHelp, stdout);
      return 0;
    }
    // --opt VALUE and --opt=VALUE are both accepted.
    auto value_of = [&](const char* name, const char** out) {
      const std::string prefix = std::string(name) + "=";
      if (arg == name) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s needs a value (see --help)\n", name);
          std::exit(2);
        }
        *out = argv[++i];
        return true;
      }
      if (arg.rfind(prefix, 0) == 0) {
        *out = argv[i] + prefix.size();
        return true;
      }
      return false;
    };
    const char* value = nullptr;
    if (value_of("--sweep", &value)) {
      sweep_count = std::atoi(value);
      if (sweep_count < 1) {
        std::fprintf(stderr, "error: --sweep needs a positive count\n");
        return 2;
      }
      continue;
    }
    if (value_of("--jobs", &value)) {
      std::string why;
      const auto parsed = util::parse_jobs(value, &why);
      if (!parsed) {
        std::fprintf(stderr, "error: --jobs %s\n", why.c_str());
        return 2;
      }
      jobs = *parsed;
      jobs_from_flag = true;
      continue;
    }
    if (value_of("--json", &value)) {
      json_path = value;
      continue;
    }
    if (value_of("--trace", &value)) {
      trace_path = value;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s' (see --help)\n",
                   arg.c_str());
      return 2;
    }
    positional.push_back(arg);
  }
  if (!positional.empty()) config_path = positional[0];
  if (positional.size() > 1) out_dir = positional[1];

  if (!jobs_from_flag) {
    std::string why;
    const auto env_jobs = util::jobs_from_env_or_default(&why);
    if (!env_jobs) {
      std::fprintf(stderr, "error: %s\n", why.c_str());
      return 2;
    }
    jobs = *env_jobs;
  }

  Config cfg;
  try {
    cfg = config_path.empty() ? Config::parse(kDemoConfig)
                              : Config::load(config_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  analysis::Scenario s;
  try {
    s = analysis::scenario_from_config(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 2;
  }
  if (!out_dir.empty()) s.record_series = true;
  for (const auto& k : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unused config key '%s'\n", k.c_str());
  }
  if (!s.model.byzantine_quorum_ok()) {
    std::fprintf(stderr, "warning: n < 3f+1 — outside the model's budget\n");
  }
  if (!s.schedule.empty() &&
      !s.schedule.is_f_limited(s.model.f, s.model.delta_period)) {
    std::fprintf(stderr,
                 "warning: adversary schedule is NOT f-limited for Delta\n");
  }

  if (sweep_count > 0) {
    if (!json_path.empty()) {
      std::fprintf(stderr,
                   "warning: --json applies to single runs; ignoring "
                   "'%s' in sweep mode\n",
                   json_path.c_str());
    }
    if (!out_dir.empty()) {
      std::fprintf(stderr,
                   "warning: CSV output applies to single runs; ignoring "
                   "'%s' in sweep mode\n",
                   out_dir.c_str());
    }
    auto make = [&s](std::uint64_t seed) {
      auto c = s;
      c.seed = seed;
      c.record_series = false;
      return c;
    };
    analysis::SweepTraceConfig trace_cfg;
    trace_cfg.path_prefix = trace_path;
    const auto sw = analysis::run_sweep_parallel(
        make, s.seed, sweep_count, jobs,
        trace_cfg.enabled() ? &trace_cfg : nullptr);

    std::printf("sweep: %d seeds starting at %llu, jobs = %d\n\n", sw.runs,
                static_cast<unsigned long long>(s.seed),
                jobs > 0 ? jobs
                         : static_cast<int>(ThreadPool::default_jobs()));
    TextTable t({"metric", "min", "mean", "max"});
    char lo[32], mid[32], hi[32];
    auto stat_row = [&](const char* name, const RunningStats& st,
                        double scale) {
      std::snprintf(lo, sizeof lo, "%.3f", st.min() * scale);
      std::snprintf(mid, sizeof mid, "%.3f", st.mean() * scale);
      std::snprintf(hi, sizeof hi, "%.3f", st.max() * scale);
      t.row({name, st.count() ? lo : "n/a", st.count() ? mid : "n/a",
             st.count() ? hi : "n/a"});
    };
    stat_row("max deviation [ms]", sw.max_deviation, 1e3);
    stat_row("mean deviation [ms]", sw.mean_deviation, 1e3);
    stat_row("max adjustment [ms]", sw.max_discontinuity, 1e3);
    stat_row("max recovery [s]", sw.max_recovery, 1.0);
    t.print(std::cout);

    std::printf("\ngamma = %.3f ms%s\n", sw.bound.ms(),
                sw.bound_mismatches > 0 ? " (MIXED-BOUND FAMILY!)" : "");
    if (sw.bound_mismatches > 0) {
      std::printf("bound mismatches: %d of %d runs used a different gamma\n",
                  sw.bound_mismatches, sw.runs);
    }
    std::printf("violations: %d, unrecovered runs: %d\n", sw.bound_violations,
                sw.unrecovered_runs);
    if (trace_cfg.enabled() &&
        (sw.bound_violations > 0 || sw.unrecovered_runs > 0)) {
      std::printf("flight-recorder dumps: %sseed<seed>.cztrace (failing "
                  "seeds)\n",
                  trace_path.c_str());
    }
    std::printf("wall-clock: %.2f s (%.2f seeds/s)\n", sw.wall_seconds,
                sw.seeds_per_sec());
    return sw.bound_violations == 0 && sw.unrecovered_runs == 0 ? 0 : 1;
  }

  trace::TraceSink sink;  // unbounded full capture for a single run
  const auto r =
      analysis::run_scenario(s, trace_path.empty() ? nullptr : &sink);
  if (!trace_path.empty()) {
    try {
      trace::write_trace_file(trace_path, sink);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("wrote %s (%llu records)\n\n", trace_path.c_str(),
                static_cast<unsigned long long>(sink.total()));
  }

  std::printf("%s\n\n", r.bounds.summary().c_str());
  TextTable t({"metric", "bound", "measured"});
  char buf[64];
  auto msr = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.3f ms", v * 1e3);
    return std::string(buf);
  };
  t.row({"deviation (max, stable)", msr(r.bounds.max_deviation.sec()),
         msr(r.max_stable_deviation.sec())});
  t.row({"deviation (mean)", "-", msr(r.mean_stable_deviation.sec())});
  // A steady-state correction cancels one reading error plus the relative
  // drift accumulated since the previous Sync (the psi of Theorem 5 is
  // the *accuracy-envelope* allowance; the per-sync engineering bound
  // adds the 2 rho SyncInt drift term).
  const double adj_bound =
      r.bounds.discontinuity.sec() + 2.0 * s.model.rho * s.sync_int.sec();
  t.row({"max adjustment (psi + drift)", msr(adj_bound),
         msr(r.max_stable_discontinuity.sec())});
  std::snprintf(buf, sizeof buf, "%.3g", r.bounds.logical_drift);
  std::string drift_bound = buf;
  std::snprintf(buf, sizeof buf, "%.3g", r.max_rate_excess);
  t.row({"logical drift (rate excess)", drift_bound, buf});
  std::snprintf(buf, sizeof buf, "%.1f s", r.max_recovery_time().sec());
  t.row({"recovery (max)", "<= Delta",
         r.recoveries.empty() ? "n/a" : std::string(buf)});
  t.row({"recoveries judged ok", "-", r.all_recovered() ? "yes" : "NO"});
  t.row({"break-ins", "-", std::to_string(r.break_ins)});
  t.row({"messages", "-", std::to_string(r.messages_sent)});
  t.row({"sim events", "-", std::to_string(r.events_executed)});
  t.print(std::cout);

  if (!out_dir.empty()) {
    const std::string base =
        out_dir.back() == '/' ? out_dir : out_dir + "/";
    {
      std::ofstream f(base + "series.csv");
      analysis::write_series_csv(f, r);
    }
    {
      std::ofstream f(base + "recoveries.csv");
      analysis::write_recoveries_csv(f, r);
    }
    {
      std::ofstream f(base + "summary.csv");
      analysis::write_summary_csv(f, r);
    }
    std::printf("\nwrote %sseries.csv, %srecoveries.csv, %ssummary.csv\n",
                base.c_str(), base.c_str(), base.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   json_path.c_str());
      return 2;
    }
    util::JsonWriter w(f);
    w.begin_object();
    w.key("schema");
    w.value("czsync-runrecord-v1");
    w.key("git_describe");
    w.value(analysis::build_git_describe());
    w.key("scenario");
    w.value(analysis::summarize_scenario(s));
    w.key("seed");
    w.value(s.seed);
    w.key("metrics");
    analysis::write_metrics_json(w, r.metrics);
    w.end_object();
    f << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  const bool ok =
      r.max_stable_deviation < r.bounds.max_deviation && r.all_recovered();
  return ok ? 0 : 1;
}
