#!/usr/bin/env python3
"""czsync-lint: project-specific determinism & layering static analysis.

The repo's headline guarantees (bit-identical serial/parallel sweeps,
traced == untraced runs) rest on invariants that sanitizers only catch
dynamically and only when a seed happens to trip them. This pass enforces
them statically, before runtime:

  nondet-token     banned nondeterminism sources (wall clocks, ambient
                   randomness, environment reads outside util/, pointer-
                   value ordering/hashing). Deliberate wall-clock metric
                   reads carry a `// lint: wall-clock` justification.
  unordered-iter   range-for / iterator loops over std::unordered_map or
                   std::unordered_set: bucket order is not part of the
                   contract and must never reach message emission,
                   metrics, or trace records. Loops whose body is truly
                   order-insensitive carry `// lint: order-insensitive`
                   (same line or the line above).
  layering         #include edges must follow the module DAG documented
                   in DESIGN.md section 4.9 (LAYERS below is the
                   authoritative copy; new modules must be added to both).
  float-time-eq    == / != on time-typed expressions (Duration, SimTau,
                   HwTime, LogicalTime, .sec(), .raw()) inside src/.
                   Exact comparisons that are intentional carry
                   `// lint: exact-time`.
  raw-double-time  a raw double/float declaration whose name says it is
                   a time value (*tau*, *now*, *deadline*, *delay*)
                   inside src/: use the strong types of
                   util/time_domain.h (DESIGN.md section 4.14). The
                   serialization layer src/trace/ is exempt; elsewhere a
                   deliberate raw value carries `// time: <why>`.
  unsafe-cast-audit  every time-domain escape (`.raw()` or a `_unsafe`
                   cast) inside src/ must carry a `// time: <why>`
                   justification on the line or the line above. The
                   time_domain.h headers defining the types are exempt.
  stale-suppression  a `// lint: <tag>` hatch (or a comment-only NOLINT)
                   whose line no longer triggers the suppressed rule:
                   dead hatches rot into licenses for future bugs and
                   must be deleted.
  layering-cmake   target_link_libraries edges in src/*/CMakeLists.txt
                   must mirror the same DAG the #include rule enforces:
                   czsync_<module> may only link the modules LAYERS
                   allows it to include.
  header-hygiene   every header has `#pragma once`; no `using namespace`
                   at header scope.
  py-compile,      (--py) the repo's Python tools must byte-compile and
  py-style         pass a small flake-style check (no bare except, no
                   tab indentation, no trailing whitespace).

Exit codes: 0 clean, 1 findings, 2 usage error.
Findings print as `path:line: [rule] message`, one per line.
"""

import argparse
import os
import py_compile
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Layering DAG. Key: module directory under src/. Value: the modules whose
# headers it may #include (besides its own). The full rationale, including
# why sim/ sits below clock/net (hardware alarms and message deliveries ARE
# simulator events) while core/broadcast/proactive must NOT see sim/ (they
# read time only via clock/ and trace only via trace::TracePort), lives in
# DESIGN.md section 4.9. Keep the two in sync; new modules must be added to
# both before they can be included from anywhere.
# --------------------------------------------------------------------------
LAYERS = {
    "util": set(),
    "trace": {"util"},
    "sim": {"trace", "util"},
    "clock": {"sim", "util"},
    "net": {"clock", "sim", "util"},
    "core": {"clock", "net", "trace", "util"},
    "broadcast": {"clock", "core", "net", "trace", "util"},
    "proactive": {"clock", "net", "trace", "util"},
    "adversary": {
        "broadcast", "clock", "core", "net", "proactive", "sim", "trace",
        "util",
    },
    "analysis": {
        "adversary", "broadcast", "clock", "core", "net", "proactive", "sim",
        "trace", "util",
    },
    "mc": {
        "adversary", "analysis", "broadcast", "clock", "core", "net",
        "proactive", "sim", "trace", "util",
    },
    # rt/ is the real-sockets runtime: it hosts the unmodified protocol
    # stack behind epoll/timerfd/UDP, so it sits at the top of the DAG
    # next to mc/ and NOTHING may include rt/. It needs sim/ (beyond the
    # ISSUE's core/clock/net/trace/util floor) because the embedded
    # simulator is its deterministic timer substrate: HardwareClock and
    # Network are constructed over sim::Simulator, and rt::Daemon drains
    # sim events up to real tau between epoll wakeups.
    "rt": {"clock", "core", "net", "sim", "trace", "util"},
}

# --------------------------------------------------------------------------
# Real-kernel exception list. src/rt is the ONLY module that may talk to
# the kernel's event/socket facilities (that is its whole job); everywhere
# else these tokens are banned outright -- a syscall in src/core or src/sim
# would silently break bit-identical replay. Wall-clock tokens are NOT
# blanket-exempted even here: only rt::Clock should read the OS clock, so
# rt clock reads still carry per-line `// lint: wall-clock` justifications.
# --------------------------------------------------------------------------
SYSCALL_EXEMPT_DIRS = (os.path.join("src", "rt"),)

SYSCALL_TOKENS = [
    (re.compile(r"\bepoll_(?:create1?|ctl|wait|pwait2?)\b"),
     "epoll syscall: kernel event readiness is nondeterministic; only "
     "src/rt/ may host a real event loop"),
    (re.compile(r"\btimerfd_(?:create|settime|gettime)\b"),
     "timerfd syscall: real timers belong to src/rt/; simulated code "
     "schedules via sim::Simulator alarms"),
    (re.compile(r"\bsignalfd\b|\bsigaction\s*\("),
     "signal handling: process signals are nondeterministic; only "
     "src/rt/ may observe them"),
    (re.compile(r"\b(?:recvfrom|sendto|recvmsg|sendmsg)\s*\("),
     "socket I/O: datagram timing/loss is nondeterministic; only "
     "src/rt/ may use real sockets (simulated code goes through net/)"),
    (re.compile(r"\bsocket\s*\(\s*AF_"),
     "socket creation: only src/rt/ may open real sockets"),
]

# Trees scanned by default (relative to --root). tools/bench/tests/examples
# sit above every src/ module and may include anything; they are still
# subject to every non-layering rule.
DEFAULT_TREES = ("src", "tools", "tests", "bench", "examples")

# Directory names skipped during tree walks. Explicitly-listed files are
# always linted (that is how the fixture self-tests exercise the rules).
SKIP_DIRS = {"build", ".git", "golden", "lint_fixtures", "__pycache__"}

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# (regex, message) pairs for rule nondet-token, matched against code with
# comments and string/char literals stripped.
NONDET_TOKENS = [
    (re.compile(r"std::rand\b|(?<![\w:])srand\s*\("),
     "std::rand/srand: use util::Rng, seeded from the scenario"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic: seed util::Rng explicitly"),
    (re.compile(r"\bsystem_clock\b"),
     "wall clock read: simulation time must come from sim/clock layers"),
    (re.compile(r"\b(?:steady_clock|high_resolution_clock)\b"),
     "wall clock read: allowed only for throughput metrics with a "
     "`// lint: wall-clock` justification"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\b"),
     "OS clock read: simulation time must come from sim/clock layers"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|\))"),
     "time(): wall clock read"),
    (re.compile(r"\bgetenv\b"),
     "environment read: ambient configuration is allowed only in "
     "src/util/ or with a `// lint: ambient-env` justification"),
    (re.compile(r"reinterpret_cast<\s*(?:std::)?uintptr_t"),
     "pointer-value arithmetic: pointer values vary across runs; key on "
     "ProcId or another stable identity"),
    (re.compile(r"std::hash<[^>]*\*\s*>"),
     "hashing pointer values: bucket placement varies across runs; hash "
     "a stable identity instead"),
]

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:multi)?(?:map|set)\s*<")
RANGE_FOR = re.compile(r"for\s*\([^;()]*:\s*&?(\w+)\s*\)")
ITER_FOR = re.compile(r"for\s*\([^;]*=\s*(\w+)\s*\.\s*(?:c?begin)\s*\(")
TIME_EQ = re.compile(r"(?<![=!<>])(==|!=)(?!=)")
TIME_TYPED = re.compile(
    r"\.sec\s*\(\s*\)|\.raw\s*\(\s*\)"
    r"|\bDuration\b|\bSimTau\b|\bHwTime\b|\bLogicalTime\b")

# ---- raw-double-time ----
# A floating declaration whose identifier names a time quantity. The
# identifier match is segment-wise (underscore-delimited) so `known` or
# `shownow` never trip on the embedded `now`.
RAW_TIME_DECL = re.compile(r"\b(?:double|float)\s+(?:const\s+)?(\w+)")
RAW_TIME_NAME = re.compile(r"(?:^|_)(?:tau|now|deadline|delay)(?:_|\d|s)?(?:$|_)")
# src/trace is the serialization layer: czsync-trace-v1 records ARE raw
# f64 fields by format contract, so the rule does not apply there.
RAW_TIME_EXEMPT_DIRS = (os.path.join("src", "trace"),)

# ---- unsafe-cast-audit ----
UNSAFE_CAST = re.compile(r"\.raw\s*\(|_unsafe\s*\(")
# The headers DEFINING the strong types are the domain boundary itself;
# auditing their internal .raw() plumbing would be justifying the
# definition with itself.
TIME_DOMAIN_HEADERS = (
    os.path.join("src", "util", "time_domain.h"),
    os.path.join("src", "core", "time_domain.h"),
)

# ---- stale-suppression ----
# Hatch form: a `// lint: <tag>` comment ENDING the line. Prose mentions
# of a hatch (like this file's docstring) have trailing text and are not
# hatches. NOLINT is clang-tidy's mechanism; the only statically
# checkable staleness is a NOLINT that cannot apply to any code at all
# (comment-only line, or NOLINTNEXTLINE followed by no code).
LINT_TAGS = ("wall-clock", "order-insensitive", "exact-time", "ambient-env")
HATCH_RE = re.compile(r"//\s*lint:\s*([\w-]+)\s*$")
NOLINT_RE = re.compile(r"//.*\bNOLINT(NEXTLINE)?\b")

# ---- layering-cmake ----
# Library target -> module directory, for the targets whose name is not
# czsync_<dir>. Everything else strips the czsync_ prefix.
CMAKE_TARGET_MODULES = {
    "czsync_tracing": "trace",
    "czsync_modelcheck": "mc",
}
CMAKE_LINK_OPEN = re.compile(r"target_link_libraries\s*\(\s*(\w+)")
CMAKE_LIB_TOKEN = re.compile(r"\bczsync_\w+")


def target_module(target):
    """Module directory a czsync_* library target lives in, or None."""
    if target in CMAKE_TARGET_MODULES:
        return CMAKE_TARGET_MODULES[target]
    if target.startswith("czsync_"):
        return target[len("czsync_"):]
    return None


def time_typed_comparison(line):
    """True when some ==/!= on the line has a time-typed operand.

    Operands are scoped to the nearest ENCLOSING bracket/logical-operator
    boundary so `ts != nullptr` on a line that also stamps `.sec()` does
    not trip the rule. The scan matches parens in both directions: a
    call like `a.sec()` inside the left operand must not clip the
    boundary at its own `(` (that blind spot let `x.sec() == 0.0`
    through unflagged).
    """
    for m in TIME_EQ.finditer(line):
        left_stop = -1
        depth = 0
        for i in range(m.start() - 1, -1, -1):
            c = line[i]
            if c == ")":
                depth += 1
            elif c == "(":
                if depth == 0:
                    left_stop = i
                    break
                depth -= 1
            elif depth == 0 and (c in ",;{?" or
                                 line.startswith(("||", "&&"), i)):
                left_stop = i
                break
        right = line[m.end():]
        cut = len(right)
        depth = 0
        for i, c in enumerate(right):
            if c == "(":
                depth += 1
            elif depth > 0 and c == ")":
                depth -= 1
            elif depth == 0 and (c in "),;{}?" or right.startswith(("||", "&&"), i)):
                cut = i
                break
        operands = line[left_stop + 1:m.start()] + " " + right[:cut]
        if TIME_TYPED.search(operands):
            return True
    return False


INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
PY_BARE_EXCEPT = re.compile(r"^\s*except\s*:")


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line, rule, message):
        self.items.append((path, line, rule, message))

    def report(self, out):
        for path, line, rule, message in sorted(self.items):
            out.write(f"{path}:{line}: [{rule}] {message}\n")
        return len(self.items)


def strip_code(lines):
    """Returns lines with comments and string/char literals removed.

    Good enough for token scanning: handles // and /* */ comments and
    skips over quoted literals so tokens inside them never match. Raw
    strings are treated like plain strings (fine for this codebase).
    """
    out = []
    in_block = False
    for line in lines:
        code = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n and line[i] != quote:
                    i += 2 if line[i] == "\\" else 1
                i += 1
                code.append(quote + quote)  # keep a token boundary
                continue
            code.append(c)
            i += 1
        out.append("".join(code))
    return out


def has_justification(lines, idx, tag, used=None):
    """True when line idx (0-based) or the line above carries the tag.

    When `used` (a set) is given, the 0-based line index that supplied
    the justification is recorded in it, keyed with the bare tag — the
    stale-suppression rule reports every hatch line that no rule ever
    consumed this way.
    """
    bare = tag.removeprefix("lint: ")
    if tag in lines[idx]:
        if used is not None:
            used.add((idx, bare))
        return True
    if idx > 0 and tag in lines[idx - 1]:
        if used is not None:
            used.add((idx - 1, bare))
        return True
    return False


def module_of(path):
    """Module name for layering purposes, or None for top-layer files."""
    parts = os.path.normpath(path).split(os.sep)
    for i, part in enumerate(parts[:-1]):
        if part == "src" and i + 1 < len(parts) - 0:
            nxt = parts[i + 1]
            if nxt != parts[-1]:
                return nxt
    return None


def unordered_names(lines):
    """Names of variables/members declared with an unordered container."""
    names = set()
    text = "\n".join(lines)
    for m in UNORDERED_DECL.finditer(text):
        # Balance the template angle brackets, then take the next
        # identifier as the declared name.
        i = m.end()
        depth = 1
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        tail = text[i:i + 120]
        dm = re.match(r"\s*&?\s*(\w+)\s*[;,={(]", tail)
        if dm:
            names.add(dm.group(1))
    return names


def project_includes(lines):
    incs = []
    for idx, line in enumerate(lines):
        m = INCLUDE_RE.search(line)
        if m:
            incs.append((idx + 1, m.group(1)))
    return incs


def resolve_header(root, inc):
    cand = os.path.join(root, "src", inc)
    return cand if os.path.isfile(cand) else None


def lint_cxx_file(path, root, findings, header_cache):
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        findings.add(path, 0, "io", f"unreadable: {e}")
        return
    code = strip_code(raw)
    rel = os.path.relpath(path, root)
    in_src = module_of(rel) is not None or f"{os.sep}src{os.sep}" in rel
    used = set()  # (0-based hatch line, tag) pairs consumed by some rule

    # ---- nondet-token ----
    syscall_exempt = any(d in rel for d in SYSCALL_EXEMPT_DIRS)
    for idx, line in enumerate(code):
        for pattern, message in NONDET_TOKENS:
            if not pattern.search(line):
                continue
            if "getenv" in pattern.pattern:
                if f"src{os.sep}util" in rel:
                    continue  # util/ owns ambient-environment access
                if has_justification(raw, idx, "lint: ambient-env", used):
                    continue
            if has_justification(raw, idx, "lint: wall-clock", used):
                continue
            findings.add(rel, idx + 1, "nondet-token", message)
        if syscall_exempt:
            continue  # the documented src/rt exception (see SYSCALL_TOKENS)
        for pattern, message in SYSCALL_TOKENS:
            if pattern.search(line):
                findings.add(rel, idx + 1, "nondet-token", message)

    # ---- unordered-iter ----
    names = set(unordered_names(code))
    for _, inc in project_includes(raw):
        hdr = resolve_header(root, inc)
        if hdr is None:
            continue
        if hdr not in header_cache:
            try:
                with open(hdr, encoding="utf-8") as f:
                    header_cache[hdr] = unordered_names(
                        strip_code(f.read().splitlines()))
            except OSError:
                header_cache[hdr] = set()
        names |= header_cache[hdr]
    if names:
        for idx, line in enumerate(code):
            for pattern in (RANGE_FOR, ITER_FOR):
                m = pattern.search(line)
                if m and m.group(1) in names:
                    if has_justification(raw, idx, "lint: order-insensitive", used):
                        continue
                    findings.add(
                        rel, idx + 1, "unordered-iter",
                        f"iteration over unordered container "
                        f"'{m.group(1)}': bucket order may reach messages/"
                        f"metrics/traces; iterate a sorted snapshot or "
                        f"justify with `// lint: order-insensitive`")

    # ---- layering ----
    mod = module_of(rel)
    if mod is not None:
        allowed = LAYERS.get(mod)
        if allowed is None:
            findings.add(
                rel, 1, "layering",
                f"module '{mod}' is not in the layering map; add it to "
                f"LAYERS in tools/czsync_lint.py and DESIGN.md section 4.9")
        else:
            for lineno, inc in project_includes(raw):
                dep = inc.split("/")[0]
                if "/" not in inc or dep not in LAYERS:
                    continue  # system or non-module header
                if dep != mod and dep not in allowed:
                    findings.add(
                        rel, lineno, "layering",
                        f"{mod}/ must not include {dep}/ "
                        f"(allowed: {', '.join(sorted(allowed)) or 'none'})")

    # ---- float-time-eq ----
    if in_src:
        for idx, line in enumerate(code):
            if "operator" in line or "static_assert" in line:
                continue
            if time_typed_comparison(line):
                if has_justification(raw, idx, "lint: exact-time", used):
                    continue
                findings.add(
                    rel, idx + 1, "float-time-eq",
                    "==/!= on a time-typed expression: compare with a "
                    "tolerance, or justify with `// lint: exact-time`")

    # ---- raw-double-time ----
    if in_src and not any(d in rel for d in RAW_TIME_EXEMPT_DIRS):
        for idx, line in enumerate(code):
            for m in RAW_TIME_DECL.finditer(line):
                if not RAW_TIME_NAME.search(m.group(1)):
                    continue
                if has_justification(raw, idx, "time:"):
                    continue
                findings.add(
                    rel, idx + 1, "raw-double-time",
                    f"raw floating declaration '{m.group(1)}' holds a time "
                    f"value: use Duration/SimTau/HwTime/LogicalTime "
                    f"(util/time_domain.h), or justify the boundary with "
                    f"`// time: <why>`")

    # ---- unsafe-cast-audit ----
    if in_src and not any(rel.endswith(h) for h in TIME_DOMAIN_HEADERS):
        for idx, line in enumerate(code):
            if not UNSAFE_CAST.search(line):
                continue
            if has_justification(raw, idx, "time:"):
                continue
            findings.add(
                rel, idx + 1, "unsafe-cast-audit",
                "time-domain escape (.raw()/_unsafe cast) without a "
                "`// time: <why>` justification on this line or the one "
                "above")

    # ---- stale-suppression ----
    for idx, line in enumerate(raw):
        hm = HATCH_RE.search(line)
        if hm and hm.group(1) in LINT_TAGS and (idx, hm.group(1)) not in used:
            findings.add(
                rel, idx + 1, "stale-suppression",
                f"`// lint: {hm.group(1)}` suppresses nothing: neither this "
                f"line nor the one below triggers the rule; delete the "
                f"hatch")
        nm = NOLINT_RE.search(line)
        if nm is None:
            continue
        if nm.group(1) is None and not code[idx].strip():
            findings.add(
                rel, idx + 1, "stale-suppression",
                "NOLINT on a comment-only line suppresses nothing "
                "(NOLINT applies to code on its own line)")
        elif nm.group(1) is not None and (
                idx + 1 >= len(code) or not code[idx + 1].strip()):
            findings.add(
                rel, idx + 1, "stale-suppression",
                "NOLINTNEXTLINE with no code on the next line suppresses "
                "nothing")

    # ---- header-hygiene ----
    if path.endswith((".h", ".hpp")):
        if not any("#pragma once" in l for l in raw[:40]):
            findings.add(rel, 1, "header-hygiene", "missing #pragma once")
        for idx, line in enumerate(code):
            if re.search(r"\busing\s+namespace\b", line):
                findings.add(
                    rel, idx + 1, "header-hygiene",
                    "using-namespace at header scope leaks into every "
                    "includer")


def lint_cmake_file(path, root, findings):
    """Rule layering-cmake: link edges must mirror the LAYERS DAG.

    Applies to CMakeLists.txt files under src/<module>/. Every
    czsync_* library named in a target_link_libraries() call for that
    module's target must map (via target_module) to the module itself
    or to a module LAYERS allows it to include.
    """
    rel = os.path.relpath(path, root)
    mod = module_of(rel)
    if mod is None:
        return  # top-level / tests CMake files carry no layering contract
    allowed = LAYERS.get(mod)
    if allowed is None:
        findings.add(
            rel, 1, "layering-cmake",
            f"module '{mod}' is not in the layering map; add it to LAYERS "
            f"in tools/czsync_lint.py and DESIGN.md section 4.9")
        return
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        findings.add(rel, 0, "io", f"unreadable: {e}")
        return
    target = None  # inside a target_link_libraries(...) block when set
    for idx, line in enumerate(lines):
        line = line.split("#", 1)[0]
        start = 0
        if target is None:
            m = CMAKE_LINK_OPEN.search(line)
            if not m:
                continue
            target = m.group(1)
            start = m.end()
        for lm in CMAKE_LIB_TOKEN.finditer(line, start):
            dep = target_module(lm.group(0))
            if dep is None or dep == mod:
                continue
            if dep not in LAYERS:
                findings.add(
                    rel, idx + 1, "layering-cmake",
                    f"{lm.group(0)} does not name a module in the layering "
                    f"map (LAYERS in tools/czsync_lint.py)")
            elif dep not in allowed:
                findings.add(
                    rel, idx + 1, "layering-cmake",
                    f"czsync_{mod} must not link {lm.group(0)}: {mod}/ may "
                    f"not depend on {dep}/ "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'})")
        if ")" in line:
            target = None


def lint_py_file(path, root, findings):
    rel = os.path.relpath(path, root)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            py_compile.compile(
                path, cfile=os.path.join(tmp, "lint.pyc"), doraise=True)
    except py_compile.PyCompileError as e:
        lineno = e.exc_value.lineno if hasattr(e.exc_value, "lineno") else 0
        findings.add(rel, lineno or 0, "py-compile", e.msg.strip())
        return
    except OSError as e:
        findings.add(rel, 0, "py-compile", str(e))
        return
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for idx, line in enumerate(lines):
        if PY_BARE_EXCEPT.match(line):
            findings.add(rel, idx + 1, "py-style",
                         "bare `except:` swallows SystemExit and typos; "
                         "catch a concrete exception type")
        if line.startswith("\t") or line.lstrip(" ").startswith("\t"):
            findings.add(rel, idx + 1, "py-style", "tab indentation")
        if line != line.rstrip():
            findings.add(rel, idx + 1, "py-style", "trailing whitespace")


def collect_files(root, paths, want_py):
    cxx, py, cmake = [], [], []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            if os.path.basename(full) == "CMakeLists.txt":
                cmake.append(full)
            elif full.endswith(CXX_EXTENSIONS):
                cxx.append(full)
            elif full.endswith(".py"):
                py.append(full)
            continue
        if not os.path.isdir(full):
            raise SystemExit2(f"error: no such file or directory: {p}")
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
            for name in sorted(filenames):
                f = os.path.join(dirpath, name)
                if name == "CMakeLists.txt":
                    cmake.append(f)
                elif name.endswith(CXX_EXTENSIONS):
                    cxx.append(f)
                elif name.endswith(".py") and want_py:
                    py.append(f)
    return cxx, py, cmake


class SystemExit2(Exception):
    """Usage error: reported on stderr, exit code 2."""


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="czsync_lint.py",
        description=__doc__.splitlines()[0],
        epilog="exit codes: 0 clean, 1 findings, 2 usage error")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--py", action="store_true",
                    help="also lint Python tools (py_compile + style)")
    ap.add_argument("--cmake-only", action="store_true",
                    help="run only the layering-cmake rule over the "
                         "collected CMakeLists.txt files")
    ap.add_argument("paths", nargs="*",
                    help=f"files or directories to lint "
                         f"(default: {' '.join(DEFAULT_TREES)})")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on bad flags and 0 on --help; keep both.
        return int(e.code or 0)

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(root):
        sys.stderr.write(f"error: --root {root} is not a directory\n")
        return 2

    paths = args.paths or [t for t in DEFAULT_TREES
                           if os.path.isdir(os.path.join(root, t))]
    try:
        cxx, py, cmake = collect_files(root, paths, want_py=args.py)
    except SystemExit2 as e:
        sys.stderr.write(str(e) + "\n")
        return 2
    if args.cmake_only:
        cxx, py = [], []

    findings = Findings()
    header_cache = {}
    for f in cxx:
        lint_cxx_file(f, root, findings, header_cache)
    for f in py:
        lint_py_file(f, root, findings)
    for f in cmake:
        lint_cmake_file(f, root, findings)

    count = findings.report(sys.stdout)
    if count:
        print(f"czsync-lint: {count} finding(s) in "
              f"{len(cxx) + len(py) + len(cmake)} file(s)")
        return 1
    print(f"czsync-lint: clean ({len(cxx)} C++ file(s)"
          + (f", {len(py)} Python file(s)" if args.py else "")
          + (f", {len(cmake)} CMake file(s)" if cmake else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
