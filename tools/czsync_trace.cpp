// czsync_trace — inspect czsync-trace-v1 event traces (.cztrace).
//
// Usage:
//   czsync_trace dump FILE                 # print every record
//   czsync_trace dump --kind K FILE        # only records of kind K
//   czsync_trace filter --proc P FILE      # records touching processor P
//   czsync_trace stats FILE                # per-kind counts + time span
//   czsync_trace diff A B                  # first divergent record + context
//
// `diff` exits 0 when the traces are identical and 1 at the first
// divergence, so it doubles as a determinism checker in scripts: two runs
// of the same (scenario, seed) must produce byte-identical traces, and
// the first differing record pinpoints where two variants part ways.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "net/message.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/record.h"

using namespace czsync;

namespace {

constexpr const char* kHelp = R"(czsync_trace COMMAND [OPTIONS] FILE...

Commands:
  dump FILE             print every record, one per line
  filter FILE           like dump, with the filters below applied
  stats FILE            per-kind record counts, drop header, time span
  diff A B              report the first divergent record with context;
                        exit 0 when identical, 1 when not

Options (dump/filter):
  --kind K     keep only records of kind K (EventFire, MsgSend,
               MsgDeliver, MsgDrop, AdvBreakIn, AdvLeave, AdjWrite,
               RoundOpen, RoundClose, InvariantSample)
  --proc P     keep only records whose p or q field is processor P
  --from T     keep only records with t >= T (seconds)
  --to T       keep only records with t <= T (seconds)

Options (diff):
  --context N  shared records printed before the divergence (default 3)

Traces are produced by `czsync_cli --trace`, `czsync_bench --trace`, or
the sweep flight recorder (failing seeds auto-dump).
)";

int fail(const std::string& why) {
  std::fprintf(stderr, "czsync_trace: %s\n", why.c_str());
  std::fputs("run `czsync_trace --help` for usage\n", stderr);
  return 2;
}

struct Filter {
  trace::RecordKind kind = trace::RecordKind::Invalid;  // Invalid = any
  int proc = -1;                                        // -1 = any
  double from = -std::numeric_limits<double>::infinity();
  double to = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool pass(const trace::TraceRecord& r) const {
    if (kind != trace::RecordKind::Invalid && r.kind != kind) return false;
    if (proc >= 0 && r.p != proc && r.q != proc) return false;
    return r.t >= from && r.t <= to;
  }
};

int cmd_dump(const std::string& path, const Filter& filter) {
  const trace::TraceData data = trace::read_trace_file(path);
  if (data.truncated) {
    std::printf("# flight recorder: %llu earlier records dropped\n",
                static_cast<unsigned long long>(data.dropped));
  }
  for (const auto& r : data.records) {
    if (!filter.pass(r)) continue;
    std::printf("%s\n", trace::record_to_string(r, net::body_name).c_str());
  }
  return 0;
}

int cmd_stats(const std::string& path) {
  const trace::TraceData data = trace::read_trace_file(path);
  std::array<std::uint64_t, trace::kMaxRecordKind + 1> counts{};
  for (const auto& r : data.records) {
    counts[static_cast<std::size_t>(r.kind)]++;
  }
  std::printf("records: %zu%s\n", data.records.size(),
              data.truncated ? " (truncated flight-recorder window)" : "");
  if (data.truncated) {
    std::printf("dropped before window: %llu\n",
                static_cast<unsigned long long>(data.dropped));
  }
  if (!data.records.empty()) {
    std::printf("time span: %.6f .. %.6f s\n", data.records.front().t,
                data.records.back().t);
  }
  for (std::size_t k = 1; k <= trace::kMaxRecordKind; ++k) {
    if (counts[k] == 0) continue;
    std::printf("  %-15s %llu\n",
                trace::record_kind_name(static_cast<trace::RecordKind>(k)),
                static_cast<unsigned long long>(counts[k]));
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path,
             std::size_t context) {
  const trace::TraceData a = trace::read_trace_file(a_path);
  const trace::TraceData b = trace::read_trace_file(b_path);
  std::printf("A: %s\nB: %s\n", a_path.c_str(), b_path.c_str());
  return trace::print_diff(std::cout, a, b, context, net::body_name) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::fputs(kHelp, stdout);
    return args.empty() ? 2 : 0;
  }
  const std::string cmd = args[0];

  Filter filter;
  std::size_t context = 3;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto take_value = [&](const char* flag, std::string* out) -> bool {
      if (a == flag) {
        if (i + 1 >= args.size()) {
          std::exit(fail(std::string("missing value for ") + flag));
        }
        *out = args[++i];
        return true;
      }
      const std::string eq = std::string(flag) + "=";
      if (a.rfind(eq, 0) == 0) {
        *out = a.substr(eq.size());
        return true;
      }
      return false;
    };
    std::string value;
    try {
      if (take_value("--kind", &value)) {
        filter.kind = trace::record_kind_from_name(value);
        if (filter.kind == trace::RecordKind::Invalid) {
          return fail("unknown record kind '" + value + "'");
        }
      } else if (take_value("--proc", &value)) {
        filter.proc = std::stoi(value);
      } else if (take_value("--from", &value)) {
        filter.from = std::stod(value);
      } else if (take_value("--to", &value)) {
        filter.to = std::stod(value);
      } else if (take_value("--context", &value)) {
        context = static_cast<std::size_t>(std::stoul(value));
      } else if (a.rfind("--", 0) == 0) {
        return fail("unknown option '" + a + "'");
      } else {
        files.push_back(a);
      }
    } catch (const std::exception&) {
      return fail("bad value '" + value + "' for " + a);
    }
  }

  try {
    if (cmd == "dump" || cmd == "filter") {
      if (files.size() != 1) return fail(cmd + " needs exactly one FILE");
      return cmd_dump(files[0], filter);
    }
    if (cmd == "stats") {
      if (files.size() != 1) return fail("stats needs exactly one FILE");
      return cmd_stats(files[0]);
    }
    if (cmd == "diff") {
      if (files.size() != 2) return fail("diff needs exactly two files: A B");
      return cmd_diff(files[0], files[1], context);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "czsync_trace: %s\n", e.what());
    return 2;
  }
  return fail("unknown command '" + cmd + "'");
}
