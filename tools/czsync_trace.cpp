// czsync_trace — inspect czsync-trace-v1 event traces (.cztrace).
//
// Usage:
//   czsync_trace dump FILE                 # print every record
//   czsync_trace dump --kind K FILE        # only records of kind K
//   czsync_trace filter --proc P FILE      # records touching processor P
//   czsync_trace stats FILE                # per-kind counts + time span
//   czsync_trace diff A B                  # first divergent record + context
//
// `diff` exits 0 when the traces are identical and 1 at the first
// divergence, so it doubles as a determinism checker in scripts: two runs
// of the same (scenario, seed) must produce byte-identical traces, and
// the first differing record pinpoints where two variants part ways.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.h"
#include "rt/envelope.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/record.h"

using namespace czsync;

namespace {

constexpr const char* kHelp = R"(czsync_trace COMMAND [OPTIONS] FILE...

Commands:
  dump FILE             print every record, one per line
  filter FILE           like dump, with the filters below applied
  stats FILE            per-kind record counts, drop header, time span
  diff A B              report the first divergent record with context;
                        exit 0 when identical, 1 when not
  envelope              reconstruct logical clocks from per-daemon rt
                        traces and check the Theorem 5 envelope + re-join
                        bounds; exit 0 on pass, 1 on violation

Options (dump/filter):
  --kind K     keep only records of kind K (EventFire, MsgSend,
               MsgDeliver, MsgDrop, AdvBreakIn, AdvLeave, AdjWrite,
               RoundOpen, RoundClose, InvariantSample)
  --proc P     keep only records whose p or q field is processor P
  --from T     keep only records with t >= T (seconds)
  --to T       keep only records with t <= T (seconds)

Options (diff):
  --context N  shared records printed before the divergence (default 3)

Options (envelope):
  --node SPEC  one daemon capture segment, repeatable; SPEC is
               id:rate:offset_ms:adj_ms:PATH (the launch perturbation of
               the node plus the trace it wrote; a restarted daemon
               contributes a second --node with its restart adj)
  --n N --f F --rho R --delta-ms D --sync-int-ms S
               the run's (model, protocol) parameters; gamma is computed
               from them via TheoremBounds
  --join-bound-ms B   re-join latency bound (default 3*T)
  --sample-ms P       sampling grid period (default 100 ms)
  --json FILE         also write the report as JSON

Traces are produced by `czsync_cli --trace`, `czsync_bench --trace`, or
the sweep flight recorder (failing seeds auto-dump).
)";

int fail(const std::string& why) {
  std::fprintf(stderr, "czsync_trace: %s\n", why.c_str());
  std::fputs("run `czsync_trace --help` for usage\n", stderr);
  return 2;
}

struct Filter {
  trace::RecordKind kind = trace::RecordKind::Invalid;  // Invalid = any
  int proc = -1;                                        // -1 = any
  double from = -std::numeric_limits<double>::infinity();
  double to = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool pass(const trace::TraceRecord& r) const {
    if (kind != trace::RecordKind::Invalid && r.kind != kind) return false;
    if (proc >= 0 && r.p != proc && r.q != proc) return false;
    return r.t >= from && r.t <= to;
  }
};

int cmd_dump(const std::string& path, const Filter& filter) {
  const trace::TraceData data = trace::read_trace_file(path);
  if (data.truncated) {
    std::printf("# flight recorder: %llu earlier records dropped\n",
                static_cast<unsigned long long>(data.dropped));
  }
  for (const auto& r : data.records) {
    if (!filter.pass(r)) continue;
    std::printf("%s\n", trace::record_to_string(r, net::body_name).c_str());
  }
  return 0;
}

int cmd_stats(const std::string& path) {
  const trace::TraceData data = trace::read_trace_file(path);
  std::array<std::uint64_t, trace::kMaxRecordKind + 1> counts{};
  for (const auto& r : data.records) {
    counts[static_cast<std::size_t>(r.kind)]++;
  }
  std::printf("records: %zu%s\n", data.records.size(),
              data.truncated ? " (truncated flight-recorder window)" : "");
  if (data.truncated) {
    std::printf("dropped before window: %llu\n",
                static_cast<unsigned long long>(data.dropped));
  }
  if (!data.records.empty()) {
    std::printf("time span: %.6f .. %.6f s\n", data.records.front().t,
                data.records.back().t);
  }
  for (std::size_t k = 1; k <= trace::kMaxRecordKind; ++k) {
    if (counts[k] == 0) continue;
    std::printf("  %-15s %llu\n",
                trace::record_kind_name(static_cast<trace::RecordKind>(k)),
                static_cast<unsigned long long>(counts[k]));
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path,
             std::size_t context) {
  const trace::TraceData a = trace::read_trace_file(a_path);
  const trace::TraceData b = trace::read_trace_file(b_path);
  std::printf("A: %s\nB: %s\n", a_path.c_str(), b_path.c_str());
  return trace::print_diff(std::cout, a, b, context, net::body_name) ? 0 : 1;
}

/// Parses "id:rate:offset_ms:adj_ms:PATH" (PATH may itself contain ':'
/// only after the fourth separator — it is the tail).
rt::NodeSegment parse_node_spec(const std::string& spec) {
  rt::NodeSegment seg;
  std::size_t pos = 0;
  const auto next_field = [&]() {
    const std::size_t colon = spec.find(':', pos);
    if (colon == std::string::npos) {
      throw std::invalid_argument("--node needs id:rate:offset_ms:adj_ms:PATH");
    }
    const std::string field = spec.substr(pos, colon - pos);
    pos = colon + 1;
    return field;
  };
  seg.id = std::stoi(next_field());
  seg.rate = std::stod(next_field());
  seg.offset_sec = std::stod(next_field()) * 1e-3;
  seg.adj0_sec = std::stod(next_field()) * 1e-3;
  seg.path = spec.substr(pos);
  if (seg.path.empty()) {
    throw std::invalid_argument("--node spec has an empty trace path");
  }
  return seg;
}

struct EnvelopeOptions {
  rt::EnvelopeParams params;
  std::vector<rt::NodeSegment> segments;
  std::string json_path;
};

int cmd_envelope(const EnvelopeOptions& opt) {
  const rt::EnvelopeReport report =
      rt::check_envelope(opt.params, opt.segments);
  std::printf("gamma:            %.3f ms\n", report.gamma.ms());
  std::printf("join bound:       %.3f ms\n", report.join_bound.ms());
  std::printf("max deviation:    %.3f ms (joined nodes, %llu samples)\n",
              report.max_stable_deviation.ms(),
              static_cast<unsigned long long>(report.samples));
  std::printf("max join latency: %.3f ms\n", report.max_join_latency.ms());
  std::printf("rounds:           %llu (%llu way-off)\n",
              static_cast<unsigned long long>(report.rounds_total),
              static_cast<unsigned long long>(report.way_off_rounds));
  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "czsync_trace: cannot write '%s'\n",
                   opt.json_path.c_str());
      return 2;
    }
    std::fprintf(
        f,
        "{\"gamma_ms\": %.6f, \"join_bound_ms\": %.6f,\n"
        " \"max_stable_deviation_ms\": %.6f, \"max_join_latency_ms\": %.6f,\n"
        " \"samples\": %llu, \"rounds_total\": %llu, \"way_off_rounds\": %llu,\n"
        " \"violations\": %d, \"pass\": %s}\n",
        report.gamma.ms(), report.join_bound.ms(),
        report.max_stable_deviation.ms(), report.max_join_latency.ms(),
        static_cast<unsigned long long>(report.samples),
        static_cast<unsigned long long>(report.rounds_total),
        static_cast<unsigned long long>(report.way_off_rounds),
        report.violations, report.pass ? "true" : "false");
    std::fclose(f);
  }
  if (!report.pass) {
    std::printf("FAIL (%d violations): %s\n", report.violations,
                report.first_violation.c_str());
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::fputs(kHelp, stdout);
    return args.empty() ? 2 : 0;
  }
  const std::string cmd = args[0];

  Filter filter;
  std::size_t context = 3;
  EnvelopeOptions env;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto take_value = [&](const char* flag, std::string* out) -> bool {
      if (a == flag) {
        if (i + 1 >= args.size()) {
          std::exit(fail(std::string("missing value for ") + flag));
        }
        *out = args[++i];
        return true;
      }
      const std::string eq = std::string(flag) + "=";
      if (a.rfind(eq, 0) == 0) {
        *out = a.substr(eq.size());
        return true;
      }
      return false;
    };
    std::string value;
    try {
      if (take_value("--kind", &value)) {
        filter.kind = trace::record_kind_from_name(value);
        if (filter.kind == trace::RecordKind::Invalid) {
          return fail("unknown record kind '" + value + "'");
        }
      } else if (take_value("--proc", &value)) {
        filter.proc = std::stoi(value);
      } else if (take_value("--from", &value)) {
        filter.from = std::stod(value);
      } else if (take_value("--to", &value)) {
        filter.to = std::stod(value);
      } else if (take_value("--context", &value)) {
        context = static_cast<std::size_t>(std::stoul(value));
      } else if (take_value("--node", &value)) {
        env.segments.push_back(parse_node_spec(value));
      } else if (take_value("--n", &value)) {
        env.params.model.n = std::stoi(value);
      } else if (take_value("--f", &value)) {
        env.params.model.f = std::stoi(value);
      } else if (take_value("--rho", &value)) {
        env.params.model.rho = std::stod(value);
      } else if (take_value("--delta-ms", &value)) {
        env.params.model.delta = Duration::millis(std::stod(value));
      } else if (take_value("--sync-int-ms", &value)) {
        env.params.sync_int = Duration::millis(std::stod(value));
      } else if (take_value("--join-bound-ms", &value)) {
        env.params.join_bound = Duration::millis(std::stod(value));
      } else if (take_value("--sample-ms", &value)) {
        env.params.sample_period = Duration::millis(std::stod(value));
      } else if (take_value("--json", &value)) {
        env.json_path = value;
      } else if (a.rfind("--", 0) == 0) {
        return fail("unknown option '" + a + "'");
      } else {
        files.push_back(a);
      }
    } catch (const std::exception&) {
      return fail("bad value '" + value + "' for " + a);
    }
  }

  try {
    if (cmd == "dump" || cmd == "filter") {
      if (files.size() != 1) return fail(cmd + " needs exactly one FILE");
      return cmd_dump(files[0], filter);
    }
    if (cmd == "stats") {
      if (files.size() != 1) return fail("stats needs exactly one FILE");
      return cmd_stats(files[0]);
    }
    if (cmd == "diff") {
      if (files.size() != 2) return fail("diff needs exactly two files: A B");
      return cmd_diff(files[0], files[1], context);
    }
    if (cmd == "envelope") {
      if (env.segments.empty()) {
        return fail("envelope needs at least one --node spec");
      }
      if (!files.empty()) {
        return fail("envelope takes traces via --node, not positionally");
      }
      return cmd_envelope(env);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "czsync_trace: %s\n", e.what());
    return 2;
  }
  return fail("unknown command '" + cmd + "'");
}
