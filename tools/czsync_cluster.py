#!/usr/bin/env python3
"""Launch and check a real localhost czsync daemon cluster.

Runs N `czsync_daemon` processes over loopback UDP on one shared tau
axis (a single CLOCK_MONOTONIC epoch), drives a mobile-adversary
schedule against them, collects their czsync-trace-v1 captures, and
checks the measured clock-deviation envelope against the Theorem 5
bound — plus a differential against the simulator backend running the
same (n, f, drift, delay) parameters via `czsync_cli`.

Modes:
  smoke     N daemons, no adversary: every daemon must exit cleanly,
            complete rounds, exchange responses, and pass the envelope
            check. The ctest `rt_loopback_smoke` gate.
  envelope  shaped loss/delay plus SIGSTOP/SIGCONT break-in waves (the
            mobile adversary: at most f daemons suspended at a time);
            envelope + simulator-differential check. The ctest
            `rt_envelope_differential` gate.
  crash     SIGKILL one daemon mid-run, restart it with a smashed
            adjustment; its second trace segment must re-join within the
            recovery bound. The ctest `rt_crash_recovery` gate.

Exit codes: 0 pass, 1 check failed (artifacts kept and reported),
2 usage/infrastructure error (no traceback), 77 sandbox forbids UDP
sockets (ctest SKIP, mirroring the clang-tidy gate).
"""

import argparse
import json
import os
import random
import resource
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

SKIP = 77


def die(msg, code=2):
    print(f"czsync_cluster: {msg}", file=sys.stderr)
    sys.exit(code)


def probe_sockets():
    """Exit 77 when the sandbox forbids UDP loopback sockets."""
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            s.bind(("127.0.0.1", 0))
        finally:
            s.close()
    except OSError as e:
        print(f"SKIP: sandbox forbids UDP sockets ({e})", file=sys.stderr)
        sys.exit(SKIP)


def pick_base_port(n, rng):
    """Finds a block of n free consecutive UDP ports, bounded retries."""
    for _ in range(32):
        base = rng.randrange(20000, 60000 - n)
        socks = []
        try:
            for i in range(n):
                s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                s.bind(("127.0.0.1", base + i))
                socks.append(s)
            return base
        except OSError:
            continue
        finally:
            for s in socks:
                s.close()
    die("could not find a free UDP port block after 32 attempts")


class Node:
    def __init__(self, node_id, rate, offset_ms):
        self.id = node_id
        self.rate = rate
        self.offset_ms = offset_ms
        self.proc = None
        self.segments = []  # trace paths, one per daemon instance
        self.reports = []   # parsed stats JSON, one per exited instance


class Cluster:
    def __init__(self, args, workdir):
        self.args = args
        self.workdir = workdir
        self.rng = random.Random(args.seed)
        self.epoch_ns = time.monotonic_ns()
        self.base_port = pick_base_port(args.n, self.rng)
        self.nodes = []
        for i in range(args.n):
            rate = 1.0 + self.rng.uniform(-args.rho, args.rho) * 0.9
            offset_ms = self.rng.uniform(-args.offset_spread_ms / 2,
                                         args.offset_spread_ms / 2)
            self.nodes.append(Node(i, rate, offset_ms))

    def spawn(self, node, duration_s, adj_ms=0.0):
        seg = len(node.segments)
        trace = os.path.join(self.workdir, f"node{node.id}.seg{seg}.cztrace")
        node.segments.append(trace)
        cmd = [
            self.args.daemon,
            "--id", str(node.id),
            "--n", str(self.args.n),
            "--f", str(self.args.f),
            "--rho", repr(self.args.rho),
            "--delta-ms", repr(self.args.delta_ms),
            "--sync-int-ms", repr(self.args.sync_int_ms),
            "--rate", repr(node.rate),
            "--offset-ms", repr(node.offset_ms),
            "--adj-ms", repr(adj_ms),
            "--duration-s", repr(duration_s),
            "--base-port", str(self.base_port),
            "--seed", str(self.args.seed * 1000 + node.id * 10 + seg),
            "--epoch-ns", str(self.epoch_ns),
            "--trace", trace,
        ]
        if self.args.loss > 0:
            cmd += ["--loss", repr(self.args.loss)]
        if self.args.delay_max_ms > 0:
            cmd += ["--delay-max-ms", repr(self.args.delay_max_ms)]
        node.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)

    def reap(self, node, expect_killed=False):
        """Waits for a daemon and parses its stats line."""
        out, err = node.proc.communicate()
        rc = node.proc.returncode
        node.proc = None
        if expect_killed:
            return None
        if rc != 0:
            die(f"daemon {node.id} exited {rc}: {err.strip()[:500]}")
        try:
            report = json.loads(out.strip().splitlines()[-1])
        except (ValueError, IndexError):
            die(f"daemon {node.id} wrote no stats JSON: {out[:200]!r}")
        node.reports.append(report)
        return report

    def kill_all(self):
        for node in self.nodes:
            if node.proc is not None and node.proc.poll() is None:
                try:
                    node.proc.kill()
                    node.proc.wait()
                except OSError:
                    pass
                node.proc = None

    def segments_args(self, restart_adj_ms):
        out = []
        for node in self.nodes:
            for seg, path in enumerate(node.segments):
                adj = restart_adj_ms.get((node.id, seg), 0.0)
                out += ["--node",
                        f"{node.id}:{node.rate!r}:{node.offset_ms!r}:"
                        f"{adj!r}:{path}"]
        return out


def interruptible_sleep(seconds):
    """time.sleep retried across EINTR (pre-3.5 semantics can't recur,
    but a paranoid bounded retry costs nothing)."""
    deadline = time.monotonic() + seconds
    for _ in range(64):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        try:
            time.sleep(remaining)
        except InterruptedError:
            continue
    return


def run_adversary_waves(cluster, total_s):
    """SIGSTOP/SIGCONT break-in waves: one victim at a time (<= f), held
    for stop_s, round-robin across the cluster. The suspended daemon
    stops answering pings — peers time out, exactly the paper's
    unannounced fault — then recovers when SIGCONT arrives."""
    args = cluster.args
    start = time.monotonic()
    victim = 0
    wave = 0
    while time.monotonic() - start < total_s - args.stop_s - 0.5:
        interruptible_sleep(args.wave_period_s)
        node = cluster.nodes[victim % args.n]
        if node.proc is None or node.proc.poll() is not None:
            victim += 1
            continue
        try:
            node.proc.send_signal(signal.SIGSTOP)
            interruptible_sleep(args.stop_s)
            node.proc.send_signal(signal.SIGCONT)
        except OSError:
            pass  # the daemon ended mid-wave; nothing to resume
        victim += 1
        wave += 1
    return wave


def run_simulator_differential(args, workdir):
    """Runs the simulator backend on matching parameters; returns its
    measured stable deviation in ms."""
    cfg = os.path.join(workdir, "sim_differential.conf")
    horizon = max(args.duration_s, 60.0)
    with open(cfg, "w") as f:
        f.write(f"""# auto-generated by czsync_cluster for the rt differential
n = {args.n}
f = {args.f}
rho = {args.rho!r}
delta = {args.delta_ms!r}ms
sync_int = {args.sync_int_ms!r}ms
horizon = {horizon!r}s
warmup = {min(10.0, horizon / 4)!r}s
initial_spread = {args.offset_spread_ms!r}ms
seed = {args.seed}
""")
    out_json = os.path.join(workdir, "sim_differential.json")
    try:
        rc = subprocess.run([args.cli, cfg, "--json", out_json],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True, timeout=120)
    except subprocess.TimeoutExpired:
        die("simulator differential run timed out")
    if rc.returncode != 0:
        die(f"czsync_cli failed: {rc.stderr.strip()[:500]}")
    with open(out_json) as f:
        record = json.load(f)
    dev = record.get("metrics", {}).get("observer.max_stable_deviation_ms")
    if dev is None:
        die("czsync_cli JSON has no metrics.observer.max_stable_deviation_ms")
    return float(dev)


def run_envelope_check(cluster, restart_adj_ms, join_bound_ms=0.0):
    args = cluster.args
    out_json = os.path.join(cluster.workdir, "envelope.json")
    cmd = [args.trace_tool, "envelope",
           "--n", str(args.n), "--f", str(args.f),
           "--rho", repr(args.rho), "--delta-ms", repr(args.delta_ms),
           "--sync-int-ms", repr(args.sync_int_ms),
           "--json", out_json]
    if join_bound_ms > 0:
        cmd += ["--join-bound-ms", repr(join_bound_ms)]
    cmd += cluster.segments_args(restart_adj_ms)
    rc = subprocess.run(cmd, stdout=subprocess.PIPE,
                        stderr=subprocess.STDOUT, text=True)
    print(rc.stdout, end="")
    if not os.path.exists(out_json):
        die(f"envelope check produced no JSON (exit {rc.returncode})")
    with open(out_json) as f:
        report = json.load(f)
    return rc.returncode, report


def dump_divergence(cluster, report):
    """On failure, keep the traces and print the records around the
    first violation — the live-run analogue of the sweep auto-dump."""
    keep = os.path.join(os.getcwd(), "rt_divergence_dump")
    os.makedirs(keep, exist_ok=True)
    for node in cluster.nodes:
        for path in node.segments:
            if os.path.exists(path):
                shutil.copy(path, keep)
    print(f"first divergence: {report.get('first_violation', '?')}")
    print(f"traces kept in {keep}/")
    for node in cluster.nodes:
        for path in node.segments:
            dst = os.path.join(keep, os.path.basename(path))
            print(f"  inspect: {cluster.args.trace_tool} dump {dst}")


def summarize(cluster, env_report, sim_dev_ms, metrics_out):
    reports = [r for node in cluster.nodes for r in node.reports]
    rounds = sum(r["rounds_completed"] for r in reports)
    cpu = sum(r["cpu_sec"] for r in reports)
    # Include CPU burned by SIGKILLed instances (no report of their own):
    # getrusage(RUSAGE_CHILDREN) accumulates every reaped child.
    ru = resource.getrusage(resource.RUSAGE_CHILDREN)
    child_cpu = ru.ru_utime + ru.ru_stime
    metrics = {
        "rt.nodes": cluster.args.n,
        "rt.rounds_total": rounds,
        "rt.way_off_rounds": sum(r["way_off_rounds"] for r in reports),
        "rt.responses_ok": sum(r["responses_ok"] for r in reports),
        "rt.timeouts": sum(r["timeouts"] for r in reports),
        "rt.udp_sent": sum(r["udp_sent"] for r in reports),
        "rt.udp_received": sum(r["udp_received"] for r in reports),
        "rt.shaped_drops": sum(r["shaped_drops"] for r in reports),
        "rt.eintr_retries": sum(r["eintr_retries"] for r in reports),
        "rt.decode_errors": sum(r["decode_errors"] for r in reports),
        "rt.cpu_sec": round(child_cpu, 6),
        "rt.cpu_per_round_ms":
            round(1e3 * cpu / rounds, 6) if rounds else None,
        "rt.max_stable_deviation_ms": env_report["max_stable_deviation_ms"],
        "rt.max_join_latency_ms": env_report["max_join_latency_ms"],
        "rt.gamma_ms": env_report["gamma_ms"],
        "rt.sim_deviation_ms": sim_dev_ms,
    }
    print("cluster metrics:")
    for k, v in metrics.items():
        print(f"  {k} = {v}")
    if metrics_out:
        with open(metrics_out, "w") as f:
            json.dump(metrics, f, indent=1, sort_keys=True)
            f.write("\n")
    return metrics


def check_common(cluster, env_rc, env_report, sim_dev_ms):
    """The pass/fail verdicts shared by every mode."""
    failures = []
    if env_rc == 2:
        die("envelope checker failed to run")
    if env_rc != 0:
        failures.append("envelope/join check failed")
    if sim_dev_ms is not None:
        rt_dev = env_report["max_stable_deviation_ms"]
        # The theorem bound is the hard gate (already checked); the
        # differential catches the real backend drifting grossly away
        # from the simulator's behaviour at the same parameters, with
        # slack for scheduler noise real processes legitimately add.
        allowed = max(3.0 * sim_dev_ms, sim_dev_ms + 50.0)
        print(f"differential: rt {rt_dev:.3f} ms vs sim {sim_dev_ms:.3f} ms "
              f"(allowed {allowed:.3f} ms, gamma {env_report['gamma_ms']:.3f} ms)")
        if rt_dev > allowed:
            failures.append(
                f"rt deviation {rt_dev:.3f} ms exceeds simulator-differential "
                f"allowance {allowed:.3f} ms")
    for node in cluster.nodes:
        for r in node.reports:
            if r["rounds_completed"] == 0:
                failures.append(f"node {node.id} completed no rounds")
            if r["responses_ok"] == 0:
                failures.append(f"node {node.id} got no valid responses")
    return failures


def mode_smoke(cluster):
    args = cluster.args
    for node in cluster.nodes:
        cluster.spawn(node, args.duration_s)
    for node in cluster.nodes:
        cluster.reap(node)
    env_rc, env_report = run_envelope_check(cluster, {})
    sim_dev = run_simulator_differential(args, cluster.workdir)
    return cluster, env_rc, env_report, sim_dev


def mode_envelope(cluster):
    args = cluster.args
    for node in cluster.nodes:
        cluster.spawn(node, args.duration_s)
    waves = run_adversary_waves(cluster, args.duration_s)
    print(f"adversary: {waves} suspend/resume waves")
    for node in cluster.nodes:
        cluster.reap(node)
    # A suspended daemon misses rounds but its clock reconstruction stays
    # exact (H is a pure function of tau; adj is frozen), so the standard
    # envelope check applies across the waves. Join bound is widened by
    # the stop length: a wave can land exactly on a round boundary.
    env_rc, env_report = run_envelope_check(
        cluster, {}, join_bound_ms=args.stop_s * 1e3 + 3e3 * (
            (1 + args.rho) * args.sync_int_ms / 1e3 + 4 * args.delta_ms / 1e3))
    sim_dev = run_simulator_differential(args, cluster.workdir)
    return cluster, env_rc, env_report, sim_dev


def mode_crash(cluster):
    args = cluster.args
    victim = cluster.nodes[args.n - 1]
    crash_at = args.duration_s * 0.4
    restart_gap = 2.0
    for node in cluster.nodes:
        cluster.spawn(node, args.duration_s)
    interruptible_sleep(crash_at)
    victim.proc.send_signal(signal.SIGKILL)
    cluster.reap(victim, expect_killed=True)
    print(f"crash: SIGKILLed node {victim.id} at ~{crash_at:.1f}s, "
          f"restarting in {restart_gap:.1f}s with adj smashed "
          f"{args.smash_adj_ms:.0f} ms")
    interruptible_sleep(restart_gap)
    remaining = args.duration_s - crash_at - restart_gap
    cluster.spawn(victim, remaining, adj_ms=args.smash_adj_ms)
    for node in cluster.nodes:
        cluster.reap(node)
    restart_adj = {(victim.id, 1): args.smash_adj_ms}
    env_rc, env_report = run_envelope_check(cluster, restart_adj)
    if env_rc == 0 and len(victim.segments) == 2:
        print(f"recovery: node {victim.id} re-joined within "
              f"{env_report['max_join_latency_ms']:.1f} ms of restart "
              f"(bound {env_report['join_bound_ms']:.1f} ms)")
    return cluster, env_rc, env_report, None


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--mode", choices=["smoke", "envelope", "crash"],
                   default="smoke")
    p.add_argument("--build-dir", default="build",
                   help="build tree holding czsync_daemon/czsync_trace/"
                        "czsync_cli")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--rho", type=float, default=1e-4)
    p.add_argument("--delta-ms", type=float, default=50.0)
    p.add_argument("--sync-int-ms", type=float, default=2000.0)
    p.add_argument("--duration-s", type=float, default=15.0)
    p.add_argument("--offset-spread-ms", type=float, default=30.0)
    p.add_argument("--loss", type=float, default=0.0,
                   help="outbound datagram loss probability")
    p.add_argument("--delay-max-ms", type=float, default=0.0,
                   help="uniform extra outbound delay bound")
    p.add_argument("--wave-period-s", type=float, default=4.0)
    p.add_argument("--stop-s", type=float, default=2.0,
                   help="SIGSTOP hold per adversary wave")
    p.add_argument("--smash-adj-ms", type=float, default=5000.0,
                   help="crash mode: restart adjustment (way past WayOff)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--json", default="", help="write rt.* metrics JSON here")
    p.add_argument("--keep-traces", action="store_true")
    args = p.parse_args()

    if args.n < 2 or args.f < 0 or args.f >= args.n:
        die("need n >= 2 and 0 <= f < n")
    for tool in ("czsync_daemon", "czsync_trace", "czsync_cli"):
        path = os.path.join(args.build_dir, "tools", tool)
        if not os.path.isfile(path) or not os.access(path, os.X_OK):
            die(f"missing {path} (build the tree first, or pass --build-dir)")
        setattr(args, {"czsync_daemon": "daemon", "czsync_trace": "trace_tool",
                       "czsync_cli": "cli"}[tool], path)
    if args.mode == "envelope" and args.loss == 0.0 and args.delay_max_ms == 0.0:
        args.loss = 0.05
        args.delay_max_ms = 10.0

    probe_sockets()
    workdir = tempfile.mkdtemp(prefix="czsync_cluster.")
    cluster = Cluster(args, workdir)
    print(f"cluster: n={args.n} f={args.f} base_port={cluster.base_port} "
          f"mode={args.mode} duration={args.duration_s}s workdir={workdir}")
    try:
        mode_fn = {"smoke": mode_smoke, "envelope": mode_envelope,
                   "crash": mode_crash}[args.mode]
        cluster, env_rc, env_report, sim_dev = mode_fn(cluster)
        failures = check_common(cluster, env_rc, env_report, sim_dev)
        summarize(cluster, env_report, sim_dev, args.json)
        if failures:
            dump_divergence(cluster, env_report)
            for failure in failures:
                print(f"FAIL: {failure}")
            sys.exit(1)
        print("PASS")
    finally:
        cluster.kill_all()
        if args.keep_traces:
            print(f"traces kept in {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    try:
        main()
    except KeyboardInterrupt:
        die("interrupted", 2)
