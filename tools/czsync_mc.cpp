// czsync_mc — exhaustive bounded model checking of the real protocol
// stack (no forked checker model: the same SyncProcess/RoundSyncProcess
// code czsync_cli runs, driven through enumerated choice vectors).
//
// Exit codes:
//   0  space exhausted, no violation (or --mutation-selftest passed)
//   1  invariant violation found, counterexample replayed byte-identically
//      (or --mutation-selftest failed to catch the mutant)
//   2  usage error, path budget exceeded (NOT an exhaustive pass), or a
//      counterexample that fails to replay deterministically
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "mc/checker.h"
#include "mc/mutation.h"
#include "trace/diff.h"
#include "trace/format.h"

using namespace czsync;

namespace {

constexpr const char* kHelp = R"(czsync_mc [OPTIONS]

Exhaustively explores every combination of discretized message delays,
initial clock biases/rates and adversary break-in/recovery schedules of
a bounded protocol instance, checking the paper's Theorem 5 deviation
envelope and Lemma 7 containment/contraction on every path.

Model:
  --n N              processors (default 3)
  --f F              fault budget / trim depth (default: (n-1)/3)
  --rho R            drift bound (default 1e-4)
  --delta S          delivery bound in seconds (default 0.05)
  --sync-int S       sync interval in seconds (default 60)
  --horizon S        explored real-time window in seconds (default 45)
  --spread S         initial bias spread in seconds (default 0.02)
  --protocol P       sync | round (default sync)

Choice grids:
  --delays K         delay grid points per message in (0, delta] (default 2)
  --biases K         initial-bias grid points per processor (default 2)
  --rates K          drift-rate grid points per processor (default 1)

Adversary enumeration:
  --adversary M      none | silent | smash | lie (default none)
  --adv-starts K     break-in instants: horizon*j/K, j=0..K-1 (default 2)
  --adv-dwells K     recovery instants per start, inside horizon (default 2)
  --adv-scales CSV   strategy magnitudes as multiples of WayOff
                     (default 0.9,1.1 — brackets the escape branch)

Search:
  --max-paths N      abort as incomplete beyond N paths (default 20000000)
  --seed N           RNG stream label, part of the replay identity (default 1)
  --emit FILE        write the counterexample trace as czsync-trace-v1

Self-test:
  --mutation-selftest  flip Figure 1's trim depth to f-1 and assert the
                       checker produces a containment counterexample that
                       replays byte-identically (exit 0 iff it does)
)";

int fail(const std::string& why) {
  std::fprintf(stderr, "czsync_mc: %s\n", why.c_str());
  std::fputs("run `czsync_mc --help` for usage\n", stderr);
  return 2;
}

std::string serialize(const trace::TraceData& data) {
  std::ostringstream os;
  trace::write_trace(os, data);
  return std::move(os).str();
}

void print_stats(const mc::McStats& s) {
  std::printf("paths explored:    %llu\n",
              static_cast<unsigned long long>(s.paths));
  std::printf("transitions:       %llu\n",
              static_cast<unsigned long long>(s.transitions));
  std::printf("distinct states:   %llu\n",
              static_cast<unsigned long long>(s.states));
  std::printf("dedup prune hits:  %llu\n",
              static_cast<unsigned long long>(s.dedup_hits));
  std::printf("rounds completed:  %llu\n",
              static_cast<unsigned long long>(s.rounds_completed));
  std::printf("way-off rounds:    %llu\n",
              static_cast<unsigned long long>(s.way_off_rounds));
  std::printf("responses ok:      %llu\n",
              static_cast<unsigned long long>(s.responses_ok));
  std::printf("estimate timeouts: %llu\n",
              static_cast<unsigned long long>(s.timeouts));
  std::printf("max choice depth:  %zu\n", s.max_depth);
}

void print_violation(const mc::Checker& ck, const mc::Counterexample& cex) {
  const mc::Violation& v = cex.violation;
  std::size_t case_idx = 0;
  if (!cex.choices.empty()) {
    case_idx = static_cast<std::size_t>(cex.choices[0].chosen);
  }
  std::printf("counterexample: %s invariant violated\n",
              mc::violation_kind_name(v.kind));
  std::printf("  case:     %s\n", ck.cases()[case_idx].label.c_str());
  std::printf("  at:       t=%.9f proc=%d\n", v.t, v.proc);
  std::printf("  observed: %.9g  bound: %.9g\n", v.observed, v.bound);
  std::printf("  detail:   %s\n", v.detail.c_str());
  std::printf("  choices (%zu):", cex.choices.size());
  std::size_t shown = 0;
  for (const mc::Choice& c : cex.choices) {
    if (shown++ == 48) {
      std::printf(" ...");
      break;
    }
    std::printf(" %d/%d", c.chosen, c.arity);
  }
  std::printf("\n");
}

/// Replays the counterexample twice through fresh worlds and demands
/// byte-identical czsync-trace-v1 serializations — the differential-
/// replay contract. Returns false (and reports) on any divergence.
bool verify_replay(mc::Checker& ck, const mc::Counterexample& cex,
                   const std::string& emit_path) {
  const trace::TraceData a = ck.capture(cex.choices);
  const trace::TraceData b = ck.capture(cex.choices);
  const std::string bytes_a = serialize(a);
  const std::string bytes_b = serialize(b);
  if (bytes_a != bytes_b) {
    const trace::TraceDiff d = trace::diff_traces(a, b);
    std::fprintf(stderr,
                 "czsync_mc: counterexample replay NOT deterministic "
                 "(diverges at record %llu)\n",
                 static_cast<unsigned long long>(d.first_divergence));
    return false;
  }
  std::printf("replay: byte-identical across two captures (%zu records, "
              "%zu bytes)\n",
              a.records.size(), bytes_a.size());
  if (!emit_path.empty()) {
    trace::write_trace_file(emit_path, a);
    std::printf("counterexample trace written to %s\n", emit_path.c_str());
  }
  return true;
}

int run_explore(const mc::McOptions& opt, const std::string& emit_path) {
  mc::Checker ck(opt);
  std::printf("czsync_mc: n=%d f=%d horizon=%.3fs protocol=%s "
              "delays=%d biases=%d rates=%d cases=%zu\n",
              opt.n, opt.resolved_f(), opt.horizon.sec(),
              opt.protocol.c_str(), opt.delay_choices, opt.bias_choices,
              opt.rate_choices, ck.cases().size());
  const mc::McResult result = ck.run();
  print_stats(result.stats);
  if (result.stats.budget_exhausted) {
    std::fprintf(stderr,
                 "czsync_mc: path budget exceeded — exploration is NOT "
                 "exhaustive, refusing to report a pass\n");
    return 2;
  }
  if (!result.counterexample) {
    std::printf("exhaustive: yes — no violation of envelope/containment/"
                "contraction\n");
    return 0;
  }
  print_violation(ck, *result.counterexample);
  if (!verify_replay(ck, *result.counterexample, emit_path)) return 2;
  return 1;
}

int run_mutation_selftest(const std::string& emit_path) {
  // Pinned scenario: n=4, f=1, one constant-lie adversary breaking in at
  // t=0 (before round 1) and recovering at t=15s, lying by -12 x WayOff.
  // The real Figure 1 trims the liar (m, M are the (f+1)-st order
  // statistics); the f-1 mutant lets the lie through as m, fires the
  // escape branch and yanks every honest clock ~6 s below the honest
  // hull — a Lemma 7 containment violation the checker must find.
  mc::McOptions opt;
  opt.n = 4;
  opt.f = 1;
  opt.horizon = Duration::seconds(30);
  opt.delay_choices = 1;
  opt.bias_choices = 1;
  opt.adversary = mc::McOptions::AdversaryMode::Lie;
  opt.adv_start_choices = 1;
  opt.adv_dwell_choices = 1;
  opt.adv_scales = {-12.0};

  std::printf("czsync_mc: mutation self-test (trim depth f -> f-1)\n");

  mc::Checker control(opt);
  const mc::McResult sane = control.run();
  if (sane.stats.budget_exhausted) {
    return fail("mutation self-test: control run exceeded the path budget");
  }
  if (sane.counterexample) {
    print_violation(control, *sane.counterexample);
    std::fprintf(stderr,
                 "czsync_mc: FAIL — the unmutated protocol violated an "
                 "invariant; the harness is unsound\n");
    return 1;
  }
  std::printf("control: %llu paths, clean (correct trim survives the liar)\n",
              static_cast<unsigned long long>(sane.stats.paths));

  opt.convergence = std::make_shared<const mc::MutatedBhhnConvergence>();
  mc::Checker mutant(opt);
  const mc::McResult broken = mutant.run();
  print_stats(broken.stats);
  if (!broken.counterexample) {
    std::fprintf(stderr,
                 "czsync_mc: FAIL — mutant (trim f-1) survived the search; "
                 "the checker missed an injected bug\n");
    return 1;
  }
  print_violation(mutant, *broken.counterexample);
  if (broken.counterexample->violation.kind !=
      mc::Violation::Kind::Containment) {
    std::fprintf(stderr,
                 "czsync_mc: FAIL — expected a containment counterexample, "
                 "got %s\n",
                 mc::violation_kind_name(broken.counterexample->violation.kind));
    return 1;
  }
  if (!verify_replay(mutant, *broken.counterexample, emit_path)) return 2;
  std::printf("mutation self-test: PASS — checker caught the trim mutant\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  mc::McOptions opt;
  std::string emit_path;
  bool selftest = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto take_value = [&](const char* flag, std::string* out) -> bool {
      if (a == flag) {
        if (i + 1 >= args.size()) {
          std::exit(fail(std::string("missing value for ") + flag));
        }
        *out = args[++i];
        return true;
      }
      const std::string eq = std::string(flag) + "=";
      if (a.rfind(eq, 0) == 0) {
        *out = a.substr(eq.size());
        return true;
      }
      return false;
    };
    std::string value;
    try {
      if (a == "--help" || a == "-h") {
        std::fputs(kHelp, stdout);
        return 0;
      } else if (a == "--mutation-selftest") {
        selftest = true;
      } else if (take_value("--n", &value)) {
        opt.n = std::stoi(value);
      } else if (take_value("--f", &value)) {
        opt.f = std::stoi(value);
      } else if (take_value("--rho", &value)) {
        opt.rho = std::stod(value);
      } else if (take_value("--delta", &value)) {
        opt.delta = Duration::seconds(std::stod(value));
      } else if (take_value("--sync-int", &value)) {
        opt.sync_int = Duration::seconds(std::stod(value));
      } else if (take_value("--horizon", &value)) {
        opt.horizon = Duration::seconds(std::stod(value));
      } else if (take_value("--spread", &value)) {
        opt.initial_spread = Duration::seconds(std::stod(value));
      } else if (take_value("--protocol", &value)) {
        opt.protocol = value;
      } else if (take_value("--delays", &value)) {
        opt.delay_choices = std::stoi(value);
      } else if (take_value("--biases", &value)) {
        opt.bias_choices = std::stoi(value);
      } else if (take_value("--rates", &value)) {
        opt.rate_choices = std::stoi(value);
      } else if (take_value("--adversary", &value)) {
        if (value == "none") {
          opt.adversary = mc::McOptions::AdversaryMode::None;
        } else if (value == "silent") {
          opt.adversary = mc::McOptions::AdversaryMode::Silent;
        } else if (value == "smash") {
          opt.adversary = mc::McOptions::AdversaryMode::Smash;
        } else if (value == "lie") {
          opt.adversary = mc::McOptions::AdversaryMode::Lie;
        } else {
          return fail("unknown adversary mode '" + value + "'");
        }
      } else if (take_value("--adv-starts", &value)) {
        opt.adv_start_choices = std::stoi(value);
      } else if (take_value("--adv-dwells", &value)) {
        opt.adv_dwell_choices = std::stoi(value);
      } else if (take_value("--adv-scales", &value)) {
        opt.adv_scales.clear();
        std::size_t pos = 0;
        while (pos <= value.size()) {
          const std::size_t comma = value.find(',', pos);
          const std::string item = value.substr(
              pos, comma == std::string::npos ? std::string::npos
                                              : comma - pos);
          if (!item.empty()) opt.adv_scales.push_back(std::stod(item));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        if (opt.adv_scales.empty()) {
          return fail("--adv-scales needs at least one value");
        }
      } else if (take_value("--max-paths", &value)) {
        opt.max_paths = std::stoull(value);
      } else if (take_value("--seed", &value)) {
        opt.seed = std::stoull(value);
      } else if (take_value("--emit", &value)) {
        emit_path = value;
      } else {
        return fail("unknown option '" + a + "'");
      }
    } catch (const std::exception&) {
      return fail("bad value '" + value + "' for " + a);
    }
  }

  if (opt.n < 2) return fail("--n must be at least 2");
  if (opt.delay_choices < 1 || opt.bias_choices < 1 || opt.rate_choices < 1) {
    return fail("grid sizes must be at least 1");
  }
  if (opt.protocol != "sync" && opt.protocol != "round") {
    return fail("unknown protocol '" + opt.protocol + "'");
  }

  try {
    if (selftest) return run_mutation_selftest(emit_path);
    return run_explore(opt, emit_path);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
