// czsync_daemon — one real clock-sync processor on localhost UDP.
//
// Runs the unmodified core::SyncProcess behind rt::Daemon: epoll +
// timerfd drive the protocol's alarms at real-time pace, datagrams carry
// the protocol messages, and the run is captured as a standard
// czsync-trace-v1 file (valid on disk at every instant — SIGKILL-safe).
//
// A cluster is N of these processes sharing --epoch-ns (one
// CLOCK_MONOTONIC reading, so all traces live on one tau axis) and a
// --base-port; processor i binds base_port + i. On exit the daemon
// prints a single JSON line of run stats to stdout for the harness.
// tools/czsync_cluster.py launches, schedules adversary faults against,
// and envelope-checks whole clusters.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "rt/clock.h"
#include "rt/daemon.h"

using namespace czsync;

namespace {

constexpr const char* kHelp = R"(czsync_daemon [OPTIONS]

Required:
  --id I              this processor's id, in [0, n)
  --n N               cluster size
  --epoch-ns T        CLOCK_MONOTONIC ns that is tau=0 (0 = read now;
                      a cluster must share ONE value)

Model / protocol:
  --f F               fault budget (default 1)
  --rho R             drift bound (default 1e-4)
  --delta-ms D        delivery bound delta (default 50)
  --sync-int-ms S     SyncInt in ms (default 2000)

This node's perturbation:
  --rate R            hardware clock rate, within [1/(1+rho), 1+rho]
                      (default 1.0)
  --offset-ms O       hardware clock offset at tau=0 (default 0)
  --adj-ms A          initial logical adjustment (default 0; the crash
                      test restarts with this smashed way off)

Run control:
  --duration-s D      stop after D seconds of tau (default 30; 0 = run
                      until SIGTERM/SIGINT)
  --base-port P       cluster port base (default 39000)
  --seed S            RNG seed (default 1)
  --trace FILE        write czsync-trace-v1 capture to FILE
  --loss P            outbound datagram loss probability (default 0)
  --delay-max-ms D    uniform extra outbound delay in [0, D] (default 0)
  --fixed-phase       first round exactly SyncInt after start (default:
                      randomized within [0, SyncInt), like the paper)

Exit: 0 on a clean run, 2 on bad usage or an unrecoverable error.
)";

int fail(const std::string& why) {
  std::fprintf(stderr, "czsync_daemon: %s\n", why.c_str());
  std::fputs("run `czsync_daemon --help` for usage\n", stderr);
  return 2;
}

void print_report(const rt::DaemonConfig& config,
                  const rt::DaemonReport& r) {
  std::printf(
      "{\"id\": %d, \"rounds_completed\": %llu, \"rounds_started\": %llu, "
      "\"way_off_rounds\": %llu, \"responses_ok\": %llu, \"timeouts\": %llu, "
      "\"udp_sent\": %llu, \"udp_received\": %llu, \"shaped_drops\": %llu, "
      "\"eagain_drops\": %llu, \"eintr_retries\": %llu, "
      "\"decode_errors\": %llu, \"auth_drops\": %llu, "
      "\"trace_records\": %llu, \"interrupted\": %s, \"cpu_sec\": %.6f, "
      "\"tau_start\": %.6f, \"tau_end\": %.6f}\n",
      config.id, static_cast<unsigned long long>(r.sync.rounds_completed),
      static_cast<unsigned long long>(r.sync.rounds_started),
      static_cast<unsigned long long>(r.sync.way_off_rounds),
      static_cast<unsigned long long>(r.sync.responses_ok),
      static_cast<unsigned long long>(r.sync.timeouts),
      static_cast<unsigned long long>(r.udp.sent),
      static_cast<unsigned long long>(r.udp.received),
      static_cast<unsigned long long>(r.udp.shaped_drops),
      static_cast<unsigned long long>(r.udp.eagain_drops),
      static_cast<unsigned long long>(r.udp.eintr_retries +
                                      r.loop_eintr_retries),
      static_cast<unsigned long long>(r.udp.decode_errors),
      static_cast<unsigned long long>(r.udp.auth_drops),
      static_cast<unsigned long long>(r.trace_records),
      r.interrupted ? "true" : "false", r.cpu_sec, r.tau_start, r.tau_end);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  rt::DaemonConfig config;
  config.duration = Duration::seconds(30);
  bool have_id = false;
  bool have_n = false;
  bool have_epoch = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      std::fputs(kHelp, stdout);
      return 0;
    }
    if (a == "--fixed-phase") {
      config.random_phase = false;
      continue;
    }
    if (i + 1 >= args.size()) return fail("missing value for " + a);
    const std::string value = args[++i];
    try {
      if (a == "--id") {
        config.id = std::stoi(value);
        have_id = true;
      } else if (a == "--n") {
        config.model.n = std::stoi(value);
        have_n = true;
      } else if (a == "--f") {
        config.model.f = std::stoi(value);
      } else if (a == "--rho") {
        config.model.rho = std::stod(value);
      } else if (a == "--delta-ms") {
        config.model.delta = Duration::millis(std::stod(value));
      } else if (a == "--sync-int-ms") {
        config.sync_int = Duration::millis(std::stod(value));
      } else if (a == "--rate") {
        config.drift_rate = std::stod(value);
      } else if (a == "--offset-ms") {
        config.clock_offset = Duration::millis(std::stod(value));
      } else if (a == "--adj-ms") {
        config.initial_adj = Duration::millis(std::stod(value));
      } else if (a == "--duration-s") {
        config.duration = Duration::seconds(std::stod(value));
      } else if (a == "--base-port") {
        config.base_port = std::stoi(value);
      } else if (a == "--seed") {
        config.seed = std::stoull(value);
      } else if (a == "--trace") {
        config.trace_path = value;
      } else if (a == "--loss") {
        config.shaping.loss = std::stod(value);
      } else if (a == "--delay-max-ms") {
        config.shaping.extra_delay_max = Duration::millis(std::stod(value));
      } else if (a == "--epoch-ns") {
        config.epoch_ns = std::stoll(value);
        have_epoch = true;
      } else {
        return fail("unknown option '" + a + "'");
      }
    } catch (const std::exception&) {
      return fail("bad value '" + value + "' for " + a);
    }
  }

  if (!have_id || !have_n || !have_epoch) {
    return fail("--id, --n and --epoch-ns are required");
  }
  if (config.epoch_ns == 0) config.epoch_ns = rt::Clock::monotonic_ns();

  try {
    rt::Daemon daemon(config);
    const rt::DaemonReport report = daemon.run();
    print_report(config, report);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "czsync_daemon: %s\n", e.what());
    return 2;
  }
}
