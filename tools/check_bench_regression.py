#!/usr/bin/env python3
"""Benchmark regression gate over the czsync_bench RunRecord document.

Runs `czsync_bench --run <id> --json <tmp>` and compares the experiment's
`totals` metrics against the newest BENCH_PERF.json checkpoint that
carries a `runrecord` block for that id:

  * integral counters (events executed, messages sent, rounds, pool
    push/pop, ...) must match the baseline exactly — the simulator is
    deterministic, so any drift is a behaviour change, not noise;
  * floating-point gauges must match to a relative tolerance;
  * `sweep.runs_per_sec` must stay above --min-throughput-ratio of the
    baseline (wall-clock is the only machine-dependent number);
  * sim throughput (`sim.events_executed` / `sweep.wall_seconds`) must
    stay above --min-sim-throughput-ratio of the baseline — czsync_bench
    runs with tracing disabled (null TraceSink), so this catches the
    trace instrumentation's per-event hook cost creeping into the
    untraced hot path;
  * `sim.event_pool.fallback_allocs` must be exactly 0: the pooled event
    queue never falling back to heap allocation is a hard invariant;
  * `scale.*` gauges (stamped by E23) are machine-dependent and excluded
    from the exact compare. Instead every `scale.events_per_sec.*` entry
    must stay above --min-scale-throughput-ratio of its baseline, and
    `scale.rss_per_proc_bytes_n10000` / `..._n100000` must stay under the
    absolute --max-rss-per-proc-bytes ceiling — the memory gate that an
    O(n^2) structure (adjacency matrix, n-sized per-peer tables) trips
    immediately at n = 10^5;
  * `rt.*` gauges (stamped into checkpoints from tools/czsync_cluster.py
    live daemon runs) are wall-clock and OS-scheduling dependent and are
    excluded from the exact compare entirely — the rt_* ctest gates bound
    them directly against the Theorem 5 envelope instead.

Additionally the newest checkpoint carrying a
`message_fanout_items_per_second` table is validated statically:

  * all four fanout widths (8, 16, 32, 64) must be present — a missing
    key is a malformed baseline and exits 2 with a diagnostic naming it;
  * every width must clear --min-fanout-items-per-sec;
  * the curve must stay near-flat within tolerance: no wider fanout may
    run more than --max-fanout-drop slower than any narrower one. The
    batched delivery path itself is width-independent (measured flat
    under a constant-delay model, where trains never interleave), but
    the benchmark's uniform delays make the queue k-way-merge k
    concurrently live trains, which costs one extra heap level per
    doubling of k — an irreducible Theta(log k) for any comparison-based
    queue. The default tolerance (35% across the full 8->64 span, i.e.
    three doublings) allows exactly that merge term plus noise; the
    pre-batching curve fell 39% from fanout=8 to fanout=32 *alone*
    (n^2 live heap entries instead of n) and fails this gate.

Exit code 0 on pass, 1 on regression, 2 on usage/setup errors.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Machine-dependent throughput numbers: gated by ratio, never by equality.
TIMING_KEYS = ("sweep.wall_seconds", "sweep.runs_per_sec")
# Machine-dependent scale gauges (E23): ratio floors / absolute ceilings.
SCALE_PREFIX = "scale."
# Real-runtime gauges (tools/czsync_cluster.py, recorded in BENCH_PERF
# checkpoints): live wall-clock cluster runs whose counters depend on OS
# scheduling, so they are excluded from the exact compare entirely — the
# rt_* ctest gates bound them directly against the Theorem 5 envelope.
RT_PREFIX = "rt."
FLOAT_REL_TOL = 1e-6


def die(msg):
    """Setup/usage error: clear one-line message on stderr, exit 2.

    Never lets a malformed input surface as a traceback — a truncated
    BENCH_PERF.json must read as "fix your baseline", not as a crash in
    the gate itself.
    """
    sys.stderr.write(f"check_bench_regression: error: {msg}\n")
    sys.exit(2)


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        die(f"cannot read {what} {path}: {e.strerror or e}")
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        die(f"{what} {path} is not valid JSON (truncated?): {e}")


def load_baseline(path, run_id):
    doc = load_json(path, "baseline")
    checkpoints = doc.get("checkpoints") if isinstance(doc, dict) else None
    if not isinstance(checkpoints, list):
        die(f"baseline {path} has no 'checkpoints' list")
    for checkpoint in reversed(checkpoints):
        if not isinstance(checkpoint, dict):
            continue
        runrecord = checkpoint.get("runrecord")
        if not isinstance(runrecord, dict):
            continue
        totals = runrecord.get(run_id)
        if isinstance(totals, dict):
            return checkpoint, totals
    die(f"no checkpoint in {path} carries a runrecord for {run_id}")


FANOUT_WIDTHS = ("8", "16", "32", "64")


def load_fanout_curve(path):
    """Newest checkpoint's message_fanout_items_per_second table.

    Returns (label, {width: items_per_sec}). Missing or malformed keys
    are setup errors (exit 2): the baseline itself is broken, which must
    read differently from a performance regression (exit 1).
    """
    doc = load_json(path, "baseline")
    checkpoints = doc.get("checkpoints") if isinstance(doc, dict) else None
    if not isinstance(checkpoints, list):
        die(f"baseline {path} has no 'checkpoints' list")
    for checkpoint in reversed(checkpoints):
        if not isinstance(checkpoint, dict):
            continue
        curve = checkpoint.get("message_fanout_items_per_second")
        if curve is None:
            continue
        label = checkpoint.get("label", "?")
        if not isinstance(curve, dict):
            die(
                f"checkpoint '{label}': message_fanout_items_per_second "
                f"is {type(curve).__name__}, expected an object keyed by "
                "fanout width"
            )
        missing = [w for w in FANOUT_WIDTHS if w not in curve]
        if missing:
            die(
                f"checkpoint '{label}': message_fanout_items_per_second "
                f"missing fanout width(s) {', '.join(missing)} "
                f"(required: {', '.join(FANOUT_WIDTHS)})"
            )
        bad = [
            w
            for w in FANOUT_WIDTHS
            if not isinstance(curve[w], (int, float)) or curve[w] <= 0
        ]
        if bad:
            die(
                f"checkpoint '{label}': message_fanout_items_per_second "
                f"non-numeric/non-positive at width(s) {', '.join(bad)}"
            )
        return label, {w: float(curve[w]) for w in FANOUT_WIDTHS}
    return None, None  # no checkpoint records the curve: nothing to gate


def check_fanout_curve(label, curve, min_items_per_sec, max_drop):
    failures = []
    for width in FANOUT_WIDTHS:
        if curve[width] < min_items_per_sec:
            failures.append(
                f"message_fanout[{width}] = {curve[width]:.3g} items/s, "
                f"below the {min_items_per_sec:.3g} floor"
            )
    # Near-flat: every wider fanout vs every narrower one, so a dip
    # that recovers (8 -> 32 slow, 64 fast again) is still caught.
    for i, narrow in enumerate(FANOUT_WIDTHS):
        for wide in FANOUT_WIDTHS[i + 1 :]:
            ratio = curve[wide] / curve[narrow]
            if ratio < 1.0 - max_drop:
                failures.append(
                    f"message_fanout[{wide}] = {curve[wide]:.3g} items/s "
                    f"is {(1.0 - ratio) * 100:.0f}% below "
                    f"message_fanout[{narrow}] = {curve[narrow]:.3g} "
                    f"(max drop: {max_drop * 100:.0f}%; the fanout curve "
                    "must stay near-flat — see the log-k merge note in "
                    "the module docstring)"
                )
    return failures


def run_bench(bench, run_id, jobs, json_path):
    cmd = [bench, "--run", run_id, "--jobs", str(jobs), "--json", json_path]
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
        )
    except OSError as e:
        die(f"cannot execute {bench}: {e.strerror or e}")
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        die(f"{' '.join(cmd)} exited {proc.returncode}")
    doc = load_json(json_path, "RunRecord document")
    experiments = doc.get("experiments") if isinstance(doc, dict) else None
    if not isinstance(experiments, list):
        die(f"RunRecord document {json_path} has no 'experiments' list")
    for experiment in experiments:
        if isinstance(experiment, dict) and experiment.get("id") == run_id:
            totals = experiment.get("totals")
            if not isinstance(totals, dict):
                die(f"experiment {run_id} carries no 'totals' block")
            return totals
    die(f"RunRecord document has no experiment {run_id}")


def sim_events_per_sec(totals):
    events = totals.get("sim.events_executed")
    wall = totals.get("sweep.wall_seconds")
    if not events or not wall:
        return None
    return events / wall


def compare(baseline, fresh, min_throughput_ratio, min_sim_throughput_ratio):
    failures = []

    fallback = fresh.get("sim.event_pool.fallback_allocs")
    if fallback != 0:
        failures.append(
            f"sim.event_pool.fallback_allocs = {fallback} (must be 0: the "
            "event pool must never fall back to heap allocation)"
        )

    base_rate = baseline.get("sweep.runs_per_sec")
    fresh_rate = fresh.get("sweep.runs_per_sec")
    if base_rate and fresh_rate is not None:
        ratio = fresh_rate / base_rate
        if ratio < min_throughput_ratio:
            failures.append(
                f"sweep.runs_per_sec = {fresh_rate:.2f}, "
                f"{ratio:.2f}x of baseline {base_rate:.2f} "
                f"(floor: {min_throughput_ratio}x)"
            )

    # Tracing-disabled sim throughput: the bench never attaches a
    # TraceSink, so a drop here means the null-sink hot path itself got
    # slower (e.g. the per-event trace hook stopped being a single
    # predictable branch).
    base_eps = sim_events_per_sec(baseline)
    fresh_eps = sim_events_per_sec(fresh)
    if base_eps and fresh_eps is not None:
        ratio = fresh_eps / base_eps
        if ratio < min_sim_throughput_ratio:
            failures.append(
                f"sim events/sec = {fresh_eps:.3g}, "
                f"{ratio:.2f}x of baseline {base_eps:.3g} "
                f"(floor: {min_sim_throughput_ratio}x; tracing disabled)"
            )

    for key, want in sorted(baseline.items()):
        if (key in TIMING_KEYS or key.startswith(SCALE_PREFIX)
                or key.startswith(RT_PREFIX)):
            continue
        got = fresh.get(key)
        if got is None:
            failures.append(f"{key}: missing from fresh RunRecord")
        elif isinstance(want, int) and isinstance(got, int):
            if got != want:
                failures.append(f"{key}: {got} != baseline {want}")
        else:
            scale = max(abs(want), abs(got), 1e-300)
            if abs(got - want) / scale > FLOAT_REL_TOL:
                failures.append(f"{key}: {got!r} !~ baseline {want!r}")

    return failures


# scale.rss_per_proc_bytes_* keys gated by the absolute ceiling. Only the
# large sizes: at n = 10^3 fixed process overhead (binary, allocator
# arenas, gtest/json machinery) dominates and the per-processor quotient
# says nothing about the data structures.
RSS_GATE_KEYS = (
    "scale.rss_per_proc_bytes_n10000",
    "scale.rss_per_proc_bytes_n100000",
)


def check_scale(baseline, fresh, min_ratio, max_rss_per_proc):
    """Gate the machine-dependent scale.* gauges (E23).

    Throughput entries are ratio-floored against the baseline like
    sweep.runs_per_sec; RSS-per-processor gets an *absolute* ceiling —
    the point of the gate is catching an O(n^2) structure creeping back
    in (at n = 10^5 even a bool adjacency matrix alone costs 10^5 bytes
    per processor, ~30x the ceiling), and that bound is a property of
    the code, not the machine.
    """
    failures = []
    for key, want in sorted(baseline.items()):
        if not key.startswith("scale.events_per_sec."):
            continue
        got = fresh.get(key)
        if got is None:
            failures.append(f"{key}: missing from fresh RunRecord")
            continue
        ratio = got / want if want else float("inf")
        if ratio < min_ratio:
            failures.append(
                f"{key} = {got:.3g} events/s, {ratio:.2f}x of baseline "
                f"{want:.3g} (floor: {min_ratio}x)"
            )
    for key in RSS_GATE_KEYS:
        if key not in baseline:
            continue  # baseline predates the RSS gauges: nothing to gate
        got = fresh.get(key)
        if got is None:
            failures.append(f"{key}: missing from fresh RunRecord")
        elif got > max_rss_per_proc:
            failures.append(
                f"{key} = {got:.4g} B/proc, above the absolute "
                f"{max_rss_per_proc:.4g} B ceiling (O(n*degree) memory "
                "violated — look for an n-sized per-processor structure)"
            )
    return failures


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True, help="path to czsync_bench")
    ap.add_argument(
        "--baseline", default=os.path.join(repo, "BENCH_PERF.json")
    )
    ap.add_argument("--run", default="E1", help="experiment id (default E1)")
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.2,
        help="fail when runs/s drops below this fraction of the baseline",
    )
    ap.add_argument(
        "--min-sim-throughput-ratio",
        type=float,
        default=0.2,
        help="fail when untraced sim events/s drops below this fraction "
        "of the baseline",
    )
    ap.add_argument(
        "--min-fanout-items-per-sec",
        type=float,
        default=1e6,
        help="absolute floor for every message_fanout_items_per_second "
        "entry in the newest checkpoint that records the curve",
    )
    ap.add_argument(
        "--max-fanout-drop",
        type=float,
        default=0.35,
        help="maximum fraction a wider fanout may run slower than any "
        "narrower one (default 0.35: the Theta(log k) k-way merge of "
        "concurrently live trains costs ~10%% per fanout doubling; see "
        "module docstring)",
    )
    ap.add_argument(
        "--min-scale-throughput-ratio",
        type=float,
        default=0.2,
        help="fail when any scale.events_per_sec.* entry drops below "
        "this fraction of its baseline",
    )
    ap.add_argument(
        "--max-rss-per-proc-bytes",
        type=float,
        default=16384,
        help="absolute ceiling for scale.rss_per_proc_bytes_n10000/"
        "n100000 (catches O(n^2) memory; machine-independent by design)",
    )
    ap.add_argument(
        "--out", default="", help="keep the fresh RunRecord document here"
    )
    args = ap.parse_args()

    checkpoint, baseline = load_baseline(args.baseline, args.run)
    if args.out:
        json_path = args.out
    else:
        fd, json_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
    try:
        fresh = run_bench(args.bench, args.run, args.jobs, json_path)
    finally:
        if not args.out:
            os.unlink(json_path)

    failures = compare(
        baseline, fresh, args.min_throughput_ratio,
        args.min_sim_throughput_ratio
    )
    failures.extend(
        check_scale(
            baseline, fresh, args.min_scale_throughput_ratio,
            args.max_rss_per_proc_bytes
        )
    )
    label = checkpoint.get("label", "?")

    fanout_label, curve = load_fanout_curve(args.baseline)
    if curve is not None:
        fanout_failures = check_fanout_curve(
            fanout_label, curve, args.min_fanout_items_per_sec,
            args.max_fanout_drop
        )
        if fanout_failures:
            failures.append(
                f"fanout curve (checkpoint '{fanout_label}') violations:"
            )
            failures.extend(f"  {f}" for f in fanout_failures)

    if failures:
        print(f"bench_regression: {args.run} vs checkpoint '{label}': FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    curve_note = (
        f", fanout curve '{fanout_label}' flat within tolerance"
        if curve is not None
        else ""
    )
    print(
        f"bench_regression: {args.run} vs checkpoint '{label}': OK "
        f"({len(baseline)} metrics, "
        f"{fresh.get('sweep.runs_per_sec', 0.0):.1f} runs/s{curve_note})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
