// E1 — Theorem 5(i): synchronization.
//
// For n in {4, 7, 10, 13, 16, 31} at the full fault budget f = (n-1)/3,
// with a mobile clock-smashing adversary sweeping the network, measure
// the maximum deviation among stable processors and compare it with the
// bound gamma = 16 eps + 18 rho T + 4C. The paper proves the bound; the
// experiment shows it holds with a comfortable margin and that the
// steady-state deviation is dominated by the 16 eps term.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {

void register_E1(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E1", "max deviation vs n (Theorem 5 i)",
       "any two processors non-faulty during [tau-Delta, tau] have "
       "|Cp - Cq| <= gamma = 16eps + 18rhoT + 4C",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"n", "f", "gamma bound [ms]", "measured max [ms]",
                          "measured mean [ms]", "p99-ish final [ms]", "margin",
                          "break-ins", "recovered"});

         for (int n : {4, 7, 10, 13, 16, 31}) {
           auto s = wan_scenario(/*seed=*/n);
           s.model.n = n;
           s.model.f = core::ModelParams::max_f(n);
           s.horizon = Duration::hours(8);
           s.schedule = adversary::Schedule::random_mobile(
               n, s.model.f, s.model.delta_period, Duration::minutes(5),
               Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(1000 + n));
           s.strategy = "clock-smash-random";
           s.strategy_scale = Duration::minutes(10);
           const auto r = ctx.run(s, "n=" + std::to_string(n));

           char margin[32];
           std::snprintf(margin, sizeof margin, "%.1fx",
                         r.bounds.max_deviation / r.max_stable_deviation);
           table.row({std::to_string(n), std::to_string(s.model.f),
                      ms(r.bounds.max_deviation), ms(r.max_stable_deviation),
                      ms(r.mean_stable_deviation),
                      ms(Duration::seconds(r.final_stable_deviation)), margin,
                      std::to_string(r.break_ins),
                      r.all_recovered() ? "all" : "NO"});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: measured max well below gamma at every n; the "
             "bound\nis n-independent (it depends on eps, rho, T only), so "
             "rows should be\nflat apart from sampling noise.\n");
       }});
}

}  // namespace czsync::bench
