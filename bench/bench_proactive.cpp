// E10 — the motivating application (§1): proactive security needs
// securely synchronized clocks.
//
// A 7-node proactive secret-sharing service refreshes shares once per
// period Delta, with epochs derived from each node's LOGICAL clock. A
// round-robin mobile adversary (f = 2 per period) captures the current
// share at every break-in and also smashes the victim's clock. The
// secret is lost iff >= f+1 = 3 shares of one epoch are captured.
//   * with BHHN sync: victims recover their clocks, refreshes stay
//     aligned, exposure per epoch stays <= f;
//   * without sync ("none"): smashed clocks fall behind, stale shares
//     survive across periods, and the adversary assembles 3 shares of
//     one epoch — exactly the failure mode the paper's introduction
//     warns about.
#include "experiments.h"

#include <iostream>
#include <memory>
#include <vector>

#include "adversary/schedule.h"
#include "analysis/world.h"
#include "proactive/audit.h"
#include "proactive/refresh.h"
#include "proactive/secret_sharing.h"

namespace czsync::bench {
namespace {

struct Outcome {
  std::uint64_t captures = 0;
  int worst_exposure = 0;
  bool compromised = false;
  std::uint64_t refreshes = 0;
  Duration max_dev;
};

Outcome run(const std::string& convergence, Duration smash, std::uint64_t seed) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.convergence = convergence;
  s.initial_spread = Duration::millis(100);
  s.horizon = Duration::hours(12);
  s.seed = seed;
  s.schedule = adversary::Schedule::round_robin_sweep(
      7, 2, s.model.delta_period, Duration::minutes(10), Duration::minutes(1),
      SimTau(600.0), SimTau(11.0 * 3600.0));
  s.strategy = "clock-smash";
  s.strategy_scale = smash;

  analysis::World world(s);
  proactive::ShareStore store(7, 0xfeedULL);
  proactive::Auditor auditor(store);
  std::vector<std::unique_ptr<proactive::RefreshProcess>> refreshers;
  for (int p = 0; p < 7; ++p) {
    auto& node = world.node(p);
    refreshers.push_back(std::make_unique<proactive::RefreshProcess>(
        node.clock(), world.network(), p, store, s.model.delta_period,
        /*announce=*/false));
    node.app_suspend = [rp = refreshers.back().get()] { rp->suspend(); };
    node.app_resume = [rp = refreshers.back().get()] { rp->resume(); };
  }
  for (const auto& iv : s.schedule.intervals()) {
    world.simulator().schedule_at(
        iv.start, [&auditor, p = iv.proc] { auditor.capture(p); });
  }
  for (auto& rp : refreshers) rp->start();
  world.run();

  Outcome out;
  out.captures = auditor.captures();
  out.worst_exposure = auditor.worst_epoch_exposure();
  out.compromised = auditor.compromised(s.model.f + 1);
  out.refreshes = store.refresh_count();
  out.max_dev = world.observer().max_stable_deviation();
  return out;
}

}  // namespace

void register_E10(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E10", "proactive secret sharing over the clock service (§1)",
       "proactive security assumes synchronized clocks; with the Sync "
       "protocol the mobile adversary never holds f+1 same-epoch "
       "shares, without it the stale shares of stuck clocks leak the "
       "secret",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"clock service", "smash", "captures",
                          "worst epoch exposure", "f+1 = 3 reached",
                          "refreshes", "secret"});
         struct Case {
           const char* label;
           const char* conv;
           Duration smash;
         };
         for (const Case c :
              {Case{"BHHN Sync", "bhhn", Duration::minutes(-130)},
               Case{"BHHN Sync (mild faults)", "bhhn", Duration::minutes(-10)},
               Case{"no sync", "none", Duration::minutes(-130)},
               Case{"no sync (mild faults)", "none", Duration::minutes(-10)}}) {
           // Runs the World directly (it wires in the proactive layer), so
           // the seed-base shift is applied by hand here.
           const Outcome o = run(c.conv, c.smash, 33 + ctx.seed_base());
           char smash_s[32];
           std::snprintf(smash_s, sizeof smash_s, "%+.0f min",
                         c.smash.sec() / 60.0);
           table.row({c.label, smash_s, std::to_string(o.captures),
                      std::to_string(o.worst_exposure),
                      o.compromised ? "YES" : "no",
                      std::to_string(o.refreshes),
                      o.compromised ? "COMPROMISED" : "safe"});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: with BHHN the exposure never exceeds f = 2 "
             "(safe)\neven under -130 min smashes; without synchronization "
             "the -130 min\nsmash freezes victims two epochs back and the "
             "adversary assembles 3\nshares of a single epoch — the secret is "
             "reconstructed. Mild faults\nwithout sync may survive by luck; "
             "the guarantee is gone either way.\n");
       }});
}

}  // namespace czsync::bench
