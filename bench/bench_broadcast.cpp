// E20 — the broadcast-based comparator ([10] family, §1.1).
//
// §1.1 compares the paper's convergence-function design against
// Dolev-Halpern-Simons-Strong-style broadcast algorithms: those need
// only a majority of correct processors and a connected (not complete)
// graph, but pay broadcast overhead, react badly to transient delays,
// and "limit the power of the attacker by assuming it cannot collect too
// many 'bad' signatures (assumption A4)". We implemented a Srikanth-
// Toueg-flavoured authenticated broadcast synchronizer and measure all
// four claims:
//   (a) resilience: at n = 7 the broadcast engine survives f = 3
//       two-faced/silent faults (majority), where the trimming protocol
//       needs n >= 3f+1 and breaks;
//   (b) topology: the broadcast engine synchronizes a ring (connected,
//       degree 2) via relays; the convergence engine cannot;
//   (c) cost: bundle relays make its message bill and its per-round
//       clock steps (discontinuity) larger;
//   (d) A4: a signature-replay adversary drags freshly recovered
//       processors to stale rounds — the artifact-free convergence
//       protocol has nothing to replay.
#include "experiments.h"

#include <algorithm>
#include <iostream>
#include <vector>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

analysis::RunResult run(analysis::ExperimentContext& ctx,
                        const std::string& protocol, int f_actual,
                        analysis::Scenario::TopologyKind topo,
                        const std::string& strategy, std::uint64_t seed) {
  auto s = wan_scenario(seed);
  s.protocol = protocol;
  s.topology = topo;
  s.initial_spread = Duration::millis(100);
  s.horizon = Duration::hours(6);
  s.warmup = Duration::minutes(40);
  if (topo == analysis::Scenario::TopologyKind::Ring) s.model.n = 10;
  const std::string label =
      protocol + " f=" + std::to_string(f_actual) +
      (strategy.empty() ? "" : " " + strategy);
  if (f_actual > 0) {
    // The engines' fault parameters differ by design legitimacy: the
    // trimming protocol cannot legally configure f = 3 at n = 7 (needs
    // n >= 3f+1), so it runs at its maximum f = 2 while 3 processors
    // actually lie; the broadcast engine needs only n > 2f and is
    // configured for the real budget.
    if (protocol == "st-broadcast") {
      s.model.f = f_actual;
    } else {
      s.model.f = std::min(f_actual, core::ModelParams::max_f(s.model.n));
    }
    if (f_actual > core::ModelParams::max_f(s.model.n)) {
      // Static over-a-third attack for the majority row: 3 liars hold
      // for the middle two hours (f-limited for f = 3, not for f = 2).
      std::vector<adversary::ControlInterval> ivs;
      for (net::ProcId p = 0; p < f_actual; ++p)
        ivs.push_back({p, SimTau(3600.0), SimTau(3 * 3600.0)});
      s.schedule = adversary::Schedule(ivs);
      s.strategy = strategy;
      s.strategy_scale = Duration::seconds(30);
      return ctx.run(s, label);
    }
    if (strategy == std::string("sig-replay")) {
      // Interleaved pairs so every first victim of a pair recovers while
      // the second is still controlled and replaying (still f-limited).
      std::vector<adversary::ControlInterval> ivs;
      double t = 1000.0;
      int p = 0;
      while (t + 900.0 < (s.horizon.sec() - 1800.0)) {
        ivs.push_back({p % s.model.n, SimTau(t), SimTau(t + 600.0)});
        ivs.push_back(
            {(p + 3) % s.model.n, SimTau(t + 300.0), SimTau(t + 900.0)});
        t += 900.0 + s.model.delta_period.sec() + 60.0;
        ++p;
      }
      s.schedule = adversary::Schedule(ivs);
    } else {
      s.schedule = adversary::Schedule::random_mobile(
          s.model.n, f_actual, s.model.delta_period, Duration::minutes(5),
          Duration::minutes(20), SimTau(4.5 * 3600.0), Rng(seed + 5));
    }
    s.strategy = strategy;
    s.strategy_scale = Duration::seconds(30);
  }
  return ctx.run(s, label);
}

}  // namespace

void register_E20(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E20", "broadcast-based comparator ([10]/Srikanth-Toueg, §1.1)",
       "broadcast: majority resilience + connectivity-only, but "
       "higher cost, bigger clock steps, and the A4 signature-replay "
       "exposure; convergence: thirds + full mesh, but artifact-free "
       "recovery",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"workload", "engine", "max dev [ms]", "max adj [ms]",
                          "msgs/h/proc", "recovered", "replays accepted"});
         struct Case {
           const char* label;
           int f_actual;
           analysis::Scenario::TopologyKind topo;
           const char* strategy;
         };
         using TK = analysis::Scenario::TopologyKind;
         const Case cases[] = {
             {"fault-free, mesh n=7", 0, TK::FullMesh, ""},
             {"f=2 two-faced (budget)", 2, TK::FullMesh, "two-faced"},
             {"f=3 two-faced (majority)", 3, TK::FullMesh, "two-faced"},
             {"fault-free RING n=10", 0, TK::Ring, ""},
             {"f=2 sig-replay", 2, TK::FullMesh, "sig-replay"},
         };
         for (const auto& c : cases) {
           for (const char* engine : {"sync", "st-broadcast"}) {
             const auto r = run(ctx, engine, c.f_actual, c.topo, c.strategy, 20);
             const double hours = 6.0;
             const double n = c.topo == TK::Ring ? 10.0 : 7.0;
             table.row({c.label, engine, ms(r.max_stable_deviation),
                        ms(r.max_stable_discontinuity),
                        num(static_cast<double>(r.messages_sent) / hours / n),
                        r.recoveries.empty()
                            ? "-"
                            : (r.all_recovered() ? "all" : "NO"),
                        std::to_string(r.replays_accepted)});
           }
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: at the f=2 budget both engines hold. At f=3 "
             "(over\na third, under a half) the trimming engine is "
             "overwhelmed while the\nbroadcast engine stays synchronized — "
             "[10]'s majority advantage. On\nthe ring only the broadcast "
             "engine synchronizes (relays propagate\nhop by hop) — the "
             "connectivity advantage. The prices: per-round\nclock steps "
             "~2delta (vs ~eps), a larger message bill, and the\nsig-replay "
             "row — recovered processors accept stale genuine bundles\n"
             "(replays > 0, recovery degraded), the A4 exposure. The "
             "convergence\nengine ignores the same attacker completely.\n");
       }});
}

}  // namespace czsync::bench
