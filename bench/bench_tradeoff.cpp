// E4 — the K = Delta/T trade-off (Theorem 5 and the remark after it).
//
// Fix Delta = 1 h and sweep the synchronization cadence so K ranges over
// {5 ... 48}. Theorem 5's penalty C = (17 eps + 18 rho T)/2^(K-3) decays
// geometrically in K, so:
//   * the deviation bound gamma approaches 16 eps + 18 rho T;
//   * the logical drift rho~ approaches rho;
// while the message cost grows linearly with K. The table prints the
// theoretical curves next to measured deviation under a full-budget
// mobile adversary.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {

void register_E4(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E4", "deviation/drift penalty vs K = Delta/T (Theorem 5)",
       "C = (17eps + 18rhoT)/2^(K-3): as K grows, gamma -> 16eps + "
       "18rhoT and rho~ -> rho; cost: messages/hour grows with K",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"K", "SyncInt [s]", "C bound [ms]",
                          "gamma bound [ms]", "rho~ bound",
                          "measured max dev [ms]", "msgs/hour/proc"});

         for (int k : {5, 6, 8, 12, 16, 24, 32, 48}) {
           auto s = wan_scenario(4);
           const auto proto = core::ProtocolParams::derive_for_k(s.model, k);
           s.sync_int = proto.sync_int;
           s.horizon = Duration::hours(8);
           s.schedule = adversary::Schedule::random_mobile(
               s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
               Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(40 + k));
           s.strategy = "clock-smash-random";
           s.strategy_scale = Duration::minutes(2);
           const auto r = ctx.run(s, "K=" + std::to_string(k));

           const double hours = s.horizon.sec() / 3600.0;
           const double msgs_per_hour =
               static_cast<double>(r.messages_sent) / hours / s.model.n;
           table.row({std::to_string(r.bounds.K), num(s.sync_int.sec()),
                      ms(r.bounds.C), ms(r.bounds.max_deviation),
                      num(r.bounds.logical_drift), ms(r.max_stable_deviation),
                      num(msgs_per_hour)});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: the C column halves (at least) per +1 of K and "
             "is\nnegligible by K ~ 15; gamma flattens at 16eps + 18rhoT; "
             "measured\ndeviation stays below gamma everywhere and shrinks "
             "slightly with K\n(more frequent Syncs); message cost is the "
             "price of large K.\n");
       }});
}

}  // namespace czsync::bench
