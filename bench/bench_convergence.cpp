// E2 — Lemma 7(ii) / Figure 3: envelope contraction.
//
// Start all clocks spread over +/- D0/2 with no faults and trace the
// bias spread over time. Lemma 7 predicts the spread contracts by about
// 7/8 per interval T (plus a 2 eps floor); we print the spread series
// and the fitted per-T contraction ratio until it hits the noise floor.
#include "experiments.h"

#include <cmath>
#include <iostream>
#include <vector>

namespace czsync::bench {

void register_E2(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E2", "bias-envelope contraction (Lemma 7 ii, Figure 3)",
       "over one interval T the good-processor envelope shrinks "
       "2D -> 7D/4 + 2eps (ratio ~7/8 until the eps floor)",
       [](analysis::ExperimentContext& ctx) {
         auto s = wan_scenario(2);
         // D0 just inside WayOff (~0.96 s): every round takes the normal
         // branch, so the series shows the pure Lemma-7 contraction. (The
         // escape branch for spreads beyond WayOff is exercised by E3.)
         s.initial_spread = Duration::millis(800);
         s.horizon = Duration::hours(2);
         s.warmup = Duration::zero();
         s.sample_period = Duration::seconds(15);
         s.record_series = true;
         const auto r = ctx.run(s);

         const double T = r.bounds.T.sec();
         TextTable table({"t/T", "spread [ms]", "ratio vs prev T"});
         double prev = -1.0;
         std::vector<double> ratios;
         for (std::size_t k = 0;; ++k) {
           const double target = static_cast<double>(k) * T;
           const analysis::Sample* pick = nullptr;
           for (const auto& smp : r.series) {
             if (smp.t.raw() >= target) {
               pick = &smp;
               break;
             }
           }
           if (!pick) break;
           const double spread = pick->stable_deviation;
           std::string ratio = "-";
           if (prev > 0 && spread > 0) {
             const double rr = spread / prev;
             char buf[32];
             std::snprintf(buf, sizeof buf, "%.3f", rr);
             ratio = buf;
             if (spread > 4 * r.bounds.epsilon.sec()) ratios.push_back(rr);
           }
           char tt[16];
           std::snprintf(tt, sizeof tt, "%zu", k);
           table.row({tt, ms(Duration::seconds(spread)), ratio});
           prev = spread;
           if (k >= 20) break;
         }
         table.print(std::cout);

         double geo = 0.0;
         for (double rr : ratios) geo += std::log(rr);
         if (!ratios.empty()) {
           geo = std::exp(geo / static_cast<double>(ratios.size()));
         }
         std::printf(
             "\nGeometric-mean contraction per T above the eps floor: %.3f\n"
             "Paper's proven ratio: 7/8 = 0.875 (ours is typically faster "
             "because\nthe proof is worst-case); floor ~ a few eps = %s ms.\n",
             geo, ms(r.bounds.epsilon).c_str());
       }});
}

}  // namespace czsync::bench
