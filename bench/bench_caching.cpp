// E19 — the §3.1 cached-estimation caveat, demonstrated.
//
// "To reduce network load it may be possible to ... perform [clock
// queries] in a different thread which will spread them across a time
// interval. ... we cannot guarantee the conditions of Definition 4
// anymore, since the separate thread may return an old cached value
// which was measured before the call ... the analysis in this paper
// cannot be applied 'right out of the box'."
//
// We implemented exactly that naive variant (background pinger, sync()
// consumes cached estimates with no staleness compensation) and measure
// where it breaks:
//   * steady state: mild degradation (stale by <= cache age of drift and
//     of our own last adjustment);
//   * recovery: catastrophic — after the WayOff jump the cache still
//     says "you are an hour off", so the clock overshoots and oscillates
//     until the cache refreshes; with a cache older than SyncInt the
//     victim can bounce for many rounds.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

analysis::RunResult run(analysis::ExperimentContext& ctx, bool cached,
                        Duration refresh, bool recovery_case, std::uint64_t seed) {
  auto s = wan_scenario(seed);
  s.cached_estimation = cached;
  s.cache_refresh = refresh;
  s.initial_spread = Duration::millis(50);
  if (recovery_case) {
    s.horizon = Duration::hours(3);
    s.warmup = Duration::zero();
    s.sample_period = Duration::seconds(5);
    s.schedule =
        adversary::Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
    s.strategy = "clock-smash";
    s.strategy_scale = Duration::minutes(10);
  } else {
    s.horizon = Duration::hours(6);
    s.warmup = Duration::hours(1);
  }
  return ctx.run(s, std::string(cached ? "cached " : "fresh ") +
                        (recovery_case ? "recovery" : "steady"));
}

}  // namespace

void register_E19(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E19", "cached estimation breaks Definition 4 (§3.1 caveat)",
       "a background estimation thread returning cached values "
       "invalidates the analysis — mildly in steady state, "
       "catastrophically during recovery",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"estimation", "steady dev [ms]", "recovery [s]",
                          "way-off jumps", "recovered"});
         struct Case {
           const char* label;
           bool cached;
           Duration refresh;
         };
         for (const Case c :
              {Case{"fresh (the paper)", false, Duration::seconds(1)},
               Case{"cached, refresh 10 s", true, Duration::seconds(10)},
               Case{"cached, refresh 30 s", true, Duration::seconds(30)},
               Case{"cached, refresh 150 s", true, Duration::seconds(150)},
               Case{"cached, refresh 300 s", true, Duration::seconds(300)}}) {
           const auto steady = run(ctx, c.cached, c.refresh, false, 19);
           const auto recov = run(ctx, c.cached, c.refresh, true, 19);
           // Each oscillation bounce is a WayOff-branch jump: with fresh
           // estimates the recovery takes exactly one; every extra one is a
           // stale-cache re-application.
           table.row({c.label, ms(steady.max_stable_deviation),
                      recov.all_recovered() ? secs(recov.max_recovery_time())
                                            : "never",
                      std::to_string(recov.way_off_rounds),
                      recov.all_recovered() ? "yes" : "NO"});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: steady-state deviation degrades gradually "
             "with the\ncache age (the cached d is stale by up to refresh of "
             "drift plus the\nnode's own adjustments since measurement). "
             "Recovery is where Def. 4\nreally matters: with fresh estimates "
             "the WayOff jump lands exactly\nonce (way-off = 1). Once the "
             "refresh period exceeds SyncInt, syncs\nconsume estimates "
             "measured before the previous jump and re-apply\nthem: the "
             "victim bounces back out of the pack (way-off = 3, 6...).\nThe "
             "recovery column shows only the FIRST re-entry — the extra\n"
             "way-off jumps are the oscillation the paper's caveat predicts; "
             "this\nis why Definition 4's freshness is a real requirement and "
             "not a\ntechnicality.\n");
       }});
}

}  // namespace czsync::bench
