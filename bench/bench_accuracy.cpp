// E5 — Theorem 5(ii): accuracy (logical drift rho~ and discontinuity psi).
//
// Long fault-free-after-warmup runs under wander drift and a mobile
// adversary; we measure (a) the largest single clock adjustment of a
// stable processor (vs psi = eps + C/2) and (b) the worst logical-clock
// rate over >= 150 s stable windows (vs rho~ + psi/window). The paper's
// accuracy requirement is exactly this two-part envelope (Eq. 3).
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {

void register_E5(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E5", "accuracy — logical drift and discontinuity (Theorem 5 ii)",
       "Cp advances at rate within (1+rho~)^{+-1} of real time up to "
       "discontinuity psi = eps + C/2 per Sync",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"scenario", "psi bound [ms]", "max adjustment [ms]",
                          "rho~ bound", "rate allowance (150s win)",
                          "measured rate excess"});

         struct Case {
           const char* name;
           bool wander;
           bool adversary;
         };
         for (const Case c :
              {Case{"constant drift, no faults", false, false},
               Case{"wander drift, no faults", true, false},
               Case{"wander drift, mobile smash", true, true}}) {
           auto s = wan_scenario(5);
           s.initial_spread = Duration::millis(20);
           s.horizon = Duration::hours(10);
           s.warmup = Duration::hours(1);
           if (c.wander) {
             s.drift = analysis::Scenario::DriftKind::Wander;
             s.wander_interval = Duration::minutes(2);
           }
           if (c.adversary) {
             s.schedule = adversary::Schedule::random_mobile(
                 s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
                 Duration::minutes(20), SimTau(8.5 * 3600.0), Rng(55));
             s.strategy = "clock-smash-random";
             s.strategy_scale = Duration::seconds(30);
           }
           const auto r = ctx.run(s, c.name);

           // The observer measures rates over windows >= 150 s; a single psi
           // jump inside such a window adds psi/150 to the apparent rate.
           const double window = 150.0;
           const double allowance =
               r.bounds.logical_drift + r.bounds.discontinuity.sec() / window;
           table.row({c.name, ms(r.bounds.discontinuity),
                      ms(r.max_stable_discontinuity),
                      num(r.bounds.logical_drift), num(allowance),
                      num(r.max_rate_excess)});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: max adjustment <= ~psi (the steady-state "
             "correction\nper Sync is one reading error plus drift); measured "
             "rate excess below\nthe rho~ + psi/window allowance. With K = 59 "
             "the C/2T penalty in\nrho~ is ~0, i.e. the logical drift is the "
             "hardware drift, matching\nthe paper's claim that the penalty "
             "vanishes as T << Delta.\n");
       }});
}

}  // namespace czsync::bench
