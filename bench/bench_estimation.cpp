// E11 — the clock-estimation procedure (§3.1, Definition 4).
//
// Directly exercises the ping estimator between two live nodes under
// every delay model: distribution of the reported error bound a (must be
// <= eps = delta(1+rho)) and of the true estimation error |d - true
// offset| (must be <= a). Also reproduces the §3.1 remark that repeating
// the ping and keeping the smallest round trip shrinks the error.
#include "experiments.h"

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/estimate.h"
#include "core/params.h"
#include "net/delay_model.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace czsync::bench {
namespace {

struct PingStats {
  Series err;        // |d - true offset|
  Series bound;      // a
  std::size_t violations = 0;  // err > a (must be 0)
};

/// Simulates `rounds` ping exchanges through a delay model, with the
/// responder's clock offset by `true_offset` and both clocks drifting.
PingStats measure(const net::DelayModel& dm, int rounds, int best_of_k,
                  std::uint64_t seed) {
  sim::Simulator sim;
  const double rho = 1e-4;
  clk::HardwareClock hw_p(sim, clk::make_constant_drift(rho), Rng(seed));
  clk::HardwareClock hw_q(sim, clk::make_constant_drift(rho), Rng(seed + 1),
                          HwTime(3.0));  // true offset ~3 s
  clk::LogicalClock cp(hw_p), cq(hw_q);
  Rng rng(seed + 2);

  PingStats out;
  for (int i = 0; i < rounds; ++i) {
    core::Estimate best = core::Estimate::timeout();
    for (int k = 0; k < best_of_k; ++k) {
      const LogicalTime s_local = cp.read();
      const Duration fwd = dm.sample(rng, 0, 1);
      sim.run_until(sim.now() + fwd);
      const LogicalTime c_remote = cq.read();
      const Duration back = dm.sample(rng, 1, 0);
      sim.run_until(sim.now() + back);
      const LogicalTime r_local = cp.read();
      const auto e = core::estimate_from_ping(s_local, c_remote, r_local);
      if (e.a < best.a) best = e;
    }
    const double truth = cq.read().raw() - cp.read().raw();
    const double err = std::abs(best.d.sec() - truth);
    out.err.add(err * 1e3);
    out.bound.add(best.a.sec() * 1e3);
    if (err > best.a.sec() + 1e-9) ++out.violations;
    sim.run_until(sim.now() + Duration::seconds(rng.uniform(0.5, 2.0)));
  }
  return out;
}

}  // namespace

void register_E11(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E11", "clock-estimation error (§3.1, Definition 4)",
       "the ping estimator returns (d, a) with the true offset in "
       "[d-a, d+a] and a <= eps = delta(1+rho); best-of-k pings "
       "shrink the error at the cost of timeliness",
       [](analysis::ExperimentContext& ctx) {
         const Duration delta = Duration::millis(50);
         const Duration eps = core::reading_error_bound(1e-4, delta);
         std::printf("delta = %s ms, eps = %s ms\n\n", ms(delta).c_str(),
                     ms(eps).c_str());

         struct Model {
           const char* name;
           std::unique_ptr<net::DelayModel> dm;
         };
         std::vector<Model> models;
         models.push_back({"fixed (symmetric)", net::make_fixed_delay(delta)});
         models.push_back(
             {"uniform", net::make_uniform_delay(delta, delta * 0.1)});
         models.push_back(
             {"asymmetric 9:1", net::make_asymmetric_delay(delta)});
         models.push_back({"jitter (exp tail)",
                           net::make_jitter_delay(delta, delta * 0.15,
                                                  delta * 0.2)});

         TextTable table({"delay model", "k", "mean err [ms]", "p99 err [ms]",
                          "mean a [ms]", "max a [ms]", "a <= eps",
                          "violations"});
         for (auto& m : models) {
           for (int k : {1, 3, 8}) {
             // Drives the Simulator directly, so the seed-base shift is
             // applied by hand here.
             const auto st = measure(*m.dm, 2000, k, 11 + ctx.seed_base());
             table.row({m.name, std::to_string(k), num(st.err.mean()),
                        num(st.err.quantile(0.99)), num(st.bound.mean()),
                        num(st.bound.max()),
                        st.bound.max() <= eps.ms() + 1e-9 ? "yes" : "NO",
                        std::to_string(st.violations)});
           }
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: zero Def.-4 violations everywhere and max a "
             "<= eps.\nSymmetric fixed delays estimate near-perfectly; the "
             "asymmetric model\npushes the true error toward a (the estimator "
             "cannot tell which leg\nwas slow); best-of-k with the jittered "
             "model approaches the fixed-\ndelay error because short round "
             "trips dominate, the NTP trick.\n");
       }});
}

}  // namespace czsync::bench
