// Shared declarations for the experiment registrations (E1..E22).
//
// Each bench_*.cpp contributes one register_EXX(ExperimentRegistry&)
// function; czsync_bench calls register_all_experiments() and hands the
// registry to analysis::run_harness. Registration is via explicit
// functions, not static initializers — experiments live in a static
// library and the linker would happily drop a TU whose only purpose is a
// global constructor.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/registry.h"
#include "util/csv.h"
#include "util/table.h"

namespace czsync::bench {

/// Canonical WAN model used across experiments unless a sweep overrides
/// it: delta = 50 ms, rho = 1e-4 (stress value), Delta = 1 h, SyncInt =
/// 60 s => T ~ 60.2 s, K = 59, gamma ~ 0.91 s.
inline analysis::Scenario wan_scenario(std::uint64_t seed = 1) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::hours(6);
  s.warmup = Duration::minutes(30);
  s.sample_period = Duration::seconds(15);
  s.seed = seed;
  return s;
}

inline std::string ms(Duration d) {
  if (!d.is_finite()) return d > Duration::zero() ? "inf" : "-inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", d.ms());
  return buf;
}

inline std::string secs(Duration d) {
  if (!d.is_finite()) return "never";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f", d.sec());
  return buf;
}

inline std::string num(double v) { return fmt_num(v); }

// One registration per experiment file, invoked by register_all.cpp.
void register_E1(analysis::ExperimentRegistry& reg);   // bench_deviation
void register_E2(analysis::ExperimentRegistry& reg);   // bench_convergence
void register_E3(analysis::ExperimentRegistry& reg);   // bench_recovery
void register_E4(analysis::ExperimentRegistry& reg);   // bench_tradeoff
void register_E5(analysis::ExperimentRegistry& reg);   // bench_accuracy
void register_E6(analysis::ExperimentRegistry& reg);   // bench_adversary
void register_E7(analysis::ExperimentRegistry& reg);   // bench_twocliques
void register_E8(analysis::ExperimentRegistry& reg);   // bench_baselines
void register_E9(analysis::ExperimentRegistry& reg);   // bench_breakdown
void register_E10(analysis::ExperimentRegistry& reg);  // bench_proactive
void register_E11(analysis::ExperimentRegistry& reg);  // bench_estimation
void register_E12(analysis::ExperimentRegistry& reg);  // bench_perf pointer
void register_E13(analysis::ExperimentRegistry& reg);  // bench_discipline
void register_E14(analysis::ExperimentRegistry& reg);  // bench_linkfaults
void register_E15(analysis::ExperimentRegistry& reg);  // bench_stabilization
void register_E16(analysis::ExperimentRegistry& reg);  // bench_connectivity
void register_E17(analysis::ExperimentRegistry& reg);  // bench_rounds
void register_E18(analysis::ExperimentRegistry& reg);  // bench_seeds
void register_E19(analysis::ExperimentRegistry& reg);  // bench_caching
void register_E20(analysis::ExperimentRegistry& reg);  // bench_broadcast
void register_E21(analysis::ExperimentRegistry& reg);  // bench_wayoff
void register_E22(analysis::ExperimentRegistry& reg);  // bench_sweep_scaling
void register_E23(analysis::ExperimentRegistry& reg);  // bench_scale

/// Registers E1..E23 in order.
void register_all_experiments(analysis::ExperimentRegistry& reg);

}  // namespace czsync::bench
