// E13 — rate-discipline ablation (§5 future directions).
//
// The paper: "practical protocols such as [NTP] involve many mechanisms
// which may provide better results in typical cases, such as feedback to
// estimate and compensate for clock drift. Such improvements may be
// needed to our protocol (while making sure to retain security!)".
//
// We run the Sync protocol with and without the RateDiscipline extension
// across drift magnitudes and under attack. Expected: at large rho the
// discipline removes the predictable drift between Syncs and cuts the
// steady-state deviation; under a full Byzantine mobile attack it must
// not create a new attack surface (its input is the already-trimmed
// convergence output, and its authority is clamped to rho).
#include "experiments.h"

#include <algorithm>
#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

analysis::RunResult run(analysis::ExperimentContext& ctx, double rho,
                        bool discipline, bool attack, std::uint64_t seed) {
  auto s = wan_scenario(seed);
  s.model.rho = rho;
  s.rate_discipline = discipline;
  s.initial_spread = Duration::millis(20);
  s.horizon = Duration::hours(8);
  s.warmup = Duration::hours(1);
  if (attack) {
    s.schedule = adversary::Schedule::random_mobile(
        s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
        Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(seed + 131));
    s.strategy = "max-pull";
  }
  return ctx.run(s, "rho=" + num(rho) +
                        (discipline ? " disciplined" : " raw") +
                        (attack ? " attacked" : ""));
}

}  // namespace

void register_E13(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E13", "rate-discipline ablation (§5 'compensate for drift')",
       "frequency feedback shrinks typical-case deviation without "
       "giving the Byzantine adversary a new lever (authority capped "
       "at rho)",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"rho", "attack", "deviation OFF [ms]",
                          "deviation ON [ms]", "improvement",
                          "ON rate excess", "ON recovered"});
         for (double rho : {1e-6, 1e-5, 1e-4, 1e-3}) {
           for (bool attack : {false, true}) {
             const auto off = run(ctx, rho, false, attack, 13);
             const auto on = run(ctx, rho, true, attack, 13);
             char imp[32];
             std::snprintf(imp, sizeof imp, "%.2fx",
                           off.max_stable_deviation /
                               std::max(on.max_stable_deviation,
                                        Duration::micros(1)));
             table.row({num(rho), attack ? "max-pull" : "-",
                        ms(off.max_stable_deviation),
                        ms(on.max_stable_deviation), imp,
                        num(on.max_rate_excess),
                        on.all_recovered() ? "all" : "NO"});
           }
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: at rho <= 1e-5 the reading error dominates "
             "and the\ndiscipline changes little; at rho = 1e-3 the drift "
             "accumulated over\none SyncInt (~60 ms) is the dominant term and "
             "the discipline wins\nclearly. The attack columns show no "
             "degradation vs. fault-free ON\nrows: the estimator only "
             "consumes trimmed data and its slew rate is\nclamped to rho, so "
             "Theorem 5 still applies (with rho' <= 2 rho).\n");
       }});
}

}  // namespace czsync::bench
