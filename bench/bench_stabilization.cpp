// E15 — arbitrary initial states (§5 self-stabilization question).
//
// "An alternative way of asking the same question is what happens when
// the adversary is limited, but the initial clock values of the
// processors are arbitrary." The paper leaves this open ("it is not
// clear if our algorithm is self stabilizing"). We probe it empirically:
// start ALL clocks at arbitrary offsets (spread swept 1 s ... 10^6 s)
// and measure the time until the ensemble first satisfies the gamma
// deviation bound, with and without a concurrent mobile adversary.
//
// Mechanism to watch: with everyone mutually beyond WayOff, every node's
// step-10 test fails and each jumps to the midrange of its *trimmed*
// view — a contraction of the global spread by ~2x per round, i.e.
// convergence in O(log(spread/gamma)) Syncs from ANY initial state.
// That is evidence for (not a proof of) self-stabilization.
#include "experiments.h"

#include <cmath>
#include <iostream>
#include <vector>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

/// First sample time at which the stable deviation drops below gamma and
/// stays below it to the end of the run.
Duration settle_time(const analysis::RunResult& r) {
  const double gamma = r.bounds.max_deviation.sec();
  double settled_at = -1.0;
  for (const auto& s : r.series) {
    if (s.stable_deviation <= gamma) {
      if (settled_at < 0) settled_at = s.t.raw();
    } else {
      settled_at = -1.0;
    }
  }
  return settled_at < 0 ? Duration::infinity() : Duration::seconds(settled_at);
}

}  // namespace

void register_E15(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E15", "arbitrary initial clocks (§5 self-stabilization probe)",
       "open question in the paper; measured: convergence in "
       "O(log(spread)) Sync rounds from any initial state",
       [](analysis::ExperimentContext& ctx) {
         // The (spread, attack) grid is 10 independent runs — fan them out
         // and read the results back in grid order.
         const std::vector<double> spreads = {1.0, 60.0, 3600.0, 86400.0, 1e6};
         std::vector<analysis::Scenario> scenarios;
         for (double spread_s : spreads) {
           for (int attack = 0; attack < 2; ++attack) {
             auto s = wan_scenario(16);
             s.initial_spread = Duration::seconds(spread_s);
             s.horizon = Duration::hours(6);
             s.warmup = Duration::zero();
             s.sample_period = Duration::seconds(15);
             s.record_series = true;
             if (attack) {
               s.schedule = adversary::Schedule::random_mobile(
                   s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
                   Duration::minutes(20), SimTau(4.5 * 3600.0), Rng(161));
               s.strategy = "two-faced";
               s.strategy_scale = Duration::seconds(30);
             }
             scenarios.push_back(std::move(s));
           }
         }
         const auto batch = ctx.run_parallel(scenarios, "spread-grid");
         const auto& results = batch.results;

         TextTable table({"initial spread", "settle (no faults)",
                          "settle (mobile two-faced)", "rounds to settle",
                          "log2(spread/gamma)"});
         for (std::size_t row = 0; row < spreads.size(); ++row) {
           const double spread_s = spreads[row];
           const Duration settle_plain = settle_time(results[2 * row]);
           const Duration settle_attack = settle_time(results[2 * row + 1]);
           const Duration sync_int = scenarios[2 * row].sync_int;
           const std::uint64_t rounds_needed =
               settle_plain.is_finite()
                   ? static_cast<std::uint64_t>(
                         std::ceil(settle_plain.sec() / sync_int.sec()))
                   : 0;
           const double gamma =
               core::TheoremBounds::compute(
                   wan_scenario().model,
                   core::ProtocolParams::derive(wan_scenario().model,
                                                Duration::minutes(1)))
                   .max_deviation.sec();
           char logr[32];
           std::snprintf(logr, sizeof logr, "%.1f",
                         std::log2(spread_s / gamma));
           char sp[32];
           std::snprintf(sp, sizeof sp, "%g s", spread_s);
           table.row({sp, secs(settle_plain), secs(settle_attack),
                      std::to_string(rounds_needed), logr});
         }
         table.print(std::cout);
         analysis::ExperimentContext::print_sweep_perf(
             "\nruns", static_cast<int>(results.size()), batch.wall_seconds,
             ctx.jobs());

         std::printf(
             "\nExpected shape: settle time grows logarithmically in the "
             "initial\nspread (rounds ~ log2(spread/gamma) plus a constant), "
             "and the mobile\ntwo-faced adversary adds little — empirical "
             "support for extending\nthe protocol's guarantee to arbitrary "
             "initial states, the open\nproblem the paper poses next to "
             "[11, 12].\n");
       }});
}

}  // namespace czsync::bench
