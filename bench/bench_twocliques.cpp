// E7 — Section 5 counterexample: (3f+1)-connectivity is not enough.
//
// Two (3f+1)-cliques joined by a perfect matching (vertex connectivity
// exactly 3f+1), clique A pinned to the fastest legal rate and clique B
// to the slowest — with ZERO faults. Because each node's single cross-
// clique estimate is always trimmed by the (f+1)-st order statistic, the
// cliques free-run apart at ~2rho/(1+rho) per unit time, while a full
// mesh with the identical drift pattern stays synchronized.
#include "experiments.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "net/topology.h"

namespace czsync::bench {
namespace {

struct CliqueTrace {
  std::vector<double> t_hours;
  std::vector<double> intra_ms;  // worst intra-clique spread
  std::vector<double> inter_ms;  // gap between clique hulls
};

CliqueTrace run(analysis::ExperimentContext& ctx, int f,
                analysis::Scenario::TopologyKind topo) {
  analysis::Scenario s;
  s.model.n = 6 * f + 2;
  s.model.f = f;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.topology = topo;
  s.drift = analysis::Scenario::DriftKind::OpposedHalves;
  s.initial_spread = Duration::zero();
  s.horizon = Duration::hours(6);
  s.warmup = Duration::zero();
  s.sample_period = Duration::minutes(1);
  s.record_series = true;
  s.seed = 7;
  const auto r = ctx.run(
      s, topo == analysis::Scenario::TopologyKind::TwoCliques ? "two-cliques"
                                                              : "full-mesh");

  CliqueTrace out;
  const int half = s.model.n / 2;
  for (const auto& smp : r.series) {
    const double th = smp.t.raw() / 3600.0;
    if (std::fmod(th, 1.0) > 1e-9) continue;  // hourly rows
    double a_lo = 1e18, a_hi = -1e18, b_lo = 1e18, b_hi = -1e18;
    for (int p = 0; p < half; ++p) {
      a_lo = std::min(a_lo, smp.bias[static_cast<std::size_t>(p)]);
      a_hi = std::max(a_hi, smp.bias[static_cast<std::size_t>(p)]);
    }
    for (int p = half; p < s.model.n; ++p) {
      b_lo = std::min(b_lo, smp.bias[static_cast<std::size_t>(p)]);
      b_hi = std::max(b_hi, smp.bias[static_cast<std::size_t>(p)]);
    }
    out.t_hours.push_back(th);
    out.intra_ms.push_back(std::max(a_hi - a_lo, b_hi - b_lo) * 1e3);
    // Signed hull gap (positive once the cliques separate).
    out.inter_ms.push_back((a_lo > b_hi ? a_lo - b_hi : b_lo - a_hi) * 1e3);
  }
  return out;
}

}  // namespace

void register_E7(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E7", "two-cliques counterexample (Section 5)",
       "a (3f+1)-connected graph of two cliques + matching defeats "
       "the protocol: the cliques' clocks drift apart with no faults "
       "at all, while a full mesh stays synchronized",
       [](analysis::ExperimentContext& ctx) {
         const int f = 1;
         const auto kappa =
             net::Topology::two_cliques(f).vertex_connectivity();
         std::printf(
             "graph: 2 x K_%d + matching, n = %d, vertex connectivity = %d "
             "(= 3f+1 = %d)\n\n",
             3 * f + 1, 6 * f + 2, kappa, 3 * f + 1);

         const auto cliques =
             run(ctx, f, analysis::Scenario::TopologyKind::TwoCliques);
         const auto mesh =
             run(ctx, f, analysis::Scenario::TopologyKind::FullMesh);

         TextTable table({"t [h]", "two-cliques intra [ms]",
                          "two-cliques gap [ms]",
                          "full-mesh spread(all) [ms]"});
         for (std::size_t i = 0; i < cliques.t_hours.size(); ++i) {
           // For the mesh control, intra(ms) over halves still measures hull
           // spread; its "gap" stays negative (hulls overlap) — print overall
           // spread instead.
           const double mesh_spread =
               i < mesh.intra_ms.size()
                   ? std::max(mesh.intra_ms[i],
                              std::max(0.0, mesh.inter_ms[i]))
                   : 0.0;
           table.row({num(cliques.t_hours[i]), num(cliques.intra_ms[i]),
                      num(cliques.inter_ms[i]), num(mesh_spread)});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: intra-clique spread ~0 ms throughout; the "
             "inter-\nclique gap grows linearly at ~2*rho*3600s/h = %.0f ms/h "
             "and dwarfs\ngamma within the first hour; the full-mesh control "
             "stays bounded.\n",
             2 * 1e-4 * 3600 * 1e3 / (1 + 1e-4));
       }});
}

}  // namespace czsync::bench
