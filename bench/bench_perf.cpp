// E12 — engineering benchmarks (google-benchmark).
//
// Simulator throughput, clock-stack overhead, and the end-to-end cost of
// simulating one hour of protocol time as n grows (message complexity is
// O(n^2) per SyncInt across the network).
//
// The headline numbers (items/s of the churn benchmarks, wall time of
// BM_SimulatedHour/16) are tracked across PRs in BENCH_PERF.json at the
// repository root; when the simulator hot path changes, re-run this
// binary and append a checkpoint there. Event-pool counters (inline vs.
// fallback action storage, cancellations, stale skips) are exported as
// benchmark counters so a pooling regression is visible in the output,
// not just in the timings.
#include <benchmark/benchmark.h>

#include "analysis/experiment.h"
#include "analysis/sweep.h"
#include "clock/hardware_clock.h"
#include "core/convergence.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace czsync;

namespace {

// Self-rescheduling chain: the closure-free scheduling idiom the network
// layer uses (a typed event constructed directly in a pool slot). 24
// bytes — always inline, so steady-state churn performs no allocations.
struct ChainEvent {
  sim::Simulator* sim;
  long* count;
  long limit;
  void operator()() const {
    if (++*count < limit) sim->schedule_after(Duration::millis(1), *this);
  }
};

void BM_EventQueueChurn(benchmark::State& state) {
  std::uint64_t inline_actions = 0, fallback_allocs = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    long n = 0;
    sim.schedule_after(Duration::millis(1), ChainEvent{&sim, &n, state.range(0)});
    sim.run_until(SimTau::infinity());
    benchmark::DoNotOptimize(n);
    inline_actions = sim.queue_stats().inline_actions;
    fallback_allocs = sim.queue_stats().fallback_allocs;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["pool_inline"] = static_cast<double>(inline_actions);
  state.counters["pool_fallback"] = static_cast<double>(fallback_allocs);
}
BENCHMARK(BM_EventQueueChurn)->Arg(10000)->Arg(100000);

void BM_EventQueueChurnCancel(benchmark::State& state) {
  // Timer-reset workload: 64 concurrent "timeouts" that are repeatedly
  // cancelled and re-armed before firing — the MaxWait/alarm pattern of
  // the protocol stack. Exercises cancellation, slot reuse and the
  // generation check that replaces the old tombstone set.
  const long n = state.range(0);
  std::uint64_t cancelled = 0, stale_skipped = 0, peak_slots = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    sim::EventId timer[64] = {};
    long fired = 0;
    for (long i = 0; i < n; ++i) {
      auto& slot = timer[i & 63];
      if (slot != sim::kNoEvent) q.cancel(slot);
      slot = q.push(SimTau(static_cast<double>(i)),
                    [&fired] { ++fired; });
      if ((i & 7) == 0 && !q.empty()) {
        SimTau t{};
        q.pop(t)();
      }
    }
    while (!q.empty()) {
      SimTau t{};
      q.pop(t)();
    }
    benchmark::DoNotOptimize(fired);
    cancelled = q.stats().cancelled;
    stale_skipped = q.stats().stale_skipped;
    peak_slots = q.stats().peak_slots;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["cancelled"] = static_cast<double>(cancelled);
  state.counters["stale_skipped"] = static_cast<double>(stale_skipped);
  state.counters["peak_slots"] = static_cast<double>(peak_slots);
}
BENCHMARK(BM_EventQueueChurnCancel)->Arg(10000)->Arg(100000);

void BM_MessageFanout(benchmark::State& state) {
  // One all-pairs exchange per iteration: n fanout trains of n-1 messages
  // each — the O(n^2)-per-SyncInt shape of the protocol without the
  // protocol logic on top. Tracked as message_fanout_items_per_second in
  // BENCH_PERF.json; the regression gate also asserts the curve stays
  // flat as n grows (batching is what keeps the per-message cost from
  // degrading with fanout width).
  const int n = static_cast<int>(state.range(0));
  long delivered = 0;
  // Simulator and network are built once: the benchmark measures
  // steady-state fanout delivery, and topology + handler setup is
  // O(n^2) — counting it per iteration made the wide-fanout points look
  // slower for reasons that have nothing to do with delivery cost.
  // Simulated time simply keeps advancing across iterations.
  sim::Simulator sim;
  net::Network network(sim, net::Topology::full_mesh(n),
                       net::make_uniform_delay(Duration::millis(50)), Rng(42));
  for (net::ProcId p = 0; p < n; ++p) {
    network.register_handler(p, [&delivered](const net::Message&) {
      ++delivered;
    });
  }
  for (auto _ : state) {
    for (net::ProcId p = 0; p < n; ++p) {
      auto fo = network.fanout(p);
      for (net::ProcId q = 0; q < n; ++q) {
        if (p != q) fo.add(q, net::PingReq{1});
      }
      fo.commit();
    }
    sim.run_until(SimTau::infinity());
    benchmark::DoNotOptimize(delivered);
  }
  const std::uint64_t fallback_allocs = sim.queue_stats().fallback_allocs;
  const std::uint64_t inline_actions = sim.queue_stats().inline_actions;
  const std::uint64_t batches = sim.queue_stats().fanout_batches;
  const std::uint64_t entries = sim.queue_stats().fanout_entries;
  if (fallback_allocs != 0) {
    // A train's FanoutStep must fit the SmallFn inline buffer; a heap
    // fallback on this path is a pooling regression, not a slow run.
    state.SkipWithError("fanout path hit SmallFn fallback allocations");
    return;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) *
                          (n - 1));
  state.counters["pool_inline"] = static_cast<double>(inline_actions);
  state.counters["pool_fallback"] = static_cast<double>(fallback_allocs);
  state.counters["fanout_batches"] = static_cast<double>(batches);
  state.counters["fanout_entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_MessageFanout)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_HardwareClockRead(benchmark::State& state) {
  sim::Simulator sim;
  clk::HardwareClock hw(sim, clk::make_constant_drift(1e-4), Rng(1));
  for (auto _ : state) benchmark::DoNotOptimize(hw.read());
}
BENCHMARK(BM_HardwareClockRead);

void BM_ConvergenceFunction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<core::PeerEstimate> est;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(-0.1, 0.1);
    est.push_back({Duration::seconds(d + 0.05), Duration::seconds(d - 0.05)});
  }
  core::BhhnConvergence fn;
  const int f = (static_cast<int>(n) - 1) / 3;
  for (auto _ : state)
    benchmark::DoNotOptimize(fn.apply(est, f, Duration::seconds(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConvergenceFunction)->Arg(7)->Arg(31)->Arg(101);

void BM_SimulatedHour(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t events = 0, messages = 0;
  for (auto _ : state) {
    analysis::Scenario s;
    s.model.n = n;
    s.model.f = core::ModelParams::max_f(n);
    s.model.rho = 1e-4;
    s.model.delta = Duration::millis(50);
    s.model.delta_period = Duration::hours(1);
    s.sync_int = Duration::minutes(1);
    s.horizon = Duration::hours(1);
    s.sample_period = Duration::minutes(1);
    s.seed = 1;
    const auto r = analysis::run_scenario(s);
    events = r.events_executed;
    messages = r.messages_sent;
    benchmark::DoNotOptimize(r.max_stable_deviation);
  }
  state.counters["sim_events"] = static_cast<double>(events);
  state.counters["protocol_msgs"] = static_cast<double>(messages);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(events));
}
BENCHMARK(BM_SimulatedHour)->Arg(4)->Arg(7)->Arg(16)->Arg(31)
    ->Unit(benchmark::kMillisecond);

void BM_WholeSweep(benchmark::State& state) {
  // End-to-end sweep cost: `range` seeds of a 30-minute n=7 run, merged
  // serially (jobs fixed at 1 so the benchmark measures per-run cost, not
  // the machine's core count).
  const int seeds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto sweep = analysis::run_sweep(
        [](std::uint64_t seed) {
          analysis::Scenario s;
          s.model.n = 7;
          s.model.f = 2;
          s.model.rho = 1e-4;
          s.model.delta = Duration::millis(50);
          s.model.delta_period = Duration::hours(1);
          s.sync_int = Duration::minutes(1);
          s.horizon = Duration::minutes(30);
          s.sample_period = Duration::minutes(1);
          s.seed = seed;
          return s;
        },
        /*first_seed=*/1, seeds);
    benchmark::DoNotOptimize(sweep.runs);
  }
  state.SetItemsProcessed(state.iterations() * seeds);
  state.SetLabel("runs");
}
BENCHMARK(BM_WholeSweep)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
