// E12 — engineering benchmarks (google-benchmark).
//
// Simulator throughput, clock-stack overhead, and the end-to-end cost of
// simulating one hour of protocol time as n grows (message complexity is
// O(n^2) per SyncInt across the network).
#include <benchmark/benchmark.h>

#include "analysis/experiment.h"
#include "clock/hardware_clock.h"
#include "core/convergence.h"
#include "sim/simulator.h"

using namespace czsync;

namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    long n = 0;
    std::function<void()> chain = [&] {
      if (++n < state.range(0)) sim.schedule_after(Dur::millis(1), chain);
    };
    sim.schedule_after(Dur::millis(1), chain);
    sim.run_until(RealTime::infinity());
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(10000)->Arg(100000);

void BM_HardwareClockRead(benchmark::State& state) {
  sim::Simulator sim;
  clk::HardwareClock hw(sim, clk::make_constant_drift(1e-4), Rng(1));
  for (auto _ : state) benchmark::DoNotOptimize(hw.read());
}
BENCHMARK(BM_HardwareClockRead);

void BM_ConvergenceFunction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<core::PeerEstimate> est;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(-0.1, 0.1);
    est.push_back({Dur::seconds(d + 0.05), Dur::seconds(d - 0.05)});
  }
  core::BhhnConvergence fn;
  const int f = (static_cast<int>(n) - 1) / 3;
  for (auto _ : state)
    benchmark::DoNotOptimize(fn.apply(est, f, Dur::seconds(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConvergenceFunction)->Arg(7)->Arg(31)->Arg(101);

void BM_SimulatedHour(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t events = 0, messages = 0;
  for (auto _ : state) {
    analysis::Scenario s;
    s.model.n = n;
    s.model.f = core::ModelParams::max_f(n);
    s.model.rho = 1e-4;
    s.model.delta = Dur::millis(50);
    s.model.delta_period = Dur::hours(1);
    s.sync_int = Dur::minutes(1);
    s.horizon = Dur::hours(1);
    s.sample_period = Dur::minutes(1);
    s.seed = 1;
    const auto r = analysis::run_scenario(s);
    events = r.events_executed;
    messages = r.messages_sent;
    benchmark::DoNotOptimize(r.max_stable_deviation);
  }
  state.counters["sim_events"] = static_cast<double>(events);
  state.counters["protocol_msgs"] = static_cast<double>(messages);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(events));
}
BENCHMARK(BM_SimulatedHour)->Arg(4)->Arg(7)->Arg(16)->Arg(31)
    ->Unit(benchmark::kMillisecond);

}  // namespace
