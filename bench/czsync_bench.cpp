// The single experiment runner: czsync_bench --list | --run E<k> | ...
// All behaviour lives in analysis::run_harness; this main only builds
// the registry and forwards argv.
#include <iostream>
#include <string>
#include <vector>

#include "experiments.h"

int main(int argc, char** argv) {
  czsync::analysis::ExperimentRegistry registry;
  czsync::bench::register_all_experiments(registry);
  const std::vector<std::string> args(argv + 1, argv + argc);
  return czsync::analysis::run_harness(registry, args, std::cout, std::cerr);
}
