// Shared helpers for the experiment binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "util/csv.h"
#include "util/table.h"

namespace czsync::bench {

/// Canonical WAN model used across experiments unless a sweep overrides
/// it: delta = 50 ms, rho = 1e-4 (stress value), Delta = 1 h, SyncInt =
/// 60 s => T ~ 60.2 s, K = 59, gamma ~ 0.91 s.
inline analysis::Scenario wan_scenario(std::uint64_t seed = 1) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Dur::millis(50);
  s.model.delta_period = Dur::hours(1);
  s.sync_int = Dur::minutes(1);
  s.initial_spread = Dur::millis(200);
  s.horizon = Dur::hours(6);
  s.warmup = Dur::minutes(30);
  s.sample_period = Dur::seconds(15);
  s.seed = seed;
  return s;
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline std::string ms(Dur d) {
  if (!d.is_finite()) return d > Dur::zero() ? "inf" : "-inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", d.ms());
  return buf;
}

inline std::string secs(Dur d) {
  if (!d.is_finite()) return "never";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f", d.sec());
  return buf;
}

inline std::string num(double v) { return fmt_num(v); }

}  // namespace czsync::bench
