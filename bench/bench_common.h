// Shared helpers for the experiment binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "analysis/sweep.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace czsync::bench {

/// Canonical WAN model used across experiments unless a sweep overrides
/// it: delta = 50 ms, rho = 1e-4 (stress value), Delta = 1 h, SyncInt =
/// 60 s => T ~ 60.2 s, K = 59, gamma ~ 0.91 s.
inline analysis::Scenario wan_scenario(std::uint64_t seed = 1) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Dur::millis(50);
  s.model.delta_period = Dur::hours(1);
  s.sync_int = Dur::minutes(1);
  s.initial_spread = Dur::millis(200);
  s.horizon = Dur::hours(6);
  s.warmup = Dur::minutes(30);
  s.sample_period = Dur::seconds(15);
  s.seed = seed;
  return s;
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline std::string ms(Dur d) {
  if (!d.is_finite()) return d > Dur::zero() ? "inf" : "-inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", d.ms());
  return buf;
}

inline std::string secs(Dur d) {
  if (!d.is_finite()) return "never";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f", d.sec());
  return buf;
}

inline std::string num(double v) { return fmt_num(v); }

/// Worker count for parallel sweeps: `--jobs N` (or `--jobs=N`) on the
/// command line beats the CZSYNC_JOBS environment variable beats the
/// hardware default. Parallelism only changes wall-clock — results are
/// bit-identical at any job count (see analysis::run_sweep_parallel).
inline int sweep_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      return std::atoi(argv[i] + 7);
    }
  }
  if (const char* env = std::getenv("CZSYNC_JOBS")) return std::atoi(env);
  return static_cast<int>(ThreadPool::default_jobs());
}

/// One-line perf footer so every sweep run leaves a throughput record.
inline void print_sweep_perf(const char* what, int runs, double wall_seconds,
                             int jobs) {
  std::printf("%s: %d runs in %.2f s (%.2f runs/s, jobs = %d)\n", what, runs,
              wall_seconds, wall_seconds > 0 ? runs / wall_seconds : 0.0, jobs);
}

}  // namespace czsync::bench
