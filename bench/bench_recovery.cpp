// E3 — recovery (Def. 3 iii, Lemma 7 iii, §1.1 design trade-off).
//
// A single processor is corrupted for 60 s and its clock displaced by a
// swept offset (1 ms ... 1 h, both signs). We measure the time from the
// adversary's leave until the clock is back within gamma of every stable
// processor, for three convergence functions:
//   bhhn              — the paper: halving inside WayOff, jump outside;
//   capped-correction — Fetzer-Cristian-flavoured minimal correction
//                       (100 ms/round cap): recovery linear in offset,
//                       i.e. "may never complete" within Delta (§1.1);
//   midpoint          — always-jump baseline: recovers but gives up the
//                       own-clock preservation BHHN keeps in steady state.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

Duration recovery_for(analysis::ExperimentContext& ctx,
                 const std::string& convergence, double offset_s) {
  auto s = wan_scenario(3);
  s.convergence = convergence;
  s.capped_correction_cap = Duration::millis(100);
  s.initial_spread = Duration::millis(20);
  s.warmup = Duration::zero();
  s.horizon = Duration::hours(3);
  s.sample_period = Duration::seconds(5);
  s.schedule = adversary::Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::seconds(offset_s);
  const auto r = ctx.run(s, convergence + " offset=" + std::to_string(offset_s));
  if (!r.all_recovered()) return Duration::infinity();
  return r.max_recovery_time();
}

}  // namespace

void register_E3(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E3", "recovery time vs clock offset (Lemma 7 iii)",
       "a recovering clock halves its distance to the pack each T; "
       "clocks beyond WayOff jump back in one Sync; minimal-"
       "correction baselines recover linearly or never",
       [](analysis::ExperimentContext& ctx) {
         const auto bounds = core::TheoremBounds::compute(
             wan_scenario().model,
             core::ProtocolParams::derive(wan_scenario().model,
                                          Duration::minutes(1)));
         std::printf(
             "gamma = %s ms, WayOff ~ %s ms, T = %.1f s, Delta = 3600 s\n\n",
             ms(bounds.max_deviation).c_str(),
             ms(bounds.max_deviation + bounds.epsilon).c_str(),
             bounds.T.sec());

         TextTable table({"offset [s]", "bhhn [s]", "capped-correction [s]",
                          "midpoint [s]"});
         for (double off : {0.001, 0.2, 0.5, 0.8, 2.0, 10.0, 60.0, 600.0,
                            3600.0, -0.8, -10.0, -600.0}) {
           char offs[32];
           std::snprintf(offs, sizeof offs, "%g", off);
           table.row({offs, secs(recovery_for(ctx, "bhhn", off)),
                      secs(recovery_for(ctx, "capped-correction", off)),
                      secs(recovery_for(ctx, "midpoint", off))});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: bhhn is O(SyncInt) regardless of offset (the "
             "WayOff\nbranch jumps); capped-correction grows linearly with the "
             "offset and\nexceeds the 2 h post-fault horizon (\"never\") for "
             "offsets >~ 7 s;\nmidpoint matches bhhn on recovery (its cost is "
             "paid elsewhere, E8).\n");
       }});
}

}  // namespace czsync::bench
