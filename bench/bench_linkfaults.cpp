// E14 — link corruption (§1.2's conjectured refinement).
//
// "It may be possible to refine our analysis to show that the same
// algorithm can be used even if an attacker can corrupt both processors
// and links, as long as not too many of either are corrupted at the same
// time." Authenticated links cannot forge, so a corrupted link is a
// dropper; the estimation procedure turns it into a timeout, which the
// f+1-trimming absorbs like a silent faulty peer.
//
// (a) cut k of one processor's links (k = 0..4 at n = 7, f = 2): the
//     victim should stay synchronized while k <= f and lose the
//     guarantee beyond;
// (b) random flapping links across the whole network, concurrency swept,
//     on top of a full mobile processor adversary — the conjectured
//     "not too many of either at once" regime.
#include "experiments.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "adversary/schedule.h"
#include "net/link_faults.h"

namespace czsync::bench {

void register_E14(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E14", "corrupted (dropping) links (§1.2 refinement probe)",
       "a cut link is a timeout, and timeouts are trimmed like "
       "faulty peers: each processor tolerates up to f cut links",
       [](analysis::ExperimentContext& ctx) {
         {
           std::printf(
               "\n(a) cut k links of processor 0 for the whole run (n=7, "
               "f=2):\n");
           TextTable table({"k cut links", ">= f+1 finite estimates",
                            "max dev ALL [ms]", "proc-0 final bias err [ms]",
                            "bound holds"});
           for (int k = 0; k <= 6; ++k) {
             auto s = wan_scenario(14);
             s.initial_spread = Duration::millis(20);
             s.horizon = Duration::hours(4);
             s.warmup = Duration::zero();
             s.record_series = true;
             std::vector<net::ProcId> peers;
             for (int q = 1; q <= k; ++q) peers.push_back(q);
             s.link_faults = net::LinkFaultSet::isolate_partially(
                 0, peers, SimTau(600.0), SimTau(4 * 3600.0));
             const auto r = ctx.run(s, "cut=" + std::to_string(k));
             // Processor 0's distance from the median of the others at the end.
             const auto& last = r.series.back();
             std::vector<double> others(last.bias.begin() + 1,
                                        last.bias.end());
             std::sort(others.begin(), others.end());
             const double med = others[others.size() / 2];
             const double p0_err = std::abs(last.bias[0] - med);
             // Proc 0 can still sync while its estimate table retains at least
             // f+1 finite overestimates: self + (6-k) peers >= f+1  <=>  k <= 4.
             const bool enough = (s.model.n - 1 - k) + 1 >= s.model.f + 1;
             table.row({std::to_string(k), enough ? "yes" : "NO",
                        ms(r.max_stable_deviation), ms(Duration::seconds(p0_err)),
                        r.max_stable_deviation < r.bounds.max_deviation
                            ? "yes"
                            : "BROKEN"});
           }
           table.print(std::cout);
         }

         {
           std::printf(
               "\n(b) flapping links + full mobile processor adversary:\n");
           TextTable table({"concurrent flapping links", "max dev [ms]",
                            "link drops", "all recovered", "bound holds"});
           for (int flaps : {0, 1, 2, 4, 8}) {
             auto s = wan_scenario(15);
             s.horizon = Duration::hours(8);
             s.schedule = adversary::Schedule::random_mobile(
                 s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
                 Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(151));
             s.strategy = "clock-smash-random";
             s.strategy_scale = Duration::minutes(5);
             if (flaps > 0) {
               s.link_faults = net::LinkFaultSet::random_flapping(
                   s.model.n, flaps, Duration::minutes(2), Duration::minutes(10),
                   Duration::minutes(5), SimTau(8 * 3600.0), Rng(152));
             }
             const auto r = ctx.run(s, "flaps=" + std::to_string(flaps));
             table.row({std::to_string(flaps), ms(r.max_stable_deviation),
                        std::to_string(r.link_fault_drops),
                        r.all_recovered() ? "all" : "NO",
                        r.max_stable_deviation < r.bounds.max_deviation
                            ? "yes"
                            : "BROKEN"});
           }
           table.print(std::cout);
         }

         std::printf(
             "\nExpected shape: (a) the trimming is surprisingly robust to "
             "cut\nlinks — a timeout is +inf/-inf in the order statistics and "
             "never\ndisplaces honest values from the middle — so processor 0 "
             "stays in\nthe pack while it has >= f+1 finite estimates (k <= 4 "
             "at n=7); at\nk >= 5 both order statistics hit infinities, it "
             "stops adjusting and\nfree-runs away at rho*t. NOTE the eroded "
             "margin: every cut link\nspends trimming budget that Byzantine "
             "liars could otherwise consume,\nwhich is why the paper's "
             "conjecture caps processors AND links\ntogether. (b) a handful "
             "of flapping links on top of a full\nprocessor-fault budget "
             "leaves the guarantee intact — supporting the\n'not too many of "
             "either at once' conjecture.\n");
       }});
}

}  // namespace czsync::bench
