// E8 — convergence-function ablation (§1.1 / §3.3 design space).
//
// The same three workloads (steady state, recovery, full mobile attack)
// run under each convergence function. This regenerates the paper's
// qualitative comparison: BHHN keeps steady-state corrections small AND
// recovers fast; minimal-correction (capped) is gentle in steady state
// but cannot recover; always-jump midpoint recovers but applies larger
// corrections in steady state (its discontinuity is worse); "none" shows
// the unsynchronized floor.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

struct Row {
  Duration steady_dev;
  Duration steady_max_adj;
  Duration recovery;
  Duration attack_dev;
  bool attack_recovered;
};

Row run_all(analysis::ExperimentContext& ctx, const std::string& conv) {
  Row out{};
  {  // steady state, no faults
    auto s = wan_scenario(8);
    s.convergence = conv;
    s.initial_spread = Duration::millis(20);
    s.horizon = Duration::hours(6);
    s.warmup = Duration::hours(1);
    const auto r = ctx.run(s, conv + " steady");
    out.steady_dev = r.max_stable_deviation;
    out.steady_max_adj = r.max_stable_discontinuity;
  }
  {  // recovery from a 10-minute clock smash
    auto s = wan_scenario(8);
    s.convergence = conv;
    s.initial_spread = Duration::millis(20);
    s.warmup = Duration::zero();
    s.horizon = Duration::hours(3);
    s.sample_period = Duration::seconds(5);
    s.schedule =
        adversary::Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
    s.strategy = "clock-smash";
    s.strategy_scale = Duration::minutes(10);
    const auto r = ctx.run(s, conv + " recovery");
    out.recovery = r.all_recovered() ? r.max_recovery_time() : Duration::infinity();
  }
  {  // full mobile two-faced attack
    auto s = wan_scenario(8);
    s.convergence = conv;
    s.horizon = Duration::hours(8);
    s.schedule = adversary::Schedule::random_mobile(
        s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
        Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(88));
    s.strategy = "two-faced";
    s.strategy_scale = Duration::seconds(30);
    const auto r = ctx.run(s, conv + " attack");
    out.attack_dev = r.max_stable_deviation;
    out.attack_recovered = r.all_recovered();
  }
  return out;
}

}  // namespace

void register_E8(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E8", "convergence-function ablation",
       "BHHN trades a larger max correction for fast recovery (§1.1); "
       "minimal-correction designs may never recover; the always-jump "
       "midpoint recovers but corrects harder in steady state",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"convergence", "steady dev [ms]",
                          "steady max adj [ms]", "recovery from 600 s [s]",
                          "attack dev [ms]", "attack recovered"});
         for (const char* conv :
              {"bhhn", "capped-correction", "midpoint", "none"}) {
           const Row r = run_all(ctx, conv);
           table.row({conv, ms(r.steady_dev), ms(r.steady_max_adj),
                      secs(r.recovery), ms(r.attack_dev),
                      r.attack_recovered ? "all" : "NO"});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: bhhn and midpoint recover in O(SyncInt); "
             "capped-\ncorrection 'never' (needs 6000 rounds for 600 s at "
             "100 ms/round);\n'none' drifts unboundedly (steady dev grows "
             "with the horizon). In\nsteady state all synchronized rows look "
             "alike — the differences are\nrecovery and correction magnitude, "
             "exactly the paper's trade-off.\n");
       }});
}

}  // namespace czsync::bench
