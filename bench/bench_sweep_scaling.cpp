// E22 — parallel sweep scaling: wall-clock vs worker count.
//
// Runs the same fixed 16-seed WAN family (mobile two-faced adversary)
// at jobs = 1, 2, 4, 8 and reports wall-clock, throughput and speedup
// over the serial run. The engine guarantees bit-identical results at
// every job count (tests/sweep_parallel_test.cpp), so the ONLY thing
// that may change down this table is time; the violation/unrecovered
// columns double-check that in every row. Expected shape on a k-core
// host: near-linear speedup up to jobs = k (>= 2x at jobs = 4 on 4+
// cores), flat beyond. The row job counts are the experiment's subject,
// so this is the one experiment that ignores --jobs.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"
#include "util/thread_pool.h"

namespace czsync::bench {
namespace {

analysis::Scenario family(std::uint64_t seed) {
  auto s = wan_scenario(seed);
  s.horizon = Duration::hours(4);
  s.schedule = adversary::Schedule::random_mobile(
      s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
      Duration::minutes(20), SimTau(3.0 * 3600.0), Rng(seed * 31 + 7));
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  return s;
}

}  // namespace

void register_E22(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E22", "parallel sweep scaling",
       "determinism is free: any job count, same bits — only the "
       "wall-clock moves",
       [](analysis::ExperimentContext& ctx) {
         const int kSeeds = 16;
         std::printf("hardware_concurrency = %zu, %d seeds per row\n\n",
                     ThreadPool::default_jobs(), kSeeds);

         TextTable table({"jobs", "wall [s]", "runs/s", "speedup",
                          "violations", "unrecovered"});
         double serial_wall = 0.0;
         for (int jobs : {1, 2, 4, 8}) {
           const auto r = ctx.sweep_with_jobs(
               family, 500, kSeeds, jobs, "jobs=" + std::to_string(jobs));
           if (jobs == 1) serial_wall = r.wall_seconds;
           char wall[32], thr[32], sp[32];
           std::snprintf(wall, sizeof wall, "%.2f", r.wall_seconds);
           std::snprintf(thr, sizeof thr, "%.2f", r.seeds_per_sec());
           std::snprintf(sp, sizeof sp, "%.2fx",
                         r.wall_seconds > 0 ? serial_wall / r.wall_seconds
                                            : 0.0);
           table.row({std::to_string(jobs), wall, thr, sp,
                      std::to_string(r.bound_violations),
                      std::to_string(r.unrecovered_runs)});
         }
         table.print(std::cout);

         std::printf(
             "\nSpeedup is wall-clock only: per-seed runs are isolated "
             "simulators,\nso the merged statistics are identical in every "
             "row by construction.\n");
       }});
}

}  // namespace czsync::bench
