// E18 — statistical robustness: the headline claims across many seeds.
//
// Every other experiment reports one seeded trajectory; this one runs
// the canonical adversarial workload (n = 7, f = 2, mobile adversary at
// full budget) across 20 seeds per strategy and reports the across-seed
// distribution of the Definition-3 metrics. The hard requirements are
// the rightmost columns: ZERO bound violations and ZERO unrecovered runs.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"
#include "analysis/sweep.h"

namespace czsync::bench {

void register_E18(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E18", "Theorem 5 across 20 seeds per strategy",
       "the deviation/recovery guarantees are worst-case promises: "
       "no seed may violate them",
       [](analysis::ExperimentContext& ctx) {
         const int kSeeds = 20;
         int total_runs = 0;
         double total_wall = 0.0;
         TextTable table({"strategy", "max dev min/mean/max [ms]",
                          "recovery mean/max [s]", "violations",
                          "unrecovered"});
         for (const char* strategy :
              {"silent", "clock-smash-random", "constant-lie", "two-faced",
               "max-pull", "random-lie"}) {
           auto make = [strategy](std::uint64_t seed) {
             auto s = wan_scenario(seed);
             s.horizon = Duration::hours(8);
             s.schedule = adversary::Schedule::random_mobile(
                 s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
                 Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(seed * 31 + 7));
             s.strategy = strategy;
             s.strategy_scale = Duration::seconds(30);
             return s;
           };
           const auto sweep = ctx.sweep(make, 100, kSeeds, strategy);
           total_runs += sweep.runs;
           total_wall += sweep.wall_seconds;
           char devs[64], recs[64];
           std::snprintf(devs, sizeof devs, "%.1f / %.1f / %.1f",
                         sweep.max_deviation.min() * 1e3,
                         sweep.max_deviation.mean() * 1e3,
                         sweep.max_deviation.max() * 1e3);
           std::snprintf(recs, sizeof recs, "%.1f / %.1f",
                         sweep.max_recovery.mean(), sweep.max_recovery.max());
           table.row({strategy, devs, recs,
                      std::to_string(sweep.bound_violations),
                      std::to_string(sweep.unrecovered_runs)});
         }
         table.print(std::cout);
         analysis::ExperimentContext::print_sweep_perf(
             "\nsweeps", total_runs, total_wall, ctx.jobs());

         const auto bounds = core::TheoremBounds::compute(
             wan_scenario().model,
             core::ProtocolParams::derive(wan_scenario().model,
                                          Duration::minutes(1)));
         std::printf(
             "\ngamma = %.1f ms, Delta = 3600 s. Expected shape: zero "
             "violations\nand zero unrecovered runs in every row; "
             "max-deviation distributions\ntightly clustered far below gamma; "
             "recovery maxima bounded by a few\nSyncInt (the WayOff jump plus "
             "sampling granularity).\n",
             bounds.max_deviation.ms());
       }});
}

}  // namespace czsync::bench
