// E21 — WayOff threshold ablation (the §3.2 design constant).
//
// The analysis sets WayOff = gamma_hat + eps (Appendix A.2) and requires
// WayOff >= gamma + eps with gamma > 16 eps. §3.3 claims parameters "may
// overestimate [the model values] by a multiplicative factor without
// much harm". This ablation sweeps a multiplier on the derived WayOff:
//   * below ~eps-scale the step-10 test misfires on healthy rounds
//     (false escapes: the processor keeps abandoning its own clock);
//   * at 1x, the paper's behaviour: zero escapes in steady state, one
//     escape per far-off recovery;
//   * large multipliers are safe-but-slower: a clock displaced between
//     gamma and WayOff must walk back by halving instead of jumping, so
//     recovery time grows with the multiplier — quantifying the "without
//     much harm" claim (harm = recovery latency only).
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

struct Row {
  Duration steady_dev;
  std::uint64_t steady_escapes = 0;
  Duration recovery_small;  // offset 5 s (inside large WayOffs)
  Duration recovery_large;  // offset 10 min (beyond every WayOff in the sweep)
  Duration attack_dev;
};

Row run_scale(analysis::ExperimentContext& ctx, double scale) {
  Row out{};
  const std::string tag = "scale=" + num(scale);
  {  // steady state
    auto s = wan_scenario(21);
    s.way_off_scale = scale;
    s.initial_spread = Duration::millis(20);
    s.horizon = Duration::hours(6);
    s.warmup = Duration::hours(1);
    const auto r = ctx.run(s, tag + " steady");
    out.steady_dev = r.max_stable_deviation;
    out.steady_escapes = r.way_off_rounds;
  }
  auto recovery = [&](Duration offset) {
    auto s = wan_scenario(21);
    s.way_off_scale = scale;
    s.initial_spread = Duration::millis(20);
    s.warmup = Duration::zero();
    s.horizon = Duration::hours(3);
    s.sample_period = Duration::seconds(5);
    s.schedule =
        adversary::Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
    s.strategy = "clock-smash";
    s.strategy_scale = offset;
    const auto r = ctx.run(s, tag + " recovery " + secs(offset) + "s");
    return r.all_recovered() ? r.max_recovery_time() : Duration::infinity();
  };
  out.recovery_small = recovery(Duration::seconds(5));
  out.recovery_large = recovery(Duration::minutes(10));
  {  // full mobile two-faced attack
    auto s = wan_scenario(21);
    s.way_off_scale = scale;
    s.horizon = Duration::hours(6);
    s.schedule = adversary::Schedule::random_mobile(
        s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
        Duration::minutes(20), SimTau(4.5 * 3600.0), Rng(210));
    s.strategy = "two-faced";
    s.strategy_scale = Duration::seconds(30);
    const auto r = ctx.run(s, tag + " attack");
    out.attack_dev = r.max_stable_deviation;
  }
  return out;
}

}  // namespace

void register_E21(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E21", "WayOff threshold ablation (§3.2 / Appendix A.2)",
       "WayOff = gamma_hat + eps; smaller misfires the own-clock "
       "test, larger only slows mid-range recovery — the 'may "
       "overestimate without much harm' claim, quantified",
       [](analysis::ExperimentContext& ctx) {
         const auto model = wan_scenario().model;
         const auto proto =
             core::ProtocolParams::derive(model, Duration::minutes(1));
         std::printf(
             "derived WayOff = %.0f ms (eps = %.0f ms, gamma = %.0f ms)\n\n",
             proto.way_off.ms(),
             core::reading_error_bound(model.rho, model.delta).ms(),
             core::TheoremBounds::compute(model, proto).max_deviation.ms());

         TextTable table({"WayOff scale", "WayOff [ms]", "steady dev [ms]",
                          "steady escapes", "recovery 5 s off [s]",
                          "recovery 600 s off [s]", "attack dev [ms]"});
         for (double scale : {0.02, 0.05, 0.25, 1.0, 4.0, 16.0, 64.0}) {
           const Row r = run_scale(ctx, scale);
           char sc[16];
           std::snprintf(sc, sizeof sc, "%gx", scale);
           table.row({sc, ms(proto.way_off * scale), ms(r.steady_dev),
                      std::to_string(r.steady_escapes), secs(r.recovery_small),
                      secs(r.recovery_large), ms(r.attack_dev)});
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: at 0.02x (19 ms < eps) the escape branch "
             "fires\nconstantly in steady state — the own-clock preservation "
             "that the\nnormal branch provides is lost, and under attack the "
             "liars can\nsteer the midrange jumps. From ~0.25x through 1x: "
             "zero steady\nescapes and fast recovery. Beyond 1x: still zero "
             "escapes and the\n600 s recovery stays fast (600 s > WayOff up "
             "to 64x? no — at 64x\nWayOff ~ 61 s < 600 s, still a jump), but "
             "the 5 s offset falls\ninside WayOff from 16x on and must halve "
             "its way back: recovery\ngrows logarithmically. 'Overestimating' "
             "WayOff is indeed harmless\nfor safety and costs only mid-range "
             "recovery latency.\n");
       }});
}

}  // namespace czsync::bench
