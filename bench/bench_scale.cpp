// E23 — sparse-topology scale curve (events/s and bytes/proc vs n).
//
// The CSR topology, degree-sized protocol state and sharded event pool
// exist so an ensemble costs O(n * degree), not O(n^2): a ring of 10^5
// processors must fit and run. This experiment measures exactly that —
// simulator throughput and peak RSS per processor across n in {10^3,
// 10^4, 10^5} on the sparse topology family (ring, random-regular d=4
// and d=16, connected G(n, p) at the connectivity threshold) — and
// stamps the results as scale.* gauges for the regression gate:
//
//   scale.events_per_sec.<topo>_n<k>   per-config throughput (floored
//                                      against BENCH_PERF.json by ratio)
//   scale.rss_per_proc_bytes_n10000 /  peak-RSS-per-processor ceilings;
//   scale.rss_per_proc_bytes_n100000   an O(n^2) structure anywhere
//                                      (adjacency matrix, n-sized
//                                      per-peer tables) blows the
//                                      absolute ceiling immediately
//                                      (bool matrix alone = 10^5 bytes
//                                      per proc at n = 10^5).
//
// Configs run sequentially in increasing n so getrusage's cumulative
// peak RSS is attributable to the largest-n run finished so far.
#include "experiments.h"

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "util/table.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace czsync::bench {

namespace {

/// Process peak RSS in bytes (0 where getrusage is unavailable).
/// ru_maxrss is KiB on Linux, bytes on macOS.
double peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss);
#else
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
#endif
#else
  return 0.0;
#endif
}

struct Topo {
  const char* key;  ///< metric-key fragment: [a-z0-9]+ only
  const char* label;
  analysis::Scenario::TopologyKind kind;
  int degree = 0;  ///< RandomRegular only
};

}  // namespace

void register_E23(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E23", "sparse-topology scale curve (10^5 processors, O(n*deg) memory)",
       "the protocol is practical on neighbor-limited topologies (§5): "
       "cost per processor is bounded by its degree, independent of n",
       [](analysis::ExperimentContext& ctx) {
         const std::vector<int> sizes = {1000, 10000, 100000};
         const std::vector<Topo> topos = {
             {"ring", "ring (d=2)", analysis::Scenario::TopologyKind::Ring},
             {"rr4", "random-regular d=4",
              analysis::Scenario::TopologyKind::RandomRegular, 4},
             {"rr16", "random-regular d=16",
              analysis::Scenario::TopologyKind::RandomRegular, 16},
             {"gnp", "G(n, 2 ln n / n)",
              analysis::Scenario::TopologyKind::Gnp},
         };

         std::printf(
             "fault-free scale runs, sync_int = 60 s, horizon = 150 s "
             "(~2.5 rounds),\nfixed 50 ms delay, event pool sharded 8 ways "
             "(bit-identical to 1; see\nshard_determinism test). Sequential "
             "by increasing n for RSS attribution.\n\n");

         TextTable table({"topology", "n", "events", "wall [s]", "events/s",
                          "peak RSS/proc [B]"});

         for (const int n : sizes) {
           for (const Topo& t : topos) {
             analysis::Scenario s;
             s.model.n = n;
             s.model.f = 0;  // scale runs are fault-free: cost, not accuracy
             s.model.rho = 1e-4;
             s.model.delta = Duration::millis(50);
             s.sync_int = Duration::minutes(1);
             s.horizon = Duration::seconds(150);
             s.sample_period = Duration::seconds(30);
             s.delay = analysis::Scenario::DelayKind::Fixed;
             s.drift = analysis::Scenario::DriftKind::Constant;
             s.topology = t.kind;
             s.topology_degree = t.degree;
             // Connectivity threshold is ln(n)/n; 2x clears the retry
             // loop with overwhelming probability at these sizes.
             s.topology_p = 2.0 * std::log(static_cast<double>(n)) /
                            static_cast<double>(n);
             s.event_shards = 8;
             s.seed = 23;

             const std::string label =
                 std::string(t.key) + "_n" + std::to_string(n);
             const auto r = ctx.run(s, label);
             const double wall = ctx.records().back().wall_seconds;
             const double events = r.metrics.value("sim.events_executed");
             const double evps = wall > 0 ? events / wall : 0.0;
             ctx.annotate_gauge("scale.events_per_sec." + label, evps);

             const double rss_pp = peak_rss_bytes() / n;
             table.row({t.label, std::to_string(n), num(events),
                        num(wall), num(evps), num(rss_pp)});
           }
           // Peak RSS after every config of this size has run: dominated
           // by the largest allocation so far, i.e. this n.
           ctx.annotate_gauge(
               "scale.rss_per_proc_bytes_n" + std::to_string(n),
               peak_rss_bytes() / n);
         }

         table.print(std::cout);
         std::printf(
             "\nExpected shape: events/s roughly flat in n for fixed degree "
             "(the\npool is O(live events), peek is O(shards)); RSS/proc "
             "FALLS as n grows\nbecause fixed overheads amortize — any "
             "O(n^2) structure would make it\nRISE linearly and trip the "
             "gate's absolute ceiling.\n");
       }});
}

}  // namespace czsync::bench
