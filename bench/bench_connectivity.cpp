// E16 — partial connectivity (§5 open problem).
//
// "It would be interesting to show that it is sufficient that the
// non-faulty processors form a sufficiently connected subgraph. If this
// holds, it will also justify limiting the clock synchronization links
// to a limited number of neighbors for each processor, which is one of
// the practical advantages of convergence based clock synchronization."
//
// We run the protocol on random d-regular-ish graphs and G(n, p) graphs,
// sweeping density, with the full mobile Byzantine budget. The Section-5
// counterexample shows (3f+1)-connectivity alone is NOT sufficient; this
// experiment maps where random (expander-like) sparse graphs actually
// start working — evidence for the conjecture that expansion, not raw
// connectivity, is the right notion.
#include "experiments.h"

#include <iostream>
#include <vector>

#include "adversary/schedule.h"
#include "net/topology.h"

namespace czsync::bench {

void register_E16(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E16", "sparse random topologies (§5 neighbor-limited sync)",
       "conjecture: sufficiently-connected (expander-like) subgraphs "
       "suffice; Section 5 proved raw (3f+1)-connectivity does not",
       [](analysis::ExperimentContext& ctx) {
         const int n = 16;
         const int f = 2;  // trim per node; full mesh would tolerate (n-1)/3 = 5

         std::printf(
             "n = %d, trim f = %d, mobile two-faced adversary (budget f per "
             "Delta), 8 h horizon\n\n",
             n, f);

         TextTable table({"topology", "min degree", "vertex conn.",
                          "max dev [ms]", "gamma [ms]", "bound holds",
                          "all recovered"});

         // Rows are independent runs: build them all, fan out across the
         // worker pool, then format in input order so the table is
         // deterministic.
         std::vector<std::string> labels;
         std::vector<net::Topology> topos;
         auto add = [&](const std::string& label, net::Topology topo) {
           labels.push_back(label);
           topos.push_back(std::move(topo));
         };

         add("full mesh (control)", net::Topology::full_mesh(n));
         {
           Rng rng(41);
           for (int d : {5, 7, 9, 12}) {
             add("random ~" + std::to_string(d) + "-regular",
                 net::Topology::random_regular(n, d, rng));
           }
         }
         {
           Rng rng(42);
           for (double p : {0.4, 0.6, 0.8}) {
             char label[32];
             std::snprintf(label, sizeof label, "G(n, %.1f)", p);
             add(label, net::Topology::gnp_connected(n, p, rng));
           }
         }
         add("ring (degenerate)", net::Topology::ring(n));
         add("two-cliques f=2 (n=14)", net::Topology::two_cliques(2));

         std::vector<analysis::Scenario> scenarios;
         for (const auto& topo : topos) {
           auto s = wan_scenario(17);
           s.model.n = topo.size();  // rows may use their natural sizes
           s.model.f = f;
           s.topology = analysis::Scenario::TopologyKind::Custom;
           s.custom_topology = topo;
           s.horizon = Duration::hours(8);
           s.schedule = adversary::Schedule::random_mobile(
               s.model.n, f, s.model.delta_period, Duration::minutes(5),
               Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(171));
           s.strategy = "two-faced";
           s.strategy_scale = Duration::seconds(30);
           scenarios.push_back(std::move(s));
         }

         const auto batch = ctx.run_parallel(scenarios, "topology-grid");
         const auto& results = batch.results;

         for (std::size_t i = 0; i < results.size(); ++i) {
           const auto& r = results[i];
           table.row({labels[i], std::to_string(topos[i].min_degree()),
                      std::to_string(topos[i].vertex_connectivity()),
                      ms(r.max_stable_deviation), ms(r.bounds.max_deviation),
                      r.max_stable_deviation < r.bounds.max_deviation
                          ? "yes"
                          : "BROKEN",
                      r.all_recovered() ? "all" : "NO"});
         }

         table.print(std::cout);
         analysis::ExperimentContext::print_sweep_perf(
             "\nruns", static_cast<int>(results.size()), batch.wall_seconds,
             ctx.jobs());

         std::printf(
             "\nNOTE: the last two rows use their natural sizes/shapes (ring "
             "n=16;\ntwo-cliques n=14 with opposed drift NOT applied here — "
             "see E7 for\nthe drift-driven divergence; under two-faced attack "
             "the cliques'\ntrimming still isolates the single cross edge).\n"
             "Expected shape: random graphs with min degree >= ~3f+2 behave "
             "like\nthe full mesh (bound holds, everyone recovers); the ring "
             "— minimum\ndegree 2 < f+1 — cannot even tolerate the trimming "
             "and free-runs;\nstructured bottlenecks (two-cliques) fail "
             "regardless of degree,\nconfirming that density without "
             "expansion is not enough.\n");
       }});
}

}  // namespace czsync::bench
