// E17 — "No rounds" ablation (§3.3).
//
// The paper's §3.3 singles out the absence of rounds as a key design
// choice for the mobile-adversary setting: round-based algorithms must
// recover "the current round number, last round's clock, and the time to
// begin the next round" after every break-in. We implemented a faithful
// round-based variant of the same protocol (round-tagged estimates,
// cross-round replies discarded, an explicit join for stale processors)
// and compare the two engines on identical workloads.
//
// What to look for:
//   * steady state: identical guarantee (rounds cost nothing when
//     nothing fails);
//   * under a mobile adversary: the round engine pays joins (extra
//     protocol machinery on every recovery) and mismatch discards (a
//     recovering processor is useless to its peers until it rejoins —
//     an extra effective fault the no-rounds design simply avoids);
//   * recovery latency: the join adds up to one full SyncInt before the
//     recovering clock becomes useful again.
#include "experiments.h"

#include <iostream>

#include "adversary/schedule.h"

namespace czsync::bench {
namespace {

analysis::RunResult run(analysis::ExperimentContext& ctx,
                        const std::string& protocol,
                        const std::string& strategy, bool faults,
                        std::uint64_t seed) {
  auto s = wan_scenario(seed);
  s.protocol = protocol;
  s.horizon = Duration::hours(8);
  s.initial_spread = Duration::millis(50);
  if (faults) {
    s.schedule = adversary::Schedule::random_mobile(
        s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
        Duration::minutes(20), SimTau(6.5 * 3600.0), Rng(seed + 3));
    s.strategy = strategy;
    s.strategy_scale = Duration::minutes(5);
  }
  return ctx.run(s, protocol + (faults ? " " + strategy : " fault-free"));
}

}  // namespace

void register_E17(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E17", "rounds vs no-rounds (§3.3 design choice)",
       "round-based algorithms must recover round state after every "
       "break-in; the paper's no-rounds design answers with the "
       "current clock and needs no join machinery",
       [](analysis::ExperimentContext& ctx) {
         TextTable table({"workload", "engine", "max dev [ms]",
                          "max recovery [s]", "joins", "mismatch discards",
                          "recovered"});
         struct Case {
           const char* label;
           const char* strategy;
           bool faults;
         };
         for (const Case c :
              {Case{"fault-free", "", false},
               Case{"mobile clock-smash", "clock-smash-random", true},
               Case{"mobile two-faced", "two-faced", true}}) {
           for (const char* engine : {"sync", "round"}) {
             const auto r = run(ctx, engine, c.strategy, c.faults, 18);
             table.row({c.label, engine, ms(r.max_stable_deviation),
                        r.recoveries.empty() ? "-" : secs(r.max_recovery_time()),
                        std::to_string(r.joins),
                        std::to_string(r.mismatch_discards),
                        r.recoveries.empty()
                            ? "-"
                            : (r.all_recovered() ? "all" : "NO")});
           }
         }
         table.print(std::cout);

         std::printf(
             "\nExpected shape: identical fault-free rows; under the mobile\n"
             "adversary the round engine reports one join per break-in and "
             "a\nburst of mismatch discards around each recovery (its replies "
             "are\nuseless to peers until the join lands), and its recovery "
             "lags the\nno-rounds engine by up to one SyncInt. Deviation "
             "stays bounded for\nboth — the cost of rounds here is machinery "
             "and recovery latency,\nexactly the implementation burden §3.3 "
             "calls out (plus the state\nthat 'has to be recovered from a "
             "break-in').\n");
       }});
}

}  // namespace czsync::bench
