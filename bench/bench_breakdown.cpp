// E9 — necessity of the Definition-2 budget.
//
// Two sweeps at n = 7 (protocol trims f = 2):
//   (a) concurrent two-faced liars 0..4: the guarantee must hold up to 2
//       and break at 3+ (n >= 3f+1 is tight);
//   (b) a too-fast adversary: the same f = 2 budget but moving with rest
//       gaps < Delta, so more than f distinct processors fall in one
//       Delta-window — stable pairs (per the Def.-3 quantifier) can catch
//       a not-yet-recovered processor and the measured deviation degrades.
#include "experiments.h"

#include <iostream>
#include <vector>

#include "adversary/schedule.h"

namespace czsync::bench {

void register_E9(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E9", "breakdown beyond the adversary budget (Def. 2 necessity)",
       "the bound needs BOTH f <= (n-1)/3 at a time AND a rest of "
       "Delta between victim changes",
       [](analysis::ExperimentContext& ctx) {
         {
           std::printf("\n(a) concurrent two-faced liars at n=7 (trim f=2):\n");
           TextTable table({"liars", "within budget", "gamma [ms]",
                            "measured max dev [ms]", "bound holds"});
           for (int liars = 0; liars <= 4; ++liars) {
             auto s = wan_scenario(9);
             s.horizon = Duration::hours(2);
             s.warmup = Duration::zero();
             s.initial_spread = Duration::millis(20);
             std::vector<adversary::ControlInterval> ivs;
             for (net::ProcId p = 0; p < liars; ++p)
               ivs.push_back({p, SimTau(600.0), SimTau(2 * 3600.0)});
             s.schedule = adversary::Schedule(ivs);
             s.strategy = "two-faced";
             s.strategy_scale = Duration::seconds(30);
             const auto r = ctx.run(s, "liars=" + std::to_string(liars));
             const bool in_budget = liars <= s.model.f;
             table.row({std::to_string(liars), in_budget ? "yes" : "NO",
                        ms(r.bounds.max_deviation), ms(r.max_stable_deviation),
                        r.max_stable_deviation < r.bounds.max_deviation
                            ? "yes"
                            : "BROKEN"});
           }
           table.print(std::cout);
         }

         {
           std::printf(
               "\n(b) mobile smash adversary, rest gap swept (Delta = 3600 "
               "s):\n");
           TextTable table({"rest gap [s]", "f-limited (Delta)", "gamma [ms]",
                            "measured max dev [ms]", "rate excess",
                            "all recovered"});
           for (double gap : {4000.0, 3600.0, 1800.0, 600.0, 60.0}) {
             auto s = wan_scenario(10);
             s.horizon = Duration::hours(8);
             s.warmup = Duration::zero();
             s.initial_spread = Duration::millis(20);
             // Hand-built sweep: 2 slots, dwell 300 s, rest `gap` between a
             // slot's leave and its next break-in.
             std::vector<adversary::ControlInterval> ivs;
             for (int slot = 0; slot < 2; ++slot) {
               double t = 600.0 + slot * 150.0;
               net::ProcId victim = static_cast<net::ProcId>(slot * 3);
               while (t < 6.5 * 3600.0) {
                 ivs.push_back({victim, SimTau(t), SimTau(t + 300.0)});
                 t += 300.0 + gap;
                 victim = static_cast<net::ProcId>((victim + 1) % s.model.n);
               }
             }
             s.schedule = adversary::Schedule(ivs);
             s.strategy = "clock-smash";
             s.strategy_scale = Duration::millis(900);  // just under WayOff: slow halving
             const auto r = ctx.run(s, "gap=" + num(gap));
             table.row({num(gap),
                        s.schedule.is_f_limited(s.model.f,
                                                s.model.delta_period)
                            ? "yes"
                            : "NO",
                        ms(r.bounds.max_deviation),
                        ms(r.max_stable_deviation), num(r.max_rate_excess),
                        r.all_recovered() ? "yes" : "NO"});
           }
           table.print(std::cout);
         }

         std::printf(
             "\nExpected shape: (a) holds for 0-2 liars, breaks decisively at "
             "3-4\n(the two-faced split drags the three remaining correct "
             "clocks apart);\n(b) with gap >= Delta everything is nominal; as "
             "the gap shrinks the\nschedule stops being f-limited: more than f "
             "processors carry smashed\nor half-recovered clocks at once, the "
             "trimming is overwhelmed, and\nthe damage appears first as "
             "accuracy loss (stable clocks dragged off\nreal time — the "
             "rate-excess column climbs past the ~1e-4 drift) and\nthen as "
             "deviation growth at the smallest gaps. BHHN's fast recovery\n"
             "softens the blow — the failure is graceful, not a cliff like "
             "(a).\n");
       }});
}

}  // namespace czsync::bench
