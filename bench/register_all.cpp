// Registration order is the --list / --filter execution order; keep it
// E1..E22. E12 (micro-benchmarks) stays a separate google-benchmark
// binary — statistical repetition and perf counters don't fit the
// scenario-report harness — so its registration just points there.
#include "experiments.h"

namespace czsync::bench {

void register_E12(analysis::ExperimentRegistry& reg) {
  reg.add({"E12", "hot-path micro-benchmarks (bench_perf)",
           "simulator throughput tracked against BENCH_PERF.json; see "
           "tools/check_bench_regression.py",
           [](analysis::ExperimentContext&) {
             std::printf(
                 "E12 runs as a separate google-benchmark binary:\n"
                 "  ./build/bench/bench_perf\n"
                 "It needs statistical repetitions and isolation from the "
                 "harness's\nown threads; the RunRecord-based regression gate "
                 "is\n  tools/check_bench_regression.py (ctest: "
                 "bench_regression).\n");
           }});
}

void register_all_experiments(analysis::ExperimentRegistry& reg) {
  register_E1(reg);
  register_E2(reg);
  register_E3(reg);
  register_E4(reg);
  register_E5(reg);
  register_E6(reg);
  register_E7(reg);
  register_E8(reg);
  register_E9(reg);
  register_E10(reg);
  register_E11(reg);
  register_E12(reg);
  register_E13(reg);
  register_E14(reg);
  register_E15(reg);
  register_E16(reg);
  register_E17(reg);
  register_E18(reg);
  register_E19(reg);
  register_E20(reg);
  register_E21(reg);
  register_E22(reg);
  register_E23(reg);
}

}  // namespace czsync::bench
