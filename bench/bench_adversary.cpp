// E6 — Byzantine tolerance at the full budget, per attack strategy.
//
// n = 7, f = 2 and n = 10, f = 3 under every built-in strategy, all
// running the full mobile schedule. Theorem 5 makes one promise for all
// of them: deviation <= gamma for stable processors and recovery after
// every leave. The interesting signal is *how close* each attack gets to
// the bound — the adaptive max-pull attack is the strongest.
#include "experiments.h"

#include <iostream>
#include <utility>
#include <vector>

#include "adversary/schedule.h"

namespace czsync::bench {

void register_E6(analysis::ExperimentRegistry& reg) {
  reg.add(
      {"E6", "deviation under Byzantine strategies at n=3f+1",
       "arbitrary (Byzantine) faults are tolerated: deviation stays "
       "<= gamma and recovery completes, for every attacker behaviour",
       [](analysis::ExperimentContext& ctx) {
         for (const auto& [n, f] :
              std::vector<std::pair<int, int>>{{7, 2}, {10, 3}}) {
           std::printf("\n--- n=%d, f=%d ---\n", n, f);
           TextTable table({"strategy", "max dev [ms]", "mean dev [ms]",
                            "% of gamma", "way-off rounds", "recovered"});
           for (const char* strategy :
                {"silent", "clock-smash-random", "constant-lie", "two-faced",
                 "max-pull", "random-lie", "delayed-reply"}) {
             auto s = wan_scenario(6);
             s.model.n = n;
             s.model.f = f;
             s.horizon = Duration::hours(8);
             s.schedule = adversary::Schedule::random_mobile(
                 n, f, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
                 SimTau(6.5 * 3600.0), Rng(600 + n));
             s.strategy = strategy;
             s.strategy_scale = std::string(strategy) == "delayed-reply"
                                    ? Duration::millis(80)
                                    : Duration::seconds(30);
             const auto r = ctx.run(
                 s, "n=" + std::to_string(n) + " " + strategy);
             char pct[32];
             std::snprintf(pct, sizeof pct, "%.0f%%",
                           100.0 * r.max_stable_deviation /
                               r.bounds.max_deviation);
             table.row({strategy, ms(r.max_stable_deviation),
                        ms(r.mean_stable_deviation), pct,
                        std::to_string(r.way_off_rounds),
                        r.all_recovered() ? "all" : "NO"});
           }
           table.print(std::cout);
         }

         std::printf(
             "\nExpected shape: every row below 100%% of gamma and fully "
             "recovered.\nLying strategies (max-pull, two-faced) push "
             "deviation closer to the\nbound than crash-like ones (silent); "
             "none can cross it while the\nadversary is f-limited.\n");
       }});
}

}  // namespace czsync::bench
