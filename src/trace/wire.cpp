#include "trace/wire.h"

#include <stdexcept>

namespace czsync::trace::wire {

namespace {

void put_proc(std::vector<unsigned char>& out, std::int32_t p) {
  // Processor ids are dense non-negative ints by the net layer's
  // contract; a negative id in a serialized record is a programming
  // error upstream, not a format feature.
  if (p < 0) {
    throw std::invalid_argument(
        "czsync-trace-v1: negative processor id in record");
  }
  put_varint(out, static_cast<std::uint64_t>(p));
}

}  // namespace

void put_varint(std::vector<unsigned char>& out, std::uint64_t v) {
  // LEB128: 7 value bits per byte, high bit = continuation.
  do {
    unsigned char byte = v & 0x7fu;
    v >>= 7;
    if (v != 0) byte |= 0x80u;
    out.push_back(byte);
  } while (v != 0);
}

void put_varint_padded(std::vector<unsigned char>& out, std::uint64_t v,
                       int width) {
  if (width < 1 || width > 10) {
    throw std::invalid_argument("put_varint_padded: width out of range");
  }
  const std::size_t start = out.size();
  put_varint(out, v);
  const auto used = static_cast<int>(out.size() - start);
  if (used > width) {
    throw std::invalid_argument(
        "put_varint_padded: value does not fit the requested width");
  }
  if (used < width) {
    // Redundant continuation bytes carrying zero value bits: decoders
    // accumulate `0 << shift` and keep going, so the value is unchanged.
    out.back() |= 0x80u;
    for (int i = used; i < width - 1; ++i) out.push_back(0x80u);
    out.push_back(0x00u);
  }
}

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(bits >> (8 * i)));
  }
}

void put_record(std::vector<unsigned char>& out, const TraceRecord& r) {
  const auto kind = static_cast<std::uint8_t>(r.kind);
  if (kind == 0 || kind > kMaxRecordKind) {
    throw std::invalid_argument("czsync-trace-v1: invalid record kind");
  }
  put_varint(out, kind);
  put_f64(out, r.t);
  switch (r.kind) {
    case RecordKind::EventFire:
      put_varint(out, r.u);
      break;
    case RecordKind::MsgSend:
    case RecordKind::MsgDeliver:
      put_proc(out, r.p);
      put_proc(out, r.q);
      put_varint(out, r.u);
      break;
    case RecordKind::MsgDrop:
      put_proc(out, r.p);
      put_proc(out, r.q);
      put_varint(out, r.aux);
      put_varint(out, r.u);
      break;
    case RecordKind::AdvBreakIn:
    case RecordKind::AdvLeave:
      put_proc(out, r.p);
      break;
    case RecordKind::AdjWrite:
      put_proc(out, r.p);
      put_varint(out, r.aux);
      put_f64(out, r.x);
      put_f64(out, r.y);
      break;
    case RecordKind::RoundOpen:
      put_proc(out, r.p);
      put_varint(out, r.u);
      break;
    case RecordKind::RoundClose:
      put_proc(out, r.p);
      put_varint(out, r.aux);
      put_varint(out, r.u);
      break;
    case RecordKind::InvariantSample:
      put_varint(out, r.aux);
      put_varint(out, r.u);
      put_f64(out, r.x);
      break;
    case RecordKind::Invalid:
      break;  // unreachable: rejected above
  }
}

}  // namespace czsync::trace::wire
