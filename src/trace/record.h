// Structured event-trace records (DESIGN.md §4.8).
//
// One fixed POD record shape covers every traced event kind; the binary
// czsync-trace-v1 format (trace/format.h) serializes only the fields a
// kind actually uses, and the factory helpers below construct records
// with every unused field left at its default — which is what makes the
// writer→reader round trip bit-exact and record equality meaningful for
// first-divergence diffing.
//
// Field usage by kind (unused fields stay at their defaults):
//   EventFire        t, u=executed-event ordinal
//   MsgSend/Deliver  t, p=from, q=to, u=Body alternative index
//   MsgDrop          t, p=from, q=to, u=Body index, aux=DropReason
//   AdvBreakIn/Leave t, p=victim
//   AdjWrite         t, p=proc, aux=AdjKind, x=delta (s), y=adj after (s)
//   RoundOpen        t, p=proc, u=round ordinal
//   RoundClose       t, p=proc, u=round ordinal, aux=RoundFlags
//   InvariantSample  t, u=stable-processor count, aux=1 iff any stable,
//                    x=stable deviation (s)
#pragma once

#include <cstdint>
#include <string>

#include "util/time_domain.h"

namespace czsync::trace {

enum class RecordKind : std::uint8_t {
  Invalid = 0,
  EventFire = 1,
  MsgSend = 2,
  MsgDeliver = 3,
  MsgDrop = 4,
  AdvBreakIn = 5,
  AdvLeave = 6,
  AdjWrite = 7,
  RoundOpen = 8,
  RoundClose = 9,
  InvariantSample = 10,
};
inline constexpr std::uint8_t kMaxRecordKind = 10;

/// Why the network dropped a message (MsgDrop.aux).
enum class DropReason : std::uint8_t { NoEdge = 1, LinkFault = 2, NoHandler = 3 };

/// What wrote adj_p (AdjWrite.aux): the protocol's convergence step, a
/// rate-discipline slew, or an adversary smash at break-in.
enum class AdjKind : std::uint8_t { Sync = 1, Join = 2, Smash = 3 };

/// RoundClose.aux flag bits.
inline constexpr std::uint32_t kRoundWayOff = 1u << 0;
inline constexpr std::uint32_t kRoundJoin = 1u << 1;
inline constexpr std::uint32_t kRoundFromCache = 1u << 2;

struct TraceRecord {
  RecordKind kind = RecordKind::Invalid;
  double t = 0.0;           ///< simulator real time tau (seconds)
  std::int32_t p = -1;      ///< primary processor (sender / victim)
  std::int32_t q = -1;      ///< secondary processor (receiver)
  std::uint32_t aux = 0;    ///< DropReason / AdjKind / flag bits
  std::uint64_t u = 0;      ///< ordinal / Body index / round / count
  double x = 0.0;           ///< delta / deviation (seconds)
  double y = 0.0;           ///< adj after the write (seconds)

  bool operator==(const TraceRecord&) const = default;
};

// --- factory helpers (keep unused fields defaulted) ---

inline TraceRecord event_fire(SimTau t, std::uint64_t ordinal) {
  TraceRecord r;
  r.kind = RecordKind::EventFire;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.u = ordinal;
  return r;
}

inline TraceRecord msg_send(SimTau t, std::int32_t from, std::int32_t to,
                            std::uint64_t body_index) {
  TraceRecord r;
  r.kind = RecordKind::MsgSend;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = from;
  r.q = to;
  r.u = body_index;
  return r;
}

inline TraceRecord msg_deliver(SimTau t, std::int32_t from, std::int32_t to,
                               std::uint64_t body_index) {
  TraceRecord r;
  r.kind = RecordKind::MsgDeliver;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = from;
  r.q = to;
  r.u = body_index;
  return r;
}

inline TraceRecord msg_drop(SimTau t, std::int32_t from, std::int32_t to,
                            std::uint64_t body_index, DropReason reason) {
  TraceRecord r;
  r.kind = RecordKind::MsgDrop;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = from;
  r.q = to;
  r.u = body_index;
  r.aux = static_cast<std::uint32_t>(reason);
  return r;
}

inline TraceRecord adv_break_in(SimTau t, std::int32_t proc) {
  TraceRecord r;
  r.kind = RecordKind::AdvBreakIn;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = proc;
  return r;
}

inline TraceRecord adv_leave(SimTau t, std::int32_t proc) {
  TraceRecord r;
  r.kind = RecordKind::AdvLeave;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = proc;
  return r;
}

inline TraceRecord adj_write(SimTau t, std::int32_t proc, AdjKind kind,
                             Duration delta, Duration adj_after) {
  TraceRecord r;
  r.kind = RecordKind::AdjWrite;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = proc;
  r.aux = static_cast<std::uint32_t>(kind);
  r.x = delta.sec();
  r.y = adj_after.sec();
  return r;
}

inline TraceRecord round_open(SimTau t, std::int32_t proc,
                              std::uint64_t round) {
  TraceRecord r;
  r.kind = RecordKind::RoundOpen;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = proc;
  r.u = round;
  return r;
}

inline TraceRecord round_close(SimTau t, std::int32_t proc,
                               std::uint64_t round, std::uint32_t flags) {
  TraceRecord r;
  r.kind = RecordKind::RoundClose;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.p = proc;
  r.u = round;
  r.aux = flags;
  return r;
}

inline TraceRecord invariant_sample(SimTau t, std::uint64_t stable_count,
                                    bool have_stable, Duration deviation) {
  TraceRecord r;
  r.kind = RecordKind::InvariantSample;
  r.t = t.raw();  // time: czsync-trace-v1 stamps are raw f64 tau seconds
  r.u = stable_count;
  r.aux = have_stable ? 1u : 0u;
  r.x = deviation.sec();
  return r;
}

/// Display name of a record kind ("EventFire", ...; "?" when invalid).
[[nodiscard]] const char* record_kind_name(RecordKind kind);

/// Parses a kind name as printed by record_kind_name (case-sensitive);
/// RecordKind::Invalid when unknown. Used by `czsync_trace filter`.
[[nodiscard]] RecordKind record_kind_from_name(const std::string& name);

/// One-line human-readable rendering, e.g.
/// "MsgSend     t=120.004117  2 -> 5  PingReq". `body_name` labels the
/// Body alternative index of message records (pass net::body_name;
/// nullptr prints "body#<n>" — the trace layer itself stays below net).
[[nodiscard]] std::string record_to_string(
    const TraceRecord& r, const char* (*body_name)(std::size_t) = nullptr);

}  // namespace czsync::trace
