// LiveTraceWriter: incremental czsync-trace-v1 capture for long-lived
// processes.
//
// write_trace_file() needs the whole record vector up front, which a
// daemon that may be SIGKILLed at any moment cannot provide. This writer
// emits the standard header immediately — with the `count` field encoded
// as a fixed-width padded LEB128 varint — appends records as they
// arrive, and patches `count` in place on every flush. A reader (or a
// post-mortem `czsync_trace dump`) therefore sees a well-formed v1 file
// reflecting everything up to the last flush, no recovery pass needed;
// padded varints decode like any other varint, so existing tooling reads
// these files unchanged.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/record.h"

namespace czsync::trace {

class LiveTraceWriter {
 public:
  /// Opens `path` for writing and emits the v1 header with count = 0.
  /// Throws std::runtime_error if the file cannot be opened or written.
  explicit LiveTraceWriter(const std::string& path);

  LiveTraceWriter(const LiveTraceWriter&) = delete;
  LiveTraceWriter& operator=(const LiveTraceWriter&) = delete;

  /// Flushes on destruction; failures here are swallowed (destructors
  /// must not throw) — call flush() explicitly where errors matter.
  ~LiveTraceWriter();

  /// Serializes `n` records into the internal buffer. Cheap; bytes hit
  /// the file on flush() or when the buffer exceeds its high-water mark.
  void append(const TraceRecord* records, std::size_t n);

  /// Writes buffered bytes, patches the header count, and flushes the
  /// stream to the OS. Throws std::runtime_error on I/O failure.
  void flush();

  /// Records appended so far (buffered + on disk).
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  void write_count_patch();

  std::fstream out_;
  std::string path_;
  std::vector<unsigned char> buf_;
  std::streampos count_pos_;
  std::uint64_t count_ = 0;
};

}  // namespace czsync::trace
