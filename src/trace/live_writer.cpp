#include "trace/live_writer.h"

#include <stdexcept>

#include "trace/format.h"
#include "trace/wire.h"

namespace czsync::trace {

namespace {

// 5 padded LEB128 bytes hold counts up to 2^35 - 1; at the daemon's
// steady-state record rate that is centuries of capture.
constexpr int kCountWidth = 5;
constexpr std::size_t kBufHighWater = 1u << 16;

}  // namespace

LiveTraceWriter::LiveTraceWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::binary | std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  std::vector<unsigned char> header;
  header.insert(header.end(), kTraceMagic, kTraceMagic + sizeof kTraceMagic);
  wire::put_varint(header, kTraceVersion);
  wire::put_varint(header, 0);  // flags: live capture is never truncated
  wire::put_varint(header, 0);  // dropped
  count_pos_ = static_cast<std::streampos>(header.size());
  wire::put_varint_padded(header, 0, kCountWidth);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("write to '" + path + "' failed");
  }
}

LiveTraceWriter::~LiveTraceWriter() {
  try {
    flush();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructor flush is best effort; explicit flush() reports errors.
  }
}

void LiveTraceWriter::append(const TraceRecord* records, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    wire::put_record(buf_, records[i]);
    ++count_;
  }
  if (buf_.size() >= kBufHighWater) flush();
}

void LiveTraceWriter::flush() {
  if (!buf_.empty()) {
    out_.write(reinterpret_cast<const char*>(buf_.data()),
               static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
  write_count_patch();
  out_.flush();
  if (!out_) {
    throw std::runtime_error("write to '" + path_ + "' failed");
  }
}

void LiveTraceWriter::write_count_patch() {
  std::vector<unsigned char> patch;
  wire::put_varint_padded(patch, count_, kCountWidth);
  const std::streampos end = out_.tellp();
  out_.seekp(count_pos_);
  out_.write(reinterpret_cast<const char*>(patch.data()),
             static_cast<std::streamsize>(patch.size()));
  out_.seekp(end);
}

}  // namespace czsync::trace
