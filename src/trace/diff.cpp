#include "trace/diff.h"

#include <algorithm>
#include <ostream>

namespace czsync::trace {

TraceDiff diff_traces(const TraceData& a, const TraceData& b) {
  TraceDiff d;
  const std::size_t n = std::min(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a.records[i] == b.records[i])) {
      d.identical = false;
      d.first_divergence = i;
      return d;
    }
  }
  if (a.records.size() != b.records.size()) {
    d.identical = false;
    d.first_divergence = n;
  }
  return d;
}

bool print_diff(std::ostream& os, const TraceData& a, const TraceData& b,
                std::size_t context, const char* (*body_name)(std::size_t)) {
  const TraceDiff d = diff_traces(a, b);
  if (d.identical) {
    os << "traces identical (" << a.records.size() << " records)\n";
    return true;
  }
  const std::size_t i = d.first_divergence;
  os << "first divergence at record " << i << " (A: " << a.records.size()
     << " records, B: " << b.records.size() << " records)\n";
  if (a.truncated || b.truncated) {
    os << "note: flight-recorder capture"
       << (a.truncated ? " (A dropped " + std::to_string(a.dropped) + ")" : "")
       << (b.truncated ? " (B dropped " + std::to_string(b.dropped) + ")" : "")
       << " — indices are relative to the retained window\n";
  }
  const std::size_t lo = i > context ? i - context : 0;
  for (std::size_t k = lo; k < i; ++k) {
    os << "    = " << record_to_string(a.records[k], body_name) << "\n";
  }
  if (i < a.records.size()) {
    os << "    A " << record_to_string(a.records[i], body_name) << "\n";
  } else {
    os << "    A <end of trace>\n";
  }
  if (i < b.records.size()) {
    os << "    B " << record_to_string(b.records[i], body_name) << "\n";
  } else {
    os << "    B <end of trace>\n";
  }
  return false;
}

}  // namespace czsync::trace
