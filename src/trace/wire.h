// Buffer-based wire primitives shared by every czsync binary encoding.
//
// czsync-trace-v1 (trace/format.cpp) defined the conventions — LEB128
// varints for integers, raw IEEE-754 bits in 8 little-endian bytes for
// doubles (bit-exact by construction) — but kept the encoders private to
// the iostream writer. The rt backend needs the same primitives over
// byte buffers (UDP datagrams, incremental live-capture files), so they
// live here and format.cpp reuses them: one encoding, one
// implementation, stream and buffer callers.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "trace/record.h"

namespace czsync::trace::wire {

/// Appends `v` as a LEB128 varint (7 value bits per byte, high bit =
/// continuation).
void put_varint(std::vector<unsigned char>& out, std::uint64_t v);

/// Appends `v` as a LEB128 varint padded with redundant continuation
/// bytes to exactly `width` bytes (1..10). Decoders read it like any
/// varint; the fixed width makes the field patchable in place, which is
/// how the live trace writer keeps its record count current without
/// rewriting the file. Values needing more than `width` bytes throw
/// std::invalid_argument.
void put_varint_padded(std::vector<unsigned char>& out, std::uint64_t v,
                       int width);

/// Appends the IEEE-754 bit pattern of `v` in 8 little-endian bytes.
/// Bit-exact: every NaN payload, signed zero and denormal round-trips.
void put_f64(std::vector<unsigned char>& out, double v);

/// Serializes one czsync-trace-v1 record (kind varint + the kind's field
/// list) into `out`. Throws std::invalid_argument on an Invalid/unknown
/// kind. This is THE record encoding — the stream writer in format.cpp
/// goes through it.
void put_record(std::vector<unsigned char>& out, const TraceRecord& r);

/// Bounds-checked sequential reader over an immutable byte span. Every
/// accessor reports failure by flipping ok() to false and returning a
/// zero value; callers check once at the end (or wherever convenient) —
/// no exceptions, suitable for hostile datagram bytes.
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t size)
      : p_(data), end_(data + size) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return p_ == end_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (p_ == end_) return fail_u64();
      const unsigned char byte = *p_++;
      if (shift >= 63 && byte > 1) return fail_u64();
      v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
      if ((byte & 0x80u) == 0) return v;
      shift += 7;
    }
  }

  double f64() {
    if (remaining() < 8) {
      fail_u64();
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    }
    p_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

 private:
  std::uint64_t fail_u64() {
    ok_ = false;
    p_ = end_;
    return 0;
  }

  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

}  // namespace czsync::trace::wire
