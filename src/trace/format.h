// czsync-trace-v1: the compact binary trace format.
//
// Layout (all integers LEB128 varints, all doubles raw IEEE-754 bits in
// 8 little-endian bytes — bit-exact by construction):
//
//   magic   "CZTRACE1"                      (8 bytes)
//   varint  version (= 1)
//   varint  flags   (bit 0: truncated — flight recorder wrapped and the
//                    stream is missing its prefix)
//   varint  dropped (records lost before the first retained one)
//   varint  count   (records following)
//   count × record
//
// Each record is `varint kind` followed by the kind's fixed field list
// (see trace/record.h for which TraceRecord fields a kind uses); fields
// are written in declaration order t, p, q, aux, u, x, y, skipping the
// unused ones. Processor ids are written as varints (they are dense
// non-negative ints). Readers reject unknown kinds — v1 is a closed
// schema, bumping it means a new version byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.h"
#include "trace/sink.h"

namespace czsync::trace {

inline constexpr char kTraceMagic[8] = {'C', 'Z', 'T', 'R',
                                        'A', 'C', 'E', '1'};
inline constexpr std::uint64_t kTraceVersion = 1;
inline constexpr std::uint64_t kFlagTruncated = 1u << 0;

/// A deserialized trace: the records plus the flight-recorder header.
struct TraceData {
  bool truncated = false;
  std::uint64_t dropped = 0;
  std::vector<TraceRecord> records;
};

/// Serializes `data` as czsync-trace-v1. Throws std::invalid_argument on
/// a record with an Invalid/unknown kind.
void write_trace(std::ostream& os, const TraceData& data);

/// Snapshot-and-serialize a sink (the usual way a run ends up on disk).
void write_trace(std::ostream& os, const TraceSink& sink);

/// Parses a czsync-trace-v1 stream. Throws std::runtime_error on a bad
/// magic/version, a truncated stream, or an unknown record kind.
[[nodiscard]] TraceData read_trace(std::istream& is);

/// File helpers; throw std::runtime_error when the file cannot be
/// opened (write) or read/parsed (read).
void write_trace_file(const std::string& path, const TraceSink& sink);
void write_trace_file(const std::string& path, const TraceData& data);
[[nodiscard]] TraceData read_trace_file(const std::string& path);

}  // namespace czsync::trace
