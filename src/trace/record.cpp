#include "trace/record.h"

#include <cstdio>

namespace czsync::trace {

namespace {

const char* kKindNames[] = {
    "Invalid",    "EventFire", "MsgSend",  "MsgDeliver",
    "MsgDrop",    "AdvBreakIn", "AdvLeave", "AdjWrite",
    "RoundOpen",  "RoundClose", "InvariantSample",
};
static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) ==
                  kMaxRecordKind + 1,
              "keep kKindNames in sync with RecordKind");

const char* drop_reason_name(std::uint32_t reason) {
  switch (static_cast<DropReason>(reason)) {
    case DropReason::NoEdge: return "no-edge";
    case DropReason::LinkFault: return "link-fault";
    case DropReason::NoHandler: return "no-handler";
  }
  return "?";
}

const char* adj_kind_name(std::uint32_t kind) {
  switch (static_cast<AdjKind>(kind)) {
    case AdjKind::Sync: return "sync";
    case AdjKind::Join: return "join";
    case AdjKind::Smash: return "smash";
  }
  return "?";
}

std::string body_label(std::uint64_t index,
                       const char* (*body_name)(std::size_t)) {
  if (body_name != nullptr) return body_name(static_cast<std::size_t>(index));
  return "body#" + std::to_string(index);
}

}  // namespace

const char* record_kind_name(RecordKind kind) {
  const auto k = static_cast<std::uint8_t>(kind);
  return k <= kMaxRecordKind ? kKindNames[k] : "?";
}

RecordKind record_kind_from_name(const std::string& name) {
  for (std::uint8_t k = 1; k <= kMaxRecordKind; ++k) {
    if (name == kKindNames[k]) return static_cast<RecordKind>(k);
  }
  return RecordKind::Invalid;
}

std::string record_to_string(const TraceRecord& r,
                             const char* (*body_name)(std::size_t)) {
  char head[64];
  std::snprintf(head, sizeof head, "%-15s t=%.9f  ", record_kind_name(r.kind),
                r.t);
  std::string out = head;
  char buf[128];
  switch (r.kind) {
    case RecordKind::EventFire:
      std::snprintf(buf, sizeof buf, "#%llu",
                    static_cast<unsigned long long>(r.u));
      out += buf;
      break;
    case RecordKind::MsgSend:
    case RecordKind::MsgDeliver:
      std::snprintf(buf, sizeof buf, "%d -> %d  %s", r.p, r.q,
                    body_label(r.u, body_name).c_str());
      out += buf;
      break;
    case RecordKind::MsgDrop:
      std::snprintf(buf, sizeof buf, "%d -> %d  %s  (%s)", r.p, r.q,
                    body_label(r.u, body_name).c_str(),
                    drop_reason_name(r.aux));
      out += buf;
      break;
    case RecordKind::AdvBreakIn:
    case RecordKind::AdvLeave:
      std::snprintf(buf, sizeof buf, "proc %d", r.p);
      out += buf;
      break;
    case RecordKind::AdjWrite:
      std::snprintf(buf, sizeof buf, "proc %d  %s  delta=%+.9f  adj=%+.9f",
                    r.p, adj_kind_name(r.aux), r.x, r.y);
      out += buf;
      break;
    case RecordKind::RoundOpen:
      std::snprintf(buf, sizeof buf, "proc %d  round %llu", r.p,
                    static_cast<unsigned long long>(r.u));
      out += buf;
      break;
    case RecordKind::RoundClose:
      std::snprintf(buf, sizeof buf, "proc %d  round %llu%s%s%s", r.p,
                    static_cast<unsigned long long>(r.u),
                    (r.aux & kRoundWayOff) != 0 ? "  way-off" : "",
                    (r.aux & kRoundJoin) != 0 ? "  join" : "",
                    (r.aux & kRoundFromCache) != 0 ? "  from-cache" : "");
      out += buf;
      break;
    case RecordKind::InvariantSample:
      if (r.aux != 0) {
        std::snprintf(buf, sizeof buf, "stable=%llu  deviation=%.9f",
                      static_cast<unsigned long long>(r.u), r.x);
      } else {
        std::snprintf(buf, sizeof buf, "stable=0  (no stable pair)");
      }
      out += buf;
      break;
    case RecordKind::Invalid:
      out += "?";
      break;
  }
  return out;
}

}  // namespace czsync::trace
