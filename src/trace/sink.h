// TraceSink: the per-run event-trace buffer.
//
// Every instrumented layer holds a `TraceSink*` that is nullptr by
// default, so an untraced run never evaluates record arguments beyond a
// single well-predicted branch and never allocates for tracing. A run is
// single-threaded by construction (the simulator owns the only thread
// touching its World), so the sink needs no locks: "lock-free per run"
// falls out of the sweep engine giving each seed its own sink.
//
// Two capture modes share one type:
//   * full-stream (default): an append-only vector, everything kept;
//   * flight recorder: a bounded ring that keeps the newest `capacity`
//     records and counts what it overwrote — cheap enough to leave on
//     for every seed of a sweep, dumped only when a run fails.
//
// A full-stream sink can additionally carry a spill callback: once the
// buffer reaches the configured chunk size it is handed out (oldest
// first) and cleared, bounding memory for arbitrarily long runs. That is
// how the rt daemon streams czsync-trace-v1 records to disk while
// running indefinitely; the simulator paths never set it and behave
// exactly as before.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "trace/record.h"

namespace czsync::trace {

class TraceSink {
 public:
  /// Full-stream capture: keeps every record.
  TraceSink() = default;

  /// Bounded flight recorder keeping the newest `capacity` records.
  [[nodiscard]] static TraceSink flight_recorder(std::size_t capacity) {
    TraceSink s;
    s.capacity_ = capacity == 0 ? 1 : capacity;
    s.buf_.reserve(s.capacity_);
    return s;
  }

  /// Streams full chunks of `chunk_records` out through `fn` (oldest
  /// first) instead of accumulating without bound. Full-stream mode
  /// only: the flight recorder's contract is "newest records, bounded",
  /// which spilling would silently break.
  void set_spill(std::size_t chunk_records,
                 std::function<void(const TraceRecord*, std::size_t)> fn) {
    assert(capacity_ == 0 && "spill is incompatible with flight-recorder mode");
    spill_chunk_ = chunk_records == 0 ? 1 : chunk_records;
    spill_ = std::move(fn);
  }

  /// Hands any buffered records to the spill callback and clears the
  /// buffer. No-op without a spill callback.
  void flush_spill() {
    if (!spill_ || buf_.empty()) return;
    spill_(buf_.data(), buf_.size());
    spilled_ += buf_.size();
    buf_.clear();
  }

  void record(const TraceRecord& r) {
    ++total_;
    if (capacity_ == 0 || buf_.size() < capacity_) {
      buf_.push_back(r);
      if (spill_chunk_ != 0 && buf_.size() >= spill_chunk_) flush_spill();
      return;
    }
    buf_[head_] = r;
    if (++head_ == capacity_) head_ = 0;
    ++dropped_;
  }

  /// Records ever offered to the sink.
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Records overwritten by the ring (0 in full-stream mode).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Records handed to the spill callback so far.
  [[nodiscard]] std::uint64_t spilled() const { return spilled_; }
  /// True when the ring wrapped, i.e. the capture is missing its prefix.
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }
  /// Records currently held.
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// In-order copy, oldest first (unwraps the ring).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(buf_.size());
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
               buf_.end());
    out.insert(out.end(), buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    return out;
  }

 private:
  std::vector<TraceRecord> buf_;
  std::size_t capacity_ = 0;     ///< 0 = unbounded full-stream capture
  std::size_t head_ = 0;         ///< next overwrite position once wrapped
  std::size_t spill_chunk_ = 0;  ///< 0 = no spilling
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t spilled_ = 0;
  std::function<void(const TraceRecord*, std::size_t)> spill_;
};

}  // namespace czsync::trace
