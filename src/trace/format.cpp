#include "trace/format.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "trace/wire.h"

namespace czsync::trace {

namespace {

// Encoders are the buffer-based ones in trace/wire.h (shared with the
// rt backend's datagram and live-capture paths), flushed through a
// scratch buffer; byte-for-byte the output is unchanged. Decoders stay
// stream-based here — file reading wants iostream error handling.
void put_varint(std::ostream& os, std::uint64_t v) {
  std::vector<unsigned char> buf;
  wire::put_varint(buf, v);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error("czsync-trace-v1: truncated varint");
    }
    const auto byte = static_cast<unsigned char>(c);
    if (shift >= 63 && byte > 1) {
      throw std::runtime_error("czsync-trace-v1: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return v;
    shift += 7;
  }
}

double get_f64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  if (is.gcount() != 8) {
    throw std::runtime_error("czsync-trace-v1: truncated double");
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::int32_t get_proc(std::istream& is) {
  const std::uint64_t v = get_varint(is);
  if (v > 0x7fffffffu) {
    throw std::runtime_error("czsync-trace-v1: processor id out of range");
  }
  return static_cast<std::int32_t>(v);
}

void put_record(std::ostream& os, const TraceRecord& r) {
  std::vector<unsigned char> buf;
  wire::put_record(buf, r);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
}

TraceRecord get_record(std::istream& is) {
  const std::uint64_t kind = get_varint(is);
  if (kind == 0 || kind > kMaxRecordKind) {
    throw std::runtime_error("czsync-trace-v1: unknown record kind " +
                             std::to_string(kind));
  }
  TraceRecord r;
  r.kind = static_cast<RecordKind>(kind);
  r.t = get_f64(is);
  switch (r.kind) {
    case RecordKind::EventFire:
      r.u = get_varint(is);
      break;
    case RecordKind::MsgSend:
    case RecordKind::MsgDeliver:
      r.p = get_proc(is);
      r.q = get_proc(is);
      r.u = get_varint(is);
      break;
    case RecordKind::MsgDrop:
      r.p = get_proc(is);
      r.q = get_proc(is);
      r.aux = static_cast<std::uint32_t>(get_varint(is));
      r.u = get_varint(is);
      break;
    case RecordKind::AdvBreakIn:
    case RecordKind::AdvLeave:
      r.p = get_proc(is);
      break;
    case RecordKind::AdjWrite:
      r.p = get_proc(is);
      r.aux = static_cast<std::uint32_t>(get_varint(is));
      r.x = get_f64(is);
      r.y = get_f64(is);
      break;
    case RecordKind::RoundOpen:
      r.p = get_proc(is);
      r.u = get_varint(is);
      break;
    case RecordKind::RoundClose:
      r.p = get_proc(is);
      r.aux = static_cast<std::uint32_t>(get_varint(is));
      r.u = get_varint(is);
      break;
    case RecordKind::InvariantSample:
      r.aux = static_cast<std::uint32_t>(get_varint(is));
      r.u = get_varint(is);
      r.x = get_f64(is);
      break;
    case RecordKind::Invalid:
      break;  // unreachable: rejected above
  }
  return r;
}

}  // namespace

void write_trace(std::ostream& os, const TraceData& data) {
  os.write(kTraceMagic, sizeof kTraceMagic);
  put_varint(os, kTraceVersion);
  put_varint(os, data.truncated ? kFlagTruncated : 0);
  put_varint(os, data.dropped);
  put_varint(os, data.records.size());
  for (const auto& r : data.records) put_record(os, r);
}

void write_trace(std::ostream& os, const TraceSink& sink) {
  TraceData data;
  data.truncated = sink.truncated();
  data.dropped = sink.dropped();
  data.records = sink.snapshot();
  write_trace(os, data);
}

TraceData read_trace(std::istream& is) {
  char magic[sizeof kTraceMagic];
  is.read(magic, sizeof magic);
  if (is.gcount() != sizeof magic ||
      std::memcmp(magic, kTraceMagic, sizeof magic) != 0) {
    throw std::runtime_error("czsync-trace-v1: bad magic (not a .cztrace?)");
  }
  const std::uint64_t version = get_varint(is);
  if (version != kTraceVersion) {
    throw std::runtime_error("czsync-trace-v1: unsupported version " +
                             std::to_string(version));
  }
  TraceData data;
  const std::uint64_t flags = get_varint(is);
  data.truncated = (flags & kFlagTruncated) != 0;
  data.dropped = get_varint(is);
  const std::uint64_t count = get_varint(is);
  // `count` is attacker-controlled: a corrupt header can claim 2^60
  // records and a naive reserve would throw bad_alloc (or OOM) before
  // the record loop ever notices the stream is short. Pre-reserve only
  // what a plausible stream can hold (a record is >= 2 bytes on the
  // wire); beyond that, let push_back grow geometrically and the loop
  // fail on the actual truncated read.
  constexpr std::uint64_t kReserveCap = 1u << 20;
  data.records.reserve(static_cast<std::size_t>(std::min(count, kReserveCap)));
  for (std::uint64_t i = 0; i < count; ++i) {
    data.records.push_back(get_record(is));
  }
  return data;
}

void write_trace_file(const std::string& path, const TraceSink& sink) {
  TraceData data;
  data.truncated = sink.truncated();
  data.dropped = sink.dropped();
  data.records = sink.snapshot();
  write_trace_file(path, data);
}

void write_trace_file(const std::string& path, const TraceData& data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  write_trace(f, data);
  if (!f) {
    throw std::runtime_error("write to '" + path + "' failed");
  }
}

TraceData read_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  return read_trace(f);
}

}  // namespace czsync::trace
