// TracePort: the window through which protocol engines emit trace
// records without depending on the simulator.
//
// The layering DAG (DESIGN.md §4.9) places core/ and broadcast/ below
// sim/: an engine may read hardware time only via clock/ and must not
// include sim/ internals. Engines still need two things from the run's
// host to emit trace records — the installed sink (nullptr when the run
// is untraced) and the current real time for stamping. TracePort borrows
// exactly those two slots. It is a copyable value; the host (the
// simulator) must outlive every engine holding a port onto it.
#pragma once

#include "trace/sink.h"
#include "util/time_domain.h"

namespace czsync::trace {

class TracePort {
 public:
  TracePort(TraceSink* const* sink_slot, const SimTau* now)
      : sink_slot_(sink_slot), now_(now) {}

  /// Installed sink, nullptr when the run is untraced. Re-read on every
  /// call: the host may attach or detach a sink mid-run.
  [[nodiscard]] TraceSink* sink() const { return *sink_slot_; }

  /// Current real time, used only to stamp trace records.
  [[nodiscard]] SimTau now() const { return *now_; }

 private:
  TraceSink* const* sink_slot_;
  const SimTau* now_;
};

}  // namespace czsync::trace
