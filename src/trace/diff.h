// First-divergence diffing of two traces.
//
// Two runs of the same (Scenario, seed) produce byte-identical traces;
// the first record where two traces disagree is therefore the first
// observable event at which the runs diverged — usually orders of
// magnitude more useful than "the final deviation differs". Used by
// `czsync_trace diff` and the determinism tests.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "trace/format.h"

namespace czsync::trace {

struct TraceDiff {
  bool identical = true;
  /// Index of the first divergent record (== min(size) when one trace is
  /// a strict prefix of the other). Valid only when !identical.
  std::size_t first_divergence = 0;
};

/// Compares record streams positionally. Header differences (truncated /
/// dropped) do not count as divergence — a flight-recorder capture of
/// the same run is compared by its retained records.
[[nodiscard]] TraceDiff diff_traces(const TraceData& a, const TraceData& b);

/// Human-readable report: "traces identical" or the first divergent
/// record of each side with up to `context` preceding (shared) records.
/// `body_name` is forwarded to record_to_string. Returns diff.identical.
bool print_diff(std::ostream& os, const TraceData& a, const TraceData& b,
                std::size_t context = 3,
                const char* (*body_name)(std::size_t) = nullptr);

}  // namespace czsync::trace
