#include "net/delay_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace czsync::net {

DelayModel::DelayModel(Dur bound) : bound_(bound) {
  assert(bound > Dur::zero() && bound.is_finite());
}

Dur DelayModel::clamp(Dur d) const {
  // Delivery takes strictly positive time and never exceeds the bound.
  const Dur floor = bound_ * 1e-6;
  return std::clamp(d, floor, bound_);
}

FixedDelay::FixedDelay(Dur bound, double fraction)
    : DelayModel(bound), value_(clamp(bound * fraction)) {
  assert(fraction > 0.0 && fraction <= 1.0);
}

Dur FixedDelay::sample(Rng&, ProcId, ProcId) const { return value_; }

UniformDelay::UniformDelay(Dur bound, Dur lo) : DelayModel(bound), lo_(lo) {
  assert(lo >= Dur::zero() && lo < bound);
}

Dur UniformDelay::sample(Rng& rng, ProcId, ProcId) const {
  return clamp(Dur::seconds(rng.uniform(lo_.sec(), bound().sec())));
}

AsymmetricDelay::AsymmetricDelay(Dur bound, double lo_fraction,
                                 double hi_fraction, double jitter_fraction)
    : DelayModel(bound),
      lo_fraction_(lo_fraction),
      hi_fraction_(hi_fraction),
      jitter_fraction_(jitter_fraction) {
  assert(lo_fraction > 0.0 && hi_fraction <= 1.0 && lo_fraction <= hi_fraction);
}

Dur AsymmetricDelay::sample(Rng& rng, ProcId from, ProcId to) const {
  const double base = from < to ? hi_fraction_ : lo_fraction_;
  const double jitter = rng.uniform(-jitter_fraction_, jitter_fraction_);
  return clamp(bound() * (base + jitter));
}

JitterDelay::JitterDelay(Dur bound, Dur base, Dur jitter_mean)
    : DelayModel(bound), base_(base), jitter_mean_(jitter_mean) {
  assert(base > Dur::zero() && base < bound);
  assert(jitter_mean > Dur::zero());
}

Dur JitterDelay::sample(Rng& rng, ProcId, ProcId) const {
  const double u = std::max(rng.uniform01(), 1e-12);
  const Dur jitter = Dur::seconds(-std::log(u) * jitter_mean_.sec());
  return clamp(base_ + jitter);
}

std::unique_ptr<DelayModel> make_fixed_delay(Dur bound, double fraction) {
  return std::make_unique<FixedDelay>(bound, fraction);
}

std::unique_ptr<DelayModel> make_uniform_delay(Dur bound, Dur lo) {
  return std::make_unique<UniformDelay>(bound, lo);
}

std::unique_ptr<DelayModel> make_asymmetric_delay(Dur bound) {
  return std::make_unique<AsymmetricDelay>(bound);
}

std::unique_ptr<DelayModel> make_jitter_delay(Dur bound, Dur base,
                                              Dur jitter_mean) {
  return std::make_unique<JitterDelay>(bound, base, jitter_mean);
}

}  // namespace czsync::net
