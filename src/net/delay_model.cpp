#include "net/delay_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace czsync::net {

DelayModel::DelayModel(Duration bound) : bound_(bound) {
  assert(bound > Duration::zero() && bound.is_finite());
}

Duration DelayModel::clamp(Duration d) const {
  // Delivery takes strictly positive time and never exceeds the bound.
  const Duration floor = bound_ * 1e-6;
  return std::clamp(d, floor, bound_);
}

FixedDelay::FixedDelay(Duration bound, double fraction)
    : DelayModel(bound), value_(clamp(bound * fraction)) {
  assert(fraction > 0.0 && fraction <= 1.0);
}

Duration FixedDelay::sample(Rng&, ProcId, ProcId) const { return value_; }

UniformDelay::UniformDelay(Duration bound, Duration lo) : DelayModel(bound), lo_(lo) {
  assert(lo >= Duration::zero() && lo < bound);
}

Duration UniformDelay::sample(Rng& rng, ProcId, ProcId) const {
  return clamp(Duration::seconds(rng.uniform(lo_.sec(), bound().sec())));
}

AsymmetricDelay::AsymmetricDelay(Duration bound, double lo_fraction,
                                 double hi_fraction, double jitter_fraction)
    : DelayModel(bound),
      lo_fraction_(lo_fraction),
      hi_fraction_(hi_fraction),
      jitter_fraction_(jitter_fraction) {
  assert(lo_fraction > 0.0 && hi_fraction <= 1.0 && lo_fraction <= hi_fraction);
}

Duration AsymmetricDelay::sample(Rng& rng, ProcId from, ProcId to) const {
  const double base = from < to ? hi_fraction_ : lo_fraction_;
  const double jitter = rng.uniform(-jitter_fraction_, jitter_fraction_);
  return clamp(bound() * (base + jitter));
}

JitterDelay::JitterDelay(Duration bound, Duration base, Duration jitter_mean)
    : DelayModel(bound), base_(base), jitter_mean_(jitter_mean) {
  assert(base > Duration::zero() && base < bound);
  assert(jitter_mean > Duration::zero());
}

Duration JitterDelay::sample(Rng& rng, ProcId, ProcId) const {
  const double u = std::max(rng.uniform01(), 1e-12);
  const Duration jitter = Duration::seconds(-std::log(u) * jitter_mean_.sec());
  return clamp(base_ + jitter);
}

std::unique_ptr<DelayModel> make_fixed_delay(Duration bound, double fraction) {
  return std::make_unique<FixedDelay>(bound, fraction);
}

std::unique_ptr<DelayModel> make_uniform_delay(Duration bound, Duration lo) {
  return std::make_unique<UniformDelay>(bound, lo);
}

std::unique_ptr<DelayModel> make_asymmetric_delay(Duration bound) {
  return std::make_unique<AsymmetricDelay>(bound);
}

std::unique_ptr<DelayModel> make_jitter_delay(Duration bound, Duration base,
                                              Duration jitter_mean) {
  return std::make_unique<JitterDelay>(bound, base, jitter_mean);
}

}  // namespace czsync::net
