// Wire messages.
//
// Links are authenticated (§2.2): the `from` field is set by the network
// layer and cannot be forged, so a Byzantine processor can lie about its
// clock but not impersonate a peer. All protocol messages used anywhere in
// the repository are enumerated in one closed variant, which both mirrors
// a real wire format and lets handlers be exhaustive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <variant>
#include <vector>

#include "util/time_domain.h"

namespace czsync::net {

/// Processor identifier, 0-based, dense in [0, n).
using ProcId = int;

/// Clock-estimation request (the "ping" of §3.1). The nonce pairs the
/// reply with the request; it also defeats cross-round replays.
struct PingReq {
  std::uint64_t nonce = 0;
};

/// Clock-estimation reply: the responder's logical clock at send time.
struct PingResp {
  std::uint64_t nonce = 0;
  LogicalTime responder_clock;
};

/// Round-tagged estimation messages, used only by the round-based
/// comparator protocol (core::RoundSyncProcess, the §3.3 ablation).
/// Replies carry the responder's current round so the requester can
/// discard cross-round values, as round-based algorithms must.
struct RoundPingReq {
  std::uint64_t nonce = 0;
  std::uint64_t round = 0;
};
struct RoundPingResp {
  std::uint64_t nonce = 0;
  std::uint64_t round = 0;  ///< responder's current round
  LogicalTime responder_clock;
};

/// A signature over a broadcast payload (src/broadcast). The mac is
/// produced/verified by broadcast::Authenticator; within the simulation
/// it is unforgeable because signer secrets never leave that service.
struct Signature {
  ProcId signer = -1;
  std::uint64_t mac = 0;

  bool operator==(const Signature&) const = default;
};

/// Round announcement of the broadcast-based comparator (§1.1's [10]
/// family, implemented Srikanth-Toueg style): "logical time round*P has
/// arrived", carrying the signatures supporting the claim. A bundle with
/// >= f+1 distinct valid signatures is proof that at least one correct
/// processor's clock reached the round.
struct StRoundMsg {
  std::uint64_t round = 0;
  std::vector<Signature> sigs;
};

/// Proactive-maintenance message (src/proactive): announces that the
/// sender performed its refresh for `epoch` carrying a share commitment.
struct RefreshAnnounce {
  std::uint64_t epoch = 0;
  std::uint64_t share_digest = 0;
};

/// Application-level timestamp request/response pair used by the
/// timestamping example.
struct TimestampReq {
  std::uint64_t nonce = 0;
};
struct TimestampResp {
  std::uint64_t nonce = 0;
  LogicalTime stamp;
};

using Body = std::variant<PingReq, PingResp, RoundPingReq, RoundPingResp,
                          StRoundMsg, RefreshAnnounce, TimestampReq,
                          TimestampResp>;

/// Number of Body alternatives; indexes NetworkStats::sent_by_body.
inline constexpr std::size_t kBodyAlternatives = std::variant_size_v<Body>;

/// Display name of the Body alternative at `index` (Body{}.index() order),
/// for stats reporting.
[[nodiscard]] constexpr const char* body_name(std::size_t index) {
  constexpr const char* kNames[] = {"PingReq",         "PingResp",
                                    "RoundPingReq",    "RoundPingResp",
                                    "StRoundMsg",      "RefreshAnnounce",
                                    "TimestampReq",    "TimestampResp"};
  static_assert(std::size(kNames) == kBodyAlternatives,
                "keep kNames in sync with the Body variant");
  return index < kBodyAlternatives ? kNames[index] : "?";
}

struct Message {
  ProcId from = -1;  ///< authenticated sender id (set by the network)
  ProcId to = -1;
  Body body;
};

}  // namespace czsync::net
