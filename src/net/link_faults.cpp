#include "net/link_faults.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace czsync::net {

LinkFaultSet::LinkFaultSet(std::vector<LinkFault> faults)
    : faults_(std::move(faults)) {
  for (auto& f : faults_) {
    assert(f.a >= 0 && f.b >= 0 && f.a != f.b);
    assert(f.end > f.start);
    if (f.a > f.b) std::swap(f.a, f.b);
  }
  std::sort(faults_.begin(), faults_.end(),
            [](const LinkFault& x, const LinkFault& y) {
              return x.start < y.start;
            });
}

bool LinkFaultSet::cut_at(ProcId a, ProcId b, SimTau t) const {
  if (a > b) std::swap(a, b);
  for (const auto& f : faults_) {
    if (f.start > t) break;
    if (f.a == a && f.b == b && t >= f.start && t < f.end) return true;
  }
  return false;
}

int LinkFaultSet::max_cut_degree() const {
  // Evaluate the cut-degree of every processor at every interval start.
  int worst = 0;
  for (const auto& probe : faults_) {
    std::map<ProcId, std::set<ProcId>> deg;
    for (const auto& f : faults_) {
      if (f.start <= probe.start && f.end > probe.start) {
        deg[f.a].insert(f.b);
        deg[f.b].insert(f.a);
      }
    }
    for (const auto& [p, peers] : deg)
      worst = std::max(worst, static_cast<int>(peers.size()));
  }
  return worst;
}

LinkFaultSet LinkFaultSet::isolate_partially(ProcId center,
                                             const std::vector<ProcId>& peers,
                                             SimTau start, SimTau end) {
  std::vector<LinkFault> out;
  out.reserve(peers.size());
  for (ProcId q : peers) out.push_back({center, q, start, end});
  return LinkFaultSet(std::move(out));
}

LinkFaultSet LinkFaultSet::random_flapping(int n, int concurrent, Duration min_cut,
                                           Duration max_cut, Duration rest,
                                           SimTau horizon, Rng rng) {
  assert(n >= 2 && concurrent >= 1);
  assert(Duration::zero() < min_cut && min_cut <= max_cut);
  std::vector<LinkFault> out;
  for (int slot = 0; slot < concurrent; ++slot) {
    SimTau t = SimTau(rng.uniform(0.0, (max_cut + rest).sec()));
    while (t < horizon) {
      const auto a = static_cast<ProcId>(rng.uniform_int(0, n - 1));
      auto b = static_cast<ProcId>(rng.uniform_int(0, n - 2));
      if (b >= a) b = static_cast<ProcId>(b + 1);
      const Duration cut = Duration::seconds(rng.uniform(min_cut.sec(), max_cut.sec()));
      out.push_back({a, b, t, t + cut});
      t = t + cut + rest;
    }
  }
  return LinkFaultSet(std::move(out));
}

}  // namespace czsync::net
