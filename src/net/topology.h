// Communication graphs.
//
// The paper's protocol assumes a full mesh (§2.1); Section 5 discusses
// running it on general graphs and gives an explicit counterexample: two
// (3f+1)-cliques joined by a perfect matching are (3f+1)-connected, yet
// the protocol cannot keep the cliques together. We support arbitrary
// undirected graphs so that counterexample (experiment E7) is runnable,
// and we implement vertex connectivity so the "(3f+1)-connected" part of
// the claim is checkable in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "net/message.h"
#include "util/rng.h"

namespace czsync::net {

class Topology {
 public:
  /// Complete graph K_n.
  [[nodiscard]] static Topology full_mesh(int n);
  /// Cycle on n >= 3 vertices.
  [[nodiscard]] static Topology ring(int n);
  /// Section 5 counterexample: two cliques of (3f+1) vertices each, plus
  /// a perfect matching (vertex i of clique A to vertex i of clique B).
  /// Total 6f+2 vertices; vertex connectivity 3f+1.
  [[nodiscard]] static Topology two_cliques(int f);
  /// Arbitrary undirected graph from an edge list.
  [[nodiscard]] static Topology from_edges(
      int n, const std::vector<std::pair<int, int>>& edges);
  /// Erdos-Renyi G(n, p) conditioned on connectivity: resamples (up to
  /// 1000 tries) until the graph is connected; used for the §5 question
  /// of how much connectivity the protocol needs in practice.
  [[nodiscard]] static Topology gnp_connected(int n, double p, Rng& rng);
  /// Random d-regular-ish graph: a Hamiltonian cycle plus random
  /// matchings until every vertex has degree >= d (degrees end in
  /// {d, d+1}). Connected by construction.
  [[nodiscard]] static Topology random_regular(int n, int d, Rng& rng);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool has_edge(ProcId a, ProcId b) const;
  /// Neighbors of p, ascending, excluding p itself.
  [[nodiscard]] const std::vector<ProcId>& neighbors(ProcId p) const;
  [[nodiscard]] int degree(ProcId p) const;
  [[nodiscard]] int min_degree() const;
  [[nodiscard]] std::size_t edge_count() const;

  /// True when the graph is connected (trivially true for n <= 1).
  [[nodiscard]] bool is_connected() const;

  /// Exact vertex connectivity via max-flow on the split-vertex network
  /// (Even's algorithm). O(n) max-flow runs; fine for the n <= 100 graphs
  /// used here. Returns n-1 for complete graphs.
  [[nodiscard]] int vertex_connectivity() const;

 private:
  explicit Topology(int n);
  void add_edge(int a, int b);

  int n_;
  std::vector<std::vector<ProcId>> adj_;       // sorted neighbor lists
  std::vector<std::vector<char>> adj_matrix_;  // O(1) has_edge
};

}  // namespace czsync::net
