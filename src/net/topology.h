// Communication graphs.
//
// The paper's protocol assumes a full mesh (§2.1); Section 5 discusses
// running it on general graphs and gives an explicit counterexample: two
// (3f+1)-cliques joined by a perfect matching are (3f+1)-connected, yet
// the protocol cannot keep the cliques together. We support arbitrary
// undirected graphs so that counterexample (experiment E7) is runnable,
// and we implement vertex connectivity so the "(3f+1)-connected" part of
// the claim is checkable in tests.
//
// Storage is CSR (compressed sparse row): one flat offsets array of n+1
// entries plus one flat neighbor array holding every adjacency list
// back-to-back, each sorted ascending. Memory is O(n + edges) — there is
// no adjacency matrix — so sparse graphs at n >= 10^5 cost megabytes,
// not the tens of gigabytes an n^2 matrix would. has_edge is a binary
// search over the smaller endpoint's list: O(log deg), which for the
// bounded-degree graphs the scale experiments run is effectively O(1).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/message.h"
#include "util/rng.h"

namespace czsync::net {

class Topology {
 public:
  /// Complete graph K_n.
  [[nodiscard]] static Topology full_mesh(int n);
  /// Cycle on n >= 3 vertices.
  [[nodiscard]] static Topology ring(int n);
  /// Section 5 counterexample: two cliques of (3f+1) vertices each, plus
  /// a perfect matching (vertex i of clique A to vertex i of clique B).
  /// Total 6f+2 vertices; vertex connectivity 3f+1.
  [[nodiscard]] static Topology two_cliques(int f);
  /// Arbitrary undirected graph from an edge list (duplicates collapse).
  [[nodiscard]] static Topology from_edges(
      int n, const std::vector<std::pair<int, int>>& edges);
  /// Erdos-Renyi G(n, p) conditioned on connectivity: resamples with
  /// fresh draws up to `max_attempts` times until the sampled graph is
  /// connected. Edges are drawn by geometric skip-sampling — O(n + p n^2)
  /// expected work, never a per-pair Bernoulli loop — so sparse graphs at
  /// n = 10^5 generate in milliseconds. If every attempt is disconnected
  /// (p below the ~ln(n)/n connectivity threshold), the FINAL FALLBACK is
  /// a ring plus one last edge sample: callers always get a connected
  /// graph, and the event is observable instead of silent — gnp_retries()
  /// counts the resamples and gnp_fell_back() reports the fallback, which
  /// World exports as the net.gnp_retries / net.gnp_fallback metrics.
  [[nodiscard]] static Topology gnp_connected(int n, double p, Rng& rng,
                                              int max_attempts = 64);
  /// Random d-regular-ish graph: a Hamiltonian cycle plus random
  /// matchings until every vertex has degree >= d (degrees end in
  /// {d, d+1}). Connected by construction. The argmin-degree vertex is
  /// tracked in an ordered set (O(log n) per step, same draw sequence as
  /// the historical linear scan), so generation is O(n d log n) overall.
  [[nodiscard]] static Topology random_regular(int n, int d, Rng& rng);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool has_edge(ProcId a, ProcId b) const;
  /// Neighbors of p, ascending, excluding p itself. A view into the CSR
  /// arrays — valid as long as this Topology is alive.
  [[nodiscard]] std::span<const ProcId> neighbors(ProcId p) const {
    assert_valid(p);
    return {neighbors_.data() + offsets_[static_cast<std::size_t>(p)],
            neighbors_.data() + offsets_[static_cast<std::size_t>(p) + 1]};
  }
  [[nodiscard]] int degree(ProcId p) const {
    assert_valid(p);
    return static_cast<int>(offsets_[static_cast<std::size_t>(p) + 1] -
                            offsets_[static_cast<std::size_t>(p)]);
  }
  [[nodiscard]] int min_degree() const;
  [[nodiscard]] std::size_t edge_count() const { return neighbors_.size() / 2; }

  /// True when the graph is connected (trivially true for n <= 1).
  [[nodiscard]] bool is_connected() const;

  /// Exact vertex connectivity via max-flow on the split-vertex network
  /// (Even's algorithm). O(n) max-flow runs; fine for the n <= 100 graphs
  /// used here — NOT for the 10^5-node scale graphs (it allocates an
  /// O(n^2) capacity matrix and is therefore test/analysis-only, never on
  /// the simulation run path). Returns n-1 for complete graphs.
  [[nodiscard]] int vertex_connectivity() const;

  /// gnp_connected diagnostics: how many whole-graph resamples the
  /// conditioning loop needed (0 for every other constructor), and
  /// whether it exhausted its attempts and fell back to ring+edges.
  [[nodiscard]] std::uint32_t gnp_retries() const { return gnp_retries_; }
  [[nodiscard]] bool gnp_fell_back() const { return gnp_fallback_; }

 private:
  using Edge = std::pair<ProcId, ProcId>;

  /// Builds the CSR arrays from an (unordered, possibly duplicated) edge
  /// list in O(n + E log E).
  Topology(int n, std::vector<Edge> edges);

  void assert_valid([[maybe_unused]] ProcId p) const {
    assert(p >= 0 && p < n_);
  }

  int n_;
  /// CSR row starts: neighbors of p live at
  /// neighbors_[offsets_[p] .. offsets_[p+1]), sorted ascending.
  std::vector<std::uint32_t> offsets_;
  std::vector<ProcId> neighbors_;
  std::uint32_t gnp_retries_ = 0;
  bool gnp_fallback_ = false;
};

}  // namespace czsync::net
