// Authenticated point-to-point network (§2.2 delivery contract).
//
// Guarantees enforced here:
//   * messages travel only along topology edges;
//   * every message is delivered exactly once, within (0, delta];
//   * the `from` field of a delivered message is the true sender
//     (authentication) — a Byzantine node can lie in the *body* only.
//
// Fault timing is the adversary engine's business: a controlled node's
// protocol is replaced by the adversary's strategy at dispatch time (see
// src/adversary), not by tampering with the channel. This matches the
// paper's model where links themselves are never corrupted.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/delay_model.h"
#include "net/link_faults.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace czsync::net {

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_edge = 0;
  std::uint64_t dropped_no_handler = 0;
  std::uint64_t dropped_link_fault = 0;
  /// DelayModel samples outside (0, bound], clamped back into range. A
  /// correct model never trips this; nonzero means the model violates the
  /// §2.2 delivery contract and the run's δ-dependent bounds are suspect.
  std::uint64_t delay_violations = 0;
  /// Send attempts by Body alternative (body_name(i) labels index i);
  /// counts every send(), including ones later dropped.
  std::array<std::uint64_t, kBodyAlternatives> sent_by_body{};

  /// Snapshot into `scope`; per-body counts land under
  /// "sent_by_body.<Name>" (only alternatives that were actually sent).
  void export_metrics(util::MetricRegistry::Scope scope) const;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& sim, Topology topology,
          std::unique_ptr<DelayModel> delay, Rng rng);

  /// Installs the inbound-message handler for processor `p`.
  void register_handler(ProcId p, Handler handler);

  /// Installs link faults (§1.2 probe): messages sent while their link
  /// is cut are silently dropped — the receiver simply times out, which
  /// is indistinguishable from a silent faulty peer.
  void set_link_faults(LinkFaultSet faults) { link_faults_ = std::move(faults); }
  [[nodiscard]] const LinkFaultSet& link_faults() const { return link_faults_; }

  /// Sends `body` from `from` to `to`. Messages to self are rejected
  /// (the protocol estimates its own clock locally). Non-edges drop the
  /// message and count it; per §2.1 the standard configuration is a full
  /// mesh where every pair is an edge.
  void send(ProcId from, ProcId to, Body body);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Dur delay_bound() const { return delay_->bound(); }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] int size() const { return topology_.size(); }

 private:
  /// Typed in-flight message: scheduled directly into the simulator's
  /// event pool, moving the Message into the pool slot instead of
  /// capturing it in a std::function (which would heap-allocate per
  /// message). Sized to stay within SmallFn's inline capacity.
  struct DeliverEvent {
    Network* net;
    Message msg;
    void operator()() { net->deliver(msg); }
  };

  void deliver(const Message& msg);

  sim::Simulator& sim_;
  Topology topology_;
  std::unique_ptr<DelayModel> delay_;
  /// Cached DelayModel::constant_delay(): deterministic models skip the
  /// per-message virtual call (provably RNG-sequence-neutral — such
  /// models never draw).
  std::optional<Dur> constant_delay_;
  Rng rng_;
  std::vector<Handler> handlers_;
  LinkFaultSet link_faults_;
  NetworkStats stats_;
};

}  // namespace czsync::net
