// Authenticated point-to-point network (§2.2 delivery contract).
//
// Guarantees enforced here:
//   * messages travel only along topology edges;
//   * every message is delivered exactly once, within (0, delta];
//   * the `from` field of a delivered message is the true sender
//     (authentication) — a Byzantine node can lie in the *body* only.
//
// Fault timing is the adversary engine's business: a controlled node's
// protocol is replaced by the adversary's strategy at dispatch time (see
// src/adversary), not by tampering with the channel. This matches the
// paper's model where links themselves are never corrupted.
//
// Fanout batching: a round's all-neighbor fanout is the simulator's
// dominant workload (O(n²) messages per sync wave). The Fanout builder
// collects one sender's burst, then commits it as a single pooled event
// train (sim::BatchStamp entries sorted by delivery time) instead of n
// independent pool events: one slot and one live heap entry per burst.
// Per-message FIFO sequence numbers are reserved at add() time and each
// delivery fires as its own simulator event, so traces and metrics are
// byte-identical to unbatched sends — set_batched_fanout(false) switches
// to per-message scheduling and the fanout_equivalence test proves the
// two modes produce identical czsync-trace-v1 bytes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/delay_model.h"
#include "net/link_faults.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace czsync::net {

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_edge = 0;
  std::uint64_t dropped_no_handler = 0;
  std::uint64_t dropped_link_fault = 0;
  /// DelayModel samples outside (0, bound], clamped back into range. A
  /// correct model never trips this; nonzero means the model violates the
  /// §2.2 delivery contract and the run's δ-dependent bounds are suspect.
  /// Counted per message on the constant-delay fast path too (the
  /// constant is validated once at construction and the verdict cached).
  std::uint64_t delay_violations = 0;
  /// Send attempts by Body alternative (body_name(i) labels index i);
  /// counts every send(), including ones later dropped.
  std::array<std::uint64_t, kBodyAlternatives> sent_by_body{};

  /// Snapshot into `scope`; per-body counts land under
  /// "sent_by_body.<Name>" (only alternatives that were actually sent).
  void export_metrics(util::MetricRegistry::Scope scope) const;
};

/// Handle to a committed in-flight fanout train, for cancellation. 0 is
/// never issued ("no fanout"); generation-checked like sim::EventId.
using FanoutId = std::uint64_t;
inline constexpr FanoutId kNoFanout = 0;

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& sim, Topology topology,
          std::unique_ptr<DelayModel> delay, Rng rng);

  /// Installs the inbound-message handler for processor `p`. Throws
  /// std::out_of_range for ids outside [0, size()) — in every build
  /// type, not just with asserts on.
  void register_handler(ProcId p, Handler handler);

  /// Installs link faults (§1.2 probe): messages sent while their link
  /// is cut are silently dropped — the receiver simply times out, which
  /// is indistinguishable from a silent faulty peer.
  void set_link_faults(LinkFaultSet faults) { link_faults_ = std::move(faults); }
  [[nodiscard]] const LinkFaultSet& link_faults() const { return link_faults_; }

  /// Sends `body` from `from` to `to`. Out-of-range ids throw
  /// std::out_of_range and self-sends throw std::invalid_argument (the
  /// protocol estimates its own clock locally) — enforced in every
  /// build type. Non-edges drop the message and count it; per §2.1 the
  /// standard configuration is a full mesh where every pair is an edge.
  void send(ProcId from, ProcId to, Body body);

  /// Builder for one sender's fanout burst. add() performs exactly the
  /// checks, counters, trace records and RNG draws of send(), in call
  /// order; commit() schedules the surviving messages as one pooled
  /// event train (or had scheduled them individually in unbatched mode).
  /// One Fanout must be fully built and committed before the simulator
  /// runs again (the builder holds pre-reserved FIFO ranks).
  class Fanout {
   public:
    Fanout(const Fanout&) = delete;
    Fanout& operator=(const Fanout&) = delete;
    ~Fanout() {
      if (!committed_) commit();
    }

    /// Queues one message of the burst; identical observable semantics
    /// to Network::send(from, to, body).
    void add(ProcId to, Body body) { net_->fanout_add(*this, to, std::move(body)); }

    /// Schedules the burst. Returns a cancellable handle, or kNoFanout
    /// when nothing survived the drop checks (or batching is off —
    /// unbatched sends are cancelled per-event, not per-burst).
    FanoutId commit() { return net_->fanout_commit(*this); }

   private:
    friend class Network;
    Fanout(Network& net, ProcId from) : net_(&net), from_(from) {}

    Network* net_;
    ProcId from_;
    std::uint32_t batch_ = 0xffffffffu;  // acquired on first surviving add
    bool committed_ = false;
  };

  /// Starts a fanout burst from `from`.
  [[nodiscard]] Fanout fanout(ProcId from) { return Fanout(*this, from); }

  /// Routes outbound messages to a real transport instead of the
  /// simulator. With a transport installed, send()/Fanout::add() still
  /// run the full precheck (edge/link-fault checks, counters, MsgSend
  /// trace records) but then hand the surviving message to `transport`
  /// with NO delay draw — on a real network the wire provides the delay,
  /// and keeping the RNG out of the remote path means the embedded
  /// simulator's event stream stays exactly the local one. Inbound
  /// messages re-enter through deliver_remote().
  using RemoteTransport = std::function<void(const Message&)>;
  void set_remote_transport(RemoteTransport transport) {
    remote_ = std::move(transport);
  }

  /// Injects a message arriving from a real transport, as if its
  /// DeliverEvent had just fired: delivered counter, MsgDeliver trace
  /// record, handler dispatch. Returns false (dropping the message, no
  /// state touched) on ids outside [0, size()) or a self-send — datagram
  /// bytes are attacker-controlled, so unlike send() this path must
  /// never throw or index out of bounds on bad input.
  bool deliver_remote(const Message& msg);

  /// Cancels every undelivered message of a committed fanout train.
  /// False if the train already fully delivered, was cancelled, or never
  /// existed; entries delivered before cancellation stay delivered.
  bool cancel_fanout(FanoutId id);

  /// Batched fanout on/off (default on). Off = Fanout::add schedules one
  /// pool event per message, the pre-batching behaviour. Observable run
  /// behaviour (traces, delivery order, RNG sequence) is identical in
  /// both modes; only event-pool accounting differs. Takes effect for
  /// subsequently started fanouts.
  void set_batched_fanout(bool on) { batched_fanout_ = on; }
  [[nodiscard]] bool batched_fanout() const { return batched_fanout_; }

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Duration delay_bound() const { return delay_->bound(); }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] int size() const { return topology_.size(); }

 private:
  static constexpr std::uint32_t kNoBatch = 0xffffffffu;

  /// Typed in-flight message: scheduled directly into the simulator's
  /// event pool, moving the Message into the pool slot instead of
  /// capturing it in a std::function (which would heap-allocate per
  /// message). Sized to stay within SmallFn's inline capacity.
  struct DeliverEvent {
    Network* net;
    Message msg;
    void operator()() { net->deliver(msg); }
  };

  /// Train action for one committed fanout burst: each simulator event
  /// of the train delivers the next message of the batch.
  struct FanoutStep {
    Network* net;
    std::uint32_t batch;
    void operator()() { net->fanout_step(batch); }
  };

  /// One queued message of a burst: its delivery instant, the FIFO rank
  /// reserved at add() time, and the payload.
  struct PendingSend {
    SimTau t;
    std::uint64_t seq = 0;
    Message msg;
  };

  /// Pooled per-burst storage. Lives in batches_ (reused via free list,
  /// generation-checked like event-pool slots); `stamps` mirrors
  /// `pending` post-sort and is what the simulator train points into, so
  /// it must not be touched while the train is live.
  /// Flat sort key for fanout_commit's delay sort: 16 bytes, compared
  /// without touching the (much larger) PendingSend records. `bits` is
  /// the delivery time's IEEE-754 bit pattern — delivery times are
  /// non-negative finite doubles, whose bit patterns order exactly like
  /// their values, so the sort runs on integer compares. Seqs are
  /// assigned in add() order, so idx breaks time ties identically to
  /// the (t, seq) fire order the stamps need.
  struct FanoutKey {
    std::uint64_t bits;
    std::uint32_t idx;

    bool operator<(const FanoutKey& o) const {
      if (bits != o.bits) return bits < o.bits;
      return idx < o.idx;
    }
  };

  struct FanoutBatch {
    std::vector<PendingSend> pending;  ///< in add() order (never reordered)
    std::vector<std::uint32_t> order;  ///< delivery order -> pending index
    std::vector<FanoutKey> keys;       ///< commit-time sort scratch
    std::vector<sim::BatchStamp> stamps;
    std::size_t cursor = 0;
    std::uint32_t gen = 0;
    bool live = false;
    sim::EventId train = sim::kNoEvent;
  };

  /// Drop checks + send accounting shared by send() and Fanout::add():
  /// counters, msg_send/msg_drop trace records. False = dropped.
  bool send_precheck(ProcId from, ProcId to, const Body& body);

  /// Per-message delay draw: the validated constant on the fast path
  /// (violation verdict cached from construction, accounting identical
  /// to the sampled path), else one RNG sample clamped into (0, bound].
  Duration sample_delay(ProcId from, ProcId to);

  void fanout_add(Fanout& fo, ProcId to, Body body);
  FanoutId fanout_commit(Fanout& fo);
  void fanout_step(std::uint32_t batch);
  std::uint32_t acquire_batch();
  void release_batch(std::uint32_t index);

  void deliver(const Message& msg);

  sim::Simulator& sim_;
  Topology topology_;
  std::unique_ptr<DelayModel> delay_;
  /// Cached DelayModel::constant_delay(), validated against the bound
  /// once at construction: deterministic models skip the per-message
  /// virtual call AND the per-message range check (provably
  /// RNG-sequence-neutral — such models never draw).
  std::optional<Duration> constant_delay_;
  /// The cached constant violated (0, bound] and was clamped; every send
  /// still counts one delay_violation, like the sampled path would.
  bool constant_violation_ = false;
  Rng rng_;
  RemoteTransport remote_;
  std::vector<Handler> handlers_;
  LinkFaultSet link_faults_;
  bool batched_fanout_ = true;
  std::vector<FanoutBatch> batches_;
  std::vector<std::uint32_t> free_batches_;
  NetworkStats stats_;
};

}  // namespace czsync::net
