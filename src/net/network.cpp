#include "net/network.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/small_fn.h"

namespace czsync::net {

namespace {

constexpr FanoutId encode_fanout(std::uint32_t index, std::uint32_t gen) {
  return (static_cast<FanoutId>(gen) << 32) | (static_cast<FanoutId>(index) + 1);
}

/// Bounds violations throw in EVERY build type: a bad ProcId reaching
/// the handler table or the topology is a caller bug that would
/// otherwise be silent out-of-bounds UB under NDEBUG. The cold throw
/// lives out of line so the checks inline to a compare+jump.
[[noreturn]] void throw_bad_proc(const char* what, ProcId p, int n) {
  throw std::out_of_range(std::string(what) + ": proc " + std::to_string(p) +
                          " outside [0, " + std::to_string(n) + ")");
}

}  // namespace

void NetworkStats::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("sent", sent);
  scope.counter("delivered", delivered);
  scope.counter("dropped_no_edge", dropped_no_edge);
  scope.counter("dropped_no_handler", dropped_no_handler);
  scope.counter("dropped_link_fault", dropped_link_fault);
  scope.counter("delay_violations", delay_violations);
  auto by_body = scope.scope("sent_by_body");
  for (std::size_t i = 0; i < kBodyAlternatives; ++i) {
    if (sent_by_body[i] != 0) by_body.counter(body_name(i), sent_by_body[i]);
  }
}

Network::Network(sim::Simulator& sim, Topology topology,
                 std::unique_ptr<DelayModel> delay, Rng rng)
    : sim_(sim),
      topology_(std::move(topology)),
      delay_(std::move(delay)),
      rng_(rng),
      handlers_(static_cast<std::size_t>(topology_.size())) {
  // The whole point of DeliverEvent is to keep message delivery out of
  // the allocator; if the Message ever outgrows the pool slot, this fires
  // and the capacity (or the message) needs a look.
  static_assert(SmallFn::fits_inline<DeliverEvent>(),
                "DeliverEvent must fit a SmallFn pool slot");
  static_assert(SmallFn::fits_inline<FanoutStep>(),
                "FanoutStep must fit a SmallFn pool slot");
  assert(delay_ != nullptr);
  constant_delay_ = delay_->constant_delay();
  if (constant_delay_) {
    // Enforce the delivery contract once, here, instead of re-checking
    // the same constant on every send: a misbehaving model is clamped
    // back into (0, delta] and the verdict cached so the per-message
    // delay_violations accounting matches the sampled path exactly.
    const Duration bound = delay_->bound();
    if (*constant_delay_ <= Duration::zero() || *constant_delay_ > bound) {
      constant_violation_ = true;
      constant_delay_ = std::clamp(*constant_delay_, bound * 1e-6, bound);
    }
  }
}

void Network::register_handler(ProcId p, Handler handler) {
  if (p < 0 || p >= topology_.size()) {
    throw_bad_proc("Network::register_handler", p, topology_.size());
  }
  handlers_[static_cast<std::size_t>(p)] = std::move(handler);
}

bool Network::send_precheck(ProcId from, ProcId to, const Body& body) {
  if (from < 0 || from >= topology_.size()) {
    throw_bad_proc("Network::send from", from, topology_.size());
  }
  if (to < 0 || to >= topology_.size()) {
    throw_bad_proc("Network::send to", to, topology_.size());
  }
  if (from == to) {
    throw std::invalid_argument(
        "Network::send: proc " + std::to_string(from) +
        " sent to itself (self-estimates are computed locally)");
  }
  ++stats_.sent;
  ++stats_.sent_by_body[body.index()];
  trace::TraceSink* ts = sim_.trace_sink();
  if (ts != nullptr) {
    ts->record(trace::msg_send(sim_.now(), from, to, body.index()));
  }
  if (!topology_.has_edge(from, to)) {
    ++stats_.dropped_no_edge;
    if (ts != nullptr) {
      ts->record(trace::msg_drop(sim_.now(), from, to, body.index(),
                                 trace::DropReason::NoEdge));
    }
    CZ_DEBUG << "drop (no edge) " << from << "->" << to;
    return false;
  }
  if (!link_faults_.empty() && link_faults_.cut_at(from, to, sim_.now())) {
    ++stats_.dropped_link_fault;
    if (ts != nullptr) {
      ts->record(trace::msg_drop(sim_.now(), from, to, body.index(),
                                 trace::DropReason::LinkFault));
    }
    CZ_DEBUG << "drop (link fault) " << from << "->" << to;
    return false;
  }
  return true;
}

Duration Network::sample_delay(ProcId from, ProcId to) {
  if (constant_delay_) {
    if (constant_violation_) ++stats_.delay_violations;
    return *constant_delay_;
  }
  Duration delay = delay_->sample(rng_, from, to);
  // Enforce the delivery contract in every build type: a misbehaving
  // model (delay <= 0 or > delta) is clamped back into (0, delta] and
  // counted, instead of silently skewing the run.
  const Duration bound = delay_->bound();
  if (delay <= Duration::zero() || delay > bound) {
    ++stats_.delay_violations;
    delay = std::clamp(delay, bound * 1e-6, bound);
  }
  return delay;
}

void Network::send(ProcId from, ProcId to, Body body) {
  if (!send_precheck(from, to, body)) return;
  if (remote_) {
    remote_(Message{from, to, std::move(body)});
    return;
  }
  const Duration delay = sample_delay(from, to);
  // Deliveries shard by receiver: the handler runs on the receiver's
  // state, so its events belong to the receiver's pool partition.
  sim_.schedule_after(delay, DeliverEvent{this, {from, to, std::move(body)}},
                      sim_.shard_of(to));
}

void Network::fanout_add(Fanout& fo, ProcId to, Body body) {
  assert(!fo.committed_);
  if (!send_precheck(fo.from_, to, body)) return;
  if (remote_) {
    remote_(Message{fo.from_, to, std::move(body)});
    return;
  }
  const Duration delay = sample_delay(fo.from_, to);
  if (!batched_fanout_) {
    sim_.schedule_after(delay,
                        DeliverEvent{this, {fo.from_, to, std::move(body)}},
                        sim_.shard_of(to));
    return;
  }
  if (fo.batch_ == kNoBatch) fo.batch_ = acquire_batch();
  // The stamp is now() + delay — the same instant schedule_after would
  // compute — and the FIFO rank is reserved here, at the moment the
  // unbatched code would have pushed, so the committed train interleaves
  // with every other event exactly as per-message sends would.
  batches_[fo.batch_].pending.push_back(PendingSend{
      sim_.now() + delay, sim_.reserve_event_seq(),
      Message{fo.from_, to, std::move(body)}});
}

FanoutId Network::fanout_commit(Fanout& fo) {
  assert(!fo.committed_);
  fo.committed_ = true;
  if (fo.batch_ == kNoBatch) return kNoFanout;
  const std::uint32_t index = fo.batch_;
  FanoutBatch& fb = batches_[index];
  assert(!fb.pending.empty());
  // Delay-sort into fire order, leaving the messages where add() put
  // them. The sort runs over flat 16-byte integer keys (see FanoutKey) —
  // several times cheaper than an index permutation whose comparator
  // gathers from the wide PendingSend records. Seqs are handed out in
  // add() order, so idx breaks time ties exactly as seq would and
  // (t, seq) stays a strict total order.
  const auto count = static_cast<std::uint32_t>(fb.pending.size());
  fb.keys.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // time: integer sort key on the IEEE-754 bit pattern of tau
    const double sec = fb.pending[i].t.raw();
    assert(sec >= 0.0);
    fb.keys[i] = FanoutKey{std::bit_cast<std::uint64_t>(sec), i};
  }
  std::sort(fb.keys.begin(), fb.keys.end());
  fb.order.resize(count);
  fb.stamps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t idx = fb.keys[i].idx;
    const PendingSend& p = fb.pending[idx];
    fb.order[i] = idx;
    fb.stamps.push_back(sim::BatchStamp{p.t, p.seq});
  }
  // A train is one pool slot; it shards by SENDER (the batch is the
  // sender's burst — its entries cross shard boundaries to receivers on
  // other partitions, which the min-merge peek handles by construction).
  fb.train = sim_.schedule_train(
      fb.stamps.data(), static_cast<std::uint32_t>(fb.stamps.size()),
      FanoutStep{this, index}, sim_.shard_of(fo.from_));
  return encode_fanout(index, fb.gen);
}

void Network::fanout_step(std::uint32_t batch) {
  FanoutBatch& fb = batches_[batch];
  assert(fb.live && fb.cursor < fb.pending.size());
  const std::size_t cur = fb.cursor++;
  const bool last = fb.cursor == fb.pending.size();
  // Deliver from a local: the handler may start new fanouts (growing or
  // reusing batches_) or cancel this train; neither may invalidate the
  // message mid-delivery.
  const Message msg = std::move(fb.pending[fb.order[cur]].msg);
  deliver(msg);
  if (last) {
    // Re-fetch — batches_ may have grown during deliver. A cancel from
    // inside the last delivery is a no-op (the train's simulator slot is
    // already gone), so the batch is still ours to release.
    FanoutBatch& done = batches_[batch];
    if (done.live) release_batch(batch);
  }
}

bool Network::cancel_fanout(FanoutId id) {
  const std::uint32_t low = static_cast<std::uint32_t>(id);
  if (low == 0) return false;  // kNoFanout
  const std::uint32_t index = low - 1;
  if (index >= batches_.size()) return false;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  FanoutBatch& fb = batches_[index];
  if (!fb.live || fb.gen != gen) return false;  // done, cancelled, reused
  // The simulator-side cancel is the authority: it fails iff the train
  // fully delivered (or is firing its final entry right now), in which
  // case fanout_step still owns the batch.
  if (!sim_.cancel(fb.train)) return false;
  release_batch(index);
  return true;
}

std::uint32_t Network::acquire_batch() {
  std::uint32_t index;
  if (!free_batches_.empty()) {
    index = free_batches_.back();
    free_batches_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(batches_.size());
    batches_.emplace_back();
  }
  FanoutBatch& fb = batches_[index];
  fb.pending.clear();
  fb.order.clear();
  fb.stamps.clear();
  fb.cursor = 0;
  fb.live = true;
  fb.train = sim::kNoEvent;
  return index;
}

void Network::release_batch(std::uint32_t index) {
  FanoutBatch& fb = batches_[index];
  fb.live = false;
  ++fb.gen;  // invalidates outstanding FanoutIds for this slot
  free_batches_.push_back(index);
}

bool Network::deliver_remote(const Message& msg) {
  if (msg.from < 0 || msg.from >= topology_.size() || msg.to < 0 ||
      msg.to >= topology_.size() || msg.from == msg.to) {
    return false;
  }
  deliver(msg);
  return true;
}

void Network::deliver(const Message& msg) {
  trace::TraceSink* ts = sim_.trace_sink();
  auto& handler = handlers_[static_cast<std::size_t>(msg.to)];
  if (!handler) {
    ++stats_.dropped_no_handler;
    if (ts != nullptr) {
      ts->record(trace::msg_drop(sim_.now(), msg.from, msg.to,
                                 msg.body.index(),
                                 trace::DropReason::NoHandler));
    }
    return;
  }
  ++stats_.delivered;
  if (ts != nullptr) {
    ts->record(trace::msg_deliver(sim_.now(), msg.from, msg.to,
                                  msg.body.index()));
  }
  handler(msg);
}

}  // namespace czsync::net
