#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/logging.h"
#include "util/small_fn.h"

namespace czsync::net {

void NetworkStats::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("sent", sent);
  scope.counter("delivered", delivered);
  scope.counter("dropped_no_edge", dropped_no_edge);
  scope.counter("dropped_no_handler", dropped_no_handler);
  scope.counter("dropped_link_fault", dropped_link_fault);
  scope.counter("delay_violations", delay_violations);
  auto by_body = scope.scope("sent_by_body");
  for (std::size_t i = 0; i < kBodyAlternatives; ++i) {
    if (sent_by_body[i] != 0) by_body.counter(body_name(i), sent_by_body[i]);
  }
}

Network::Network(sim::Simulator& sim, Topology topology,
                 std::unique_ptr<DelayModel> delay, Rng rng)
    : sim_(sim),
      topology_(std::move(topology)),
      delay_(std::move(delay)),
      rng_(rng),
      handlers_(static_cast<std::size_t>(topology_.size())) {
  // The whole point of DeliverEvent is to keep message delivery out of
  // the allocator; if the Message ever outgrows the pool slot, this fires
  // and the capacity (or the message) needs a look.
  static_assert(SmallFn::fits_inline<DeliverEvent>(),
                "DeliverEvent must fit a SmallFn pool slot");
  assert(delay_ != nullptr);
  constant_delay_ = delay_->constant_delay();
}

void Network::register_handler(ProcId p, Handler handler) {
  assert(p >= 0 && p < topology_.size());
  handlers_[static_cast<std::size_t>(p)] = std::move(handler);
}

void Network::send(ProcId from, ProcId to, Body body) {
  assert(from >= 0 && from < topology_.size());
  assert(to >= 0 && to < topology_.size());
  assert(from != to && "self-messages are handled locally by the protocol");
  ++stats_.sent;
  ++stats_.sent_by_body[body.index()];
  trace::TraceSink* ts = sim_.trace_sink();
  if (ts != nullptr) {
    ts->record(
        trace::msg_send(sim_.now().sec(), from, to, body.index()));
  }
  if (!topology_.has_edge(from, to)) {
    ++stats_.dropped_no_edge;
    if (ts != nullptr) {
      ts->record(trace::msg_drop(sim_.now().sec(), from, to, body.index(),
                                 trace::DropReason::NoEdge));
    }
    CZ_DEBUG << "drop (no edge) " << from << "->" << to;
    return;
  }
  if (!link_faults_.empty() && link_faults_.cut_at(from, to, sim_.now())) {
    ++stats_.dropped_link_fault;
    if (ts != nullptr) {
      ts->record(trace::msg_drop(sim_.now().sec(), from, to, body.index(),
                                 trace::DropReason::LinkFault));
    }
    CZ_DEBUG << "drop (link fault) " << from << "->" << to;
    return;
  }
  Dur delay =
      constant_delay_ ? *constant_delay_ : delay_->sample(rng_, from, to);
  // Enforce the delivery contract in every build type: a misbehaving
  // model (delay <= 0 or > delta) is clamped back into (0, delta] and
  // counted, instead of silently skewing the run.
  const Dur bound = delay_->bound();
  if (delay <= Dur::zero() || delay > bound) {
    ++stats_.delay_violations;
    delay = std::clamp(delay, bound * 1e-6, bound);
  }
  sim_.schedule_after(delay, DeliverEvent{this, {from, to, std::move(body)}});
}

void Network::deliver(const Message& msg) {
  trace::TraceSink* ts = sim_.trace_sink();
  auto& handler = handlers_[static_cast<std::size_t>(msg.to)];
  if (!handler) {
    ++stats_.dropped_no_handler;
    if (ts != nullptr) {
      ts->record(trace::msg_drop(sim_.now().sec(), msg.from, msg.to,
                                 msg.body.index(),
                                 trace::DropReason::NoHandler));
    }
    return;
  }
  ++stats_.delivered;
  if (ts != nullptr) {
    ts->record(trace::msg_deliver(sim_.now().sec(), msg.from, msg.to,
                                  msg.body.index()));
  }
  handler(msg);
}

}  // namespace czsync::net
