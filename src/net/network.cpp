#include "net/network.h"

#include <cassert>
#include <utility>

#include "util/logging.h"

namespace czsync::net {

Network::Network(sim::Simulator& sim, Topology topology,
                 std::unique_ptr<DelayModel> delay, Rng rng)
    : sim_(sim),
      topology_(std::move(topology)),
      delay_(std::move(delay)),
      rng_(rng),
      handlers_(static_cast<std::size_t>(topology_.size())) {
  assert(delay_ != nullptr);
}

void Network::register_handler(ProcId p, Handler handler) {
  assert(p >= 0 && p < topology_.size());
  handlers_[static_cast<std::size_t>(p)] = std::move(handler);
}

void Network::send(ProcId from, ProcId to, Body body) {
  assert(from >= 0 && from < topology_.size());
  assert(to >= 0 && to < topology_.size());
  assert(from != to && "self-messages are handled locally by the protocol");
  ++stats_.sent;
  if (!topology_.has_edge(from, to)) {
    ++stats_.dropped_no_edge;
    CZ_DEBUG << "drop (no edge) " << from << "->" << to;
    return;
  }
  if (!link_faults_.empty() && link_faults_.cut_at(from, to, sim_.now())) {
    ++stats_.dropped_link_fault;
    CZ_DEBUG << "drop (link fault) " << from << "->" << to;
    return;
  }
  const Dur delay = delay_->sample(rng_, from, to);
  assert(delay > Dur::zero() && delay <= delay_->bound());
  Message msg{from, to, std::move(body)};
  sim_.schedule_after(delay, [this, msg = std::move(msg)] { deliver(msg); });
}

void Network::deliver(const Message& msg) {
  auto& handler = handlers_[static_cast<std::size_t>(msg.to)];
  if (!handler) {
    ++stats_.dropped_no_handler;
    return;
  }
  ++stats_.delivered;
  handler(msg);
}

}  // namespace czsync::net
