// Link faults — the §1.2 refinement probe.
//
// The paper analyzes processor corruption only, but says: "It may be
// possible to refine our analysis to show that the same algorithm can be
// used even if an attacker can corrupt both processors and links, as
// long as not too many of either are corrupted at the same time." Links
// are authenticated, so a corrupted link cannot forge — the worst it can
// do is drop (or arbitrarily delay, which past MaxWait is the same as
// dropping). We model cut intervals on undirected links; the estimation
// procedure sees them as timeouts, which the f+1-trimming already
// absorbs — experiment E13 measures how many cut links per processor the
// protocol actually tolerates (the conjecture: f).
#pragma once

#include <utility>
#include <vector>

#include "net/message.h"
#include "util/rng.h"
#include "util/time_domain.h"

namespace czsync::net {

struct LinkFault {
  ProcId a = -1;
  ProcId b = -1;  ///< undirected: both directions are cut
  SimTau start;
  SimTau end;   ///< exclusive
};

class LinkFaultSet {
 public:
  LinkFaultSet() = default;
  explicit LinkFaultSet(std::vector<LinkFault> faults);

  [[nodiscard]] bool empty() const { return faults_.empty(); }
  [[nodiscard]] const std::vector<LinkFault>& faults() const { return faults_; }

  /// True when the (undirected) link a-b is cut at time t.
  [[nodiscard]] bool cut_at(ProcId a, ProcId b, SimTau t) const;

  /// Largest number of cut links incident to any single processor at any
  /// instant — the quantity the f-trimming must absorb.
  [[nodiscard]] int max_cut_degree() const;

  /// Cuts the links from `center` to each of `peers` during [start, end).
  [[nodiscard]] static LinkFaultSet isolate_partially(
      ProcId center, const std::vector<ProcId>& peers, SimTau start,
      SimTau end);

  /// Random flapping: `concurrent` independent slots; each slot cuts a
  /// random link for a duration in [min_cut, max_cut], rests `rest`,
  /// repeats until `horizon`.
  [[nodiscard]] static LinkFaultSet random_flapping(int n, int concurrent,
                                                    Duration min_cut, Duration max_cut,
                                                    Duration rest, SimTau horizon,
                                                    Rng rng);

 private:
  std::vector<LinkFault> faults_;
};

}  // namespace czsync::net
