// Message-delay models.
//
// The analysis only uses the delivery bound delta (§2.2); the *shape* of
// the delay inside [0, delta] determines the reading error the estimation
// procedure actually sees (§3.1): symmetric delays estimate perfectly,
// asymmetric ones push the estimate toward the bound a = (R-S)/2.
// Experiment E11 sweeps these models.
#pragma once

#include <memory>
#include <optional>

#include "net/message.h"
#include "util/rng.h"
#include "util/time_domain.h"

namespace czsync::net {

/// Strategy interface: per-message one-way delay. Must always return a
/// value in (0, bound()].
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// The delivery bound delta the model never exceeds.
  [[nodiscard]] Duration bound() const { return bound_; }

  /// One-way delay for a message from `from` to `to`.
  [[nodiscard]] virtual Duration sample(Rng& rng, ProcId from, ProcId to) const = 0;

  /// Deterministic models return their fixed per-message value so the
  /// network can skip the virtual sample() call on every send. Models
  /// that draw from the RNG must return nullopt: their per-message draw
  /// sequence is part of the run's bit-reproducible behaviour and may not
  /// be batched or skipped.
  [[nodiscard]] virtual std::optional<Duration> constant_delay() const {
    return std::nullopt;
  }

 protected:
  explicit DelayModel(Duration bound);
  [[nodiscard]] Duration clamp(Duration d) const;

 private:
  Duration bound_;
};

/// Deterministic constant delay (bound * fraction); perfectly symmetric,
/// so clock estimates are exact up to drift during the round trip.
class FixedDelay final : public DelayModel {
 public:
  FixedDelay(Duration bound, double fraction = 0.5);
  [[nodiscard]] Duration sample(Rng& rng, ProcId from, ProcId to) const override;
  [[nodiscard]] std::optional<Duration> constant_delay() const override {
    return value_;
  }

 private:
  Duration value_;
};

/// Uniform in [lo, bound].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Duration bound, Duration lo = Duration::zero());
  [[nodiscard]] Duration sample(Rng& rng, ProcId from, ProcId to) const override;

 private:
  Duration lo_;
};

/// Direction-skewed: messages from lower to higher ids take ~hi_fraction
/// of the bound, the reverse direction ~lo_fraction (plus small jitter).
/// Worst case for the midpoint estimator of §3.1.
class AsymmetricDelay final : public DelayModel {
 public:
  AsymmetricDelay(Duration bound, double lo_fraction = 0.1, double hi_fraction = 0.9,
                  double jitter_fraction = 0.05);
  [[nodiscard]] Duration sample(Rng& rng, ProcId from, ProcId to) const override;

 private:
  double lo_fraction_, hi_fraction_, jitter_fraction_;
};

/// base + truncated-exponential jitter: the common WAN shape (most
/// messages fast, a tail up to the bound).
class JitterDelay final : public DelayModel {
 public:
  JitterDelay(Duration bound, Duration base, Duration jitter_mean);
  [[nodiscard]] Duration sample(Rng& rng, ProcId from, ProcId to) const override;

 private:
  Duration base_, jitter_mean_;
};

[[nodiscard]] std::unique_ptr<DelayModel> make_fixed_delay(Duration bound,
                                                           double fraction = 0.5);
[[nodiscard]] std::unique_ptr<DelayModel> make_uniform_delay(
    Duration bound, Duration lo = Duration::zero());
[[nodiscard]] std::unique_ptr<DelayModel> make_asymmetric_delay(Duration bound);
[[nodiscard]] std::unique_ptr<DelayModel> make_jitter_delay(Duration bound, Duration base,
                                                            Duration jitter_mean);

}  // namespace czsync::net
