#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

namespace czsync::net {

namespace {

/// Maps a linearized upper-triangle index in [0, n(n-1)/2) back to the
/// lexicographic pair (a, b), a < b. Row a holds n-1-a entries; counting
/// from the END, the remaining entries form triangular numbers, so the
/// row is recovered with one sqrt plus an integer fix-up (the sqrt is
/// only a guess — doubles lose exactness near 2^53, the fix-up loop is
/// what makes the mapping correct).
std::pair<ProcId, ProcId> unrank_pair(std::uint64_t idx, std::uint64_t pairs,
                                      int n) {
  const std::uint64_t rem = pairs - idx;  // >= 1
  auto tri = [](std::uint64_t t) { return t * (t + 1) / 2; };
  auto t = static_cast<std::uint64_t>(
      std::ceil((std::sqrt(8.0 * static_cast<double>(rem) + 1.0) - 1.0) / 2.0));
  while (t > 0 && tri(t - 1) >= rem) --t;
  while (tri(t) < rem) ++t;
  const auto a = static_cast<std::uint64_t>(n) - 1 - t;
  const std::uint64_t row_start =
      a * (2 * static_cast<std::uint64_t>(n) - a - 1) / 2;
  return {static_cast<ProcId>(a),
          static_cast<ProcId>(a + 1 + (idx - row_start))};
}

/// One G(n, p) sample as an edge list, via geometric skip-sampling over
/// the linearized upper triangle: each uniform draw jumps straight to the
/// next present edge, so the expected cost is O(1 + p n^2) draws instead
/// of the n(n-1)/2 per-pair Bernoulli trials of the naive loop.
void sample_gnp_edges(int n, double p, Rng& rng,
                      std::vector<std::pair<ProcId, ProcId>>& edges) {
  edges.clear();
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1) / 2;
  if (p >= 1.0) {
    for (int a = 0; a < n; ++a)
      for (int b = a + 1; b < n; ++b) edges.emplace_back(a, b);
    return;
  }
  const double log1mp = std::log1p(-p);  // < 0 for p in (0, 1)
  std::uint64_t idx = 0;
  bool first = true;
  for (;;) {
    // Geometric skip: floor(log(1-u)/log(1-p)) pairs are absent before
    // the next present one. u < 1 strictly, so the logs are finite.
    const double u = rng.uniform01();
    const double skip = std::floor(std::log1p(-u) / log1mp);
    if (skip >= static_cast<double>(pairs)) break;  // past the end
    idx += static_cast<std::uint64_t>(skip) + (first ? 0 : 1);
    first = false;
    if (idx >= pairs) break;
    edges.push_back(unrank_pair(idx, pairs, n));
  }
}

}  // namespace

Topology::Topology(int n, std::vector<Edge> edges) : n_(n) {
  assert(n >= 1);
  for (auto& [a, b] : edges) {
    assert(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b);
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  assert(edges.size() * 2 < std::numeric_limits<std::uint32_t>::max());

  // Counting sort into CSR. Filling in (a, b)-sorted edge order leaves
  // every row already ascending: a vertex's smaller neighbors arrive via
  // the b-side writes of edges (a', v) — which the sort visits in a'
  // order, all before any (v, b') edge — and its larger neighbors via the
  // a-side writes of (v, b') in b' order.
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : edges) {
    ++offsets_[static_cast<std::size_t>(a) + 1];
    ++offsets_[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.resize(edges.size() * 2);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    neighbors_[cursor[static_cast<std::size_t>(a)]++] = b;
    neighbors_[cursor[static_cast<std::size_t>(b)]++] = a;
  }
}

Topology Topology::full_mesh(int n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  return Topology(n, std::move(edges));
}

Topology Topology::ring(int n) {
  assert(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) edges.emplace_back(a, (a + 1) % n);
  return Topology(n, std::move(edges));
}

Topology Topology::two_cliques(int f) {
  assert(f >= 1);
  const int clique = 3 * f + 1;
  std::vector<Edge> edges;
  for (int side = 0; side < 2; ++side) {
    const int base = side * clique;
    for (int a = 0; a < clique; ++a)
      for (int b = a + 1; b < clique; ++b) edges.emplace_back(base + a, base + b);
  }
  for (int i = 0; i < clique; ++i) edges.emplace_back(i, clique + i);
  return Topology(2 * clique, std::move(edges));
}

Topology Topology::from_edges(int n,
                              const std::vector<std::pair<int, int>>& edges) {
  return Topology(n, edges);
}

Topology Topology::gnp_connected(int n, double p, Rng& rng, int max_attempts) {
  assert(n >= 2 && p > 0.0 && p <= 1.0);
  assert(max_attempts >= 1);
  std::vector<Edge> edges;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    sample_gnp_edges(n, p, rng, edges);
    Topology t(n, std::move(edges));
    if (t.is_connected()) {
      t.gnp_retries_ = static_cast<std::uint32_t>(attempt);
      return t;
    }
    edges.clear();
  }
  // Every attempt was disconnected — p is below the connectivity
  // threshold for this n. Final fallback (documented in the header): a
  // ring plus one last edge sample, so callers still get a connected
  // graph; gnp_fell_back() reports that conditioning failed.
  sample_gnp_edges(n, p, rng, edges);
  if (n == 2) {
    edges.emplace_back(0, 1);
  } else {
    for (int a = 0; a < n; ++a) edges.emplace_back(a, (a + 1) % n);
  }
  Topology t(n, std::move(edges));
  t.gnp_retries_ = static_cast<std::uint32_t>(max_attempts);
  t.gnp_fallback_ = true;
  return t;
}

Topology Topology::random_regular(int n, int d, Rng& rng) {
  assert(n >= 3 && d >= 2 && d < n);
  // Hamiltonian cycle first (connectivity), then random matchings onto
  // the argmin-degree vertex until min degree >= d. The ordered set keyed
  // by (degree, vertex) makes the argmin O(log n) while selecting exactly
  // the vertex the historical linear scan picked (smallest index among
  // the minimum-degree vertices), so the RNG draw sequence — and hence
  // the generated graph — is unchanged.
  std::vector<std::vector<ProcId>> adj(static_cast<std::size_t>(n));
  auto add = [&adj](ProcId a, ProcId b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  for (int a = 0; a < n; ++a) add(a, (a + 1) % n);
  std::set<std::pair<int, ProcId>> by_degree;
  for (int v = 0; v < n; ++v) by_degree.emplace(2, v);
  auto bump = [&by_degree, &adj](ProcId v) {
    const int deg = static_cast<int>(adj[static_cast<std::size_t>(v)].size());
    by_degree.erase({deg - 1, v});
    by_degree.emplace(deg, v);
  };
  long long guard = static_cast<long long>(n) * n * 10;
  while (by_degree.begin()->first < d && guard-- > 0) {
    const ProcId v = by_degree.begin()->second;
    const auto w = static_cast<ProcId>(rng.uniform_int(0, n - 1));
    const auto& nb = adj[static_cast<std::size_t>(v)];
    if (w == v || std::find(nb.begin(), nb.end(), w) != nb.end()) continue;
    add(v, w);
    bump(v);
    bump(w);
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d) / 2 +
                static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    for (ProcId w : adj[static_cast<std::size_t>(v)])
      if (w > v) edges.emplace_back(v, w);
  return Topology(n, std::move(edges));
}

bool Topology::has_edge(ProcId a, ProcId b) const {
  assert_valid(a);
  assert_valid(b);
  // Binary-search the smaller endpoint's (sorted) adjacency list.
  if (degree(a) > degree(b)) std::swap(a, b);
  const auto nb = neighbors(a);
  return std::binary_search(nb.begin(), nb.end(), b);
}

int Topology::min_degree() const {
  int d = n_;
  for (int p = 0; p < n_; ++p) d = std::min(d, degree(p));
  return d;
}

bool Topology::is_connected() const {
  if (n_ <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int visited = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (ProcId v : neighbors(u))
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++visited;
        q.push(v);
      }
  }
  return visited == n_;
}

namespace {

/// Max-flow on the vertex-split digraph, capacities 1 on "internal" arcs
/// of intermediate vertices and infinity on edge arcs; BFS augmentation
/// (Edmonds-Karp). Vertex v splits into v_in = 2v, v_out = 2v+1.
/// Allocates an O(n^2) capacity matrix — analysis/test-only (see header),
/// never constructed on the simulation run path.
class SplitFlow {
 public:
  explicit SplitFlow(const Topology& g) : g_(g), n_(g.size()) {
    const int nodes = 2 * n_;
    cap_.assign(nodes, std::vector<int>(nodes, 0));
    for (int v = 0; v < n_; ++v) cap_[in(v)][out(v)] = 1;
    for (int a = 0; a < n_; ++a)
      for (int b : g.neighbors(a)) cap_[out(a)][in(b)] = kInf;
  }

  /// Max s->t flow, s and t are original vertex ids (s_out -> t_in).
  int max_flow(int s, int t) {
    // Work on a copy so the object can be reused.
    auto cap = cap_;
    cap[in(s)][out(s)] = kInf;
    cap[in(t)][out(t)] = kInf;
    const int source = out(s), sink = in(t);
    int flow = 0;
    for (;;) {
      std::vector<int> parent(cap.size(), -1);
      parent[source] = source;
      std::queue<int> q;
      q.push(source);
      while (!q.empty() && parent[sink] < 0) {
        const int u = q.front();
        q.pop();
        for (std::size_t v = 0; v < cap.size(); ++v)
          if (parent[v] < 0 && cap[u][v] > 0) {
            parent[v] = u;
            q.push(static_cast<int>(v));
          }
      }
      if (parent[sink] < 0) break;
      int aug = kInf;
      for (int v = sink; v != source; v = parent[v])
        aug = std::min(aug, cap[parent[v]][v]);
      for (int v = sink; v != source; v = parent[v]) {
        cap[parent[v]][v] -= aug;
        cap[v][parent[v]] += aug;
      }
      flow += aug;
      if (flow >= n_) break;  // connectivity can never exceed n-1
    }
    return flow;
  }

 private:
  static constexpr int kInf = std::numeric_limits<int>::max() / 4;
  static int in(int v) { return 2 * v; }
  static int out(int v) { return 2 * v + 1; }

  const Topology& g_;
  int n_;
  std::vector<std::vector<int>> cap_;
};

}  // namespace

int Topology::vertex_connectivity() const {
  if (n_ <= 1) return 0;
  if (!is_connected()) return 0;
  // Complete graph: kappa = n-1 (no vertex cut exists).
  if (edge_count() == static_cast<std::size_t>(n_) * (n_ - 1) / 2) return n_ - 1;
  // kappa(G) = min over one fixed vertex s of min-vertex-cut(s, t) for all
  // non-neighbors t of s, and cuts between neighbors of s handled by also
  // trying each neighbor pair start. Standard Even/Tarjan scheme: take
  // vertex 0 and its neighbors as sources.
  SplitFlow flow(*this);
  int best = n_ - 1;
  auto try_pair = [&](int s, int t) {
    if (s == t || has_edge(s, t)) return;
    best = std::min(best, flow.max_flow(s, t));
  };
  for (int t = 0; t < n_; ++t) try_pair(0, t);
  for (int s : neighbors(0))
    for (int t = 0; t < n_; ++t) try_pair(s, t);
  return best;
}

}  // namespace czsync::net
