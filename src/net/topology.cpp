#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace czsync::net {

Topology::Topology(int n) : n_(n), adj_(n), adj_matrix_(n, std::vector<char>(n, 0)) {
  assert(n >= 1);
}

void Topology::add_edge(int a, int b) {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b);
  if (adj_matrix_[a][b]) return;
  adj_matrix_[a][b] = adj_matrix_[b][a] = 1;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

Topology Topology::full_mesh(int n) {
  Topology t(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) t.add_edge(a, b);
  return t;
}

Topology Topology::ring(int n) {
  assert(n >= 3);
  Topology t(n);
  for (int a = 0; a < n; ++a) t.add_edge(a, (a + 1) % n);
  return t;
}

Topology Topology::two_cliques(int f) {
  assert(f >= 1);
  const int clique = 3 * f + 1;
  Topology t(2 * clique);
  for (int side = 0; side < 2; ++side) {
    const int base = side * clique;
    for (int a = 0; a < clique; ++a)
      for (int b = a + 1; b < clique; ++b) t.add_edge(base + a, base + b);
  }
  for (int i = 0; i < clique; ++i) t.add_edge(i, clique + i);
  return t;
}

Topology Topology::from_edges(int n,
                              const std::vector<std::pair<int, int>>& edges) {
  Topology t(n);
  for (auto [a, b] : edges) t.add_edge(a, b);
  return t;
}

Topology Topology::gnp_connected(int n, double p, Rng& rng) {
  assert(n >= 2 && p > 0.0 && p <= 1.0);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Topology t(n);
    for (int a = 0; a < n; ++a)
      for (int b = a + 1; b < n; ++b)
        if (rng.chance(p)) t.add_edge(a, b);
    if (t.is_connected()) return t;
  }
  // Too sparse to ever connect at this p; fall back to a ring plus the
  // sampled edges so callers still get a usable graph.
  Topology t = Topology::ring(std::max(n, 3));
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (rng.chance(p)) t.add_edge(a, b);
  return t;
}

Topology Topology::random_regular(int n, int d, Rng& rng) {
  assert(n >= 3 && d >= 2 && d < n);
  Topology t = Topology::ring(n);
  // Add random edges to the lowest-degree vertices until min degree >= d.
  int guard = n * n * 10;
  while (t.min_degree() < d && guard-- > 0) {
    // Pick the first vertex among those with the minimum degree, pair it
    // with a random non-neighbor.
    int v = 0;
    for (int u = 0; u < n; ++u)
      if (t.degree(u) < t.degree(v)) v = u;
    const auto w = static_cast<ProcId>(rng.uniform_int(0, n - 1));
    if (w == v || t.has_edge(v, w)) continue;
    t.add_edge(v, w);
  }
  return t;
}

bool Topology::has_edge(ProcId a, ProcId b) const {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_);
  return adj_matrix_[a][b] != 0;
}

const std::vector<ProcId>& Topology::neighbors(ProcId p) const {
  assert(p >= 0 && p < n_);
  return adj_[p];
}

int Topology::degree(ProcId p) const {
  return static_cast<int>(neighbors(p).size());
}

int Topology::min_degree() const {
  int d = n_;
  for (int p = 0; p < n_; ++p) d = std::min(d, degree(p));
  return d;
}

std::size_t Topology::edge_count() const {
  std::size_t twice = 0;
  for (const auto& nb : adj_) twice += nb.size();
  return twice / 2;
}

bool Topology::is_connected() const {
  if (n_ <= 1) return true;
  std::vector<char> seen(n_, 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int visited = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v : adj_[u])
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        q.push(v);
      }
  }
  return visited == n_;
}

namespace {

/// Max-flow on the vertex-split digraph, capacities 1 on "internal" arcs
/// of intermediate vertices and infinity on edge arcs; BFS augmentation
/// (Edmonds-Karp). Vertex v splits into v_in = 2v, v_out = 2v+1.
class SplitFlow {
 public:
  explicit SplitFlow(const Topology& g) : g_(g), n_(g.size()) {
    const int nodes = 2 * n_;
    cap_.assign(nodes, std::vector<int>(nodes, 0));
    for (int v = 0; v < n_; ++v) cap_[in(v)][out(v)] = 1;
    for (int a = 0; a < n_; ++a)
      for (int b : g.neighbors(a)) cap_[out(a)][in(b)] = kInf;
  }

  /// Max s->t flow, s and t are original vertex ids (s_out -> t_in).
  int max_flow(int s, int t) {
    // Work on a copy so the object can be reused.
    auto cap = cap_;
    cap[in(s)][out(s)] = kInf;
    cap[in(t)][out(t)] = kInf;
    const int source = out(s), sink = in(t);
    int flow = 0;
    for (;;) {
      std::vector<int> parent(cap.size(), -1);
      parent[source] = source;
      std::queue<int> q;
      q.push(source);
      while (!q.empty() && parent[sink] < 0) {
        const int u = q.front();
        q.pop();
        for (std::size_t v = 0; v < cap.size(); ++v)
          if (parent[v] < 0 && cap[u][v] > 0) {
            parent[v] = u;
            q.push(static_cast<int>(v));
          }
      }
      if (parent[sink] < 0) break;
      int aug = kInf;
      for (int v = sink; v != source; v = parent[v])
        aug = std::min(aug, cap[parent[v]][v]);
      for (int v = sink; v != source; v = parent[v]) {
        cap[parent[v]][v] -= aug;
        cap[v][parent[v]] += aug;
      }
      flow += aug;
      if (flow >= n_) break;  // connectivity can never exceed n-1
    }
    return flow;
  }

 private:
  static constexpr int kInf = std::numeric_limits<int>::max() / 4;
  static int in(int v) { return 2 * v; }
  static int out(int v) { return 2 * v + 1; }

  const Topology& g_;
  int n_;
  std::vector<std::vector<int>> cap_;
};

}  // namespace

int Topology::vertex_connectivity() const {
  if (n_ <= 1) return 0;
  if (!is_connected()) return 0;
  // Complete graph: kappa = n-1 (no vertex cut exists).
  if (edge_count() == static_cast<std::size_t>(n_) * (n_ - 1) / 2) return n_ - 1;
  // kappa(G) = min over one fixed vertex s of min-vertex-cut(s, t) for all
  // non-neighbors t of s, and cuts between neighbors of s handled by also
  // trying each neighbor pair start. Standard Even/Tarjan scheme: take
  // vertex 0 and its neighbors as sources.
  SplitFlow flow(*this);
  int best = n_ - 1;
  auto try_pair = [&](int s, int t) {
    if (s == t || has_edge(s, t)) return;
    best = std::min(best, flow.max_flow(s, t));
  };
  for (int t = 0; t < n_; ++t) try_pair(0, t);
  for (int s : neighbors(0))
    for (int t = 0; t < n_; ++t) try_pair(s, t);
  return best;
}

}  // namespace czsync::net
