// rt::Daemon — one processor of the paper's system, hosted for real.
//
// The daemon runs the UNMODIFIED core::SyncProcess: the engine still
// talks to net::Network, clk::LogicalClock and trace::TracePort exactly
// as inside the simulator backend. What changes is who drives time and
// delivery:
//
//   * An embedded sim::Simulator is the daemon's timer substrate. Its
//     tau axis is *aliased to real time*: on every epoll wake the loop
//     advances the simulator to rt::Clock::now() (advance_to skips quiet
//     gaps in O(1), step() drains due events), and a timerfd is armed at
//     the absolute CLOCK_MONOTONIC instant of next_event_time(). Thus a
//     HardwareClock alarm scheduled "dH from now" fires, on the wall
//     clock, exactly when the drifted hardware clock crosses its target
//     — the same alarm semantics the simulator backend provides, now at
//     real-time pace.
//   * The hardware clock is the configured perturbation H(tau) =
//     offset + rate * tau (see rt::Clock): a pinned-rate HardwareClock
//     seeded with H(tau_start) on the shared axis. Because H is a pure
//     function of tau, a daemon restarted after SIGKILL resumes the
//     exact hardware clock the dead instance had.
//   * Outbound messages leave through Network::set_remote_transport into
//     rt::UdpPort (shaped loss/delay); inbound datagrams re-enter
//     through Network::deliver_remote, so traces carry the standard
//     MsgSend/MsgDeliver records and every existing trace tool works on
//     live runs unchanged.
//
// The trace sink spills incrementally to a LiveTraceWriter, so the
// capture on disk is a valid czsync-trace-v1 file at every instant — a
// SIGKILLed daemon leaves behind everything up to its last flush.
#pragma once

#include <cstdint>
#include <string>

#include "core/params.h"
#include "core/protocol_engine.h"
#include "rt/udp_port.h"
#include "util/time_domain.h"

namespace czsync::rt {

struct DaemonConfig {
  net::ProcId id = 0;
  core::ModelParams model;  ///< n, f, rho, delta
  Duration sync_int = Duration::seconds(2);
  /// This node's hardware-clock perturbation: H(tau) = offset + rate*tau.
  /// rate must lie within the model's drift band [1/(1+rho), 1+rho].
  double drift_rate = 1.0;
  Duration clock_offset = Duration::zero();
  /// Initial logical adjustment adj_p. The crash test restarts a daemon
  /// with this smashed way off to force a WayOff re-join.
  Duration initial_adj = Duration::zero();
  /// CLOCK_MONOTONIC nanoseconds defining tau = 0, shared clusterwide.
  std::int64_t epoch_ns = 0;
  /// Stop after this much tau (from startup); <= 0 means run until a
  /// SIGTERM/SIGINT arrives.
  Duration duration = Duration::seconds(30);
  int base_port = 39000;
  std::uint64_t seed = 1;
  std::string trace_path;  ///< empty = no capture
  ShapingConfig shaping;
  bool random_phase = true;
};

struct DaemonReport {
  core::SyncStats sync;
  UdpStats udp;
  std::uint64_t loop_eintr_retries = 0;
  std::uint64_t trace_records = 0;
  bool interrupted = false;  ///< stopped by signal rather than duration
  double cpu_sec = 0.0;      ///< user+system CPU consumed by the run
  double tau_start = 0.0;  // time: report fields are raw tau seconds
  double tau_end = 0.0;    // time: report fields are raw tau seconds
};

class Daemon {
 public:
  /// Validates the config. Throws std::invalid_argument on bad
  /// parameters (id/n mismatch, rate outside the drift band, ...).
  explicit Daemon(DaemonConfig config);

  /// Builds the full stack and runs the event loop to completion.
  /// Throws std::runtime_error on unrecoverable syscall failure.
  DaemonReport run();

 private:
  DaemonConfig config_;
};

}  // namespace czsync::rt
