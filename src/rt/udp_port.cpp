#include "rt/udp_port.h"

#include <arpa/inet.h>
#include <errno.h>   // NOLINT(modernize-deprecated-headers)
#include <netinet/in.h>
#include <string.h>  // NOLINT(modernize-deprecated-headers): strerror
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "core/wire.h"

namespace czsync::rt {

namespace {

constexpr int kMaxEintrRetries = 64;
constexpr std::size_t kMaxDatagram = 64 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + strerror(errno));
}

sockaddr_in loopback_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpPort::UdpPort(net::ProcId id, int n, int base_port, ShapingConfig shaping,
                 Rng rng)
    : id_(id), n_(n), base_port_(base_port), shaping_(shaping), rng_(rng) {
  if (id < 0 || id >= n) {
    throw std::invalid_argument("UdpPort: id outside [0, n)");
  }
  if (base_port <= 0 || base_port + n > 65536) {
    throw std::invalid_argument("UdpPort: port range outside [1, 65536)");
  }
  fd_ = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const sockaddr_in addr = loopback_addr(base_port + id);
  if (bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(base_port + id));
  }
}

UdpPort::~UdpPort() {
  if (fd_ >= 0) close(fd_);
}

void UdpPort::send(const net::Message& m) {
  if (shaping_.loss > 0.0 && rng_.chance(shaping_.loss)) {
    ++stats_.shaped_drops;
    return;
  }
  std::vector<unsigned char> bytes;
  core::encode_message(bytes, m);
  const Duration max = shaping_.extra_delay_max;
  if (max > Duration::zero() && scheduler_) {
    const Duration extra = Duration(rng_.uniform(0.0, max.sec()));
    const net::ProcId to = m.to;
    scheduler_(extra, [this, bytes = std::move(bytes), to]() {
      send_bytes(bytes, to);
    });
    return;
  }
  send_bytes(bytes, m.to);
}

void UdpPort::send_bytes(const std::vector<unsigned char>& bytes,
                         net::ProcId to) {
  const sockaddr_in addr = loopback_addr(base_port_ + to);
  for (int attempt = 0; attempt <= kMaxEintrRetries; ++attempt) {
    const ssize_t rc =
        sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (rc >= 0) {
      ++stats_.sent;
      return;
    }
    if (errno == EINTR) {
      ++stats_.eintr_retries;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
      // Full socket buffer or a not-yet-started peer: both are message
      // loss the protocol is built to tolerate. Count and move on.
      ++stats_.eagain_drops;
      return;
    }
    throw_errno("sendto");
  }
  ++stats_.eagain_drops;  // EINTR storm: treat as loss, don't hang
}

void UdpPort::drain(const std::function<void(const net::Message&)>& deliver) {
  unsigned char buf[kMaxDatagram];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof src;
    const ssize_t rc = recvfrom(fd_, buf, sizeof buf, 0,
                                reinterpret_cast<sockaddr*>(&src), &src_len);
    if (rc < 0) {
      if (errno == EINTR) {
        ++stats_.eintr_retries;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      throw_errno("recvfrom");
    }
    auto msg = core::decode_message(buf, static_cast<std::size_t>(rc), n_);
    if (!msg || msg->to != id_) {
      ++stats_.decode_errors;
      continue;
    }
    // Authenticated links: the kernel-reported source port must be the
    // claimed sender's bound port (loopback source addresses cannot be
    // spoofed without raw sockets), so `from` is trustworthy downstream.
    const int src_port = ntohs(src.sin_port);
    if (src_port != base_port_ + msg->from ||
        ntohl(src.sin_addr.s_addr) != INADDR_LOOPBACK) {
      ++stats_.auth_drops;
      continue;
    }
    ++stats_.received;
    deliver(*msg);
  }
}

}  // namespace czsync::rt
