#include "rt/event_loop.h"

#include <errno.h>   // NOLINT(modernize-deprecated-headers)
#include <signal.h>  // NOLINT(modernize-deprecated-headers)
#include <string.h>  // NOLINT(modernize-deprecated-headers): strerror
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <stdexcept>
#include <string>
#include <utility>

namespace czsync::rt {

namespace {

/// EINTR can only recur while signals keep arriving mid-call; a bounded
/// retry turns a pathological storm into a diagnosable error instead of
/// a hang.
constexpr int kMaxEintrRetries = 64;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");

  timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) throw_errno("timerfd_create");

  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (sigprocmask(SIG_BLOCK, &mask, nullptr) < 0) throw_errno("sigprocmask");
  signal_fd_ = signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
  if (signal_fd_ < 0) throw_errno("signalfd");

  for (const int fd : {timer_fd_, signal_fd_}) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }
}

EventLoop::~EventLoop() {
  if (signal_fd_ >= 0) close(signal_fd_);
  if (timer_fd_ >= 0) close(timer_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  watches_.push_back(Watch{fd, std::move(on_readable)});
}

void EventLoop::arm_timer_at(std::int64_t monotonic_ns) {
  itimerspec spec{};
  if (monotonic_ns > 0) {
    spec.it_value.tv_sec = monotonic_ns / 1'000'000'000;
    spec.it_value.tv_nsec = monotonic_ns % 1'000'000'000;
    // TFD_TIMER_ABSTIME fires immediately for instants already past, so
    // a deadline that expired between computing it and arming is a wake,
    // not a lost tick. tv_value == {0,0} would mean "disarm"; clamp to
    // 1 ns so "fire at epoch exactly" still fires.
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;
    }
  }
  if (timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr) < 0) {
    throw_errno("timerfd_settime");
  }
}

void EventLoop::run(const std::function<void()>& on_wake) {
  epoll_event events[16];
  while (!stopped_) {
    int n = -1;
    for (int attempt = 0; attempt <= kMaxEintrRetries; ++attempt) {
      n = epoll_wait(epoll_fd_, events, 16, -1);
      if (n >= 0 || errno != EINTR) break;
      ++eintr_retries_;
    }
    if (n < 0) throw_errno("epoll_wait");

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == timer_fd_) {
        std::uint64_t expirations = 0;
        // Nonblocking; EAGAIN just means another wake consumed the tick.
        while (read(timer_fd_, &expirations, sizeof expirations) < 0 &&
               errno == EINTR) {
          ++eintr_retries_;
        }
        continue;  // the tick's work happens in on_wake
      }
      if (fd == signal_fd_) {
        signalfd_siginfo info{};
        while (read(signal_fd_, &info, sizeof info) < 0 && errno == EINTR) {
          ++eintr_retries_;
        }
        interrupted_ = true;
        stopped_ = true;
        continue;
      }
      for (auto& w : watches_) {
        if (w.fd == fd && w.on_readable) w.on_readable();
      }
    }
    on_wake();
  }
}

}  // namespace czsync::rt
