#include "rt/clock.h"

#include <time.h>  // NOLINT(modernize-deprecated-headers): clock_gettime

#include <stdexcept>

namespace czsync::rt {

Clock::Clock(std::int64_t epoch_ns, double rate, Duration offset)
    : epoch_ns_(epoch_ns), rate_(rate), offset_(offset) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("rt::Clock: rate must be positive");
  }
}

std::int64_t Clock::monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // lint: wall-clock
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

SimTau Clock::now() const {
  return SimTau(static_cast<double>(monotonic_ns() - epoch_ns_) * 1e-9);
}

std::int64_t Clock::to_monotonic_ns(SimTau t) const {
  // time: tau -> absolute CLOCK_MONOTONIC ns for timerfd arming
  return epoch_ns_ + static_cast<std::int64_t>(t.raw() * 1e9);
}

}  // namespace czsync::rt
