// rt::EventLoop — the daemon's non-blocking epoll loop.
//
// Three fd kinds drive a daemon: the UDP socket (peer datagrams), one
// timerfd (the embedded simulator's next event, armed as an *absolute*
// CLOCK_MONOTONIC instant so re-arming is race-free), and one signalfd
// (SIGTERM/SIGINT become ordinary readable events — the loop never takes
// an async signal handler, so there is no EINTR-vs-handler ambiguity and
// shutdown always runs the flush path). Every syscall retries EINTR a
// bounded number of times and surfaces anything else as a
// std::runtime_error carrying errno text, per the tools' no-silent-
// failure contract.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace czsync::rt {

class EventLoop {
 public:
  /// Creates the epoll instance, timerfd and signalfd (SIGTERM + SIGINT
  /// are blocked for the process and routed to the signalfd). Throws
  /// std::runtime_error on any syscall failure.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches `fd` for readability; `on_readable` fires once per epoll
  /// wake reporting it (callers drain the fd themselves — edge cases of
  /// level-triggered epoll stay out of the callback contract).
  void add_fd(int fd, std::function<void()> on_readable);

  /// Arms the wake timer at an absolute CLOCK_MONOTONIC instant, in
  /// nanoseconds; values in the past fire immediately. Pass 0 to disarm.
  void arm_timer_at(std::int64_t monotonic_ns);

  /// Runs until stop(): waits on epoll, dispatches readable callbacks,
  /// then invokes `on_wake` — the daemon's "advance the simulator to
  /// real now" step — after every wait, timer tick or not.
  void run(const std::function<void()>& on_wake);

  /// Makes run() return after finishing the current dispatch round.
  void stop() { stopped_ = true; }

  /// True when a SIGTERM/SIGINT arrived (the loop stops itself first).
  [[nodiscard]] bool interrupted() const { return interrupted_; }

  /// EINTR retries absorbed so far (exported as an rt.* metric).
  [[nodiscard]] std::uint64_t eintr_retries() const { return eintr_retries_; }

 private:
  struct Watch {
    int fd;
    std::function<void()> on_readable;
  };

  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  int signal_fd_ = -1;
  std::vector<Watch> watches_;
  bool stopped_ = false;
  bool interrupted_ = false;
  std::uint64_t eintr_retries_ = 0;
};

}  // namespace czsync::rt
