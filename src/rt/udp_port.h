// rt::UdpPort — localhost datagram transport for protocol messages.
//
// Each processor binds 127.0.0.1:(base_port + id); a message to peer q
// is one datagram to base_port + q, encoded by core::encode_message.
// Authentication (§2.2's unforgeable `from`) is enforced by the
// *receiver*: the datagram's source port must be the claimed sender's
// bound port, or the message is dropped and counted — on loopback the
// kernel guarantees source addresses, which stands in for the paper's
// authenticated links.
//
// Outbound shaping makes loopback look like the lossy, reordering
// network of the model: a loss probability drops datagrams before
// sendto, and a uniform extra delay holds the encoded bytes in a
// scheduler callback (the daemon wires it to its embedded simulator) —
// two delayed sends with crossing delays arrive reordered, so reorder
// falls out of jitter rather than being a separate knob. Draws come from
// a forked Rng stream, keeping runs reproducible per seed.
//
// Robustness contract (matching the PR 5 tools): EINTR is retried a
// bounded number of times; EAGAIN on send is counted as a drop (UDP may
// drop, the protocol tolerates it); EAGAIN on receive ends the drain.
// Unexpected errno throws std::runtime_error with strerror text.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.h"
#include "util/rng.h"
#include "util/time_domain.h"

namespace czsync::rt {

struct ShapingConfig {
  double loss = 0.0;                  ///< P(drop) per outbound datagram
  Duration extra_delay_max = Duration::zero();  ///< uniform [0, max] added delay
};

struct UdpStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t shaped_drops = 0;   ///< dropped by the loss probability
  std::uint64_t eagain_drops = 0;   ///< sendto hit a full socket buffer
  std::uint64_t eintr_retries = 0;
  std::uint64_t decode_errors = 0;  ///< malformed datagrams (dropped)
  std::uint64_t auth_drops = 0;     ///< source port != claimed sender
};

class UdpPort {
 public:
  /// Binds 127.0.0.1:(base_port + id) nonblocking. Throws
  /// std::runtime_error on socket/bind failure (the cluster harness
  /// retries with a different base port).
  UdpPort(net::ProcId id, int n, int base_port, ShapingConfig shaping,
          Rng rng);
  ~UdpPort();

  UdpPort(const UdpPort&) = delete;
  UdpPort& operator=(const UdpPort&) = delete;

  /// The socket fd, for EventLoop::add_fd.
  [[nodiscard]] int fd() const { return fd_; }

  /// Installs the delayed-send scheduler (the daemon's embedded
  /// simulator). Without one, shaped delays degrade to immediate sends.
  void set_delay_scheduler(
      std::function<void(Duration, std::function<void()>)> scheduler) {
    scheduler_ = std::move(scheduler);
  }

  /// Encodes and sends `m` to peer m.to, applying shaping.
  void send(const net::Message& m);

  /// Receives every queued datagram, decoding + authenticating each and
  /// handing the survivors to `deliver`. Returns when the socket drains.
  void drain(const std::function<void(const net::Message&)>& deliver);

  [[nodiscard]] const UdpStats& stats() const { return stats_; }

 private:
  void send_bytes(const std::vector<unsigned char>& bytes, net::ProcId to);

  net::ProcId id_;
  int n_;
  int base_port_;
  int fd_ = -1;
  ShapingConfig shaping_;
  Rng rng_;
  std::function<void(Duration, std::function<void()>)> scheduler_;
  UdpStats stats_;
};

}  // namespace czsync::rt
