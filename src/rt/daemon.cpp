#include "rt/daemon.h"

#include <sys/resource.h>

#include <cassert>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/convergence.h"
#include "core/sync_protocol.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "net/topology.h"
#include "rt/clock.h"
#include "rt/event_loop.h"
#include "sim/simulator.h"
#include "trace/live_writer.h"
#include "trace/sink.h"

namespace czsync::rt {

namespace {

double self_cpu_sec() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  const auto& m = config_.model;
  if (m.n < 2 || config_.id < 0 || config_.id >= m.n) {
    throw std::invalid_argument("Daemon: id outside [0, n) or n < 2");
  }
  const double lo = 1.0 / (1.0 + m.rho);
  const double hi = 1.0 + m.rho;
  if (config_.drift_rate < lo || config_.drift_rate > hi) {
    throw std::invalid_argument(
        "Daemon: drift_rate outside the model band [1/(1+rho), 1+rho]");
  }
  if (config_.sync_int <= Duration::zero() || m.delta <= Duration::zero()) {
    throw std::invalid_argument("Daemon: sync_int and delta must be positive");
  }
  if (config_.epoch_ns <= 0) {
    throw std::invalid_argument("Daemon: epoch_ns must be a positive "
                                "CLOCK_MONOTONIC reading");
  }
}

DaemonReport Daemon::run() {
  const double cpu0 = self_cpu_sec();
  const auto& m = config_.model;
  Rng master(config_.seed);

  Clock clock(config_.epoch_ns, config_.drift_rate, config_.clock_offset);
  const SimTau tau_start = clock.now();

  // The embedded simulator: pure timer substrate, its tau aliased to
  // rt::Clock's. Nothing is scheduled yet, so the initial jump to
  // tau_start (hours, for a late-restarted daemon) is one comparison.
  sim::Simulator sim;
  const bool jumped = sim.advance_to(tau_start);
  (void)jumped;
  assert(jumped);

  // Live trace capture: spill chunks feed the incremental writer, and
  // every wake flushes, so the on-disk file is valid at all times.
  trace::TraceSink sink;
  std::optional<trace::LiveTraceWriter> writer;
  if (!config_.trace_path.empty()) {
    writer.emplace(config_.trace_path);
    sink.set_spill(512, [&writer](const trace::TraceRecord* recs,
                                  std::size_t count) {
      writer->append(recs, count);
    });
    sim.set_trace_sink(&sink);
  }

  clk::HardwareClock hw(sim, clk::make_pinned_drift(m.rho, config_.drift_rate),
                        master.fork("drift"), clock.hardware_at(tau_start));
  clk::LogicalClock logical(hw, config_.initial_adj);

  net::Network network(sim, net::Topology::full_mesh(m.n),
                       net::make_fixed_delay(m.delta), master.fork("net"));
  UdpPort port(config_.id, m.n, config_.base_port, config_.shaping,
               master.fork("shaping"));
  port.set_delay_scheduler([&sim](Duration d, std::function<void()> fn) {
    sim.schedule_after(d, std::move(fn));
  });
  network.set_remote_transport(
      [&port](const net::Message& msg) { port.send(msg); });

  core::SyncConfig sync_config;
  sync_config.params = core::ProtocolParams::derive(m, config_.sync_int);
  sync_config.f = m.f;
  sync_config.convergence = core::make_convergence("bhhn");
  sync_config.random_phase = config_.random_phase;

  core::SyncProcess engine(sim.trace_port(), network, logical, config_.id,
                           sync_config, master.fork("proto"));
  network.register_handler(config_.id, [&engine](const net::Message& msg) {
    engine.handle_message(msg);
  });

  EventLoop loop;

  // Runs every simulator event due at or before tau, then jumps now() to
  // tau — the daemon's "time passed for real" step.
  const auto drain_sim_to = [&sim](SimTau tau) {
    while (!sim.advance_to(tau)) sim.step();
  };

  const SimTau tau_end = config_.duration > Duration::zero()
                               ? tau_start + config_.duration
                               : SimTau::infinity();

  loop.add_fd(port.fd(), [&]() {
    // Advance to the arrival instant first so MsgDeliver records and the
    // handler's clock reads see the true reception time.
    drain_sim_to(clock.now());
    port.drain([&network](const net::Message& msg) {
      network.deliver_remote(msg);
    });
  });

  engine.start();

  const auto on_wake = [&]() {
    const SimTau tau = clock.now();
    drain_sim_to(tau);
    if (writer) {
      sink.flush_spill();
      writer->flush();
    }
    if (tau >= tau_end) {
      loop.stop();
      return;
    }
    SimTau next = sim.next_event_time();
    if (tau_end < next) next = tau_end;
    if (next == SimTau::infinity()) {  // lint: exact-time (sentinel)
      // Idle with no horizon (duration <= 0, engine quiescent): tick at
      // 1 Hz so signals/teardown conditions are still observed promptly.
      next = tau + Duration::seconds(1);
    }
    loop.arm_timer_at(clock.to_monotonic_ns(next));
  };
  // Arm once before entering the loop — epoll_wait blocks indefinitely,
  // so the first timer deadline must exist before the first wait.
  on_wake();
  loop.run(on_wake);

  engine.suspend();  // cancel alarms so teardown has no pending events
  if (writer) {
    sink.flush_spill();
    writer->flush();
  }

  DaemonReport report;
  report.sync = engine.stats();
  report.udp = port.stats();
  report.loop_eintr_retries = loop.eintr_retries();
  report.trace_records = sink.total();
  report.interrupted = loop.interrupted();
  report.cpu_sec = self_cpu_sec() - cpu0;
  report.tau_start = tau_start.raw();  // time: report fields are raw tau
  report.tau_end = clock.now().raw();  // time: report fields are raw tau
  return report;
}

}  // namespace czsync::rt
