// rt::Clock — the real-time axis of a daemon, plus its perturbed
// hardware clock.
//
// Every daemon of a cluster shares one time axis: tau = 0 is a
// CLOCK_MONOTONIC instant (`epoch_ns`) chosen by the harness and passed
// to each process, so traces from different daemons — and from a daemon
// killed and restarted — line up on the same tau without any cross-host
// clock agreement. CLOCK_MONOTONIC itself is the one true real time of
// the experiment; the paper's drifting hardware clock H_p is *applied on
// top* as a configured perturbation H_p(tau) = offset + rate * tau,
// which makes H_p a pure function of tau: a restarted daemon recomputes
// exactly the hardware clock the killed instance had (real oscillators
// keep ticking through a process crash), and the envelope checker can
// reconstruct every C_p(tau) offline from the config and the AdjWrite
// records alone.
#pragma once

#include <cstdint>

#include "util/time_domain.h"

namespace czsync::rt {

class Clock {
 public:
  /// `epoch_ns`: the CLOCK_MONOTONIC reading that is tau = 0 (shared
  /// across the cluster). `rate`/`offset` define this node's perturbed
  /// hardware clock H(tau) = offset + rate * tau; rate must be positive.
  Clock(std::int64_t epoch_ns, double rate = 1.0, Duration offset = Duration::zero());

  /// Raw CLOCK_MONOTONIC in nanoseconds.
  [[nodiscard]] static std::int64_t monotonic_ns();

  /// Current tau.
  [[nodiscard]] SimTau now() const;

  /// tau -> absolute CLOCK_MONOTONIC nanoseconds (for timerfd arming).
  [[nodiscard]] std::int64_t to_monotonic_ns(SimTau t) const;

  /// The perturbed hardware clock at `t`: offset + rate * t.
  [[nodiscard]] HwTime hardware_at(SimTau t) const {
    // time: clock model evaluating H(tau) = offset + rate * tau
    return HwTime(offset_.sec() + rate_ * t.raw());
  }

  [[nodiscard]] std::int64_t epoch_ns() const { return epoch_ns_; }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] Duration offset() const { return offset_; }

 private:
  std::int64_t epoch_ns_;
  double rate_;
  Duration offset_;
};

}  // namespace czsync::rt
