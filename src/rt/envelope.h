// Offline envelope reconstruction for real (rt) runs.
//
// The simulator backend can read every logical clock directly; a real
// cluster cannot — but it doesn't need to. Each daemon's hardware clock
// is the configured pure function H_p(tau) = offset_p + rate_p * tau
// (rt::Clock), and its adjustment adj_p is piecewise-constant with every
// write captured as an AdjWrite trace record (y = adj after the write).
// So C_p(tau) = offset_p + rate_p * tau + adj_p(tau) is *exactly*
// reconstructible from the per-node czsync-trace-v1 files plus the
// launch config — no sampling error, no in-band measurement traffic.
//
// A node's run may span several trace segments (a SIGKILLed daemon's
// capture plus its restarted instance's). Within a segment the node is
// "joined" from its first AdjWrite onward: before that, a freshly
// (re)started daemon may carry an arbitrarily smashed adjustment, which
// is precisely the paper's recovering-processor state — excluded from
// the deviation envelope but REQUIRED to end within the recovery bound
// (Theorem 5's re-join guarantee, checked here as join_bound).
//
// check_envelope() samples the reconstructed clocks on a fixed tau grid
// and verifies (i) the pairwise deviation among joined nodes never
// exceeds gamma = TheoremBounds::max_deviation for the run's parameters,
// and (ii) every segment joins within join_bound of its start. The
// returned measured maximum is what the cluster harness differentials
// against the simulator's measurement for the same parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.h"
#include "util/time_domain.h"

namespace czsync::rt {

/// One daemon instance's capture: the node's perturbation config, its
/// adjustment at process start, and the trace file it wrote.
struct NodeSegment {
  int id = -1;
  double rate = 1.0;
  double offset_sec = 0.0;
  double adj0_sec = 0.0;
  std::string path;
};

struct EnvelopeParams {
  core::ModelParams model;
  Duration sync_int = Duration::seconds(2);
  /// Max allowed segment-start -> first-AdjWrite latency. Pass zero to
  /// use the default 3 * T (one full interval to re-arm, one round to
  /// complete, generous slack for scheduler noise).
  Duration join_bound = Duration::zero();
  Duration sample_period = Duration::millis(100);
};

struct EnvelopeReport {
  Duration gamma;                  ///< Theorem 5 bound the run was checked against
  Duration join_bound;             ///< effective re-join bound
  Duration max_stable_deviation;   ///< worst pairwise deviation among joined nodes
  Duration max_join_latency;       ///< worst segment-start -> join latency
  std::uint64_t samples = 0;  ///< grid points with >= 2 joined nodes
  std::uint64_t rounds_total = 0;  ///< RoundClose records across segments
  std::uint64_t way_off_rounds = 0;
  int violations = 0;
  std::string first_violation;  ///< empty when pass
  bool pass = false;
};

/// Reconstructs every node's C(tau) from `segments` and checks the
/// envelope + re-join bounds. Throws std::runtime_error on unreadable
/// trace files or segments referencing ids outside [0, n).
[[nodiscard]] EnvelopeReport check_envelope(
    const EnvelopeParams& params, const std::vector<NodeSegment>& segments);

}  // namespace czsync::rt
