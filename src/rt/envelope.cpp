#include "rt/envelope.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "trace/format.h"
#include "trace/record.h"

namespace czsync::rt {

namespace {

/// One loaded segment: the piecewise-constant adjustment plus windows.
struct Segment {
  int id = -1;
  double rate = 1.0;
  double offset = 0.0;
  double t_start = 0.0;
  double t_end = 0.0;
  double t_join = std::numeric_limits<double>::infinity();
  std::vector<std::pair<double, double>> adj_steps;  ///< (t, adj from t on)

  // time: reconstruction evaluates segments on the raw tau axis
  [[nodiscard]] bool covers(double tau) const {
    return tau >= t_start && tau <= t_end;
  }

  /// adj(tau): the last step at or before tau (steps are time-sorted).
  // time: reconstruction evaluates segments on the raw tau axis
  [[nodiscard]] double adj_at(double tau) const {
    auto it = std::upper_bound(
        adj_steps.begin(), adj_steps.end(), tau,
        [](double t, const std::pair<double, double>& s) { return t < s.first; });
    return std::prev(it)->second;
  }

  // time: reconstruction evaluates segments on the raw tau axis
  [[nodiscard]] double clock_at(double tau) const {
    return offset + rate * tau + adj_at(tau);
  }
};

Segment load_segment(const NodeSegment& ns, int n,
                     std::uint64_t& rounds_total,
                     std::uint64_t& way_off_rounds) {
  if (ns.id < 0 || ns.id >= n) {
    throw std::runtime_error("envelope: segment id " + std::to_string(ns.id) +
                             " outside [0, " + std::to_string(n) + ")");
  }
  const trace::TraceData data = trace::read_trace_file(ns.path);
  if (data.records.empty()) {
    throw std::runtime_error("envelope: '" + ns.path + "' holds no records");
  }
  Segment seg;
  seg.id = ns.id;
  seg.rate = ns.rate;
  seg.offset = ns.offset_sec;
  seg.t_start = data.records.front().t;
  seg.t_end = data.records.front().t;
  seg.adj_steps.emplace_back(-std::numeric_limits<double>::infinity(),
                             ns.adj0_sec);
  for (const auto& r : data.records) {
    seg.t_start = std::min(seg.t_start, r.t);
    seg.t_end = std::max(seg.t_end, r.t);
    switch (r.kind) {
      case trace::RecordKind::AdjWrite:
        if (r.p == ns.id) {
          seg.adj_steps.emplace_back(r.t, r.y);
          seg.t_join = std::min(seg.t_join, r.t);
        }
        break;
      case trace::RecordKind::RoundClose:
        if (r.p == ns.id) {
          ++rounds_total;
          if ((r.aux & trace::kRoundWayOff) != 0) ++way_off_rounds;
        }
        break;
      default:
        break;
    }
  }
  // Daemon traces are written in time order, but cheap insurance against
  // hand-assembled inputs: adj lookup requires sorted steps.
  std::stable_sort(seg.adj_steps.begin(), seg.adj_steps.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return seg;
}

std::string fmt_ms(double sec) {
  std::ostringstream os;
  os << sec * 1e3 << " ms";
  return os.str();
}

}  // namespace

EnvelopeReport check_envelope(const EnvelopeParams& params,
                              const std::vector<NodeSegment>& segments) {
  if (segments.empty()) {
    throw std::runtime_error("envelope: no trace segments given");
  }
  const core::ProtocolParams proto =
      core::ProtocolParams::derive(params.model, params.sync_int);
  const core::TheoremBounds bounds =
      core::TheoremBounds::compute(params.model, proto);

  EnvelopeReport report;
  report.gamma = bounds.max_deviation;
  report.join_bound = params.join_bound > Duration::zero()
                          ? params.join_bound
                          : bounds.T * 3.0;
  report.max_stable_deviation = Duration::zero();
  report.max_join_latency = Duration::zero();

  std::vector<Segment> loaded;
  loaded.reserve(segments.size());
  double grid_lo = std::numeric_limits<double>::infinity();
  double grid_hi = -std::numeric_limits<double>::infinity();
  for (const auto& ns : segments) {
    loaded.push_back(load_segment(ns, params.model.n, report.rounds_total,
                                  report.way_off_rounds));
    grid_lo = std::min(grid_lo, loaded.back().t_start);
    grid_hi = std::max(grid_hi, loaded.back().t_end);
  }

  // Re-join check: every segment that lived long enough to be expected
  // to join must have joined, within the bound, from its start.
  for (const auto& seg : loaded) {
    const double lifetime = seg.t_end - seg.t_start;
    if (std::isinf(seg.t_join)) {
      if (lifetime > report.join_bound.sec()) {
        ++report.violations;
        if (report.first_violation.empty()) {
          report.first_violation =
              "node " + std::to_string(seg.id) + ": segment alive " +
              fmt_ms(lifetime) + " never wrote an adjustment (join bound " +
              fmt_ms(report.join_bound.sec()) + ")";
        }
      }
      continue;
    }
    const double latency = seg.t_join - seg.t_start;
    report.max_join_latency =
        std::max(report.max_join_latency, Duration(latency));
    if (latency > report.join_bound.sec()) {
      ++report.violations;
      if (report.first_violation.empty()) {
        report.first_violation =
            "node " + std::to_string(seg.id) + ": re-join took " +
            fmt_ms(latency) + " > bound " + fmt_ms(report.join_bound.sec()) +
            " (segment start tau=" + std::to_string(seg.t_start) + ")";
      }
    }
  }

  // Envelope check on the sampling grid. The grid is integer-indexed:
  // accumulating `tau += step` compounds one rounding error per
  // iteration, which on long runs drifts the sample instants and can
  // drop the final grid point (or sample past grid_hi). `lo + i * step`
  // keeps every instant exact to a single rounding, and the last index
  // is widened by one ulp-tolerance so an exact-dividing span still
  // includes its endpoint.
  const double step = params.sample_period.sec();
  if (!(step > 0.0)) {
    throw std::runtime_error("envelope: sample_period must be positive");
  }
  const double span = grid_hi - grid_lo;
  // A span that is an exact multiple of step mathematically may divide
  // to one rounding below the integer (10 / 0.1 < 100 in doubles); the
  // step-relative tolerance keeps that endpoint on the grid, and the
  // clamp keeps the recovered instant from overshooting grid_hi by the
  // same rounding in the other direction.
  const auto last = static_cast<std::int64_t>((span + step * 1e-9) / step);
  for (std::int64_t i = 0; i <= last; ++i) {
    // time: envelope reconstruction samples segments on the raw tau grid
    const double tau =
        std::min(grid_lo + static_cast<double>(i) * step, grid_hi);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    int lo_id = -1;
    int hi_id = -1;
    int joined = 0;
    for (const auto& seg : loaded) {
      if (!seg.covers(tau) || tau < seg.t_join) continue;
      const double c = seg.clock_at(tau);
      if (c < lo) {
        lo = c;
        lo_id = seg.id;
      }
      if (c > hi) {
        hi = c;
        hi_id = seg.id;
      }
      ++joined;
    }
    if (joined < 2) continue;
    ++report.samples;
    const double dev = hi - lo;
    report.max_stable_deviation =
        std::max(report.max_stable_deviation, Duration(dev));
    if (dev > report.gamma.sec()) {
      ++report.violations;
      if (report.first_violation.empty()) {
        report.first_violation =
            "tau=" + std::to_string(tau) + ": |C_" + std::to_string(hi_id) +
            " - C_" + std::to_string(lo_id) + "| = " + fmt_ms(dev) +
            " > gamma = " + fmt_ms(report.gamma.sec());
      }
    }
  }

  report.pass = report.violations == 0 && report.samples > 0;
  if (report.pass == false && report.first_violation.empty()) {
    report.first_violation =
        "no sample instant had two joined nodes (traces too short or "
        "nodes never joined)";
  }
  return report;
}

}  // namespace czsync::rt
