// One-call experiment runner: Scenario in, metrics out.
//
// This is the API the benches, property tests and examples use; it hides
// the World wiring and copies out everything of interest so the result
// outlives the simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/observer.h"
#include "analysis/scenario.h"
#include "core/params.h"
#include "trace/sink.h"
#include "util/metrics.h"

namespace czsync::analysis {

struct RunResult {
  // Theory side (what Theorem 5 promises for this configuration).
  core::TheoremBounds bounds;

  // Measured synchronization (Def. 3 i), over stable processors.
  Duration max_stable_deviation;
  Duration mean_stable_deviation;
  double final_stable_deviation = 0.0;  // seconds, at the last sample

  // Measured accuracy (Def. 3 ii).
  Duration max_stable_discontinuity;   ///< largest single adjustment (vs psi)
  double max_rate_excess = 0.0;   ///< worst |segment rate - 1| (vs rho~)

  // Recoveries (Def. 3 iii): one entry per adversary leave event that was
  // not preempted by a new break-in.
  std::vector<RecoveryEvent> recoveries;
  [[nodiscard]] Duration max_recovery_time() const;
  [[nodiscard]] bool all_recovered() const;

  // Run accounting.
  std::uint64_t messages_sent = 0;
  std::uint64_t link_fault_drops = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t way_off_rounds = 0;
  std::uint64_t joins = 0;              ///< round-engine re-acquisitions
  std::uint64_t mismatch_discards = 0;  ///< round-engine cross-round drops
  std::uint64_t replays_accepted = 0;   ///< broadcast-engine replay hits
  std::uint64_t break_ins = 0;
  std::size_t samples = 0;

  /// Full trace; non-empty only when Scenario::record_series was set.
  std::vector<Sample> series;

  /// Unified per-layer snapshot (World::collect_metrics): everything the
  /// scalar fields above summarize plus the sim/net internals, keyed as
  /// "sim.*", "net.*", "core.*", "observer.*", "adversary.*".
  util::MetricRegistry metrics;
};

/// Builds a World from the scenario, runs it, and extracts the metrics.
[[nodiscard]] RunResult run_scenario(const Scenario& scenario);

/// Same, with a trace sink attached for the duration of the run (may be
/// nullptr, which is identical to the overload above). The sink is pure
/// observation — traced and untraced runs are bit-identical.
[[nodiscard]] RunResult run_scenario(const Scenario& scenario,
                                     trace::TraceSink* sink);

}  // namespace czsync::analysis
