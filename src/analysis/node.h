// Node: one simulated processor — clock + Sync protocol + dispatch.
//
// The node is the seam between the correct protocol and the adversary:
// inbound messages are routed to the adversary's strategy while the node
// is controlled, to the Sync protocol (and optionally an application
// handler) otherwise. It implements adversary::ControlledProcess so the
// engine can suspend/resume its daemons and smash its clock.
#pragma once

#include <functional>
#include <memory>

#include "adversary/adversary.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/discipline.h"
#include "core/round_protocol.h"
#include "core/sync_protocol.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace czsync::analysis {

/// Which synchronization engine a node runs: the paper's no-rounds
/// protocol (§3.2) or the round-based comparator (§3.3 ablation).
enum class EngineKind { NoRounds, Rounds };

/// Custom engine constructor (e.g. the broadcast comparator, which needs
/// extra collaborators like an Authenticator). When provided, it
/// overrides EngineKind.
using EngineFactory = std::function<std::unique_ptr<core::ProtocolEngine>(
    sim::Simulator&, net::Network&, clk::LogicalClock&, net::ProcId, Rng)>;

class Node final : public adversary::ControlledProcess {
 public:
  /// Constructs the node's clock stack and protocol engine and registers
  /// its network handler. `initial_bias` sets C_p(now) = now +
  /// initial_bias.
  Node(sim::Simulator& sim, net::Network& network,
       std::shared_ptr<const clk::DriftModel> drift, core::SyncConfig config,
       net::ProcId id, Rng rng, Duration initial_bias,
       EngineKind engine = EngineKind::NoRounds,
       const EngineFactory& factory = nullptr);

  // --- adversary::ControlledProcess ---
  [[nodiscard]] net::ProcId id() const override { return id_; }
  [[nodiscard]] clk::LogicalClock& clock() override { return logical_; }
  void send(net::ProcId to, net::Body body) override;
  [[nodiscard]] std::span<const net::ProcId> peers() const override;
  void suspend_protocol() override;
  void resume_protocol() override;

  /// Wires the adversary engine in (must happen before messages flow if
  /// the scenario has faults).
  void set_adversary(adversary::Adversary* adv) { adversary_ = adv; }

  /// Arms the Sync protocol's first alarm (and the slew loop when rate
  /// discipline is enabled).
  void start();

  /// Enables the §5 rate-discipline extension: learns the residual
  /// frequency error from Sync outcomes and slews it away between Syncs.
  /// Must be called before start().
  void enable_rate_discipline(core::DisciplineConfig config);

  /// The discipline, or nullptr when not enabled.
  [[nodiscard]] core::RateDiscipline* discipline() { return discipline_.get(); }

  /// Application hook: non-sync messages received while correct go here.
  std::function<void(const net::Message&)> app_handler;
  /// Application daemons' break-in/recovery hooks (e.g. the proactive
  /// refresh process), invoked alongside the Sync suspend/resume.
  std::function<void()> app_suspend;
  std::function<void()> app_resume;

  [[nodiscard]] core::ProtocolEngine& sync() { return *engine_; }
  [[nodiscard]] const core::ProtocolEngine& sync() const { return *engine_; }
  [[nodiscard]] clk::HardwareClock& hardware() { return hw_; }
  [[nodiscard]] const clk::LogicalClock& logical() const { return logical_; }

  /// Bias B_p(now) = C_p(now) - now (Eq. 4). Analysis-only.
  [[nodiscard]] Duration bias() const;
  [[nodiscard]] bool controlled() const;

 private:
  void on_message(const net::Message& msg);
  void arm_slew();

  sim::Simulator& sim_;
  net::Network& network_;
  net::ProcId id_;
  clk::HardwareClock hw_;
  clk::LogicalClock logical_;
  std::unique_ptr<core::ProtocolEngine> engine_;
  adversary::Adversary* adversary_ = nullptr;
  std::unique_ptr<core::RateDiscipline> discipline_;
  clk::AlarmId slew_alarm_ = clk::kNoAlarm;
};

}  // namespace czsync::analysis
