// Scenario: the full description of one simulated experiment.
//
// (Scenario, seed) -> deterministic run. Everything the benches and the
// property tests sweep over is a field here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "adversary/schedule.h"
#include "core/params.h"
#include "net/link_faults.h"
#include "net/topology.h"
#include "util/time_domain.h"

namespace czsync::analysis {

struct Scenario {
  core::ModelParams model;

  /// Protocol knobs. sync_int feeds ProtocolParams::derive; the rest of
  /// the protocol parameters (MaxWait, WayOff) are derived per the paper.
  Duration sync_int = Duration::minutes(1);

  /// Convergence function: "bhhn", "midpoint", "capped-correction", "none".
  std::string convergence = "bhhn";
  Duration capped_correction_cap = Duration::millis(100);

  /// Protocol engine: the paper's no-rounds Sync ("sync") or the
  /// round-based comparator of the §3.3 discussion ("round").
  std::string protocol = "sync";

  /// §3.1 optimization: pings per peer per round, best (smallest error
  /// bound) wins. 1 = the plain protocol. Only the "sync" engine uses it.
  int pings_per_peer = 1;

  /// §3.1 caveat variant: estimation in a background thread, sync()
  /// consumes cached values without staleness compensation — breaks
  /// Definition 4 exactly as the paper warns (experiment E19).
  bool cached_estimation = false;
  Duration cache_refresh = Duration::seconds(20);

  /// Ablation knob (E21): multiplies the derived WayOff threshold. 1.0 =
  /// the paper's setting (Appendix A.2). Values != 1 void Theorem 5 —
  /// that is the point of the ablation.
  double way_off_scale = 1.0;

  /// §5 extension: per-node frequency-error estimation + slewing (NTP-
  /// style "feedback to estimate and compensate for clock drift"). The
  /// compensation is clamped to the model's rho, so the Theorem-5
  /// analysis still applies with rho' = 2 rho in the worst case.
  bool rate_discipline = false;
  double discipline_gain = 0.125;
  Duration discipline_slew_interval = Duration::seconds(5);

  /// Constant: one random rate per clock. Wander: bounded random walk.
  /// Sinusoidal: thermal/diurnal cycle, random phase per clock.
  /// OpposedHalves: processors < n/2 pinned to the fastest legal rate,
  /// the rest to the slowest — the worst case for the two-cliques
  /// counterexample (E7), where each clique free-runs at its own rate.
  enum class DriftKind { Constant, Wander, Sinusoidal, OpposedHalves };
  DriftKind drift = DriftKind::Constant;
  Duration wander_interval = Duration::minutes(5);
  Duration sinusoid_cycle = Duration::hours(2);

  enum class DelayKind { Fixed, Uniform, Asymmetric, Jitter };
  DelayKind delay = DelayKind::Uniform;

  /// Custom: use `custom_topology` (any pre-built graph).
  /// RandomRegular: degree-`topology_degree` random regular graph, built
  /// from the run's own seed (master fork "topology").
  /// Gnp: Erdos-Renyi G(n, topology_p) resampled until connected (see
  /// Topology::gnp_connected; net.gnp_retries / net.gnp_fallback report
  /// how hard that was) — the §5 partial-connectivity exploration at
  /// scale without materializing an n x n structure anywhere.
  enum class TopologyKind {
    FullMesh,
    TwoCliques,
    Ring,
    Custom,
    RandomRegular,
    Gnp,
  };
  TopologyKind topology = TopologyKind::FullMesh;
  std::optional<net::Topology> custom_topology;
  /// RandomRegular only: target degree (>= 2).
  int topology_degree = 4;
  /// Gnp only: edge probability. Keep >= ~2 ln(n)/n or the connectivity
  /// resampling will exhaust its retries and fall back (see
  /// Topology::gnp_connected).
  double topology_p = 0.5;

  /// Initial logical-clock biases drawn uniformly from
  /// [-initial_spread/2, +initial_spread/2].
  Duration initial_spread = Duration::millis(100);

  Duration horizon = Duration::hours(6);
  Duration sample_period = Duration::seconds(10);
  /// Steady-state metrics (deviation, discontinuity, rate) ignore samples
  /// before this instant, excluding the initial convergence transient
  /// (the paper's guarantees assume a correctly initialized system).
  Duration warmup = Duration::zero();
  std::uint64_t seed = 1;

  /// Link faults (§1.2 probe): messages on a cut link are dropped.
  net::LinkFaultSet link_faults;

  /// Adversary: empty schedule means a fault-free run.
  adversary::Schedule schedule;
  /// Strategy name (see adversary::make_strategy) and its scale knob
  /// (smash offset / lie magnitude / hold-back, depending on strategy).
  std::string strategy = "silent";
  Duration strategy_scale = Duration::seconds(10);

  /// Keep the full per-sample trace in the result (costs memory; benches
  /// that plot series set this).
  bool record_series = false;

  /// Deliver round fanouts as one pooled train event instead of one
  /// simulator event per message. Observable behaviour (trace bytes,
  /// protocol counters) is identical either way; the off switch exists
  /// for the equivalence regression test.
  bool batched_fanout = true;

  /// Shard the simulator's event pool into this many partitions keyed by
  /// processor id (0 = off: the single-queue code path). Pure pool
  /// bookkeeping — fire order, traces and protocol counters are
  /// bit-identical at every value (the shard_determinism test proves
  /// it); a cache-locality knob for n >= 1e5 ensembles.
  int event_shards = 0;
};

}  // namespace czsync::analysis
