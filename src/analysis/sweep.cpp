#include "analysis/sweep.h"

#include <cassert>

namespace czsync::analysis {

SweepResult run_sweep(const std::function<Scenario(std::uint64_t seed)>& make,
                      std::uint64_t first_seed, int count) {
  assert(count >= 1);
  SweepResult out;
  for (int i = 0; i < count; ++i) {
    const auto seed = first_seed + static_cast<std::uint64_t>(i);
    const RunResult r = run_scenario(make(seed));
    ++out.runs;
    out.max_deviation.add(r.max_stable_deviation.sec());
    out.mean_deviation.add(r.mean_stable_deviation.sec());
    out.max_discontinuity.add(r.max_stable_discontinuity.sec());
    out.max_rate_excess.add(r.max_rate_excess);
    if (r.max_stable_deviation >= r.bounds.max_deviation) ++out.bound_violations;
    if (!r.all_recovered()) ++out.unrecovered_runs;
    const Dur rec = r.max_recovery_time();
    if (rec.is_finite() && rec > Dur::zero()) out.max_recovery.add(rec.sec());
    out.bound = r.bounds.max_deviation;
  }
  return out;
}

}  // namespace czsync::analysis
