#include "analysis/sweep.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <future>
#include <vector>

#include "trace/format.h"
#include "trace/sink.h"
#include "util/thread_pool.h"

namespace czsync::analysis {

namespace {

// Wall-clock timing for throughput metrics only; simulation behaviour
// never reads it.
using Clock = std::chrono::steady_clock;  // lint: wall-clock

double elapsed_sec(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Folds one run into the aggregate. Shared by the serial and parallel
/// paths so their arithmetic — and therefore their output bits — cannot
/// diverge. MUST be applied in seed order.
void accumulate(SweepResult& out, const RunResult& r) {
  if (out.runs == 0) {
    out.bound = r.bounds.max_deviation;
  } else if (r.bounds.max_deviation != out.bound) {
    ++out.bound_mismatches;
  }
  ++out.runs;
  out.max_deviation.add(r.max_stable_deviation.sec());
  out.mean_deviation.add(r.mean_stable_deviation.sec());
  out.max_discontinuity.add(r.max_stable_discontinuity.sec());
  out.max_rate_excess.add(r.max_rate_excess);
  if (r.max_stable_deviation >= r.bounds.max_deviation) ++out.bound_violations;
  if (!r.all_recovered()) ++out.unrecovered_runs;
  const Duration rec = r.max_recovery_time();
  if (rec.is_finite() && rec > Duration::zero()) out.max_recovery.add(rec.sec());
}

int resolve_jobs(int jobs) {
  return jobs > 0 ? jobs : static_cast<int>(ThreadPool::default_jobs());
}

/// run_scenario with the sweep's flight recorder attached. Dumps the
/// trace on a bound violation, an unrecovered run, an exception (then
/// rethrows), or always under dump_all. Each call owns its sink and dump
/// file, so the parallel path needs no synchronization.
RunResult run_traced(const Scenario& scenario, std::uint64_t seed,
                     const SweepTraceConfig* trace) {
  if (trace == nullptr || !trace->enabled()) return run_scenario(scenario);
  trace::TraceSink sink =
      trace->flight_capacity > 0
          ? trace::TraceSink::flight_recorder(trace->flight_capacity)
          : trace::TraceSink{};
  const std::string path = trace->path_for_seed(seed);
  RunResult r;
  try {
    r = run_scenario(scenario, &sink);
  } catch (...) {
    trace::write_trace_file(path, sink);  // post-mortem for the failure
    throw;
  }
  const bool failed = r.max_stable_deviation >= r.bounds.max_deviation ||
                      !r.all_recovered();
  if (trace->dump_all || failed) trace::write_trace_file(path, sink);
  return r;
}

}  // namespace

std::string SweepTraceConfig::path_for_seed(std::uint64_t seed) const {
  return path_prefix + "seed" + std::to_string(seed) + ".cztrace";
}

SweepResult run_sweep(const std::function<Scenario(std::uint64_t seed)>& make,
                      std::uint64_t first_seed, int count,
                      const SweepTraceConfig* trace) {
  assert(count >= 1);
  const auto t0 = Clock::now();
  SweepResult out;
  for (int i = 0; i < count; ++i) {
    const auto seed = first_seed + static_cast<std::uint64_t>(i);
    accumulate(out, run_traced(make(seed), seed, trace));
  }
  out.wall_seconds = elapsed_sec(t0);
  return out;
}

SweepResult run_sweep_parallel(
    const std::function<Scenario(std::uint64_t seed)>& make,
    std::uint64_t first_seed, int count, int jobs,
    const SweepTraceConfig* trace) {
  assert(count >= 1);
  jobs = resolve_jobs(jobs);
  if (jobs <= 1) return run_sweep(make, first_seed, count, trace);

  const auto t0 = Clock::now();
  // Every run's metrics land in its seed's slot; the fold below walks the
  // slots in seed order, which is what makes the merge deterministic.
  std::vector<RunResult> results(static_cast<std::size_t>(count));
  {
    ThreadPool pool(static_cast<std::size_t>(std::min(jobs, count)));
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const auto seed = first_seed + static_cast<std::uint64_t>(i);
      pending.push_back(pool.submit([&make, &results, trace, i, seed] {
        results[static_cast<std::size_t>(i)] =
            run_traced(make(seed), seed, trace);
      }));
    }
    for (auto& f : pending) f.get();  // rethrows any worker exception
  }

  SweepResult out;
  for (const auto& r : results) accumulate(out, r);
  out.wall_seconds = elapsed_sec(t0);
  return out;
}

std::vector<RunResult> run_scenarios_parallel(
    const std::vector<Scenario>& scenarios, int jobs) {
  jobs = resolve_jobs(jobs);
  std::vector<RunResult> results(scenarios.size());
  if (jobs <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      results[i] = run_scenario(scenarios[i]);
    }
    return results;
  }
  ThreadPool pool(std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                        scenarios.size()));
  std::vector<std::future<void>> pending;
  pending.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    pending.push_back(pool.submit(
        [&scenarios, &results, i] { results[i] = run_scenario(scenarios[i]); }));
  }
  for (auto& f : pending) f.get();
  return results;
}

}  // namespace czsync::analysis
