// Registry-driven experiment harness.
//
// Every experiment (DESIGN.md §4, E1..E22) is a declarative registration:
// id, title, paper claim, and a body that builds scenarios and prints its
// report through an ExperimentContext. One shared runner (czsync_bench)
// owns argument parsing (--list, --run, --filter, --jobs, --json,
// --seed-base), job-count resolution, sweep dispatch, and RunRecord
// collection; adding an experiment is a ~30-line registration instead of
// a new binary.
//
// The context records one RunRecord per scenario run / sweep, each
// carrying the unified MetricRegistry snapshot (World::collect_metrics),
// which the harness serializes into machine-readable JSON for the perf
// trajectory in BENCH_PERF.json and tools/check_bench_regression.py.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/scenario.h"
#include "analysis/sweep.h"
#include "util/json.h"
#include "util/metrics.h"

namespace czsync::analysis {

/// One finished scenario run or multi-seed sweep, in machine-readable
/// form: what ran (label + scenario summary + seed), how long it took,
/// and the per-layer MetricRegistry snapshot.
struct RunRecord {
  enum class Kind { Run, Sweep };
  Kind kind = Kind::Run;
  std::string label;      ///< experiment-chosen row label ("" is fine)
  std::string scenario;   ///< compact knob summary, runs only
  std::uint64_t seed = 0; ///< scenario seed (runs) / first seed (sweeps)
  int runs = 1;           ///< seeds covered (1 for a single run)
  double wall_seconds = 0.0;
  util::MetricRegistry metrics;
};

/// Handed to each experiment body: resolved job count, seed shifting, the
/// run/sweep entry points (which record RunRecords as a side effect), and
/// the shared report helpers that used to be copy-pasted per bench.
class ExperimentContext {
 public:
  ExperimentContext(int jobs, std::uint64_t seed_base)
      : jobs_(jobs), seed_base_(seed_base) {}

  /// Worker count for parallel dispatch (--jobs / CZSYNC_JOBS / default).
  [[nodiscard]] int jobs() const { return jobs_; }
  /// --seed-base shift; 0 reproduces the legacy fixed-seed outputs.
  [[nodiscard]] std::uint64_t seed_base() const { return seed_base_; }

  /// Enables event tracing (--trace): single runs via run() dump their
  /// full trace to "<prefix>run<k>.cztrace"; sweeps run under a per-seed
  /// flight recorder that auto-dumps failing seeds to
  /// "<prefix>sweep<k>_seed<seed>.cztrace". Empty disables (default).
  void set_trace_prefix(std::string prefix) {
    trace_prefix_ = std::move(prefix);
  }

  /// Runs one scenario (scenario.seed += seed_base) and records it.
  RunResult run(Scenario s, std::string label = "");

  /// Ordered parallel map over independent scenarios (seed shift applied
  /// to each), one RunRecord per scenario plus the batch wall-clock.
  struct ParallelResult {
    std::vector<RunResult> results;
    double wall_seconds = 0.0;
  };
  ParallelResult run_parallel(std::vector<Scenario> scenarios,
                              std::string label = "");

  /// Multi-seed sweep through run_sweep_parallel at the context's job
  /// count; first_seed is shifted by seed_base. Records one Sweep record.
  SweepResult sweep(const std::function<Scenario(std::uint64_t)>& make,
                    std::uint64_t first_seed, int count,
                    std::string label = "");
  /// Same, at an explicit job count (scaling experiments, E22).
  SweepResult sweep_with_jobs(const std::function<Scenario(std::uint64_t)>& make,
                              std::uint64_t first_seed, int count, int jobs,
                              std::string label = "");

  /// One-line throughput footer, shared format across every sweep bench.
  static void print_sweep_perf(const char* what, int runs, double wall_seconds,
                               int jobs);

  /// Attaches a derived gauge to the most recent record's metrics —
  /// for experiment-computed values the layered collectors cannot know
  /// (E23 stamps scale.events_per_sec.* and scale.rss_per_proc_bytes_*
  /// this way, which the regression gate reads from the totals).
  /// Precondition: at least one run/sweep has been recorded.
  void annotate_gauge(const std::string& key, double value);

  [[nodiscard]] const std::vector<RunRecord>& records() const {
    return records_;
  }

 private:
  int jobs_;
  std::uint64_t seed_base_;
  std::string trace_prefix_;
  int trace_runs_ = 0;
  int trace_sweeps_ = 0;
  std::vector<RunRecord> records_;
};

struct Experiment {
  std::string id;     ///< "E1" .. "E22"
  std::string title;  ///< printed as "<id>: <title>" in the header
  std::string claim;  ///< the paper claim the experiment regenerates
  std::function<void(ExperimentContext&)> body;
};

/// Ordered collection of experiments. Registration order is listing and
/// --filter execution order; ids are unique (duplicates throw).
class ExperimentRegistry {
 public:
  /// Throws std::invalid_argument on an empty id/body or a duplicate id.
  void add(Experiment e);

  /// Case-insensitive exact id lookup; nullptr when absent.
  [[nodiscard]] const Experiment* find(std::string_view id) const;

  /// Case-insensitive substring match over "<id>: <title>"; an empty
  /// filter matches everything. Registration order.
  [[nodiscard]] std::vector<const Experiment*> match(
      std::string_view filter) const;

  [[nodiscard]] const std::vector<Experiment>& experiments() const {
    return experiments_;
  }
  [[nodiscard]] std::size_t size() const { return experiments_.size(); }

  /// Two-column "<id>  <title>" listing (--list).
  void print_list(std::ostream& os) const;

 private:
  std::vector<Experiment> experiments_;
};

/// Compact one-line knob summary of a scenario for RunRecords.
[[nodiscard]] std::string summarize_scenario(const Scenario& s);

/// Serializes `reg` as a JSON object (each entry one member; counters as
/// integers, gauges as doubles). Shared by the harness and czsync_cli.
void write_metrics_json(util::JsonWriter& w, const util::MetricRegistry& reg);

/// `git describe` of the tree this binary was configured from ("unknown"
/// when git was unavailable at configure time).
[[nodiscard]] const char* build_git_describe();

/// The czsync_bench driver: parses args, resolves the job count (strict
/// --jobs / CZSYNC_JOBS validation — garbage is an error, never a silent
/// hardware-default fallback), runs the selected experiments, and emits
/// the optional --json RunRecord document. Experiment bodies print their
/// reports to stdout exactly as the legacy binaries did; `out`/`err` get
/// the harness's own output (--list, usage, diagnostics). Returns the
/// process exit code: 0 ok, 2 usage/argument error.
int run_harness(const ExperimentRegistry& registry,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

}  // namespace czsync::analysis
