#include "analysis/registry.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "trace/format.h"
#include "trace/sink.h"
#include "util/jobs.h"

#ifndef CZSYNC_GIT_DESCRIBE
#define CZSYNC_GIT_DESCRIBE "unknown"
#endif

namespace czsync::analysis {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// Wall-clock throughput metrics (sweep.wall_seconds / runs_per_sec) are
// the one sanctioned nondeterminism: they report machine speed, never
// feed back into simulation behaviour.
double wall_since(
    std::chrono::steady_clock::time_point t0) {  // lint: wall-clock
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - t0)  // lint: wall-clock
      .count();
}

const char* drift_name(Scenario::DriftKind k) {
  switch (k) {
    case Scenario::DriftKind::Constant: return "constant";
    case Scenario::DriftKind::Wander: return "wander";
    case Scenario::DriftKind::Sinusoidal: return "sinusoidal";
    case Scenario::DriftKind::OpposedHalves: return "opposed-halves";
  }
  return "?";
}

const char* topology_name(Scenario::TopologyKind k) {
  switch (k) {
    case Scenario::TopologyKind::FullMesh: return "full-mesh";
    case Scenario::TopologyKind::TwoCliques: return "two-cliques";
    case Scenario::TopologyKind::Ring: return "ring";
    case Scenario::TopologyKind::Custom: return "custom";
    case Scenario::TopologyKind::RandomRegular: return "random-regular";
    case Scenario::TopologyKind::Gnp: return "gnp";
  }
  return "?";
}

void record_sweep_metrics(util::MetricRegistry& m, const SweepResult& r) {
  m.counter("sweep.runs", static_cast<std::uint64_t>(r.runs));
  m.counter("sweep.bound_violations",
            static_cast<std::uint64_t>(r.bound_violations));
  m.counter("sweep.unrecovered_runs",
            static_cast<std::uint64_t>(r.unrecovered_runs));
  m.counter("sweep.bound_mismatches",
            static_cast<std::uint64_t>(r.bound_mismatches));
  m.gauge("sweep.wall_seconds", r.wall_seconds);
  m.gauge("sweep.runs_per_sec", r.seeds_per_sec());
  m.gauge("sweep.max_deviation_mean_ms", r.max_deviation.mean() * 1e3);
  m.gauge("sweep.max_deviation_max_ms", r.max_deviation.max() * 1e3);
  m.gauge("sweep.max_recovery_mean_s", r.max_recovery.mean());
  m.gauge("sweep.max_recovery_max_s", r.max_recovery.max());
}

}  // namespace

std::string summarize_scenario(const Scenario& s) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "n=%d f=%d rho=%g delta_ms=%g sync_int_s=%g horizon_s=%g "
      "protocol=%s convergence=%s strategy=%s drift=%s topology=%s seed=%llu",
      s.model.n, s.model.f, s.model.rho, s.model.delta.ms(), s.sync_int.sec(),
      s.horizon.sec(), s.protocol.c_str(), s.convergence.c_str(),
      s.strategy.c_str(), drift_name(s.drift), topology_name(s.topology),
      static_cast<unsigned long long>(s.seed));
  return buf;
}

RunResult ExperimentContext::run(Scenario s, std::string label) {
  s.seed += seed_base_;
  const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock
  RunResult r;
  if (trace_prefix_.empty()) {
    r = run_scenario(s);
  } else {
    trace::TraceSink sink;  // full capture: --trace asked for this run
    r = run_scenario(s, &sink);
    trace::write_trace_file(
        trace_prefix_ + "run" + std::to_string(trace_runs_++) + ".cztrace",
        sink);
  }
  RunRecord rec;
  rec.kind = RunRecord::Kind::Run;
  rec.label = std::move(label);
  rec.scenario = summarize_scenario(s);
  rec.seed = s.seed;
  rec.runs = 1;
  rec.wall_seconds = wall_since(t0);
  rec.metrics = r.metrics;
  records_.push_back(std::move(rec));
  return r;
}

ExperimentContext::ParallelResult ExperimentContext::run_parallel(
    std::vector<Scenario> scenarios, std::string label) {
  for (auto& s : scenarios) s.seed += seed_base_;
  const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock
  ParallelResult out;
  out.results = run_scenarios_parallel(scenarios, jobs_);
  out.wall_seconds = wall_since(t0);
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    RunRecord rec;
    rec.kind = RunRecord::Kind::Run;
    rec.label = label.empty() ? label : label + "#" + std::to_string(i);
    rec.scenario = summarize_scenario(scenarios[i]);
    rec.seed = scenarios[i].seed;
    rec.runs = 1;
    // Batch wall-clock split evenly: per-run timing inside the pool is
    // not observable from here, and the batch total is what matters.
    rec.wall_seconds =
        out.results.empty()
            ? 0.0
            : out.wall_seconds / static_cast<double>(out.results.size());
    rec.metrics = out.results[i].metrics;
    records_.push_back(std::move(rec));
  }
  return out;
}

SweepResult ExperimentContext::sweep(
    const std::function<Scenario(std::uint64_t)>& make,
    std::uint64_t first_seed, int count, std::string label) {
  return sweep_with_jobs(make, first_seed, count, jobs_, std::move(label));
}

SweepResult ExperimentContext::sweep_with_jobs(
    const std::function<Scenario(std::uint64_t)>& make,
    std::uint64_t first_seed, int count, int jobs, std::string label) {
  first_seed += seed_base_;
  SweepTraceConfig trace_cfg;
  if (!trace_prefix_.empty()) {
    trace_cfg.path_prefix =
        trace_prefix_ + "sweep" + std::to_string(trace_sweeps_++) + "_";
  }
  SweepResult r =
      run_sweep_parallel(make, first_seed, count, jobs,
                         trace_cfg.enabled() ? &trace_cfg : nullptr);
  RunRecord rec;
  rec.kind = RunRecord::Kind::Sweep;
  rec.label = std::move(label);
  rec.seed = first_seed;
  rec.runs = r.runs;
  rec.wall_seconds = r.wall_seconds;
  record_sweep_metrics(rec.metrics, r);
  records_.push_back(std::move(rec));
  return r;
}

void ExperimentContext::annotate_gauge(const std::string& key, double value) {
  assert(!records_.empty() && "annotate_gauge needs a preceding run/sweep");
  records_.back().metrics.gauge(key, value);
}

void ExperimentContext::print_sweep_perf(const char* what, int runs,
                                         double wall_seconds, int jobs) {
  std::printf("%s: %d runs in %.2f s (%.2f runs/s, jobs = %d)\n", what, runs,
              wall_seconds, wall_seconds > 0 ? runs / wall_seconds : 0.0,
              jobs);
}

void ExperimentRegistry::add(Experiment e) {
  if (e.id.empty()) throw std::invalid_argument("experiment id is empty");
  if (!e.body) {
    throw std::invalid_argument("experiment '" + e.id + "' has no body");
  }
  if (find(e.id) != nullptr) {
    throw std::invalid_argument("duplicate experiment id '" + e.id + "'");
  }
  experiments_.push_back(std::move(e));
}

const Experiment* ExperimentRegistry::find(std::string_view id) const {
  const std::string want = lower(id);
  for (const auto& e : experiments_) {
    if (lower(e.id) == want) return &e;
  }
  return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::match(
    std::string_view filter) const {
  const std::string want = lower(filter);
  std::vector<const Experiment*> out;
  for (const auto& e : experiments_) {
    const std::string hay = lower(e.id + ": " + e.title);
    if (want.empty() || hay.find(want) != std::string::npos) out.push_back(&e);
  }
  return out;
}

void ExperimentRegistry::print_list(std::ostream& os) const {
  std::size_t width = 0;
  for (const auto& e : experiments_) width = std::max(width, e.id.size());
  for (const auto& e : experiments_) {
    os << e.id << std::string(width - e.id.size() + 2, ' ') << e.title << "\n";
  }
}

void write_metrics_json(util::JsonWriter& w, const util::MetricRegistry& reg) {
  w.begin_object();
  for (const auto& [name, entry] : reg.entries()) {
    w.key(name);
    if (entry.integral) {
      w.value(static_cast<std::uint64_t>(entry.value));
    } else {
      w.value(entry.value);
    }
  }
  w.end_object();
}

const char* build_git_describe() { return CZSYNC_GIT_DESCRIBE; }

namespace {

void print_usage(std::ostream& os) {
  os << "usage: czsync_bench [--list] [--run <id>]... [--filter <substr>]\n"
        "                    [--jobs <n>] [--json <path>] [--seed-base <n>]\n"
        "                    [--trace <prefix>]\n"
        "\n"
        "  --list            list registered experiments and exit\n"
        "  --run <id>        run one experiment (repeatable), e.g. --run E1\n"
        "  --filter <s>      run every experiment whose id/title contains <s>\n"
        "  --jobs <n>        worker threads for parallel sweeps (>= 1;\n"
        "                    default: CZSYNC_JOBS or the hardware count)\n"
        "  --json <path>     write the machine-readable RunRecord document\n"
        "  --seed-base <n>   shift every scenario seed by <n> (default 0 =\n"
        "                    the canonical published outputs)\n"
        "  --trace <prefix>  event tracing: single runs dump full\n"
        "                    czsync-trace-v1 traces to <prefix>run<k>.cztrace;\n"
        "                    sweep seeds run under a flight recorder that\n"
        "                    dumps failing seeds to\n"
        "                    <prefix>sweep<k>_seed<s>.cztrace (inspect with\n"
        "                    czsync_trace)\n";
}

struct RanExperiment {
  const Experiment* exp;
  double wall_seconds;
  std::vector<RunRecord> records;
};

void write_document_json(std::ostream& os, int jobs, std::uint64_t seed_base,
                         const std::vector<RanExperiment>& ran) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("schema");
  w.value("czsync-runrecord-v1");
  w.key("git_describe");
  w.value(build_git_describe());
  w.key("jobs");
  w.value(jobs);
  w.key("seed_base");
  w.value(seed_base);
  w.key("experiments");
  w.begin_array();
  for (const auto& re : ran) {
    w.begin_object();
    w.key("id");
    w.value(re.exp->id);
    w.key("title");
    w.value(re.exp->title);
    w.key("claim");
    w.value(re.exp->claim);
    w.key("wall_seconds");
    w.value(re.wall_seconds);
    w.key("records");
    w.begin_array();
    for (const auto& rec : re.records) {
      w.begin_object();
      w.key("kind");
      w.value(rec.kind == RunRecord::Kind::Run ? "run" : "sweep");
      if (!rec.label.empty()) {
        w.key("label");
        w.value(rec.label);
      }
      if (!rec.scenario.empty()) {
        w.key("scenario");
        w.value(rec.scenario);
      }
      w.key("seed");
      w.value(rec.seed);
      w.key("runs");
      w.value(rec.runs);
      w.key("wall_seconds");
      w.value(rec.wall_seconds);
      w.key("metrics");
      write_metrics_json(w, rec.metrics);
      w.end_object();
    }
    w.end_array();
    // Cross-record aggregate: layer counters summed, gauges maximized,
    // plus the previously bench_perf-only sweep throughput counters.
    util::MetricRegistry totals;
    int total_runs = 0;
    for (const auto& rec : re.records) {
      totals.merge_from(rec.metrics);
      total_runs += rec.runs;
    }
    totals.counter("sweep.runs", static_cast<std::uint64_t>(total_runs));
    totals.gauge("sweep.wall_seconds", re.wall_seconds);
    totals.gauge("sweep.runs_per_sec",
                 re.wall_seconds > 0 ? total_runs / re.wall_seconds : 0.0);
    w.key("totals");
    write_metrics_json(w, totals);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace

int run_harness(const ExperimentRegistry& registry,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  bool list = false;
  std::vector<std::string> run_ids;
  std::vector<std::string> filters;
  std::string json_path;
  std::string trace_prefix;
  std::uint64_t seed_base = 0;
  std::optional<int> jobs_flag;

  const auto fail = [&](const std::string& why) {
    err << "czsync_bench: " << why << "\n";
    print_usage(err);
    return 2;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto take_value = [&](std::string_view flag,
                                std::string* value) -> bool {
      if (a == flag) {
        if (i + 1 >= args.size()) return false;
        *value = args[++i];
        return true;
      }
      const std::string eq = std::string(flag) + "=";
      if (a.rfind(eq, 0) == 0) {
        *value = a.substr(eq.size());
        return true;
      }
      return false;
    };
    std::string value;
    if (a == "--list") {
      list = true;
    } else if (a == "--help" || a == "-h") {
      print_usage(out);
      return 0;
    } else if (take_value("--run", &value)) {
      run_ids.push_back(value);
    } else if (take_value("--filter", &value)) {
      filters.push_back(value);
    } else if (take_value("--json", &value)) {
      json_path = value;
    } else if (take_value("--trace", &value)) {
      trace_prefix = value;
    } else if (take_value("--jobs", &value)) {
      std::string why;
      const auto jobs = util::parse_jobs(value, &why);
      if (!jobs) return fail("--jobs: " + why);
      jobs_flag = *jobs;
    } else if (take_value("--seed-base", &value)) {
      try {
        std::size_t used = 0;
        seed_base = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        return fail("--seed-base: '" + value + "' is not a non-negative "
                    "integer");
      }
    } else if (a == "--run" || a == "--filter" || a == "--json" ||
               a == "--jobs" || a == "--seed-base" || a == "--trace") {
      return fail("missing value for " + a);
    } else {
      return fail("unknown argument '" + a + "'");
    }
  }

  if (list) {
    registry.print_list(out);
    return 0;
  }

  // Selection: explicit --run ids first (in the order given), then
  // --filter matches, deduplicated.
  std::vector<const Experiment*> selected;
  const auto select = [&](const Experiment* e) {
    if (std::find(selected.begin(), selected.end(), e) == selected.end()) {
      selected.push_back(e);
    }
  };
  for (const auto& id : run_ids) {
    const Experiment* e = registry.find(id);
    if (e == nullptr) {
      return fail("unknown experiment id '" + id + "' (see --list)");
    }
    select(e);
  }
  for (const auto& f : filters) {
    const auto matches = registry.match(f);
    if (matches.empty()) {
      return fail("--filter '" + f + "' matches no experiment (see --list)");
    }
    for (const Experiment* e : matches) select(e);
  }
  if (selected.empty()) {
    return fail("nothing selected: pass --list, --run <id> or --filter <s>");
  }

  int jobs = 0;
  if (jobs_flag) {
    jobs = *jobs_flag;
  } else {
    std::string why;
    const auto env_jobs = util::jobs_from_env_or_default(&why);
    if (!env_jobs) return fail(why);
    jobs = *env_jobs;
  }

  std::vector<RanExperiment> ran;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Experiment* e = selected[i];
    if (i > 0) std::printf("\n");
    std::printf(
        "================================================================\n");
    std::printf("%s: %s\n", e->id.c_str(), e->title.c_str());
    std::printf("Paper claim: %s\n", e->claim.c_str());
    std::printf(
        "================================================================\n");
    ExperimentContext ctx(jobs, seed_base);
    if (!trace_prefix.empty()) {
      // Prefix traces per experiment so two selected experiments cannot
      // clobber each other's run<k> files.
      ctx.set_trace_prefix(trace_prefix + e->id + "_");
    }
    const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock  // lint: wall-clock
    e->body(ctx);
    ran.push_back({e, wall_since(t0), ctx.records()});
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      err << "czsync_bench: cannot open '" << json_path << "' for writing\n";
      return 1;
    }
    write_document_json(f, jobs, seed_base, ran);
  }
  return 0;
}

}  // namespace czsync::analysis
