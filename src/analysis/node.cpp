#include "analysis/node.h"

namespace czsync::analysis {

Node::Node(sim::Simulator& sim, net::Network& network,
           std::shared_ptr<const clk::DriftModel> drift,
           core::SyncConfig config, net::ProcId id, Rng rng, Duration initial_bias,
           EngineKind engine, const EngineFactory& factory)
    : sim_(sim),
      network_(network),
      id_(id),
      // time: clock-model boundary - the initial hardware reading is
      // "current tau plus the configured bias" by scenario construction
      hw_(sim, std::move(drift), rng.fork("hw-clock"),
          HwTime::from_tau_unsafe(sim.now())  // time: see comment above
              + initial_bias,
          sim.shard_of(id)),
      logical_(hw_) {
  if (factory) {
    engine_ = factory(sim, network, logical_, id, rng.fork("sync"));
  } else {
    switch (engine) {
      case EngineKind::NoRounds:
        engine_ = std::make_unique<core::SyncProcess>(
            sim.trace_port(), network, logical_, id, std::move(config),
            rng.fork("sync"));
        break;
      case EngineKind::Rounds:
        engine_ = std::make_unique<core::RoundSyncProcess>(
            sim.trace_port(), network, logical_, id, std::move(config),
            rng.fork("sync"));
        break;
    }
  }
  network_.register_handler(id_, [this](const net::Message& m) { on_message(m); });
}

void Node::start() {
  engine_->start();
  if (discipline_) arm_slew();
}

void Node::enable_rate_discipline(core::DisciplineConfig config) {
  discipline_ = std::make_unique<core::RateDiscipline>(logical_, config);
  // Chain in front of whatever metrics hook the Observer will add later.
  auto prev = std::move(engine_->on_sync_complete);
  engine_->on_sync_complete = [this, prev = std::move(prev)](
                               const core::ConvergenceResult& r) {
    discipline_->observe(r.adjustment);
    if (prev) prev(r);
  };
}

void Node::arm_slew() {
  slew_alarm_ = hw_.set_alarm_after(discipline_->config().slew_interval, [this] {
    slew_alarm_ = clk::kNoAlarm;
    discipline_->slew();
    arm_slew();
  });
}

void Node::send(net::ProcId to, net::Body body) {
  network_.send(id_, to, std::move(body));
}

std::span<const net::ProcId> Node::peers() const {
  return network_.topology().neighbors(id_);
}

void Node::suspend_protocol() {
  engine_->suspend();
  if (slew_alarm_ != clk::kNoAlarm) {
    hw_.cancel_alarm(slew_alarm_);
    slew_alarm_ = clk::kNoAlarm;
  }
  if (app_suspend) app_suspend();
}

void Node::resume_protocol() {
  engine_->resume();
  if (discipline_) {
    // The adversary may have poisoned the estimator; re-learn from
    // scratch (a few Syncs) rather than trust it.
    discipline_->reset();
    arm_slew();
  }
  if (app_resume) app_resume();
}

bool Node::controlled() const {
  return adversary_ != nullptr && adversary_->is_controlled(id_);
}

Duration Node::bias() const {
  // An observer-only measurement across domains that no processor can
  // time: perform (section 2's model): bias B_p(tau) = C_p(tau) - tau
  return Duration(logical_.read().raw() - sim_.now().raw());
}

void Node::on_message(const net::Message& msg) {
  if (controlled()) {
    adversary_->deliver_to_strategy(*this, msg);
    return;
  }
  if (std::holds_alternative<net::PingReq>(msg.body) ||
      std::holds_alternative<net::PingResp>(msg.body) ||
      std::holds_alternative<net::RoundPingReq>(msg.body) ||
      std::holds_alternative<net::RoundPingResp>(msg.body) ||
      std::holds_alternative<net::StRoundMsg>(msg.body)) {
    engine_->handle_message(msg);
    return;
  }
  if (app_handler) app_handler(msg);
}

}  // namespace czsync::analysis
