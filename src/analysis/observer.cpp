#include "analysis/observer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace czsync::analysis {

Observer::Observer(sim::Simulator& sim, std::vector<Node*> nodes,
                   const adversary::Schedule& schedule, Duration delta_period,
                   Duration sample_period, Duration recovery_threshold,
                   bool record_series)
    : sim_(sim),
      nodes_(std::move(nodes)),
      schedule_(schedule),
      delta_period_(delta_period),
      sample_period_(sample_period),
      recovery_threshold_(recovery_threshold),
      record_series_(record_series),
      min_rate_window_(sample_period * 10.0) {
  assert(!nodes_.empty());
  segments_.resize(nodes_.size());
}

void Observer::start(SimTau horizon) {
  horizon_ = horizon;
  // Track discontinuities of *currently correct* processors at the moment
  // each sync round completes. (A controlled processor's sync never runs,
  // so any hook invocation while "controlled" cannot happen; we still
  // guard for clarity.)
  for (Node* node : nodes_) {
    // Chain rather than replace: callers (examples, custom metrics) may
    // have installed their own hook before the run.
    auto prev = std::move(node->sync().on_sync_complete);
    node->sync().on_sync_complete = [this, node, prev = std::move(prev)](
                                        const core::ConvergenceResult& r) {
      if (prev) prev(r);
      if (sim_.now() < warmup_) return;
      if (node->controlled()) return;
      if (classify(node->id(), sim_.now()) != ProcStatus::Stable) return;
      max_discontinuity_ = std::max(max_discontinuity_, r.adjustment.abs());
    };
  }
  // Recovery bookkeeping: one pending event per schedule interval end.
  for (const auto& iv : schedule_.by_end_time()) {
    RecoveryEvent ev;
    ev.proc = iv.proc;
    ev.left_at = iv.end;
    recoveries_.push_back(ev);
  }
  // Sampling chain.
  sim_.schedule_after(sample_period_, [this] { sample(); });
}

ProcStatus Observer::classify(net::ProcId p, SimTau t) const {
  if (schedule_.controlled_at(p, t)) return ProcStatus::Faulty;
  const SimTau lo =
      t - delta_period_ < SimTau::zero() ? SimTau::zero() : t - delta_period_;
  if (schedule_.controlled_within(p, lo, t)) return ProcStatus::Recovering;
  return ProcStatus::Stable;
}

void Observer::finalize() {
  // A processor that the adversary left less than Delta before the end
  // of the run had no full recovery budget; don't judge it.
  for (auto& ev : recoveries_) {
    if (ev.recovered || ev.preempted) continue;
    if (ev.left_at + delta_period_ > horizon_) ev.judgeable = false;
  }
}

void Observer::sample() {
  const SimTau t = sim_.now();
  ++samples_;

  Sample s;
  s.t = t;
  s.bias.reserve(nodes_.size());
  s.status.reserve(nodes_.size());
  double stable_min = std::numeric_limits<double>::infinity();
  double stable_max = -std::numeric_limits<double>::infinity();
  std::uint64_t stable_count = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double b = nodes_[i]->bias().sec();
    const ProcStatus st = classify(static_cast<net::ProcId>(i), t);
    s.bias.push_back(b);
    s.status.push_back(st);
    if (st == ProcStatus::Stable) {
      ++stable_count;
      stable_min = std::min(stable_min, b);
      stable_max = std::max(stable_max, b);
    }
  }

  const bool have_stable = stable_min <= stable_max;
  if (trace::TraceSink* ts = sim_.trace_sink()) {
    ts->record(trace::invariant_sample(
        t, stable_count, have_stable,
        Duration(have_stable ? stable_max - stable_min : 0.0)));
  }
  const bool past_warmup = t >= warmup_;
  if (have_stable) {
    s.stable_deviation = stable_max - stable_min;
    if (past_warmup) {
      deviation_.add(s.stable_deviation);
      last_deviation_ = s.stable_deviation;
    }
  }

  // Rate segments (accuracy, Def. 3 ii): a segment spans consecutive
  // samples during which the processor stayed Stable; the rate over the
  // whole prefix is checked each sample.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& seg = segments_[i];
    if (s.status[i] != ProcStatus::Stable || !past_warmup) {
      seg.active = false;
      continue;
    }
    const LogicalTime c = nodes_[i]->logical().read();
    if (!seg.active) {
      seg.active = true;
      seg.start = t;
      seg.clock_at_start = c;
      continue;
    }
    const Duration span = t - seg.start;
    if (span >= min_rate_window_) {
      const double rate = (c - seg.clock_at_start) / span;
      max_rate_excess_ =
          std::max({max_rate_excess_, std::abs(rate - 1.0),
                    std::abs(1.0 / std::max(rate, 1e-12) - 1.0)});
    }
  }

  // Recovery detection: a recovering processor has rejoined once its bias
  // is within gamma of every stable processor's bias.
  if (have_stable) {
    for (auto& ev : recoveries_) {
      if (ev.recovered || ev.preempted) continue;
      if (ev.left_at > t) break;  // sorted by leave time
      const auto p = static_cast<std::size_t>(ev.proc.value());
      if (s.status[p] == ProcStatus::Faulty) {
        ev.preempted = true;
        continue;
      }
      const double b = s.bias[p];
      const double gamma = recovery_threshold_.sec();
      if (b >= stable_max - gamma && b <= stable_min + gamma) {
        ev.recovered = true;
        ev.duration = t - ev.left_at;
      }
    }
  }

  if (record_series_) series_.push_back(std::move(s));

  const SimTau next = t + sample_period_;
  if (next <= horizon_) {
    sim_.schedule_after(sample_period_, [this] { sample(); });
  }
}

void Observer::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("samples", samples_);
  scope.gauge("max_stable_deviation_ms", deviation_.max() * 1e3);
  scope.gauge("mean_stable_deviation_ms", deviation_.mean() * 1e3);
  scope.gauge("final_stable_deviation_ms", last_deviation_ * 1e3);
  scope.gauge("max_stable_discontinuity_ms", max_discontinuity_.ms());
  scope.gauge("max_rate_excess", max_rate_excess_);
  std::uint64_t recovered = 0, preempted = 0, unjudgeable = 0;
  Duration worst = Duration::zero();
  for (const auto& ev : recoveries_) {
    if (ev.preempted) {
      ++preempted;
    } else if (!ev.judgeable) {
      ++unjudgeable;
    } else if (ev.recovered) {
      ++recovered;
      worst = std::max(worst, ev.duration);
    }
  }
  scope.counter("recovery_events", recoveries_.size());
  scope.counter("recovered", recovered);
  scope.counter("preempted", preempted);
  scope.counter("unjudgeable", unjudgeable);
  scope.gauge("max_recovery_time_s", worst.sec());
}

}  // namespace czsync::analysis
