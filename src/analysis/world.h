// World: builds a complete simulated deployment from a Scenario.
//
// Construction order matters and is encapsulated here:
//   simulator -> network (topology + delays) -> nodes (clock stacks +
//   Sync processes) -> adversary (schedule + strategy + spy) -> observer.
// After build(), run() executes the scenario to its horizon.
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.h"
#include "analysis/node.h"
#include "analysis/observer.h"
#include "analysis/scenario.h"
#include "core/params.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/metrics.h"

namespace czsync::analysis {

class World {
 public:
  explicit World(Scenario scenario);

  /// Runs the scenario to its horizon (sampling included).
  void run();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] Node& node(net::ProcId p) { return *nodes_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Observer& observer() { return *observer_; }
  [[nodiscard]] adversary::Adversary* adversary() { return adversary_.get(); }
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  [[nodiscard]] const core::ProtocolParams& protocol_params() const {
    return proto_;
  }
  [[nodiscard]] const core::TheoremBounds& bounds() const { return bounds_; }

  /// Attaches a trace sink for this run (nullptr detaches — the default).
  /// Every layer reads the sink through the simulator, so one call covers
  /// sim event fires, net send/deliver/drop, core rounds and adj writes,
  /// adversary break-in/leave and observer invariant samples. Attach
  /// before run(); the sink only observes, it never perturbs the run.
  void set_trace_sink(trace::TraceSink* sink) { sim_.set_trace_sink(sink); }

  /// One queryable snapshot of every layer's counters after a run:
  /// "sim.*" (event pool included), "net.*", "core.*" (summed across all
  /// nodes), "observer.*", and "adversary.break_ins". This is the
  /// unified-metrics replacement for poking the four per-layer stats
  /// structs individually.
  [[nodiscard]] util::MetricRegistry collect_metrics() const;

 private:
  Scenario scenario_;
  sim::Simulator sim_;
  core::ProtocolParams proto_;
  core::TheoremBounds bounds_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<adversary::Adversary> adversary_;
  std::unique_ptr<Observer> observer_;
};

}  // namespace czsync::analysis
