// CSV emission of run results: plot-ready time series, recovery tables
// and one-line summaries. Used by the CLI driver and by benches that
// want machine-readable output next to their ASCII tables.
#pragma once

#include <ostream>
#include <string>

#include "analysis/experiment.h"
#include "analysis/scenario.h"
#include "util/config.h"

namespace czsync::analysis {

/// Per-sample series: t, stable deviation, then bias_p / status_p per
/// processor. The scenario must have been run with record_series;
/// throws std::invalid_argument if the result carries no samples (a
/// silent empty CSV here has historically meant a mis-set config).
void write_series_csv(std::ostream& os, const RunResult& result);

/// One row per adversary leave event.
void write_recoveries_csv(std::ostream& os, const RunResult& result);

/// Single-row summary: bounds and measured headline metrics.
void write_summary_csv(std::ostream& os, const RunResult& result);

/// Builds a Scenario from a Config (keys documented in the CLI's
/// --help / tools/README); throws std::invalid_argument on bad values.
[[nodiscard]] Scenario scenario_from_config(const Config& config);

}  // namespace czsync::analysis
