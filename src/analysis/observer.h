// Observer: samples the global state and computes the paper's metrics.
//
// The observer lives outside the model (it reads true biases, which no
// processor can). It classifies each processor at each sample per
// Definition 3's quantifier "not faulty during [tau - Delta, tau]":
//   Faulty     — currently controlled;
//   Recovering — correct now, but was controlled within the last Delta;
//   Stable     — correct throughout [tau - Delta, tau]: the set over
//                which the deviation guarantee is measured.
// It also tracks recovery times (per leave event), per-round clock
// discontinuities of stable processors, and empirical logical-clock rates
// over maximal stable segments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adversary/schedule.h"
#include "analysis/node.h"
#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/time_domain.h"

namespace czsync::analysis {

enum class ProcStatus : std::uint8_t { Stable, Recovering, Faulty };

struct Sample {
  SimTau t;
  std::vector<double> bias;        ///< B_p(t) in seconds, all processors
  std::vector<ProcStatus> status;
  double stable_deviation = 0.0;   ///< max |B_p - B_q| over stable pairs
};

/// One adversary leave event and how long the processor took to satisfy
/// the Definition-3 deviation bound against every stable processor.
struct RecoveryEvent {
  /// Engaged for every event the Observer emits; optional (rather than a
  /// -1 sentinel) so a default-constructed event can't be cast to an
  /// index by accident.
  std::optional<net::ProcId> proc;
  SimTau left_at;
  bool recovered = false;
  bool preempted = false;  ///< broken into again before recovering
  /// False when the run ended too soon after the leave to judge the
  /// recovery either way (left_at + Delta > horizon).
  bool judgeable = true;
  Duration duration = Duration::infinity();
};

class Observer {
 public:
  /// `recovery_threshold` is the deviation bound gamma used to decide
  /// when a recovering clock counts as back in the pack.
  Observer(sim::Simulator& sim, std::vector<Node*> nodes,
           const adversary::Schedule& schedule, Duration delta_period,
           Duration sample_period, Duration recovery_threshold, bool record_series);

  /// Schedules sampling every sample_period up to `horizon` and hooks the
  /// per-node sync-completion callbacks. Call once before running.
  void start(SimTau horizon);

  /// Post-run bookkeeping: marks recovery events that the run ended too
  /// early to judge. Called by World::run().
  void finalize();

  /// Steady-state metrics ignore samples before `warmup`.
  void set_warmup(SimTau warmup) { warmup_ = warmup; }

  // --- results (valid after the run) ---
  [[nodiscard]] Duration max_stable_deviation() const {
    return Duration::seconds(deviation_.max());
  }
  [[nodiscard]] const RunningStats& deviation_stats() const { return deviation_; }
  [[nodiscard]] double last_stable_deviation() const { return last_deviation_; }
  [[nodiscard]] Duration max_stable_discontinuity() const {
    return max_discontinuity_;
  }
  /// Worst observed |rate - 1| of a stable processor's logical clock over
  /// a stable segment at least `min_rate_window` long.
  [[nodiscard]] double max_rate_excess() const { return max_rate_excess_; }
  [[nodiscard]] const std::vector<RecoveryEvent>& recoveries() const {
    return recoveries_;
  }
  [[nodiscard]] const std::vector<Sample>& series() const { return series_; }
  [[nodiscard]] std::size_t samples_taken() const { return samples_; }

  /// Minimum segment length before a rate estimate counts (default 10
  /// sample periods); avoids quantizing noise on tiny windows.
  void set_min_rate_window(Duration w) { min_rate_window_ = w; }

  /// Snapshot of the observer-layer metrics (deviation, discontinuity,
  /// rate excess, recovery tallies) into `scope` for RunRecord emission.
  void export_metrics(util::MetricRegistry::Scope scope) const;

 private:
  void sample();
  [[nodiscard]] ProcStatus classify(net::ProcId p, SimTau t) const;

  sim::Simulator& sim_;
  std::vector<Node*> nodes_;
  const adversary::Schedule& schedule_;
  Duration delta_period_;
  Duration sample_period_;
  Duration recovery_threshold_;
  bool record_series_;
  SimTau horizon_;
  SimTau warmup_ = SimTau::zero();

  RunningStats deviation_;
  double last_deviation_ = 0.0;
  Duration max_discontinuity_ = Duration::zero();
  double max_rate_excess_ = 0.0;
  Duration min_rate_window_;
  std::vector<Sample> series_;
  std::size_t samples_ = 0;

  // Rate segments: start point of the current all-stable stretch.
  struct Segment {
    bool active = false;
    SimTau start;
    LogicalTime clock_at_start;
  };
  std::vector<Segment> segments_;

  std::vector<RecoveryEvent> recoveries_;  // pending + resolved, by leave time
};

}  // namespace czsync::analysis
