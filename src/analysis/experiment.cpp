#include "analysis/experiment.h"

#include <algorithm>

#include "analysis/world.h"

namespace czsync::analysis {

Duration RunResult::max_recovery_time() const {
  Duration worst = Duration::zero();
  for (const auto& ev : recoveries) {
    if (ev.preempted || !ev.judgeable) continue;
    worst = std::max(worst, ev.duration);
  }
  return worst;
}

bool RunResult::all_recovered() const {
  return std::all_of(recoveries.begin(), recoveries.end(),
                     [](const RecoveryEvent& ev) {
                       return ev.preempted || !ev.judgeable || ev.recovered;
                     });
}

RunResult run_scenario(const Scenario& scenario) {
  return run_scenario(scenario, nullptr);
}

RunResult run_scenario(const Scenario& scenario, trace::TraceSink* sink) {
  World world(scenario);
  world.set_trace_sink(sink);
  world.run();

  RunResult r;
  r.bounds = world.bounds();
  auto& obs = world.observer();
  r.max_stable_deviation = obs.max_stable_deviation();
  r.mean_stable_deviation = Duration::seconds(obs.deviation_stats().mean());
  r.final_stable_deviation = obs.last_stable_deviation();
  r.max_stable_discontinuity = obs.max_stable_discontinuity();
  r.max_rate_excess = obs.max_rate_excess();
  r.recoveries = obs.recoveries();
  r.messages_sent = world.network().stats().sent;
  r.link_fault_drops = world.network().stats().dropped_link_fault;
  r.events_executed = world.simulator().executed_events();
  r.break_ins = world.adversary() ? world.adversary()->break_ins() : 0;
  r.samples = obs.samples_taken();
  for (std::size_t p = 0; p < world.node_count(); ++p) {
    const auto& st = world.node(static_cast<net::ProcId>(p)).sync().stats();
    r.rounds_completed += st.rounds_completed;
    r.way_off_rounds += st.way_off_rounds;
    r.joins += st.joins;
    r.mismatch_discards += st.round_mismatch_discards;
    r.replays_accepted += st.replays_accepted;
  }
  if (scenario.record_series) r.series = obs.series();
  r.metrics = world.collect_metrics();
  return r;
}

}  // namespace czsync::analysis
