#include "analysis/trace_io.h"

#include <stdexcept>

#include "util/csv.h"

namespace czsync::analysis {

namespace {

const char* status_name(ProcStatus s) {
  switch (s) {
    case ProcStatus::Stable: return "stable";
    case ProcStatus::Recovering: return "recovering";
    case ProcStatus::Faulty: return "faulty";
  }
  return "?";
}

}  // namespace

void write_series_csv(std::ostream& os, const RunResult& result) {
  if (result.series.empty()) {
    throw std::invalid_argument(
        "write_series_csv: result has no samples; run the scenario with "
        "record_series = true");
  }
  const std::size_t n = result.series.front().bias.size();
  std::vector<std::string> cols = {"t", "stable_deviation"};
  for (std::size_t p = 0; p < n; ++p) {
    cols.push_back("bias_" + std::to_string(p));
    cols.push_back("status_" + std::to_string(p));
  }
  CsvWriter w(os, cols);
  for (const auto& s : result.series) {
    // time: CSV export serializes raw tau seconds
    std::vector<std::string> row = {fmt_num(s.t.raw()),
                                    fmt_num(s.stable_deviation)};
    for (std::size_t p = 0; p < n; ++p) {
      row.push_back(fmt_num(s.bias[p]));
      row.push_back(status_name(s.status[p]));
    }
    w.row(row);
  }
}

void write_recoveries_csv(std::ostream& os, const RunResult& result) {
  CsvWriter w(os, {"proc", "left_at", "recovered", "preempted", "judgeable",
                   "duration"});
  for (const auto& ev : result.recoveries) {
    w.row({ev.proc ? std::to_string(*ev.proc) : "?",
           fmt_num(ev.left_at.raw()),  // time: CSV export of raw tau
           ev.recovered ? "1" : "0", ev.preempted ? "1" : "0",
           ev.judgeable ? "1" : "0", fmt_num(ev.duration.sec())});
  }
}

void write_summary_csv(std::ostream& os, const RunResult& result) {
  CsvWriter w(os,
              {"gamma_bound_s", "max_deviation_s", "mean_deviation_s",
               "final_deviation_s", "psi_bound_s", "max_discontinuity_s",
               "logical_drift_bound", "max_rate_excess", "max_recovery_s",
               "all_recovered", "break_ins", "messages", "events", "rounds",
               "way_off_rounds"});
  w.row({fmt_num(result.bounds.max_deviation.sec()),
         fmt_num(result.max_stable_deviation.sec()),
         fmt_num(result.mean_stable_deviation.sec()),
         fmt_num(result.final_stable_deviation),
         fmt_num(result.bounds.discontinuity.sec()),
         fmt_num(result.max_stable_discontinuity.sec()),
         fmt_num(result.bounds.logical_drift), fmt_num(result.max_rate_excess),
         fmt_num(result.max_recovery_time().sec()),
         result.all_recovered() ? "1" : "0", std::to_string(result.break_ins),
         std::to_string(result.messages_sent),
         std::to_string(result.events_executed),
         std::to_string(result.rounds_completed),
         std::to_string(result.way_off_rounds)});
}

Scenario scenario_from_config(const Config& c) {
  Scenario s;
  s.model.n = static_cast<int>(c.get_int("n", s.model.n));
  s.model.f = static_cast<int>(c.get_int("f", s.model.f));
  s.model.rho = c.get_double("rho", s.model.rho);
  s.model.delta = c.get_duration("delta", s.model.delta);
  s.model.delta_period = c.get_duration("delta_period", s.model.delta_period);
  s.sync_int = c.get_duration("sync_int", s.sync_int);
  s.convergence = c.get_string("convergence", s.convergence);
  s.protocol = c.get_string("protocol", s.protocol);
  if (s.protocol != "sync" && s.protocol != "round" &&
      s.protocol != "st-broadcast") {
    throw std::invalid_argument("unknown protocol: " + s.protocol);
  }
  s.pings_per_peer =
      static_cast<int>(c.get_int("pings_per_peer", s.pings_per_peer));
  if (s.pings_per_peer < 1) {
    throw std::invalid_argument("pings_per_peer must be >= 1");
  }
  s.cached_estimation = c.get_bool("cached_estimation", s.cached_estimation);
  s.cache_refresh = c.get_duration("cache_refresh", s.cache_refresh);
  s.batched_fanout = c.get_bool("batched_fanout", s.batched_fanout);
  s.way_off_scale = c.get_double("way_off_scale", s.way_off_scale);
  if (s.way_off_scale <= 0.0) {
    throw std::invalid_argument("way_off_scale must be > 0");
  }
  s.capped_correction_cap =
      c.get_duration("capped_correction_cap", s.capped_correction_cap);
  s.rate_discipline = c.get_bool("rate_discipline", s.rate_discipline);
  s.discipline_gain = c.get_double("discipline_gain", s.discipline_gain);
  s.discipline_slew_interval =
      c.get_duration("discipline_slew_interval", s.discipline_slew_interval);

  const std::string drift = c.get_string("drift", "constant");
  if (drift == "constant") {
    s.drift = Scenario::DriftKind::Constant;
  } else if (drift == "wander") {
    s.drift = Scenario::DriftKind::Wander;
  } else if (drift == "sinusoidal") {
    s.drift = Scenario::DriftKind::Sinusoidal;
  } else if (drift == "opposed-halves") {
    s.drift = Scenario::DriftKind::OpposedHalves;
  } else {
    throw std::invalid_argument("unknown drift kind: " + drift);
  }
  s.wander_interval = c.get_duration("wander_interval", s.wander_interval);
  s.sinusoid_cycle = c.get_duration("sinusoid_cycle", s.sinusoid_cycle);

  const std::string delay = c.get_string("delay", "uniform");
  if (delay == "fixed") {
    s.delay = Scenario::DelayKind::Fixed;
  } else if (delay == "uniform") {
    s.delay = Scenario::DelayKind::Uniform;
  } else if (delay == "asymmetric") {
    s.delay = Scenario::DelayKind::Asymmetric;
  } else if (delay == "jitter") {
    s.delay = Scenario::DelayKind::Jitter;
  } else {
    throw std::invalid_argument("unknown delay kind: " + delay);
  }

  const std::string topo = c.get_string("topology", "full-mesh");
  if (topo == "full-mesh") {
    s.topology = Scenario::TopologyKind::FullMesh;
  } else if (topo == "two-cliques") {
    s.topology = Scenario::TopologyKind::TwoCliques;
  } else if (topo == "ring") {
    s.topology = Scenario::TopologyKind::Ring;
  } else if (topo == "random-regular") {
    s.topology = Scenario::TopologyKind::RandomRegular;
  } else if (topo == "gnp") {
    s.topology = Scenario::TopologyKind::Gnp;
  } else {
    throw std::invalid_argument("unknown topology: " + topo);
  }
  s.topology_degree = c.get_int("topology_degree", s.topology_degree);
  s.topology_p = c.get_double("topology_p", s.topology_p);
  s.event_shards = c.get_int("event_shards", s.event_shards);
  if (s.event_shards < 0) {
    throw std::invalid_argument("event_shards must be >= 0");
  }

  s.initial_spread = c.get_duration("initial_spread", s.initial_spread);
  s.horizon = c.get_duration("horizon", s.horizon);
  s.sample_period = c.get_duration("sample_period", s.sample_period);
  s.warmup = c.get_duration("warmup", s.warmup);
  s.seed = static_cast<std::uint64_t>(c.get_int("seed", 1));
  s.record_series = c.get_bool("record_series", s.record_series);

  // Adversary block: either a single break-in or a random mobile sweep.
  const std::string adv = c.get_string("adversary", "none");
  s.strategy = c.get_string("strategy", "silent");
  s.strategy_scale = c.get_duration("strategy_scale", s.strategy_scale);
  if (adv == "none") {
    // no schedule
  } else if (adv == "single") {
    s.schedule = adversary::Schedule::single(
        static_cast<net::ProcId>(c.get_int("victim", 0)),
        SimTau(c.get_duration("break_at", Duration::hours(1)).sec()),
        SimTau(c.get_duration("leave_at", Duration::hours(1) + Duration::minutes(10)).sec()));
  } else if (adv == "mobile") {
    const Duration sched_end = c.get_duration("schedule_end", s.horizon * 0.8);
    s.schedule = adversary::Schedule::random_mobile(
        s.model.n, s.model.f, s.model.delta_period,
        c.get_duration("min_dwell", Duration::minutes(5)),
        c.get_duration("max_dwell", Duration::minutes(20)),
        SimTau(sched_end.sec()), Rng(s.seed ^ 0x5eedULL));
  } else if (adv == "sweep") {
    s.schedule = adversary::Schedule::round_robin_sweep(
        s.model.n, s.model.f, s.model.delta_period,
        c.get_duration("dwell", Duration::minutes(10)),
        c.get_duration("slack", Duration::minutes(1)), SimTau(600.0),
        SimTau((s.horizon * 0.9).sec()));
  } else {
    throw std::invalid_argument("unknown adversary kind: " + adv);
  }
  return s;
}

}  // namespace czsync::analysis
