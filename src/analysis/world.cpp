#include "analysis/world.h"

#include <cassert>
#include <stdexcept>

#include "adversary/strategies.h"
#include "broadcast/auth.h"
#include "adversary/sig_replay.h"
#include "broadcast/st_sync.h"
#include "core/convergence.h"
#include "net/delay_model.h"
#include "net/topology.h"

namespace czsync::analysis {

namespace {

net::Topology build_topology(const Scenario& s, const Rng& master) {
  switch (s.topology) {
    case Scenario::TopologyKind::FullMesh:
      return net::Topology::full_mesh(s.model.n);
    case Scenario::TopologyKind::TwoCliques:
      // n must match 6f+2 for the Section-5 construction.
      assert(s.model.n == 6 * s.model.f + 2);
      return net::Topology::two_cliques(s.model.f);
    case Scenario::TopologyKind::Ring:
      return net::Topology::ring(s.model.n);
    case Scenario::TopologyKind::Custom:
      assert(s.custom_topology.has_value());
      assert(s.custom_topology->size() == s.model.n);
      return *s.custom_topology;
    case Scenario::TopologyKind::RandomRegular: {
      // A dedicated fork keeps the graph draw off every pre-existing
      // stream ("net", "bias", per-node, "adversary"), so adding the
      // kind perturbs no legacy scenario.
      Rng topo = master.fork("topology");
      return net::Topology::random_regular(s.model.n, s.topology_degree,
                                           topo);
    }
    case Scenario::TopologyKind::Gnp: {
      Rng topo = master.fork("topology");
      return net::Topology::gnp_connected(s.model.n, s.topology_p, topo);
    }
  }
  throw std::logic_error("unreachable");
}

std::unique_ptr<net::DelayModel> build_delay(const Scenario& s) {
  const Duration d = s.model.delta;
  switch (s.delay) {
    case Scenario::DelayKind::Fixed:
      return net::make_fixed_delay(d);
    case Scenario::DelayKind::Uniform:
      return net::make_uniform_delay(d, d * 0.1);
    case Scenario::DelayKind::Asymmetric:
      return net::make_asymmetric_delay(d);
    case Scenario::DelayKind::Jitter:
      return net::make_jitter_delay(d, d * 0.15, d * 0.2);
  }
  throw std::logic_error("unreachable");
}

std::shared_ptr<const clk::DriftModel> build_drift(const Scenario& s,
                                                   net::ProcId p) {
  switch (s.drift) {
    case Scenario::DriftKind::Constant:
      return clk::make_constant_drift(s.model.rho);
    case Scenario::DriftKind::Wander:
      return clk::make_wander_drift(s.model.rho, s.wander_interval);
    case Scenario::DriftKind::Sinusoidal:
      // One instance per node (the model is phase-stateful).
      return clk::make_sinusoidal_drift(s.model.rho, s.sinusoid_cycle);
    case Scenario::DriftKind::OpposedHalves: {
      const bool fast = p < s.model.n / 2;
      const double rate = fast ? 1.0 + s.model.rho : 1.0 / (1.0 + s.model.rho);
      return clk::make_pinned_drift(s.model.rho, rate);
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace

World::World(Scenario scenario)
    : scenario_(std::move(scenario)),
      proto_(core::ProtocolParams::derive(scenario_.model, scenario_.sync_int)),
      bounds_(core::TheoremBounds::compute(scenario_.model, proto_)) {
  const auto& s = scenario_;
  assert(s.way_off_scale > 0.0);
  proto_.way_off = proto_.way_off * s.way_off_scale;
  Rng master(s.seed);

  // Sharding must be configured before ANY event is scheduled — the
  // first HardwareClock schedules its drift event at construction.
  if (s.event_shards > 0) {
    sim_.configure_shards(static_cast<std::uint32_t>(s.event_shards),
                          s.model.n);
  }

  network_ = std::make_unique<net::Network>(sim_, build_topology(s, master),
                                            build_delay(s), master.fork("net"));
  if (!s.link_faults.empty()) network_->set_link_faults(s.link_faults);
  network_->set_batched_fanout(s.batched_fanout);

  auto convergence =
      core::make_convergence(s.convergence, s.capped_correction_cap);

  EngineKind engine = EngineKind::NoRounds;
  EngineFactory factory;
  if (s.protocol == "round") {
    engine = EngineKind::Rounds;
  } else if (s.protocol == "st-broadcast") {
    // The §1.1 broadcast comparator: a shared signature service plus one
    // StSyncProcess per node.
    auto auth = std::make_shared<broadcast::Authenticator>(s.seed ^
                                                           0x51672a9bULL);
    broadcast::StConfig st;
    st.period = s.sync_int;
    // Compensates the acceptance lag (one-hop delivery of the decisive
    // signature, ~delta/2 on average): the residual is the systematic
    // rate bias of the broadcast design; real deployments calibrate it.
    st.skew_allowance = 0.5 * s.model.delta;
    st.f = s.model.f;
    factory = [auth, st](sim::Simulator&, net::Network& net,
                         clk::LogicalClock& clock, net::ProcId id, Rng) {
      return std::make_unique<broadcast::StSyncProcess>(net, clock, id, st,
                                                        auth);
    };
  } else if (s.protocol != "sync") {
    throw std::invalid_argument("unknown protocol: " + s.protocol);
  }

  Rng bias_rng = master.fork("bias");
  nodes_.reserve(static_cast<std::size_t>(s.model.n));
  for (int p = 0; p < s.model.n; ++p) {
    core::SyncConfig cfg;
    cfg.params = proto_;
    cfg.f = s.model.f;
    cfg.convergence = convergence;
    cfg.pings_per_peer = s.pings_per_peer;
    cfg.cached_estimation = s.cached_estimation;
    cfg.cache_refresh = s.cache_refresh;
    // Entries survive three refresh periods (missed refreshes happen when
    // peers are faulty) but at least two minutes.
    cfg.max_cache_age = std::max(s.cache_refresh * 3.0, Duration::minutes(2));
    const Duration bias = Duration::seconds(bias_rng.uniform(
        -s.initial_spread.sec() / 2.0, s.initial_spread.sec() / 2.0));
    nodes_.push_back(std::make_unique<Node>(sim_, *network_, build_drift(s, p),
                                            cfg, p, master.fork(1000 + p),
                                            bias, engine, factory));
    if (s.rate_discipline) {
      core::DisciplineConfig dc;
      dc.gain = s.discipline_gain;
      dc.max_rate = s.model.rho;
      dc.slew_interval = s.discipline_slew_interval;
      nodes_.back()->enable_rate_discipline(dc);
    }
  }

  if (!s.schedule.empty()) {
    adversary::WorldSpy spy;
    spy.n = s.model.n;
    spy.f = s.model.f;
    spy.way_off = proto_.way_off;
    spy.read_clock = [this](net::ProcId q) {
      return nodes_[static_cast<std::size_t>(q)]->logical().read();
    };
    std::shared_ptr<adversary::Strategy> strategy;
    if (s.strategy == "sig-replay") {
      strategy = std::make_shared<adversary::SigReplayStrategy>();
    } else {
      strategy = adversary::make_strategy(s.strategy, s.strategy_scale);
    }
    adversary_ = std::make_unique<adversary::Adversary>(
        sim_, s.schedule, std::move(strategy), std::move(spy),
        master.fork("adversary"));
    std::vector<adversary::ControlledProcess*> procs;
    procs.reserve(nodes_.size());
    for (auto& n : nodes_) {
      n->set_adversary(adversary_.get());
      procs.push_back(n.get());
    }
    adversary_->attach(std::move(procs));
  }

  std::vector<Node*> raw;
  raw.reserve(nodes_.size());
  for (auto& n : nodes_) raw.push_back(n.get());
  static const adversary::Schedule kEmptySchedule;
  const adversary::Schedule& sched =
      adversary_ ? adversary_->schedule() : kEmptySchedule;
  observer_ = std::make_unique<Observer>(
      sim_, std::move(raw), sched, s.model.delta_period, s.sample_period,
      bounds_.max_deviation, s.record_series);
}

void World::run() {
  observer_->set_warmup(SimTau::zero() + scenario_.warmup);
  observer_->start(SimTau::zero() + scenario_.horizon);
  for (auto& n : nodes_) n->start();
  sim_.run_until(SimTau::zero() + scenario_.horizon);
  observer_->finalize();
}

util::MetricRegistry World::collect_metrics() const {
  util::MetricRegistry reg;
  sim_.export_metrics(reg.scope("sim"));
  network_->stats().export_metrics(reg.scope("net"));
  // Topology provenance for the randomized kinds: how many G(n,p) draws
  // the connectivity filter rejected, and whether it gave up (ring
  // augmentation) — a run whose gnp_fallback is 1 is NOT a G(n,p) run.
  reg.counter("net.gnp_retries", network_->topology().gnp_retries());
  reg.counter("net.gnp_fallback",
              network_->topology().gnp_fell_back() ? 1 : 0);
  auto core = reg.scope("core");
  for (const auto& n : nodes_) n->sync().stats().export_metrics(core);
  observer_->export_metrics(reg.scope("observer"));
  reg.counter("adversary.break_ins", adversary_ ? adversary_->break_ins() : 0);
  return reg;
}

}  // namespace czsync::analysis
