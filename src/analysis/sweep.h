// Multi-seed sweeps: statistical robustness for experiment results.
//
// A single seeded run shows one trajectory; claims like "deviation stays
// under gamma" deserve distributional evidence. run_sweep executes a
// scenario family across seeds and aggregates the headline metrics;
// run_sweep_parallel fans the seeds out across a util::ThreadPool and
// produces a bit-identical SweepResult (see the determinism note below).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/experiment.h"
#include "util/stats.h"

namespace czsync::analysis {

struct SweepResult {
  int runs = 0;
  /// Across-seed distributions (seconds).
  RunningStats max_deviation;
  RunningStats mean_deviation;
  RunningStats max_discontinuity;
  RunningStats max_rate_excess;
  /// Across-seed distribution of per-run max recovery time, counting
  /// only judged, recovered events (seconds).
  RunningStats max_recovery;
  /// Hard-failure counters: any nonzero is a reproduction failure.
  int bound_violations = 0;
  int unrecovered_runs = 0;
  /// gamma of the FIRST run. A scenario family normally shares one
  /// bound; if make(seed) produces runs with a different gamma, each
  /// such run increments bound_mismatches instead of silently
  /// overwriting `bound` (the pre-fix behavior kept only the last
  /// run's bound, hiding mixed-bound families).
  Dur bound;
  int bound_mismatches = 0;
  /// Wall-clock spent inside the sweep call (seconds). Informational
  /// only — NOT part of the serial/parallel equivalence contract.
  double wall_seconds = 0.0;
  /// Per-seed throughput (runs per wall-clock second).
  [[nodiscard]] double seeds_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(runs) / wall_seconds : 0.0;
  }
};

/// Runs `count` scenarios produced by `make(seed)` for consecutive seeds
/// starting at `first_seed`, and aggregates. The factory receives the
/// seed so schedules and scenario randomness can derive from it.
[[nodiscard]] SweepResult run_sweep(
    const std::function<Scenario(std::uint64_t seed)>& make,
    std::uint64_t first_seed, int count);

/// Parallel variant: fans the `count` seeds out across `jobs` worker
/// threads (jobs <= 0 means ThreadPool::default_jobs()). Each worker
/// builds its scenario through make(seed), so simulators, Rngs and
/// adversary schedules are fully isolated per run; `make` itself must be
/// safe to call concurrently (pure factories, like every family in this
/// repo, are).
///
/// Determinism: per-seed results are merged in SEED ORDER regardless of
/// completion order, with the same accumulation arithmetic as run_sweep,
/// so the returned SweepResult is bit-identical to the serial one
/// (wall_seconds excepted). A worker exception is rethrown here after
/// the pool drains.
[[nodiscard]] SweepResult run_sweep_parallel(
    const std::function<Scenario(std::uint64_t seed)>& make,
    std::uint64_t first_seed, int count, int jobs = 0);

/// Ordered parallel map for row-style experiments: runs every scenario
/// (jobs <= 0 means ThreadPool::default_jobs()) and returns the results
/// in input order, so tables render deterministically no matter how the
/// runs interleave.
[[nodiscard]] std::vector<RunResult> run_scenarios_parallel(
    const std::vector<Scenario>& scenarios, int jobs = 0);

}  // namespace czsync::analysis
