// Multi-seed sweeps: statistical robustness for experiment results.
//
// A single seeded run shows one trajectory; claims like "deviation stays
// under gamma" deserve distributional evidence. run_sweep executes a
// scenario family across seeds and aggregates the headline metrics.
#pragma once

#include <cstdint>
#include <functional>

#include "analysis/experiment.h"
#include "util/stats.h"

namespace czsync::analysis {

struct SweepResult {
  int runs = 0;
  /// Across-seed distributions (seconds).
  RunningStats max_deviation;
  RunningStats mean_deviation;
  RunningStats max_discontinuity;
  RunningStats max_rate_excess;
  /// Across-seed distribution of per-run max recovery time, counting
  /// only judged, recovered events (seconds).
  RunningStats max_recovery;
  /// Hard-failure counters: any nonzero is a reproduction failure.
  int bound_violations = 0;
  int unrecovered_runs = 0;
  /// gamma of the last run (the family normally shares one bound).
  Dur bound;
};

/// Runs `count` scenarios produced by `make(seed)` for consecutive seeds
/// starting at `first_seed`, and aggregates. The factory receives the
/// seed so schedules and scenario randomness can derive from it.
[[nodiscard]] SweepResult run_sweep(
    const std::function<Scenario(std::uint64_t seed)>& make,
    std::uint64_t first_seed, int count);

}  // namespace czsync::analysis
