// Multi-seed sweeps: statistical robustness for experiment results.
//
// A single seeded run shows one trajectory; claims like "deviation stays
// under gamma" deserve distributional evidence. run_sweep executes a
// scenario family across seeds and aggregates the headline metrics;
// run_sweep_parallel fans the seeds out across a util::ThreadPool and
// produces a bit-identical SweepResult (see the determinism note below).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/experiment.h"
#include "util/stats.h"

namespace czsync::analysis {

struct SweepResult {
  int runs = 0;
  /// Across-seed distributions (seconds).
  RunningStats max_deviation;
  RunningStats mean_deviation;
  RunningStats max_discontinuity;
  RunningStats max_rate_excess;
  /// Across-seed distribution of per-run max recovery time, counting
  /// only judged, recovered events (seconds).
  RunningStats max_recovery;
  /// Hard-failure counters: any nonzero is a reproduction failure.
  int bound_violations = 0;
  int unrecovered_runs = 0;
  /// gamma of the FIRST run. A scenario family normally shares one
  /// bound; if make(seed) produces runs with a different gamma, each
  /// such run increments bound_mismatches instead of silently
  /// overwriting `bound` (the pre-fix behavior kept only the last
  /// run's bound, hiding mixed-bound families).
  Duration bound;
  int bound_mismatches = 0;
  /// Wall-clock spent inside the sweep call (seconds). Informational
  /// only — NOT part of the serial/parallel equivalence contract.
  double wall_seconds = 0.0;
  /// Per-seed throughput (runs per wall-clock second).
  [[nodiscard]] double seeds_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(runs) / wall_seconds : 0.0;
  }
};

/// Per-sweep flight-recorder configuration. When enabled, every run gets
/// its own TraceSink; a seed's trace is dumped to
/// `<path_prefix>seed<seed>.cztrace` when the run violates its deviation
/// bound, fails to recover, or throws (post-mortem dump before the
/// rethrow) — or unconditionally with dump_all, which is what the trace
/// determinism tests use to byte-compare sweeps across job counts.
struct SweepTraceConfig {
  /// Dump-path prefix (use a trailing '/' for a directory); empty
  /// disables tracing entirely — the hot path sees a null sink.
  std::string path_prefix;
  /// Ring capacity per run: keep the last N records (flight recorder).
  /// 0 means unbounded full-stream capture.
  std::size_t flight_capacity = 1u << 16;
  /// Dump every seed, not just failing ones.
  bool dump_all = false;

  [[nodiscard]] bool enabled() const { return !path_prefix.empty(); }
  /// The dump path for one seed's run.
  [[nodiscard]] std::string path_for_seed(std::uint64_t seed) const;
};

/// Runs `count` scenarios produced by `make(seed)` for consecutive seeds
/// starting at `first_seed`, and aggregates. The factory receives the
/// seed so schedules and scenario randomness can derive from it.
/// `trace` (optional) enables the per-run flight recorder.
[[nodiscard]] SweepResult run_sweep(
    const std::function<Scenario(std::uint64_t seed)>& make,
    std::uint64_t first_seed, int count,
    const SweepTraceConfig* trace = nullptr);

/// Parallel variant: fans the `count` seeds out across `jobs` worker
/// threads (jobs <= 0 means ThreadPool::default_jobs()). Each worker
/// builds its scenario through make(seed), so simulators, Rngs and
/// adversary schedules are fully isolated per run; `make` itself must be
/// safe to call concurrently (pure factories, like every family in this
/// repo, are).
///
/// Determinism: per-seed results are merged in SEED ORDER regardless of
/// completion order, with the same accumulation arithmetic as run_sweep,
/// so the returned SweepResult is bit-identical to the serial one
/// (wall_seconds excepted). A worker exception is rethrown here after
/// the pool drains.
/// Tracing composes with parallelism: every worker owns its run's sink
/// and dump file (paths are distinct per seed), so traced sweeps stay
/// lock-free and produce byte-identical dumps at any job count.
[[nodiscard]] SweepResult run_sweep_parallel(
    const std::function<Scenario(std::uint64_t seed)>& make,
    std::uint64_t first_seed, int count, int jobs = 0,
    const SweepTraceConfig* trace = nullptr);

/// Ordered parallel map for row-style experiments: runs every scenario
/// (jobs <= 0 means ThreadPool::default_jobs()) and returns the results
/// in input order, so tables render deterministically no matter how the
/// runs interleave.
[[nodiscard]] std::vector<RunResult> run_scenarios_parallel(
    const std::vector<Scenario>& scenarios, int jobs = 0);

}  // namespace czsync::analysis
