// Interfaces between the adversary engine and the processors it corrupts.
//
// The adversary of §2.2 can, while controlling processor p:
//   * read and modify p's entire state, including adj_p;
//   * send arbitrary messages from p (but not forge other senders);
//   * suppress p's own protocol (kill its timers/threads).
// When it leaves, it has no further access, and p resumes the correct
// protocol from whatever state was left behind — recovery must work with
// no indication that anything happened.
#pragma once

#include <functional>
#include <span>

#include "clock/logical_clock.h"
#include "net/message.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace czsync::adversary {

/// The adversary's handle on a processor it currently controls.
/// Implemented by the analysis layer's Node.
class ControlledProcess {
 public:
  virtual ~ControlledProcess() = default;

  [[nodiscard]] virtual net::ProcId id() const = 0;

  /// Full access to the logical clock (read, adjust, smash adj).
  virtual clk::LogicalClock& clock() = 0;

  /// Sends a message from this processor (authenticated as this id).
  virtual void send(net::ProcId to, net::Body body) = 0;

  /// Peers this processor can talk to (its topology neighbors). A view
  /// into degree-sized storage (the topology's CSR arrays) — O(deg), not
  /// O(n), however large the ensemble.
  [[nodiscard]] virtual std::span<const net::ProcId> peers() const = 0;

  /// Kills the processor's protocol activity (sync loop, pending round).
  virtual void suspend_protocol() = 0;

  /// Restarts the protocol daemon; called when the adversary leaves.
  /// Models §3.3's note that the alarm must be recovered after a break-in.
  virtual void resume_protocol() = 0;
};

/// The adversary is omniscient about the network (it "can see all the
/// communication", §2.2); we conservatively also let strategies read any
/// processor's current clock and the public protocol parameters, which
/// only makes the modelled attacker stronger.
struct WorldSpy {
  int n = 0;
  int f = 0;
  Duration way_off = Duration::zero();
  /// Reads processor q's logical clock right now.
  std::function<LogicalTime(net::ProcId)> read_clock;
  /// Whether q is currently under adversary control.
  std::function<bool(net::ProcId)> is_controlled;
};

/// Everything a strategy callback may use.
struct AdvContext {
  sim::Simulator& sim;
  const WorldSpy& spy;
  Rng& rng;
};

}  // namespace czsync::adversary
