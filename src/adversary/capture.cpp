#include "adversary/capture.h"

#include <cassert>

namespace czsync::adversary {

CapturingStrategy::CapturingStrategy(std::shared_ptr<Strategy> inner,
                                     proactive::Auditor& auditor)
    : inner_(std::move(inner)), auditor_(auditor) {
  assert(inner_ != nullptr);
}

std::string_view CapturingStrategy::name() const { return inner_->name(); }

void CapturingStrategy::on_break_in(AdvContext& ctx, ControlledProcess& proc) {
  auditor_.capture(proc.id());
  inner_->on_break_in(ctx, proc);
}

void CapturingStrategy::on_leave(AdvContext& ctx, ControlledProcess& proc) {
  inner_->on_leave(ctx, proc);
}

void CapturingStrategy::on_message(AdvContext& ctx, ControlledProcess& proc,
                                   const net::Message& msg) {
  inner_->on_message(ctx, proc, msg);
}

}  // namespace czsync::adversary
