// What a controlled processor *does*.
//
// The schedule says when the adversary holds a processor; a Strategy says
// how it behaves while held: how it answers clock-estimation pings, what
// it does to the clock on break-in, whether it stays silent. Everything
// here is allowed by §2.2 — arbitrary state changes and arbitrary
// messages from controlled processors, authenticated sender ids.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "adversary/control.h"

namespace czsync::adversary {

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called at the instant of a break-in (after the protocol was
  /// suspended). Default: leave the state alone.
  virtual void on_break_in(AdvContext&, ControlledProcess&) {}

  /// Called at the instant the adversary leaves (before the protocol is
  /// resumed).
  virtual void on_leave(AdvContext&, ControlledProcess&) {}

  /// A message arrived for a controlled processor. The strategy decides
  /// whether/what to answer. Default: drop it.
  virtual void on_message(AdvContext&, ControlledProcess&, const net::Message&) {}
};

/// Crash-like: smashes nothing, answers nothing. The mildest fault; the
/// estimation procedure times out on it (a_q = infinity).
class SilentStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "silent"; }
};

/// Sets the clock to a configured offset from the truth at break-in, then
/// behaves *honestly* with the broken clock (answers pings truthfully).
/// This is the canonical recovery workload: once the adversary leaves,
/// the processor must pull its clock back on its own.
class ClockSmashStrategy final : public Strategy {
 public:
  /// `offset` may be negative. If `randomize`, each break-in draws
  /// uniformly from [-|offset|, |offset|] instead.
  explicit ClockSmashStrategy(Duration offset, bool randomize = false);

  [[nodiscard]] std::string_view name() const override { return "clock-smash"; }
  void on_break_in(AdvContext&, ControlledProcess&) override;
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  Duration offset_;
  bool randomize_;
};

/// Answers every ping with clock + lie_offset (consistent lie).
class ConstantLieStrategy final : public Strategy {
 public:
  explicit ConstantLieStrategy(Duration lie_offset);

  [[nodiscard]] std::string_view name() const override { return "constant-lie"; }
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  Duration lie_offset_;
};

/// Classic two-faced Byzantine behaviour: reports clock + spread to peers
/// with even ids and clock - spread to odd ids, trying to split the
/// network.
class TwoFacedStrategy final : public Strategy {
 public:
  explicit TwoFacedStrategy(Duration spread);

  [[nodiscard]] std::string_view name() const override { return "two-faced"; }
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  Duration spread_;
};

/// Adaptive worst-case pull: reads the currently fastest correct clock
/// via the spy and reports just above it (margin*WayOff), staying
/// plausible enough to be the (f+1)-st order statistic and drag the whole
/// system upward as fast as the analysis permits.
class MaxPullStrategy final : public Strategy {
 public:
  explicit MaxPullStrategy(double margin = 0.45);

  [[nodiscard]] std::string_view name() const override { return "max-pull"; }
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  double margin_;
};

/// Uniform random lie in [-spread, spread] per reply (inconsistent noise).
class RandomLieStrategy final : public Strategy {
 public:
  explicit RandomLieStrategy(Duration spread);

  [[nodiscard]] std::string_view name() const override { return "random-lie"; }
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  Duration spread_;
};

/// Replies as late as possible (just inside the requester's MaxWait) with
/// a skewed value: maximizes the reading-error bound a_q the requester
/// must tolerate. `hold_back` should be slightly below MaxWait minus the
/// inbound delay.
class DelayedReplyStrategy final : public Strategy {
 public:
  DelayedReplyStrategy(Duration hold_back, Duration lie_offset);

  [[nodiscard]] std::string_view name() const override { return "delayed-reply"; }
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  Duration hold_back_;
  Duration lie_offset_;
};

/// Attack specific to round-based protocols (the §3.3 ablation): answers
/// round-tagged pings with a wildly inflated round number and a lying
/// clock, trying to poison joining processors' round adoption and to
/// make its replies maximally confusing. Plain pings get the clock lie.
class RoundInflationStrategy final : public Strategy {
 public:
  RoundInflationStrategy(std::uint64_t round_boost, Duration lie_offset);

  [[nodiscard]] std::string_view name() const override {
    return "round-inflation";
  }
  void on_message(AdvContext&, ControlledProcess&, const net::Message&) override;

 private:
  std::uint64_t round_boost_;
  Duration lie_offset_;
};

/// Factory by name (used by scenario configs and benches).
[[nodiscard]] std::shared_ptr<Strategy> make_strategy(const std::string& name,
                                                      Duration scale);

}  // namespace czsync::adversary
