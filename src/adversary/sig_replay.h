// Signature-replay attack against the broadcast comparator.
//
// §1.1: "[10] also limit the power of the attacker by assuming it cannot
// collect too many 'bad' signatures (assumption A4)". This strategy IS
// that attacker: it records every signature bundle its controlled
// processors observe (genuine signatures verify forever) and spams the
// oldest recorded bundle at the network. Correct processors reject it
// (round <= last_accepted), but a freshly recovered processor has lost
// its round state and accepts — its clock snaps to the stale round's
// time. The convergence-based protocol has no such artifact to replay.
#pragma once

#include <map>

#include "adversary/strategies.h"
#include "net/message.h"

namespace czsync::adversary {

class SigReplayStrategy final : public Strategy {
 public:
  /// Keeps at most `max_stored` of the oldest observed rounds and spams
  /// the oldest one from every controlled processor every `spam_period`.
  explicit SigReplayStrategy(std::size_t max_stored = 16,
                             Duration spam_period = Duration::seconds(2));

  [[nodiscard]] std::string_view name() const override { return "sig-replay"; }
  void on_break_in(AdvContext& ctx,
                   ControlledProcess& self) override;
  void on_message(AdvContext& ctx,
                  ControlledProcess& self,
                  const net::Message& msg) override;

  [[nodiscard]] std::size_t stored_rounds() const { return stored_.size(); }
  [[nodiscard]] std::uint64_t replays_sent() const { return replays_sent_; }

 private:
  /// Replays the oldest round for which >= f+1 distinct signatures were
  /// collected (enough to force acceptance).
  void spam(ControlledProcess& self, int f);
  void arm_spam(AdvContext& ctx, ControlledProcess& self);

  std::size_t max_stored_;
  Duration spam_period_;
  /// round -> union of observed signatures, deduped by signer: the
  /// "collected bad signatures" of assumption A4.
  std::map<std::uint64_t, std::map<net::ProcId, net::Signature>> stored_;
  std::uint64_t replays_sent_ = 0;
};

}  // namespace czsync::adversary
