#include "adversary/strategies.h"

#include <cassert>
#include <stdexcept>

namespace czsync::adversary {

namespace {

/// True replies carry the responder's *current* logical clock; liars call
/// this with an offset. Clock-bearing requests (sync pings and the
/// application-level timestamp requests) are both answered; everything
/// else is ignored.
void reply_ping(ControlledProcess& self, const net::Message& msg, Duration lie) {
  if (const auto* req = std::get_if<net::PingReq>(&msg.body)) {
    self.send(msg.from,
              net::PingResp{req->nonce, self.clock().read() + lie});
  } else if (const auto* rreq = std::get_if<net::RoundPingReq>(&msg.body)) {
    // Round-based comparator: echo the requester's round — the most
    // plausible tag a liar can pick (it is never discarded).
    self.send(msg.from, net::RoundPingResp{rreq->nonce, rreq->round,
                                           self.clock().read() + lie});
  } else if (const auto* ts = std::get_if<net::TimestampReq>(&msg.body)) {
    self.send(msg.from,
              net::TimestampResp{ts->nonce, self.clock().read() + lie});
  }
}

}  // namespace

ClockSmashStrategy::ClockSmashStrategy(Duration offset, bool randomize)
    : offset_(offset), randomize_(randomize) {}

void ClockSmashStrategy::on_break_in(AdvContext& ctx, ControlledProcess& self) {
  Duration off = offset_;
  if (randomize_) {
    const double a = offset_.abs().sec();
    off = Duration::seconds(ctx.rng.uniform(-a, a));
  }
  self.clock().adversary_set_clock(self.clock().read() + off);
}

void ClockSmashStrategy::on_message(AdvContext&, ControlledProcess& self,
                                    const net::Message& msg) {
  reply_ping(self, msg, Duration::zero());  // honest reply from a broken clock
}

ConstantLieStrategy::ConstantLieStrategy(Duration lie_offset)
    : lie_offset_(lie_offset) {}

void ConstantLieStrategy::on_message(AdvContext&, ControlledProcess& self,
                                     const net::Message& msg) {
  reply_ping(self, msg, lie_offset_);
}

TwoFacedStrategy::TwoFacedStrategy(Duration spread) : spread_(spread) {}

void TwoFacedStrategy::on_message(AdvContext&, ControlledProcess& self,
                                  const net::Message& msg) {
  const Duration lie = (msg.from % 2 == 0) ? spread_ : -spread_;
  reply_ping(self, msg, lie);
}

MaxPullStrategy::MaxPullStrategy(double margin) : margin_(margin) {
  assert(margin > 0.0 && margin < 1.0);
}

void MaxPullStrategy::on_message(AdvContext& ctx, ControlledProcess& self,
                                 const net::Message& msg) {
  const auto* req = std::get_if<net::PingReq>(&msg.body);
  const auto* rreq = std::get_if<net::RoundPingReq>(&msg.body);
  if (!req && !rreq) return;
  // Highest correct clock right now.
  LogicalTime target = self.clock().read();
  for (net::ProcId q = 0; q < ctx.spy.n; ++q) {
    if (ctx.spy.is_controlled(q)) continue;
    target = std::max(target, ctx.spy.read_clock(q));
  }
  target += ctx.spy.way_off * margin_;
  if (req) {
    self.send(msg.from, net::PingResp{req->nonce, target});
  } else {
    self.send(msg.from, net::RoundPingResp{rreq->nonce, rreq->round, target});
  }
}

RandomLieStrategy::RandomLieStrategy(Duration spread) : spread_(spread) {}

void RandomLieStrategy::on_message(AdvContext& ctx, ControlledProcess& self,
                                   const net::Message& msg) {
  const double s = spread_.sec();
  reply_ping(self, msg, Duration::seconds(ctx.rng.uniform(-s, s)));
}

DelayedReplyStrategy::DelayedReplyStrategy(Duration hold_back, Duration lie_offset)
    : hold_back_(hold_back), lie_offset_(lie_offset) {}

void DelayedReplyStrategy::on_message(AdvContext& ctx, ControlledProcess& self,
                                      const net::Message& msg) {
  const auto* req = std::get_if<net::PingReq>(&msg.body);
  if (!req) return;
  const net::ProcId requester = msg.from;
  const std::uint64_t nonce = req->nonce;
  ControlledProcess* node = &self;
  // Hold the reply back; the response value is read at *send* time, so
  // the lie compounds with the elapsed time. The spy outlives the event
  // (it is owned by the adversary engine); the guard stops the lie if the
  // adversary has already left the node, preserving the authenticated-
  // channel semantics of §2.2.
  const WorldSpy* spy = &ctx.spy;
  ctx.sim.schedule_after(
      hold_back_, [node, spy, requester, nonce, lie = lie_offset_] {
        if (!spy->is_controlled(node->id())) return;
        node->send(requester, net::PingResp{nonce, node->clock().read() + lie});
      });
}

RoundInflationStrategy::RoundInflationStrategy(std::uint64_t round_boost,
                                               Duration lie_offset)
    : round_boost_(round_boost), lie_offset_(lie_offset) {}

void RoundInflationStrategy::on_message(AdvContext&, ControlledProcess& self,
                                        const net::Message& msg) {
  if (const auto* rreq = std::get_if<net::RoundPingReq>(&msg.body)) {
    self.send(msg.from,
              net::RoundPingResp{rreq->nonce, rreq->round + round_boost_,
                                 self.clock().read() + lie_offset_});
    return;
  }
  reply_ping(self, msg, lie_offset_);
}

std::shared_ptr<Strategy> make_strategy(const std::string& name, Duration scale) {
  if (name == "silent") return std::make_shared<SilentStrategy>();
  if (name == "clock-smash") return std::make_shared<ClockSmashStrategy>(scale);
  if (name == "clock-smash-random")
    return std::make_shared<ClockSmashStrategy>(scale, /*randomize=*/true);
  if (name == "constant-lie") return std::make_shared<ConstantLieStrategy>(scale);
  if (name == "two-faced") return std::make_shared<TwoFacedStrategy>(scale);
  if (name == "max-pull") return std::make_shared<MaxPullStrategy>();
  if (name == "random-lie") return std::make_shared<RandomLieStrategy>(scale);
  if (name == "delayed-reply")
    return std::make_shared<DelayedReplyStrategy>(scale, scale);
  if (name == "round-inflation")
    return std::make_shared<RoundInflationStrategy>(1000, scale);
  throw std::invalid_argument("unknown strategy: " + name);
}

}  // namespace czsync::adversary
