// The adversary engine: executes a Schedule against live processors.
//
// At each break-in it suspends the victim's protocol and hands control to
// the Strategy; at each leave it restores the correct protocol. Inbound
// messages for controlled processors are routed to the Strategy by the
// node dispatch (see analysis::Node), so the uncorrupted network layer
// never needs to know who is faulty.
#pragma once

#include <memory>
#include <vector>

#include "adversary/control.h"
#include "adversary/schedule.h"
#include "adversary/strategies.h"
#include "sim/simulator.h"

namespace czsync::adversary {

class Adversary {
 public:
  /// `spy` must be fully populated; it is shared with strategies.
  Adversary(sim::Simulator& sim, Schedule schedule,
            std::shared_ptr<Strategy> strategy, WorldSpy spy, Rng rng);

  /// Registers the processors and schedules every break-in/leave event.
  /// `procs[i]` must be processor id i. Call once, before running.
  void attach(std::vector<ControlledProcess*> procs);

  /// Whether processor p is currently controlled.
  [[nodiscard]] bool is_controlled(net::ProcId p) const;

  /// Routes a message delivered to a controlled processor to the strategy.
  void deliver_to_strategy(ControlledProcess& proc, const net::Message& msg);

  [[nodiscard]] const Schedule& schedule() const { return schedule_; }
  [[nodiscard]] const Strategy& strategy() const { return *strategy_; }
  [[nodiscard]] const WorldSpy& spy() const { return spy_; }
  [[nodiscard]] std::uint64_t break_ins() const { return break_ins_; }

 private:
  void break_in(net::ProcId p);
  void leave(net::ProcId p);
  AdvContext context();

  sim::Simulator& sim_;
  Schedule schedule_;
  std::shared_ptr<Strategy> strategy_;
  WorldSpy spy_;
  Rng rng_;
  std::vector<ControlledProcess*> procs_;
  std::vector<int> control_depth_;  // >0 while controlled (overlap-safe)
  std::uint64_t break_ins_ = 0;
};

}  // namespace czsync::adversary
