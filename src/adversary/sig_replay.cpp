#include "adversary/sig_replay.h"

#include <functional>
#include <memory>

namespace czsync::adversary {

SigReplayStrategy::SigReplayStrategy(std::size_t max_stored, Duration spam_period)
    : max_stored_(max_stored), spam_period_(spam_period) {}

void SigReplayStrategy::spam(ControlledProcess& self, int f) {
  // The oldest round with a complete (f+1 signer) signature set is the
  // most damaging replay.
  for (const auto& [round, sigs] : stored_) {
    if (static_cast<int>(sigs.size()) < f + 1) continue;
    net::StRoundMsg bundle;
    bundle.round = round;
    bundle.sigs.reserve(sigs.size());
    for (const auto& [signer, sig] : sigs) bundle.sigs.push_back(sig);
    for (net::ProcId q : self.peers()) {
      self.send(q, bundle);
      ++replays_sent_;
    }
    return;
  }
}

void SigReplayStrategy::arm_spam(AdvContext& ctx,
                                 ControlledProcess& self) {
  // Periodic replay while (and only while) this processor is controlled.
  // The spy outlives the events (it is owned by the adversary engine);
  // the loop closes over a shared copy of itself so it can re-arm.
  const WorldSpy* spy = &ctx.spy;
  ControlledProcess* node = &self;
  sim::Simulator* sim = &ctx.sim;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [this, spy, node, sim, loop] {
    if (!spy->is_controlled(node->id())) return;  // left: loop dies
    spam(*node, spy->f);
    sim->schedule_after(spam_period_, *loop);
  };
  sim->schedule_after(spam_period_, *loop);
}

void SigReplayStrategy::on_break_in(AdvContext& ctx,
                                    ControlledProcess& self) {
  arm_spam(ctx, self);
}

void SigReplayStrategy::on_message(AdvContext& ctx,
                                   ControlledProcess& self,
                                   const net::Message& msg) {
  const auto* st = std::get_if<net::StRoundMsg>(&msg.body);
  if (st == nullptr) return;  // only the broadcast protocol is attacked
  // Harvest: genuine signatures are reusable forever; accumulate the
  // per-round union (A4's "collected signatures"), preferring to keep
  // the oldest rounds.
  if (stored_.size() < max_stored_ || stored_.contains(st->round) ||
      st->round < stored_.rbegin()->first) {
    auto& slot = stored_[st->round];
    for (const auto& sig : st->sigs) slot.emplace(sig.signer, sig);
    while (stored_.size() > max_stored_) stored_.erase(std::prev(stored_.end()));
  }
  // Opportunistic replay on every received message as well.
  if (stored_.begin()->first != st->round) spam(self, ctx.spy.f);
}

}  // namespace czsync::adversary
