#include "adversary/adversary.h"

#include <cassert>

#include "util/logging.h"

namespace czsync::adversary {

Adversary::Adversary(sim::Simulator& sim, Schedule schedule,
                     std::shared_ptr<Strategy> strategy, WorldSpy spy, Rng rng)
    : sim_(sim),
      schedule_(std::move(schedule)),
      strategy_(std::move(strategy)),
      spy_(std::move(spy)),
      rng_(rng) {
  assert(strategy_ != nullptr);
  // The spy's controlled-query is answered by this engine.
  spy_.is_controlled = [this](net::ProcId p) { return is_controlled(p); };
}

void Adversary::attach(std::vector<ControlledProcess*> procs) {
  assert(procs_.empty() && "attach must be called once");
  procs_ = std::move(procs);
  control_depth_.assign(procs_.size(), 0);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    assert(procs_[i] != nullptr && procs_[i]->id() == static_cast<net::ProcId>(i));
  }
  for (const auto& iv : schedule_.intervals()) {
    assert(iv.proc >= 0 && iv.proc < static_cast<net::ProcId>(procs_.size()));
    sim_.schedule_at(iv.start, [this, p = iv.proc] { break_in(p); });
    sim_.schedule_at(iv.end, [this, p = iv.proc] { leave(p); });
  }
}

bool Adversary::is_controlled(net::ProcId p) const {
  if (p < 0 || static_cast<std::size_t>(p) >= control_depth_.size()) return false;
  return control_depth_[static_cast<std::size_t>(p)] > 0;
}

AdvContext Adversary::context() { return AdvContext{sim_, spy_, rng_}; }

void Adversary::break_in(net::ProcId p) {
  auto& depth = control_depth_[static_cast<std::size_t>(p)];
  ++depth;
  if (depth > 1) return;  // already controlled (overlapping intervals)
  ++break_ins_;
  CZ_DEBUG << "adversary breaks into " << p << " at " << sim_.now();
  auto& proc = *procs_[static_cast<std::size_t>(p)];
  trace::TraceSink* ts = sim_.trace_sink();
  if (ts != nullptr) ts->record(trace::adv_break_in(sim_.now(), p));
  proc.suspend_protocol();
  const Duration adj_before = proc.clock().adjustment();
  auto ctx = context();
  strategy_->on_break_in(ctx, proc);
  // Strategies smash adj_p through their ControlledProcess handle; the
  // engine observes the before/after delta so the trace shows what the
  // break-in actually did to the clock.
  if (ts != nullptr) {
    const Duration adj_after = proc.clock().adjustment();
    if (adj_after != adj_before) {
      ts->record(trace::adj_write(sim_.now(), p, trace::AdjKind::Smash,
                                  adj_after - adj_before,
                                  adj_after));
    }
  }
}

void Adversary::leave(net::ProcId p) {
  auto& depth = control_depth_[static_cast<std::size_t>(p)];
  assert(depth > 0);
  --depth;
  if (depth > 0) return;
  CZ_DEBUG << "adversary leaves " << p << " at " << sim_.now();
  auto& proc = *procs_[static_cast<std::size_t>(p)];
  trace::TraceSink* ts = sim_.trace_sink();
  const Duration adj_before = proc.clock().adjustment();
  auto ctx = context();
  strategy_->on_leave(ctx, proc);
  if (ts != nullptr) {
    const Duration adj_after = proc.clock().adjustment();
    if (adj_after != adj_before) {
      ts->record(trace::adj_write(sim_.now(), p, trace::AdjKind::Smash,
                                  adj_after - adj_before,
                                  adj_after));
    }
    ts->record(trace::adv_leave(sim_.now(), p));
  }
  proc.resume_protocol();
}

void Adversary::deliver_to_strategy(ControlledProcess& proc,
                                    const net::Message& msg) {
  assert(is_controlled(proc.id()));
  auto ctx = context();
  strategy_->on_message(ctx, proc, msg);
}

}  // namespace czsync::adversary
