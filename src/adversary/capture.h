// Share-capturing strategy decorator for the proactive-security audit.
//
// Delegates all behaviour to `inner`, additionally recording in the
// Auditor that the victim's current share was captured at each break-in
// (§4: the adversary reads the full state of a processor it controls).
// Lives in adversary/ — it subclasses Strategy, and the layering DAG
// (DESIGN.md §4.9) places proactive/ below adversary/, so the proactive
// module itself must not depend on the attack machinery.
#pragma once

#include <memory>

#include "adversary/strategies.h"
#include "proactive/audit.h"

namespace czsync::adversary {

class CapturingStrategy final : public Strategy {
 public:
  CapturingStrategy(std::shared_ptr<Strategy> inner,
                    proactive::Auditor& auditor);

  [[nodiscard]] std::string_view name() const override;
  void on_break_in(AdvContext& ctx, ControlledProcess& proc) override;
  void on_leave(AdvContext& ctx, ControlledProcess& proc) override;
  void on_message(AdvContext& ctx, ControlledProcess& proc,
                  const net::Message& msg) override;

 private:
  std::shared_ptr<Strategy> inner_;
  proactive::Auditor& auditor_;
};

}  // namespace czsync::adversary
