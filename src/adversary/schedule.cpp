#include "adversary/schedule.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace czsync::adversary {

Schedule::Schedule(std::vector<ControlInterval> intervals)
    : intervals_(std::move(intervals)) {
  for (const auto& iv : intervals_) {
    assert(iv.proc >= 0);
    assert(iv.end > iv.start);
  }
  std::sort(intervals_.begin(), intervals_.end(),
            [](const ControlInterval& a, const ControlInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.proc < b.proc;
            });
}

bool Schedule::controlled_at(net::ProcId p, SimTau t) const {
  for (const auto& iv : intervals_) {
    if (iv.start > t) break;
    if (iv.proc == p && t >= iv.start && t < iv.end) return true;
  }
  return false;
}

bool Schedule::controlled_within(net::ProcId p, SimTau t1, SimTau t2) const {
  assert(t1 <= t2);
  for (const auto& iv : intervals_) {
    if (iv.start > t2) break;
    if (iv.proc == p && iv.end > t1 && iv.start <= t2) return true;
  }
  return false;
}

int Schedule::max_overlap(Duration delta_period) const {
  // The count of distinct controlled processors in a window [tau,
  // tau+Delta] changes only when the window boundary crosses an interval
  // endpoint. It suffices to evaluate windows whose *left* edge sits just
  // after each interval end, plus windows starting at each interval start.
  // We evaluate at candidate left edges {start_i} and {end_i} directly;
  // window intersection uses half-open interval semantics so this covers
  // all maxima.
  if (intervals_.empty()) return 0;
  std::vector<double> candidates;
  candidates.reserve(intervals_.size() * 2);
  for (const auto& iv : intervals_) {
    // time: candidate window edges collected as raw tau seconds
    candidates.push_back(iv.start.raw());
    candidates.push_back(iv.end.raw());  // time: raw tau window edge
    // time: window ending exactly at this start: left edge = start - Delta
    candidates.push_back(iv.start.raw() - delta_period.sec());
  }
  int worst = 0;
  for (double left : candidates) {
    const SimTau lo(left);
    const SimTau hi(left + delta_period.sec());
    std::set<net::ProcId> procs;
    for (const auto& iv : intervals_) {
      // Interval [start, end) intersects window [lo, hi] (closed window:
      // Definition 2 speaks of the closed interval [tau, tau+Delta]).
      if (iv.start <= hi && iv.end > lo) procs.insert(iv.proc);
    }
    worst = std::max(worst, static_cast<int>(procs.size()));
  }
  return worst;
}

bool Schedule::is_f_limited(int f, Duration delta_period) const {
  return max_overlap(delta_period) <= f;
}

std::vector<ControlInterval> Schedule::by_end_time() const {
  auto out = intervals_;
  std::sort(out.begin(), out.end(),
            [](const ControlInterval& a, const ControlInterval& b) {
              return a.end < b.end;
            });
  return out;
}

Schedule Schedule::round_robin_sweep(int n, int f, Duration delta_period, Duration dwell,
                                     Duration slack, SimTau first_break,
                                     SimTau horizon) {
  assert(n >= 1 && f >= 1 && f <= n);
  assert(dwell > Duration::zero() && slack >= Duration::zero());
  std::vector<ControlInterval> out;
  SimTau t = first_break;
  int next = 0;
  while (t < horizon) {
    const SimTau end = t + dwell;
    for (int k = 0; k < f; ++k) {
      out.push_back({(next + k) % n, t, end});
    }
    next = (next + f) % n;
    // A new group may only start once every member of the old group has
    // been out of control for a full Delta (Definition 2's "must leave
    // ... at least Delta time units before it can break into the new
    // one"), hence the Delta gap between end and the next start.
    t = end + delta_period + slack;
  }
  return Schedule(std::move(out));
}

Schedule Schedule::random_mobile(int n, int f, Duration delta_period, Duration min_dwell,
                                 Duration max_dwell, SimTau horizon, Rng rng) {
  assert(n >= 1 && f >= 1 && f <= n);
  assert(Duration::zero() < min_dwell && min_dwell <= max_dwell);
  std::vector<ControlInterval> out;
  for (int slot = 0; slot < f; ++slot) {
    // Stagger slot phases so break-ins are not synchronized.
    SimTau t = SimTau(rng.uniform(0.0, (max_dwell + delta_period).sec()));
    while (t < horizon) {
      const auto victim = static_cast<net::ProcId>(rng.uniform_int(0, n - 1));
      const Duration dwell =
          Duration::seconds(rng.uniform(min_dwell.sec(), max_dwell.sec()));
      const SimTau end = t + dwell;
      out.push_back({victim, t, end});
      // Rest a full Delta plus jitter before this slot's next victim.
      t = end + delta_period + Duration::seconds(rng.uniform(0.0, delta_period.sec() * 0.25));
    }
  }
  return Schedule(std::move(out));
}

Schedule Schedule::single(net::ProcId p, SimTau start, SimTau end) {
  return Schedule({ControlInterval{p, start, end}});
}

}  // namespace czsync::adversary
