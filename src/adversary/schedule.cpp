#include "adversary/schedule.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace czsync::adversary {

Schedule::Schedule(std::vector<ControlInterval> intervals)
    : intervals_(std::move(intervals)) {
  for (const auto& iv : intervals_) {
    assert(iv.proc >= 0);
    assert(iv.end > iv.start);
  }
  std::sort(intervals_.begin(), intervals_.end(),
            [](const ControlInterval& a, const ControlInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.proc < b.proc;
            });
}

bool Schedule::controlled_at(net::ProcId p, RealTime t) const {
  for (const auto& iv : intervals_) {
    if (iv.start > t) break;
    if (iv.proc == p && t >= iv.start && t < iv.end) return true;
  }
  return false;
}

bool Schedule::controlled_within(net::ProcId p, RealTime t1, RealTime t2) const {
  assert(t1 <= t2);
  for (const auto& iv : intervals_) {
    if (iv.start > t2) break;
    if (iv.proc == p && iv.end > t1 && iv.start <= t2) return true;
  }
  return false;
}

int Schedule::max_overlap(Dur delta_period) const {
  // The count of distinct controlled processors in a window [tau,
  // tau+Delta] changes only when the window boundary crosses an interval
  // endpoint. It suffices to evaluate windows whose *left* edge sits just
  // after each interval end, plus windows starting at each interval start.
  // We evaluate at candidate left edges {start_i} and {end_i} directly;
  // window intersection uses half-open interval semantics so this covers
  // all maxima.
  if (intervals_.empty()) return 0;
  std::vector<double> candidates;
  candidates.reserve(intervals_.size() * 2);
  for (const auto& iv : intervals_) {
    candidates.push_back(iv.start.sec());
    candidates.push_back(iv.end.sec());
    // Window ending exactly at this start: left edge = start - Delta.
    candidates.push_back(iv.start.sec() - delta_period.sec());
  }
  int worst = 0;
  for (double left : candidates) {
    const RealTime lo(left);
    const RealTime hi(left + delta_period.sec());
    std::set<net::ProcId> procs;
    for (const auto& iv : intervals_) {
      // Interval [start, end) intersects window [lo, hi] (closed window:
      // Definition 2 speaks of the closed interval [tau, tau+Delta]).
      if (iv.start <= hi && iv.end > lo) procs.insert(iv.proc);
    }
    worst = std::max(worst, static_cast<int>(procs.size()));
  }
  return worst;
}

bool Schedule::is_f_limited(int f, Dur delta_period) const {
  return max_overlap(delta_period) <= f;
}

std::vector<ControlInterval> Schedule::by_end_time() const {
  auto out = intervals_;
  std::sort(out.begin(), out.end(),
            [](const ControlInterval& a, const ControlInterval& b) {
              return a.end < b.end;
            });
  return out;
}

Schedule Schedule::round_robin_sweep(int n, int f, Dur delta_period, Dur dwell,
                                     Dur slack, RealTime first_break,
                                     RealTime horizon) {
  assert(n >= 1 && f >= 1 && f <= n);
  assert(dwell > Dur::zero() && slack >= Dur::zero());
  std::vector<ControlInterval> out;
  RealTime t = first_break;
  int next = 0;
  while (t < horizon) {
    const RealTime end = t + dwell;
    for (int k = 0; k < f; ++k) {
      out.push_back({(next + k) % n, t, end});
    }
    next = (next + f) % n;
    // A new group may only start once every member of the old group has
    // been out of control for a full Delta (Definition 2's "must leave
    // ... at least Delta time units before it can break into the new
    // one"), hence the Delta gap between end and the next start.
    t = end + delta_period + slack;
  }
  return Schedule(std::move(out));
}

Schedule Schedule::random_mobile(int n, int f, Dur delta_period, Dur min_dwell,
                                 Dur max_dwell, RealTime horizon, Rng rng) {
  assert(n >= 1 && f >= 1 && f <= n);
  assert(Dur::zero() < min_dwell && min_dwell <= max_dwell);
  std::vector<ControlInterval> out;
  for (int slot = 0; slot < f; ++slot) {
    // Stagger slot phases so break-ins are not synchronized.
    RealTime t = RealTime(rng.uniform(0.0, (max_dwell + delta_period).sec()));
    while (t < horizon) {
      const auto victim = static_cast<net::ProcId>(rng.uniform_int(0, n - 1));
      const Dur dwell =
          Dur::seconds(rng.uniform(min_dwell.sec(), max_dwell.sec()));
      const RealTime end = t + dwell;
      out.push_back({victim, t, end});
      // Rest a full Delta plus jitter before this slot's next victim.
      t = end + delta_period + Dur::seconds(rng.uniform(0.0, delta_period.sec() * 0.25));
    }
  }
  return Schedule(std::move(out));
}

Schedule Schedule::single(net::ProcId p, RealTime start, RealTime end) {
  return Schedule({ControlInterval{p, start, end}});
}

}  // namespace czsync::adversary
