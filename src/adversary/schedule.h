// Break-in/leave schedules and the f-limited check of Definition 2.
//
// A schedule is the ground truth of "who is faulty when". It is fixed
// before the run (a non-adaptive mobile adversary); adaptivity lives in
// the *strategies*, which decide at run time what a controlled processor
// does. Validation verifies the Definition-2 budget: every real-time
// window of length Delta sees at most f distinct controlled processors.
#pragma once

#include <optional>
#include <vector>

#include "net/message.h"
#include "util/rng.h"
#include "util/time_domain.h"

namespace czsync::adversary {

struct ControlInterval {
  net::ProcId proc = -1;
  SimTau start;
  SimTau end;  ///< exclusive; the processor is correct again from `end`
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<ControlInterval> intervals);

  [[nodiscard]] const std::vector<ControlInterval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }

  /// True if `p` is controlled at time `t`.
  [[nodiscard]] bool controlled_at(net::ProcId p, SimTau t) const;

  /// True if `p` is controlled at any point of [t1, t2] — i.e. NOT
  /// "non-faulty during [t1, t2]" in the paper's wording.
  [[nodiscard]] bool controlled_within(net::ProcId p, SimTau t1,
                                       SimTau t2) const;

  /// Definition 2: at most f distinct processors are controlled within
  /// any window [tau, tau+Delta]. Exact check over all critical windows.
  [[nodiscard]] bool is_f_limited(int f, Duration delta_period) const;

  /// Maximum over all Delta-windows of the number of distinct controlled
  /// processors (so is_f_limited(f, D) == (max_overlap(D) <= f)).
  [[nodiscard]] int max_overlap(Duration delta_period) const;

  /// Leave events, ascending by time — the recovery clock starts here.
  [[nodiscard]] std::vector<ControlInterval> by_end_time() const;

  // ---- Generators ----

  /// The canonical proactive-model adversary: sweeps the ring of
  /// processors in groups of f. Each group is held for `dwell`, then the
  /// adversary rests `delta_period` (plus slack) before the next group,
  /// which keeps any Delta-window at <= f processors. Repeats until
  /// `horizon`.
  [[nodiscard]] static Schedule round_robin_sweep(int n, int f, Duration delta_period,
                                                  Duration dwell, Duration slack,
                                                  SimTau first_break,
                                                  SimTau horizon);

  /// Random mobile adversary: f independent "slots"; each slot controls a
  /// random processor for a random dwell in [min_dwell, max_dwell], then
  /// rests >= delta_period before its next victim.
  [[nodiscard]] static Schedule random_mobile(int n, int f, Duration delta_period,
                                              Duration min_dwell, Duration max_dwell,
                                              SimTau horizon, Rng rng);

  /// A single break-in (for recovery experiments).
  [[nodiscard]] static Schedule single(net::ProcId p, SimTau start,
                                       SimTau end);

 private:
  std::vector<ControlInterval> intervals_;  // sorted by start
};

}  // namespace czsync::adversary
