#include "clock/hardware_clock.h"

#include <cassert>
#include <utility>
#include <vector>

namespace czsync::clk {

HardwareClock::HardwareClock(sim::Simulator& sim,
                             std::shared_ptr<const DriftModel> model, Rng rng,
                             HwTime initial, std::uint32_t event_shard)
    : sim_(sim),
      model_(std::move(model)),
      rng_(rng),
      tau0_(sim.now()),
      h0_(initial),
      rate_(model_->initial_rate(rng_)),
      event_shard_(event_shard) {
  assert(rate_ >= model_->min_rate() && rate_ <= model_->max_rate());
  schedule_drift_change();
}

HardwareClock::~HardwareClock() {
  for (auto& [id, alarm] : alarms_) sim_.cancel(alarm.event);
  if (drift_event_ != sim::kNoEvent) sim_.cancel(drift_event_);
}

HwTime HardwareClock::read() const {
  const Duration elapsed = sim_.now() - tau0_;
  return h0_ + elapsed * rate_;
}

void HardwareClock::fold() {
  h0_ = read();
  tau0_ = sim_.now();
}

SimTau HardwareClock::eta(HwTime target) const {
  const Duration remaining = target - read();
  if (remaining <= Duration::zero()) return sim_.now();
  return sim_.now() + remaining / rate_;
}

void HardwareClock::schedule_drift_change() {
  const Duration span = model_->next_change_after(rng_);
  if (!span.is_finite()) {
    drift_event_ = sim::kNoEvent;
    return;
  }
  drift_event_ =
      sim_.schedule_after(span, [this] { apply_drift_change(); }, event_shard_);
}

void HardwareClock::apply_drift_change() {
  fold();
  rate_ = model_->next_rate(rate_, rng_);
  assert(rate_ >= model_->min_rate() && rate_ <= model_->max_rate());
  ++rate_changes_;
  // Re-target every pending alarm for the new rate.
  std::vector<AlarmId> ids;
  ids.reserve(alarms_.size());
  for (auto& [id, alarm] : alarms_) {
    sim_.cancel(alarm.event);
    ids.push_back(id);
  }
  for (AlarmId id : ids) arm(id);
  schedule_drift_change();
}

void HardwareClock::arm(AlarmId id) {
  auto it = alarms_.find(id);
  assert(it != alarms_.end());
  it->second.event = sim_.schedule_at(
      eta(it->second.target), [this, id] { fire(id); }, event_shard_);
}

AlarmId HardwareClock::set_alarm_after(Duration dh, std::function<void()> fn) {
  assert(dh.is_finite());
  if (dh < Duration::zero()) dh = Duration::zero();
  const AlarmId id = next_alarm_++;
  alarms_.emplace(id, Alarm{read() + dh, std::move(fn), sim::kNoEvent});
  arm(id);
  return id;
}

bool HardwareClock::cancel_alarm(AlarmId id) {
  auto it = alarms_.find(id);
  if (it == alarms_.end()) return false;
  sim_.cancel(it->second.event);
  alarms_.erase(it);
  return true;
}

void HardwareClock::fire(AlarmId id) {
  auto it = alarms_.find(id);
  assert(it != alarms_.end());
  auto fn = std::move(it->second.fn);
  alarms_.erase(it);
  fn();
}

}  // namespace czsync::clk
