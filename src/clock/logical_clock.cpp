// LogicalClock is header-only; this translation unit anchors the library.
#include "clock/logical_clock.h"
