// Hardware clock H_p of Definition 1.
//
// Piecewise-linear in real time: the clock stores the fold point
// (tau0, H0) and its current rate; reads are H0 + rate*(now - tau0).
// A DriftModel schedules rate changes as simulator events.
//
// The clock also provides *hardware alarms* ("fire when H has advanced by
// dH"), the primitive real systems use for interval timers. Alarms are
// rate-change aware: when the rate changes, every pending alarm is
// re-targeted so it still fires exactly when H crosses its target value.
// The Sync protocol's "every SyncInt time units" loop and the MaxWait
// timeout are built on these alarms.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time_domain.h"

namespace czsync::clk {

/// Handle to a pending hardware alarm. 0 means "none".
using AlarmId = std::uint64_t;
inline constexpr AlarmId kNoAlarm = 0;

class HardwareClock {
 public:
  /// Creates a clock whose value at the current simulator time is
  /// `initial`. The clock immediately draws its initial rate and begins
  /// scheduling drift changes per `model`. `event_shard` routes the
  /// clock's simulator events (drift changes, alarms) to the owning
  /// processor's pool partition when sharding is configured — pass
  /// Simulator::shard_of(owner); 0 is always valid.
  HardwareClock(sim::Simulator& sim, std::shared_ptr<const DriftModel> model,
                Rng rng, HwTime initial = HwTime::zero(),
                std::uint32_t event_shard = 0);

  ~HardwareClock();
  HardwareClock(const HardwareClock&) = delete;
  HardwareClock& operator=(const HardwareClock&) = delete;

  /// Current hardware time H_p(now). Monotone, smooth, unresettable.
  [[nodiscard]] HwTime read() const;

  /// Current instantaneous rate dH/dtau (in [1/(1+rho), 1+rho]).
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double rho() const { return model_->rho(); }

  /// Sets an alarm firing when the hardware clock has advanced by `dh`
  /// (> 0) from its current reading. One-shot.
  AlarmId set_alarm_after(Duration dh, std::function<void()> fn);

  /// Cancels a pending alarm; false if it already fired or is unknown.
  bool cancel_alarm(AlarmId id);

  /// Number of alarms currently pending (for tests).
  [[nodiscard]] std::size_t pending_alarms() const { return alarms_.size(); }

  /// Remaining hardware time until each pending alarm fires, in
  /// creation order. Together with read(), rate() and the logical
  /// adjustment this pins down the clock stack's entire future-relevant
  /// state; the model checker hashes it to deduplicate barrier states.
  [[nodiscard]] std::vector<Duration> pending_alarm_offsets() const {
    std::vector<Duration> out;
    out.reserve(alarms_.size());
    const HwTime h = read();
    for (const auto& [id, a] : alarms_) out.push_back(a.target - h);
    return out;
  }

  /// Number of drift (rate) changes so far (for tests).
  [[nodiscard]] std::uint64_t rate_changes() const { return rate_changes_; }

 private:
  struct Alarm {
    HwTime target;  // fire when H reaches this value
    std::function<void()> fn;
    sim::EventId event;
  };

  /// Moves the fold point to the current simulator time.
  void fold();
  /// Real time at which H will reach `target` at the current rate.
  [[nodiscard]] SimTau eta(HwTime target) const;
  void schedule_drift_change();
  void apply_drift_change();
  void arm(AlarmId id);
  void fire(AlarmId id);

  sim::Simulator& sim_;
  std::shared_ptr<const DriftModel> model_;
  Rng rng_;

  SimTau tau0_;   // fold point, real time
  HwTime h0_;    // fold point, hardware time
  double rate_;

  std::map<AlarmId, Alarm> alarms_;
  AlarmId next_alarm_ = 1;
  sim::EventId drift_event_ = sim::kNoEvent;
  std::uint64_t rate_changes_ = 0;
  std::uint32_t event_shard_ = 0;
};

}  // namespace czsync::clk
