// Hardware-clock drift models.
//
// Equation (2) of the paper bounds the hardware clock rate two-sidedly:
//   (tau2-tau1)/(1+rho) <= H(tau2)-H(tau1) <= (tau2-tau1)*(1+rho).
// Any model whose *instantaneous* rate stays inside [1/(1+rho), 1+rho]
// satisfies it. We provide a constant-rate model (one draw per processor)
// and a bounded-random-walk "wander" model that stresses the analysis
// harder because a clock can swing between fast and slow inside one
// synchronization interval.
#pragma once

#include <memory>

#include "util/rng.h"
#include "util/time_domain.h"

namespace czsync::clk {

/// Strategy interface describing how a hardware clock's rate evolves.
/// The clock pulls an initial rate, then repeatedly asks "when does the
/// rate change next, and to what".
class DriftModel {
 public:
  virtual ~DriftModel() = default;

  /// Bound rho of Eq. 2. The model guarantees every rate it produces lies
  /// in [1/(1+rho), 1+rho].
  [[nodiscard]] double rho() const { return rho_; }
  [[nodiscard]] double min_rate() const { return 1.0 / (1.0 + rho_); }
  [[nodiscard]] double max_rate() const { return 1.0 + rho_; }

  /// Rate at time zero for a fresh clock.
  [[nodiscard]] virtual double initial_rate(Rng& rng) const = 0;

  /// Real-time span until the next rate change; Duration::infinity() means the
  /// rate never changes again.
  [[nodiscard]] virtual Duration next_change_after(Rng& rng) const = 0;

  /// The new rate, given the current one. Only called when
  /// next_change_after returned a finite duration.
  [[nodiscard]] virtual double next_rate(double current, Rng& rng) const = 0;

 protected:
  explicit DriftModel(double rho);

  /// Clamps a candidate rate into the legal band.
  [[nodiscard]] double clamp_rate(double r) const;

 private:
  double rho_;
};

/// Constant rate, drawn uniformly from the legal band (or pinned).
class ConstantDrift final : public DriftModel {
 public:
  explicit ConstantDrift(double rho);
  /// Pins every clock to exactly `rate` (must lie in the band).
  ConstantDrift(double rho, double pinned_rate);

  [[nodiscard]] double initial_rate(Rng& rng) const override;
  [[nodiscard]] Duration next_change_after(Rng& rng) const override;
  [[nodiscard]] double next_rate(double current, Rng& rng) const override;

 private:
  bool pinned_ = false;
  double pinned_rate_ = 1.0;
};

/// Bounded random walk: every ~`interval` (exponentially distributed) the
/// rate takes a Gaussian step of relative size `step_fraction * rho`,
/// reflected into the legal band.
class WanderDrift final : public DriftModel {
 public:
  WanderDrift(double rho, Duration mean_interval, double step_fraction = 0.25);

  [[nodiscard]] double initial_rate(Rng& rng) const override;
  [[nodiscard]] Duration next_change_after(Rng& rng) const override;
  [[nodiscard]] double next_rate(double current, Rng& rng) const override;

 private:
  Duration mean_interval_;
  double step_fraction_;
};

/// Diurnal/thermal cycle: the rate swings sinusoidally between the band
/// edges with the given period (quartz drift follows temperature; a
/// machine-room day cycle is the classic shape). Implemented as a
/// piecewise-constant approximation with `steps_per_cycle` segments; each
/// clock gets a random phase so the ensemble does not swing coherently.
/// NOTE: unlike the other models, a SinusoidalDrift instance tracks the
/// wave phase internally and must serve exactly ONE clock — the factory
/// below returns a fresh instance per call, and analysis::World builds
/// one per node. (Sharing one instance would interleave the phases.)
class SinusoidalDrift final : public DriftModel {
 public:
  SinusoidalDrift(double rho, Duration cycle, int steps_per_cycle = 48,
                  double amplitude_fraction = 1.0);

  [[nodiscard]] double initial_rate(Rng& rng) const override;
  [[nodiscard]] Duration next_change_after(Rng& rng) const override;
  [[nodiscard]] double next_rate(double current, Rng& rng) const override;

 private:
  [[nodiscard]] double rate_at_phase(double phase01) const;

  Duration cycle_;
  int steps_per_cycle_;
  double amplitude_fraction_;
  mutable double phase01_ = 0.0;  // per-clock wave phase, see NOTE
};

/// Convenience factories returning shared models (one model object serves
/// all clocks; per-clock randomness comes from each clock's own Rng).
[[nodiscard]] std::shared_ptr<const DriftModel> make_constant_drift(double rho);
[[nodiscard]] std::shared_ptr<const DriftModel> make_pinned_drift(double rho,
                                                                  double rate);
[[nodiscard]] std::shared_ptr<const DriftModel> make_wander_drift(
    double rho, Duration mean_interval, double step_fraction = 0.25);
[[nodiscard]] std::shared_ptr<const DriftModel> make_sinusoidal_drift(
    double rho, Duration cycle, int steps_per_cycle = 48,
    double amplitude_fraction = 1.0);

}  // namespace czsync::clk
