#include "clock/drift_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace czsync::clk {

DriftModel::DriftModel(double rho) : rho_(rho) { assert(rho >= 0.0); }

double DriftModel::clamp_rate(double r) const {
  return std::clamp(r, min_rate(), max_rate());
}

ConstantDrift::ConstantDrift(double rho) : DriftModel(rho) {}

ConstantDrift::ConstantDrift(double rho, double pinned_rate)
    : DriftModel(rho), pinned_(true), pinned_rate_(pinned_rate) {
  assert(pinned_rate >= min_rate() && pinned_rate <= max_rate());
}

double ConstantDrift::initial_rate(Rng& rng) const {
  if (pinned_) return pinned_rate_;
  return rng.uniform(min_rate(), max_rate());
}

Duration ConstantDrift::next_change_after(Rng&) const { return Duration::infinity(); }

double ConstantDrift::next_rate(double current, Rng&) const { return current; }

WanderDrift::WanderDrift(double rho, Duration mean_interval, double step_fraction)
    : DriftModel(rho),
      mean_interval_(mean_interval),
      step_fraction_(step_fraction) {
  assert(mean_interval > Duration::zero());
  assert(step_fraction > 0.0);
}

double WanderDrift::initial_rate(Rng& rng) const {
  return rng.uniform(min_rate(), max_rate());
}

Duration WanderDrift::next_change_after(Rng& rng) const {
  // Exponential with the configured mean; floor keeps event counts sane.
  const double u = std::max(rng.uniform01(), 1e-12);
  const double span = -std::log(u) * mean_interval_.sec();
  return Duration::seconds(std::max(span, mean_interval_.sec() * 0.01));
}

double WanderDrift::next_rate(double current, Rng& rng) const {
  const double step = rng.normal(0.0, step_fraction_ * rho());
  double candidate = current + step;
  // Reflect at the band edges so the walk does not stick to a boundary.
  if (candidate > max_rate()) candidate = 2.0 * max_rate() - candidate;
  if (candidate < min_rate()) candidate = 2.0 * min_rate() - candidate;
  return clamp_rate(candidate);
}

SinusoidalDrift::SinusoidalDrift(double rho, Duration cycle, int steps_per_cycle,
                                 double amplitude_fraction)
    : DriftModel(rho),
      cycle_(cycle),
      steps_per_cycle_(steps_per_cycle),
      amplitude_fraction_(amplitude_fraction) {
  assert(cycle > Duration::zero());
  assert(steps_per_cycle >= 4);
  assert(amplitude_fraction > 0.0 && amplitude_fraction <= 1.0);
}

double SinusoidalDrift::rate_at_phase(double phase01) const {
  // Swing around the band centre with the configured amplitude.
  const double mid = (min_rate() + max_rate()) / 2.0;
  const double amp = (max_rate() - min_rate()) / 2.0 * amplitude_fraction_;
  return clamp_rate(mid + amp * std::sin(2.0 * 3.14159265358979323846 * phase01));
}

double SinusoidalDrift::initial_rate(Rng& rng) const {
  phase01_ = rng.uniform01();  // random per-clock phase
  return rate_at_phase(phase01_);
}

Duration SinusoidalDrift::next_change_after(Rng&) const {
  return cycle_ / static_cast<double>(steps_per_cycle_);
}

double SinusoidalDrift::next_rate(double, Rng&) const {
  phase01_ += 1.0 / static_cast<double>(steps_per_cycle_);
  if (phase01_ >= 1.0) phase01_ -= 1.0;
  return rate_at_phase(phase01_);
}

std::shared_ptr<const DriftModel> make_constant_drift(double rho) {
  return std::make_shared<ConstantDrift>(rho);
}

std::shared_ptr<const DriftModel> make_pinned_drift(double rho, double rate) {
  return std::make_shared<ConstantDrift>(rho, rate);
}

std::shared_ptr<const DriftModel> make_wander_drift(double rho,
                                                    Duration mean_interval,
                                                    double step_fraction) {
  return std::make_shared<WanderDrift>(rho, mean_interval, step_fraction);
}

std::shared_ptr<const DriftModel> make_sinusoidal_drift(
    double rho, Duration cycle, int steps_per_cycle, double amplitude_fraction) {
  return std::make_shared<SinusoidalDrift>(rho, cycle, steps_per_cycle,
                                           amplitude_fraction);
}

}  // namespace czsync::clk
