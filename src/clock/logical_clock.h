// Logical clock C_p = H_p + adj_p (Definition 1).
//
// The only legal operations, mirroring the paper's model, are:
//   * read():         C_p(now)
//   * adjust(delta):  adj_p += delta          (used by the Sync protocol)
//   * overwrite_adjustment(): adversary-only; models the break-in that
//                     smashes adj_p to an arbitrary value.
// The hardware clock itself is unresettable.
#pragma once

#include <cstdint>

#include "clock/hardware_clock.h"
#include "util/time_domain.h"

namespace czsync::clk {

class LogicalClock {
 public:
  explicit LogicalClock(HardwareClock& hw, Duration initial_adjustment = Duration::zero())
      : hw_(hw), adj_(initial_adjustment) {}

  LogicalClock(const LogicalClock&) = delete;
  LogicalClock& operator=(const LogicalClock&) = delete;

  /// C_p(now) = H_p(now) + adj_p.
  [[nodiscard]] LogicalTime read() const {
    return LogicalTime::from_hw(hw_.read(), adj_);
  }

  /// Current adjustment variable (analysis/tests only; the protocol never
  /// inspects it).
  [[nodiscard]] Duration adjustment() const { return adj_; }

  /// The underlying hardware clock (for alarms).
  [[nodiscard]] HardwareClock& hardware() { return hw_; }
  [[nodiscard]] const HardwareClock& hardware() const { return hw_; }

  /// adj_p += delta. The per-call magnitude is the "discontinuity" of
  /// Definition 3(ii); callers can query last_adjustment() to audit it.
  void adjust(Duration delta) {
    adj_ += delta;
    last_delta_ = delta;
    ++adjust_count_;
  }

  /// Adversary action: sets adj_p so that C_p(now) == value.
  void adversary_set_clock(LogicalTime value) {
    adj_ = value.minus_hw(hw_.read());
    ++smash_count_;
  }

  /// Adversary action: directly overwrites adj_p.
  void adversary_set_adjustment(Duration adj) {
    adj_ = adj;
    ++smash_count_;
  }

  [[nodiscard]] Duration last_adjustment() const { return last_delta_; }
  [[nodiscard]] std::uint64_t adjust_count() const { return adjust_count_; }
  [[nodiscard]] std::uint64_t smash_count() const { return smash_count_; }

 private:
  HardwareClock& hw_;
  Duration adj_;
  Duration last_delta_ = Duration::zero();
  std::uint64_t adjust_count_ = 0;
  std::uint64_t smash_count_ = 0;
};

}  // namespace czsync::clk
