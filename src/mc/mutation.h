// The mutation self-test's broken convergence function.
//
// Figure 1's Byzantine robustness hinges on one line: m and M are the
// (f+1)-st order statistics, so f liars can never all survive the trim.
// This mutant flips that line to the f-th order statistic (trim depth
// f-1) — a classic off-by-one that type-checks, passes fault-free runs
// and even tolerates f-1 liars, but lets the f-th liar's value through
// as m or M and drag a correct clock outside the honest hull.
//
// czsync_mc --mutation-selftest swaps this in for the real function and
// asserts the checker produces a Lemma-7 containment counterexample,
// proving the harness would catch exactly this class of regression.
#pragma once

#include "core/convergence.h"

namespace czsync::mc {

class MutatedBhhnConvergence final : public core::ConvergenceFunction {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "bhhn-mutant-trim";
  }

  [[nodiscard]] core::ConvergenceResult apply(
      std::span<const core::PeerEstimate> estimates, int f, Duration way_off,
      core::ConvergenceScratch* scratch = nullptr) const override {
    const int mutated_f = f > 0 ? f - 1 : 0;
    return inner_.apply(estimates, mutated_f, way_off, scratch);
  }

 private:
  core::BhhnConvergence inner_;
};

}  // namespace czsync::mc
