// Message delays as explicit model-checker choices.
//
// The §2.2 contract only bounds delays to (0, delta]; for k >= 2 the
// checker discretizes that interval into the k-point grid delta*(i+1)/k
// and asks the ChoiceTrail which point each message takes. The model
// never draws from the network's RNG (sample() ignores it), so swapping
// it in is RNG-sequence-neutral: the rest of the world behaves
// bit-identically to a FixedDelay run with the same choices.
//
// The endpoint delta is deliberately part of the k >= 2 grid: a reply
// whose hops both take the full delta arrives exactly when the
// responder's 2*delta round timeout fires, and with a rate-1.0 hardware
// clock the (earlier-armed) alarm wins the FIFO tie — the grid's
// deepest point explores the legal all-timeouts degenerate round.
//
// k = 1 degenerates to the deterministic midpoint delta/2 — following
// the same one-point-grid-means-midpoint convention as the bias and
// rate grids, so single-delay runs exercise completed rounds rather
// than the timeout race above. It is reported via constant_delay(),
// letting the network skip the per-message virtual call (and keeping
// the choice vector free of arity-1 noise).
#pragma once

#include "mc/choice.h"
#include "net/delay_model.h"

namespace czsync::mc {

class EnumeratedDelay final : public net::DelayModel {
 public:
  EnumeratedDelay(Duration bound, int k, ChoiceTrail* trail)
      : net::DelayModel(bound), k_(k < 1 ? 1 : k), trail_(trail) {}

  [[nodiscard]] Duration sample(Rng& /*rng*/, net::ProcId /*from*/,
                           net::ProcId /*to*/) const override {
    const int i = trail_->choose(k_);
    return grid_point(i);
  }

  [[nodiscard]] std::optional<Duration> constant_delay() const override {
    if (k_ == 1) return grid_point(0);
    return std::nullopt;
  }

  [[nodiscard]] int points() const { return k_; }
  [[nodiscard]] Duration grid_point(int i) const {
    if (k_ == 1) return bound() * 0.5;
    return bound() * (static_cast<double>(i + 1) / static_cast<double>(k_));
  }

 private:
  int k_;
  ChoiceTrail* trail_;  // not owned; outlives the network
};

}  // namespace czsync::mc
