#include "mc/world.h"

#include <bit>
#include <stdexcept>

#include "adversary/strategies.h"
#include "clock/drift_model.h"
#include "core/round_protocol.h"
#include "mc/enumerated_delay.h"
#include "net/topology.h"

namespace czsync::mc {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

double grid_value(int idx, int k, double lo, double hi) {
  if (k <= 1) return (lo + hi) / 2.0;
  return lo + (hi - lo) * (static_cast<double>(idx) / (k - 1));
}

}  // namespace

McWorld::McWorld(const McOptions& opt, const std::vector<AdvCase>& cases,
                 ChoiceTrail& trail)
    : opt_(opt),
      model_(opt.model()),
      proto_(core::ProtocolParams::derive(model_, opt.sync_int)),
      bounds_(core::TheoremBounds::compute(model_, proto_)) {
  if (cases.empty()) throw std::invalid_argument("McWorld: no adversary cases");
  case_idx_ = static_cast<std::size_t>(
      trail.choose(static_cast<int>(cases.size())));
  case_ = &cases[case_idx_];

  Rng master(opt_.seed);
  network_ = std::make_unique<net::Network>(
      sim_, net::Topology::full_mesh(opt_.n),
      std::make_unique<EnumeratedDelay>(model_.delta, opt_.delay_choices,
                                        &trail),
      master.fork("net"));

  convergence_ = opt_.convergence
                     ? opt_.convergence
                     : std::make_shared<const core::BhhnConvergence>();

  analysis::EngineKind engine = analysis::EngineKind::NoRounds;
  if (opt_.protocol == "round") {
    engine = analysis::EngineKind::Rounds;
  } else if (opt_.protocol != "sync") {
    throw std::invalid_argument("McWorld: unknown protocol " + opt_.protocol);
  }

  const int bias_k = opt_.bias_choices < 1 ? 1 : opt_.bias_choices;
  const int rate_k = opt_.rate_choices < 1 ? 1 : opt_.rate_choices;
  const double spread = opt_.initial_spread.sec();
  nodes_.reserve(static_cast<std::size_t>(opt_.n));
  for (int p = 0; p < opt_.n; ++p) {
    const int bi = bias_k > 1 ? trail.choose(bias_k) : 0;
    const Duration bias =
        Duration::seconds(grid_value(bi, bias_k, -spread / 2.0, spread / 2.0));
    const int ri = rate_k > 1 ? trail.choose(rate_k) : 0;
    const double rate = rate_k > 1
                            ? grid_value(ri, rate_k, 1.0 / (1.0 + model_.rho),
                                         1.0 + model_.rho)
                            : 1.0;
    core::SyncConfig cfg;
    cfg.params = proto_;
    cfg.f = model_.f;
    cfg.convergence = convergence_;
    cfg.random_phase = false;  // phase 0: rounds align into barrier batches
    nodes_.push_back(std::make_unique<analysis::Node>(
        sim_, *network_, clk::make_pinned_drift(model_.rho, rate), cfg, p,
        master.fork(1000 + p), bias, engine));
  }

  if (!case_->schedule.empty()) {
    adversary::WorldSpy spy;
    spy.n = opt_.n;
    spy.f = model_.f;
    spy.way_off = proto_.way_off;
    spy.read_clock = [this](net::ProcId q) {
      return nodes_[static_cast<std::size_t>(q)]->logical().read();
    };
    adversary_ = std::make_unique<adversary::Adversary>(
        sim_, case_->schedule,
        adversary::make_strategy(case_->strategy, case_->scale), std::move(spy),
        master.fork("adversary"));
    std::vector<adversary::ControlledProcess*> procs;
    procs.reserve(nodes_.size());
    for (auto& node : nodes_) {
      node->set_adversary(adversary_.get());
      procs.push_back(node.get());
    }
    adversary_->attach(std::move(procs));
  }
}

void McWorld::start() {
  for (auto& node : nodes_) node->start();
}

double McWorld::bias(int p) const {
  return nodes_[static_cast<std::size_t>(p)]->bias().sec();
}

bool McWorld::round_active(int p) const {
  return nodes_[static_cast<std::size_t>(p)]->sync().round_active();
}

std::uint64_t McWorld::in_flight() const {
  const net::NetworkStats& s = network_->stats();
  return s.sent - s.delivered - s.dropped_no_edge - s.dropped_no_handler -
         s.dropped_link_fault;
}

bool McWorld::at_barrier() const {
  if (in_flight() != 0) return false;
  for (const auto& node : nodes_) {
    if (node->sync().round_active()) return false;
  }
  return true;
}

std::uint64_t McWorld::state_hash() const {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(case_idx_));
  mix(h, sim_.now().raw());  // time: hash folds the raw tau bits
  double bias_min = bias(0);
  for (int p = 1; p < opt_.n; ++p) {
    if (bias(p) < bias_min) bias_min = bias(p);
  }
  for (int p = 0; p < opt_.n; ++p) {
    analysis::Node& node = *nodes_[static_cast<std::size_t>(p)];
    // Clock translation is a symmetry of the protocol (it only ever
    // compares clocks), so hash biases relative to the minimum.
    mix(h, bias(p) - bias_min);
    mix(h, node.hardware().rate());
    const core::ProtocolEngine& eng = node.sync();
    mix(h, static_cast<std::uint64_t>(eng.suspended() ? 1 : 0));
    // rounds_started pins the engine RNG's draw count (one nonce per
    // ping, all drawn at round open); rounds_completed feeds the
    // contraction reference the monitor derives from barrier states.
    mix(h, eng.stats().rounds_started);
    mix(h, eng.stats().rounds_completed);
    if (const auto* rounds = dynamic_cast<const core::RoundSyncProcess*>(&eng)) {
      mix(h, rounds->round());
    }
    for (Duration off : node.hardware().pending_alarm_offsets()) {
      mix(h, off.sec());
    }
    mix(h, std::uint64_t{0x5eed});  // per-processor separator
  }
  return h;
}

}  // namespace czsync::mc
