// Configuration of one bounded model-checking problem.
//
// The checker explores a finite tree of choices: one adversary case
// (who is broken into, when, with what behaviour and magnitude), one
// initial-bias and drift-rate grid point per processor, and one delay
// grid point per message. McOptions fixes the grids; everything else in
// a run is deterministic, so (McOptions, choice vector) identifies an
// execution exactly — which is what makes counterexamples replayable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/schedule.h"
#include "core/convergence.h"
#include "core/params.h"
#include "util/time_domain.h"

namespace czsync::mc {

/// One enumerated adversary alternative: a Definition-2 schedule plus
/// the strategy executed while in control. Index 0 of the enumeration
/// is always the fault-free case (empty schedule).
struct AdvCase {
  adversary::Schedule schedule;  ///< empty = fault-free
  std::string strategy = "silent";
  Duration scale = Duration::zero();
  std::string label = "fault-free";
};

struct McOptions {
  int n = 3;
  /// Trim depth / fault budget; -1 = ModelParams::max_f(n).
  int f = -1;
  double rho = 1e-4;
  Duration delta = Duration::millis(50);        ///< delivery bound delta
  Duration delta_period = Duration::hours(1);   ///< Definition-2 period Delta
  Duration sync_int = Duration::minutes(1);
  Duration horizon = Duration::seconds(45);     ///< explored real-time window
  Duration initial_spread = Duration::millis(20);

  /// Grid sizes. delay_choices discretizes (0, delta] per message;
  /// bias_choices spans [-spread/2, +spread/2] per processor;
  /// rate_choices spans the legal drift band [1/(1+rho), 1+rho].
  int delay_choices = 2;
  int bias_choices = 2;
  int rate_choices = 1;

  std::string protocol = "sync";  ///< "sync" or "round"

  enum class AdversaryMode { None, Silent, Smash, Lie };
  AdversaryMode adversary = AdversaryMode::None;
  /// Break-in instants: horizon * j / adv_start_choices (j = 0 puts the
  /// break-in before the first round). Recovery instants: leave after
  /// (horizon - start) * (l+1) / (adv_dwell_choices+1), always strictly
  /// inside the horizon so every explored schedule exercises recovery.
  int adv_start_choices = 2;
  int adv_dwell_choices = 2;
  /// Strategy magnitudes as multiples of WayOff (smash offsets / lie
  /// offsets). The defaults bracket the WayOff boundary from both sides
  /// — the branch the proof machinery hinges on.
  std::vector<double> adv_scales = {0.9, 1.1};

  /// Override the convergence function (nullptr = the paper's Figure 1).
  /// The mutation self-test injects MutatedBhhnConvergence here.
  std::shared_ptr<const core::ConvergenceFunction> convergence;

  /// Hard cap on explored paths; exceeding it aborts the run as
  /// incomplete (exit 2 in the CLI) rather than reporting a hollow pass.
  std::uint64_t max_paths = 20'000'000;

  /// Master seed for the world's RNG streams. No modelled behaviour
  /// draws from them (delays and structure come from the choice trail),
  /// so this only names the streams; it is part of the replay identity.
  std::uint64_t seed = 1;

  [[nodiscard]] int resolved_f() const {
    return f >= 0 ? f : core::ModelParams::max_f(n);
  }

  [[nodiscard]] core::ModelParams model() const {
    core::ModelParams m;
    m.n = n;
    m.f = resolved_f();
    m.rho = rho;
    m.delta = delta;
    m.delta_period = delta_period;
    return m;
  }
};

}  // namespace czsync::mc
