// McWorld: one deterministic execution of the real protocol stack,
// parameterized entirely by a ChoiceTrail.
//
// This is the third backend behind trace::TracePort (after czsync_cli's
// World and the sweep engine): the *same* SyncProcess/RoundSyncProcess
// code runs unmodified on the same Simulator/Network/clock stack; what
// differs is where nondeterminism comes from. Structural choices (the
// adversary case, each processor's initial bias and pinned drift rate)
// are consumed from the trail at construction; per-message delays are
// consumed during the run through EnumeratedDelay. Nothing else draws
// randomness that affects behaviour (random_phase is off, drift is
// pinned, the delay model never touches the network RNG), so the run
// is a deterministic function of (McOptions, choice vector).
//
// Barrier states and canonicalization: a state with no in-flight
// messages and no in-flight round is fully described by the simulator
// time, the adversary case, and per-processor (bias, rate, pending
// alarm offsets, suspension flag, round counters). The protocol only
// ever compares clocks, so translating every clock by a constant is a
// symmetry; state_hash() canonicalizes by hashing biases relative to
// their minimum, which lets the checker merge translated states.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/node.h"
#include "core/params.h"
#include "mc/choice.h"
#include "mc/options.h"
#include "mc/schedule_enum.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace czsync::mc {

class McWorld {
 public:
  /// Consumes the structural choices (case index, biases, rates) from
  /// `trail`; delay choices follow during the run. `cases` must be
  /// non-empty and outlive the world.
  McWorld(const McOptions& opt, const std::vector<AdvCase>& cases,
          ChoiceTrail& trail);

  /// Arms every node's protocol. Call once, then drive sim().step().
  void start();

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] int n() const { return opt_.n; }
  [[nodiscard]] int f() const { return opt_.resolved_f(); }
  [[nodiscard]] const core::ProtocolParams& proto() const { return proto_; }
  [[nodiscard]] const core::TheoremBounds& bounds() const { return bounds_; }
  [[nodiscard]] const AdvCase& adv_case() const { return *case_; }
  [[nodiscard]] std::size_t case_index() const { return case_idx_; }
  [[nodiscard]] analysis::Node& node(int p) {
    return *nodes_[static_cast<std::size_t>(p)];
  }

  /// Bias B_p(now) in seconds (Eq. 4).
  [[nodiscard]] double bias(int p) const;
  [[nodiscard]] bool round_active(int p) const;
  [[nodiscard]] std::uint64_t in_flight() const;
  /// Quiescent between round batches: nothing in flight anywhere.
  [[nodiscard]] bool at_barrier() const;
  /// Canonical FNV-1a hash of the barrier state (see file comment).
  [[nodiscard]] std::uint64_t state_hash() const;

 private:
  McOptions opt_;
  core::ModelParams model_;
  core::ProtocolParams proto_;
  core::TheoremBounds bounds_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::shared_ptr<const core::ConvergenceFunction> convergence_;
  std::vector<std::unique_ptr<analysis::Node>> nodes_;
  std::unique_ptr<adversary::Adversary> adversary_;
  const AdvCase* case_ = nullptr;
  std::size_t case_idx_ = 0;
};

}  // namespace czsync::mc
