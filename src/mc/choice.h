// The choice trail: the model checker's nondeterminism oracle.
//
// Execution-based bounded model checking (in the CHESS style) re-runs a
// fully deterministic simulation once per *choice vector*: every source
// of nondeterminism in the modelled world — which delay grid point a
// message takes, which adversary case is in force, which initial bias a
// clock starts from — asks the trail via choose(arity) instead of an
// RNG. During a run the trail replays its recorded prefix and extends
// fresh positions with choice 0; advance() then bumps the deepest
// non-exhausted choice and truncates everything after it, so repeated
// run/advance cycles enumerate the whole choice tree in DFS order
// without ever storing simulator states.
//
// A recorded choice vector doubles as a counterexample: replaying it
// through a fixed() trail reproduces the violating execution exactly.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace czsync::mc {

struct Choice {
  int chosen = 0;
  int arity = 1;

  bool operator==(const Choice&) const = default;
};

class ChoiceTrail {
 public:
  ChoiceTrail() = default;

  /// Replay mode: consume exactly `choices`; any run that asks for more
  /// (or different arities) throws — the execution being replayed was
  /// not deterministic, which is itself a bug.
  [[nodiscard]] static ChoiceTrail fixed(std::vector<Choice> choices) {
    ChoiceTrail t;
    t.choices_ = std::move(choices);
    t.fixed_ = true;
    return t;
  }

  /// The next nondeterministic choice in [0, arity). Replays the
  /// recorded decision when one exists, otherwise records and returns
  /// the first branch (0).
  int choose(int arity) {
    if (arity <= 0) throw std::logic_error("ChoiceTrail: arity must be >= 1");
    if (cursor_ < choices_.size()) {
      const Choice& c = choices_[cursor_++];
      if (c.arity != arity) {
        throw std::logic_error(
            "ChoiceTrail: arity mismatch on replay — execution is not a "
            "deterministic function of the choice vector");
      }
      return c.chosen;
    }
    if (fixed_) {
      throw std::logic_error(
          "ChoiceTrail: replay ran past the recorded choice vector");
    }
    choices_.push_back(Choice{0, arity});
    ++cursor_;
    return 0;
  }

  /// Moves to the next path in DFS order: pops exhausted tail choices,
  /// bumps the deepest live one, and rewinds the cursor. Returns false
  /// when the whole tree has been enumerated.
  bool advance() {
    while (!choices_.empty() &&
           choices_.back().chosen + 1 >= choices_.back().arity) {
      choices_.pop_back();
    }
    if (choices_.empty()) return false;
    ++choices_.back().chosen;
    cursor_ = 0;
    return true;
  }

  /// Rewinds the replay cursor without touching the recorded choices
  /// (used before re-executing the same path, e.g. for trace capture).
  void rewind() { cursor_ = 0; }

  /// Choices consumed by the current run so far.
  [[nodiscard]] std::size_t depth() const { return cursor_; }
  [[nodiscard]] const std::vector<Choice>& choices() const { return choices_; }

 private:
  std::vector<Choice> choices_;
  std::size_t cursor_ = 0;
  bool fixed_ = false;
};

}  // namespace czsync::mc
