// Enumeration of the bounded adversary-case space.
//
// Produces every (victim, break-in instant, recovery instant, strategy
// magnitude) combination allowed by McOptions, each validated against
// the Definition-2 budget, with the fault-free case always first. The
// checker treats the case index as choice #0 of every path.
#pragma once

#include <vector>

#include "core/params.h"
#include "mc/options.h"

namespace czsync::mc {

[[nodiscard]] std::vector<AdvCase> enumerate_adversary_cases(
    const McOptions& opt, const core::ProtocolParams& proto);

}  // namespace czsync::mc
