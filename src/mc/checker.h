// The bounded model checker's DFS driver.
//
// Stateless-search architecture (the CHESS recipe): the checker never
// snapshots a simulator; it re-executes a fresh McWorld per path under
// a ChoiceTrail and lets ChoiceTrail::advance() walk the choice tree
// in DFS order. On top of that it layers *stateful* pruning: at every
// barrier (quiescent) state it hashes the canonical world state, and a
// previously-seen hash proves the entire continuation subtree was
// already enumerated from the first visit — DFS finishes a subtree
// before the prefix that led to it changes — so the path is cut there.
//
// A violation terminates the search and is returned with the recorded
// choice vector; capture() re-executes that vector with a full
// TraceSink attached, turning the counterexample into a czsync-trace-v1
// stream. Two captures of the same vector must serialize byte-
// identically — the differential-replay contract the CLI enforces.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "mc/choice.h"
#include "mc/invariants.h"
#include "mc/options.h"
#include "mc/schedule_enum.h"
#include "trace/format.h"
#include "trace/sink.h"

namespace czsync::mc {

struct McStats {
  std::uint64_t paths = 0;        ///< executions (complete or pruned)
  std::uint64_t transitions = 0;  ///< simulator events executed
  std::uint64_t states = 0;       ///< distinct canonical barrier states
  std::uint64_t dedup_hits = 0;   ///< subtrees pruned at a seen state
  std::uint64_t rounds_completed = 0;  ///< across all paths and processors
  std::uint64_t way_off_rounds = 0;    ///< escape-branch rounds observed
  std::uint64_t responses_ok = 0;      ///< ping replies accepted
  std::uint64_t timeouts = 0;          ///< peer estimates that timed out
  std::size_t max_depth = 0;           ///< longest choice vector
  bool budget_exhausted = false;       ///< max_paths hit: NOT exhaustive
};

struct Counterexample {
  std::vector<Choice> choices;
  Violation violation;
};

struct McResult {
  McStats stats;
  std::optional<Counterexample> counterexample;
};

class Checker {
 public:
  explicit Checker(McOptions opt);

  [[nodiscard]] const McOptions& options() const { return opt_; }
  [[nodiscard]] const std::vector<AdvCase>& cases() const { return cases_; }
  [[nodiscard]] const core::ProtocolParams& proto() const { return proto_; }

  /// Exhaustively explores the bounded space (or up to max_paths).
  /// Stops at the first invariant violation.
  McResult run();

  /// Replays one recorded choice vector with a full-stream TraceSink
  /// attached and returns the captured trace. Deterministic: calling it
  /// twice must yield byte-identical serializations.
  [[nodiscard]] trace::TraceData capture(const std::vector<Choice>& choices);

 private:
  struct RunOutcome {
    std::optional<Violation> violation;
    bool pruned = false;
  };

  RunOutcome run_one(ChoiceTrail& trail, trace::TraceSink* sink,
                     bool allow_prune, McStats* stats);

  McOptions opt_;
  core::ProtocolParams proto_;
  std::vector<AdvCase> cases_;

  // Sound state caching for re-execution DFS: a barrier state's
  // continuation subtree is fully explored only once advance() changes
  // the choice prefix that led to it. Until then the state sits on the
  // pending stack (ordered by choice depth — barriers within a run are
  // visited at increasing depth); replaying a shared prefix revisits
  // pending states without pruning. promote() moves entries whose
  // prefix just changed into seen_, the only set pruning consults.
  struct PendingState {
    std::uint64_t hash = 0;
    std::size_t depth = 0;  ///< choices consumed when first reached
  };
  void promote(std::size_t live_prefix);

  std::unordered_set<std::uint64_t> seen_;
  std::vector<PendingState> pending_;
  std::unordered_set<std::uint64_t> pending_hashes_;
  McStats stats_;
};

}  // namespace czsync::mc
