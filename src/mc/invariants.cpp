#include "mc/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "trace/record.h"
#include "trace/sink.h"

namespace czsync::mc {

namespace {

// Strict floating-point comparisons would flag exact-equality corners
// (e.g. a zero-width hull with exact estimates); a femtosecond of
// absolute slack is far below every modelled time scale.
constexpr double kTiny = 1e-12;

std::string describe(const char* fmt, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::Envelope:
      return "envelope";
    case Violation::Kind::Containment:
      return "containment";
    case Violation::Kind::Contraction:
      return "contraction";
  }
  return "?";
}

InvariantMonitor::InvariantMonitor(McWorld& world, const McOptions& opt)
    : w_(world),
      eps_(core::reading_error_bound(opt.rho, opt.delta)),
      envelope_(world.bounds().max_deviation),
      check_containment_(opt.protocol == "sync"),
      delta_period_(opt.delta_period),
      rho_(opt.rho),
      open_(static_cast<std::size_t>(world.n())) {}

bool InvariantMonitor::controlled_within(int p, SimTau t1, SimTau t2) const {
  return w_.adv_case().schedule.controlled_within(p, t1, t2);
}

bool InvariantMonitor::stable(int p, SimTau t) const {
  // The paper's guarantee covers processors non-faulty for a full
  // Delta-period; same classification as analysis::Observer.
  return !controlled_within(p, t - delta_period_, t);
}

void InvariantMonitor::note_round_open(int p) {
  OpenRound& o = open_[static_cast<std::size_t>(p)];
  o.open = true;
  o.t = w_.sim().now();
  o.biases.resize(static_cast<std::size_t>(w_.n()));
  for (int q = 0; q < w_.n(); ++q) {
    o.biases[static_cast<std::size_t>(q)] = w_.bias(q);
  }
}

void InvariantMonitor::on_round_complete(int p) {
  if (pending_ || !check_containment_) return;
  OpenRound& o = open_[static_cast<std::size_t>(p)];
  if (!o.open) return;  // e.g. completed before the poll ever saw it open
  o.open = false;
  const SimTau now = w_.sim().now();
  // The trim argument needs p correct for the whole round and at most f
  // faulty participants; outside that precondition Lemma 7 says nothing.
  if (controlled_within(p, o.t, now)) return;
  int faulty = 0;
  double hull_lo = 0.0, hull_hi = 0.0;
  bool first = true;
  for (int q = 0; q < w_.n(); ++q) {
    if (controlled_within(q, o.t, now)) {
      ++faulty;
      continue;
    }
    const double at_open = o.biases[static_cast<std::size_t>(q)];
    // A peer's value as read mid-round lies between its open and close
    // samples (one adjustment at most per batch, drift in the slack).
    // p's own close sample is excluded: it is the post-adjustment value
    // under test, and counting it would make the hull inescapable.
    const double at_close = q == p ? at_open : w_.bias(q);
    const double lo = std::min(at_open, at_close);
    const double hi = std::max(at_open, at_close);
    hull_lo = first ? lo : std::min(hull_lo, lo);
    hull_hi = first ? hi : std::max(hull_hi, hi);
    first = false;
  }
  if (faulty > w_.f()) return;
  // WayOff branch: adjustment (m+M)/2 with both statistics within the
  // honest hull +- 2*eps of estimation error; normal branch is tighter.
  // In-round drift moves the sampled hull by at most 2*rho*duration.
  const double slack =
      2.0 * eps_.sec() + 2.0 * rho_ * (now - o.t).sec() + kTiny;
  const double b = w_.bias(p);
  if (b < hull_lo - slack || b > hull_hi + slack) {
    Violation v;
    v.kind = Violation::Kind::Containment;
    v.t = now.raw();  // time: violation reports carry raw tau
    v.proc = p;
    v.observed = b;
    v.bound = b < hull_lo - slack ? hull_lo - slack : hull_hi + slack;
    v.detail = describe("new bias outside correct hull [%g, %g] + slack",
                        hull_lo, hull_hi);
    pending_ = v;
  }
}

void InvariantMonitor::after_event() {
  if (pending_) return;
  const SimTau now = w_.sim().now();
  for (int p = 0; p < w_.n(); ++p) {
    if (!stable(p, now)) continue;
    for (int q = p + 1; q < w_.n(); ++q) {
      if (!stable(q, now)) continue;
      const double dev = std::abs(w_.bias(p) - w_.bias(q));
      if (dev > envelope_.sec() + kTiny) {
        Violation v;
        v.kind = Violation::Kind::Envelope;
        v.t = now.raw();  // time: violation reports carry raw tau
        v.proc = p;
        v.observed = dev;
        v.bound = envelope_.sec();
        v.detail = describe("stable pair deviates %g > gamma = %g", dev,
                            envelope_.sec());
        pending_ = v;
        return;
      }
    }
  }
}

void InvariantMonitor::at_barrier() {
  const SimTau now = w_.sim().now();

  // Trace hook: one InvariantSample per barrier so captured
  // counterexamples carry the checker's own observations.
  if (trace::TraceSink* ts = w_.sim().trace_sink()) {
    int stable_count = 0;
    double max_dev = 0.0;
    for (int p = 0; p < w_.n(); ++p) {
      if (!stable(p, now)) continue;
      ++stable_count;
      for (int q = p + 1; q < w_.n(); ++q) {
        if (!stable(q, now)) continue;
        max_dev = std::max(max_dev, std::abs(w_.bias(p) - w_.bias(q)));
      }
    }
    ts->record(trace::invariant_sample(now,
                                       static_cast<std::uint64_t>(stable_count),
                                       stable_count > 0, Duration(max_dev)));
  }

  if (pending_) return;

  double lo = w_.bias(0), hi = w_.bias(0);
  for (int p = 1; p < w_.n(); ++p) {
    lo = std::min(lo, w_.bias(p));
    hi = std::max(hi, w_.bias(p));
  }
  const double width = hi - lo;

  if (have_ref_) {
    bool eligible = true;
    for (int p = 0; p < w_.n() && eligible; ++p) {
      if (w_.node(p).sync().stats().rounds_completed <=
          ref_rounds_[static_cast<std::size_t>(p)]) {
        eligible = false;  // someone did not synchronize since the ref
      }
      if (controlled_within(p, ref_t_, now) || !stable(p, now)) {
        eligible = false;
      }
    }
    if (eligible) {
      const double bound = ref_width_ / 2.0 + 4.0 * eps_.sec() +
                           2.0 * rho_ * (now - ref_t_).sec() + kTiny;
      if (width > bound) {
        Violation v;
        v.kind = Violation::Kind::Contraction;
        v.t = now.raw();  // time: violation reports carry raw tau
        v.observed = width;
        v.bound = bound;
        v.detail = describe("width %g exceeds half the previous barrier's "
                            "%g plus slack",
                            width, ref_width_);
        pending_ = v;
        return;
      }
    }
  }

  have_ref_ = true;
  ref_t_ = now;
  ref_width_ = width;
  ref_rounds_.resize(static_cast<std::size_t>(w_.n()));
  for (int p = 0; p < w_.n(); ++p) {
    ref_rounds_[static_cast<std::size_t>(p)] =
        w_.node(p).sync().stats().rounds_completed;
  }
}

}  // namespace czsync::mc
