#include "mc/checker.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "mc/world.h"

namespace czsync::mc {

Checker::Checker(McOptions opt)
    : opt_(std::move(opt)),
      proto_(core::ProtocolParams::derive(opt_.model(), opt_.sync_int)),
      cases_(enumerate_adversary_cases(opt_, proto_)) {}

Checker::RunOutcome Checker::run_one(ChoiceTrail& trail,
                                     trace::TraceSink* sink, bool allow_prune,
                                     McStats* stats) {
  McWorld world(opt_, cases_, trail);
  if (sink != nullptr) world.sim().set_trace_sink(sink);
  InvariantMonitor mon(world, opt_);

  // Containment fires from inside finish_round, after the adjustment
  // was applied — exactly the instant Lemma 7 talks about.
  for (int p = 0; p < world.n(); ++p) {
    world.node(p).sync().on_sync_complete =
        [&mon, p](const core::ConvergenceResult&) { mon.on_round_complete(p); };
  }

  world.start();

  RunOutcome out;
  const int n = world.n();
  std::vector<bool> was_active(static_cast<std::size_t>(n), false);

  // The pre-start state (alarms armed, nothing in flight) is itself a
  // barrier: hashing it merges translation-equivalent initial-bias
  // combinations before a single delay choice is spent on them.
  auto barrier = [&]() -> bool {
    mon.at_barrier();
    if (mon.pending()) return false;
    if (!allow_prune) return false;
    const std::uint64_t h = world.state_hash();
    if (seen_.count(h) != 0) {
      if (stats != nullptr) ++stats->dedup_hits;
      return true;  // continuation subtree already fully explored
    }
    // A pending hit is the current prefix revisiting its own earlier
    // barrier (deterministic replay passes through the same states):
    // its subtree is still being explored, so neither prune nor
    // re-record it.
    if (pending_hashes_.insert(h).second) {
      pending_.push_back(PendingState{h, trail.depth()});
      if (stats != nullptr) ++stats->states;
    }
    return false;
  };

  const SimTau limit = SimTau::zero() + opt_.horizon;
  bool pruned = world.at_barrier() && barrier();

  while (!pruned && !mon.pending()) {
    if (!world.sim().step(limit)) break;
    if (stats != nullptr) ++stats->transitions;
    // Poll for round openings. The opening event (an alarm firing
    // begin_round) sends pings but never moves a clock, so sampling the
    // biases right after it equals sampling at the open instant.
    for (int p = 0; p < n; ++p) {
      const bool active = world.round_active(p);
      if (active && !was_active[static_cast<std::size_t>(p)]) {
        mon.note_round_open(p);
      }
      was_active[static_cast<std::size_t>(p)] = active;
    }
    mon.after_event();
    if (mon.pending()) break;
    if (world.at_barrier()) pruned = barrier();
  }

  if (stats != nullptr) {
    for (int p = 0; p < n; ++p) {
      const core::SyncStats& s = world.node(p).sync().stats();
      stats->rounds_completed += s.rounds_completed;
      stats->way_off_rounds += s.way_off_rounds;
      stats->responses_ok += s.responses_ok;
      stats->timeouts += s.timeouts;
    }
  }
  out.violation = mon.pending();
  out.pruned = pruned;
  return out;
}

void Checker::promote(std::size_t live_prefix) {
  // A pending state reached after consuming k choices is defined by the
  // k-prefix that led to it; once only `live_prefix` leading choices
  // remain unchanged, every state with k > live_prefix has had its full
  // continuation subtree enumerated and becomes prunable.
  while (!pending_.empty() && pending_.back().depth > live_prefix) {
    seen_.insert(pending_.back().hash);
    pending_hashes_.erase(pending_.back().hash);
    pending_.pop_back();
  }
}

McResult Checker::run() {
  seen_.clear();
  pending_.clear();
  pending_hashes_.clear();
  stats_ = McStats{};
  McResult result;
  ChoiceTrail trail;
  while (true) {
    if (stats_.paths >= opt_.max_paths) {
      stats_.budget_exhausted = true;
      break;
    }
    const RunOutcome out = run_one(trail, nullptr, /*allow_prune=*/true,
                                   &stats_);
    ++stats_.paths;
    if (trail.depth() > stats_.max_depth) stats_.max_depth = trail.depth();
    if (out.violation) {
      // Keep exactly the choices this run consumed (a violation can
      // fire before a replayed prefix is exhausted): the minimal
      // vector that reproduces the execution.
      std::vector<Choice> vec(
          trail.choices().begin(),
          trail.choices().begin() + static_cast<std::ptrdiff_t>(trail.depth()));
      result.counterexample = Counterexample{std::move(vec), *out.violation};
      break;
    }
    if (!trail.advance()) break;
    // The bumped choice sits at index depth-1, so exactly depth-1
    // leading choices survived; complete every deeper barrier state.
    promote(trail.choices().size() - 1);
  }
  result.stats = stats_;
  return result;
}

trace::TraceData Checker::capture(const std::vector<Choice>& choices) {
  ChoiceTrail trail = ChoiceTrail::fixed(choices);
  trace::TraceSink sink;  // full-stream: counterexamples keep everything
  (void)run_one(trail, &sink, /*allow_prune=*/false, /*stats=*/nullptr);
  trace::TraceData data;
  data.truncated = sink.truncated();
  data.dropped = sink.dropped();
  data.records = sink.snapshot();
  return data;
}

}  // namespace czsync::mc
