// The properties each explored path is checked against.
//
// Three invariants, each a mechanized reading of the paper:
//
//  * Envelope (Theorem 5 i): any two processors that were non-faulty
//    throughout the trailing Delta-window deviate by at most gamma =
//    TheoremBounds::max_deviation. Checked after every event — biases
//    are piecewise linear between events, so endpoints cover the
//    continuous-time claim.
//
//  * Containment (Lemma 7's hull step): when a processor completes a
//    Sync, its new bias lies inside the hull of the biases (sampled at
//    round open and close) of the processors correct throughout that
//    round, widened by the reading error and in-round drift. With at
//    most f liars the (f+1)-st order statistics cannot escape the
//    honest hull (tests/model_check_test.cpp proves the algebra); the
//    trim-depth mutant of mc/mutation.h violates exactly this.
//    Only meaningful for the no-rounds engine (a RoundSyncProcess JOIN
//    deliberately jumps by a different rule), so it is enabled for
//    protocol == "sync".
//
//  * Contraction (Lemma 7's halving step): between consecutive barrier
//    states in which every processor completed a round and nobody was
//    controlled, the bias width halves up to estimation-error and
//    drift slack.
//
// The monitor's cross-event state (round-open snapshots, the previous
// barrier reference) is a pure function of the current barrier state,
// which is what keeps hash-based subtree pruning sound: two paths that
// reach the same canonical barrier state also agree on every future
// invariant verdict.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mc/options.h"
#include "mc/world.h"

namespace czsync::mc {

struct Violation {
  enum class Kind { Envelope, Containment, Contraction };
  Kind kind = Kind::Envelope;
  double t = 0.0;       ///< simulator real time of the check
  int proc = -1;        ///< offending processor (-1 for pairwise/global)
  double observed = 0.0;
  double bound = 0.0;
  std::string detail;
};

[[nodiscard]] const char* violation_kind_name(Violation::Kind kind);

class InvariantMonitor {
 public:
  InvariantMonitor(McWorld& world, const McOptions& opt);

  /// Processor p's engine just opened a round (poll-detected).
  void note_round_open(int p);
  /// Processor p's engine completed a Sync (on_sync_complete hook,
  /// fired after the clock adjustment). Runs the containment check.
  void on_round_complete(int p);
  /// Envelope check; call after every executed event.
  void after_event();
  /// Contraction check against the previous barrier, then re-anchor
  /// the reference to this barrier. Also emits an InvariantSample
  /// record when a trace sink is attached.
  void at_barrier();

  /// First violation found on this path, if any. Once set, the checker
  /// stops the path; later checks are skipped.
  [[nodiscard]] const std::optional<Violation>& pending() const {
    return pending_;
  }

 private:
  [[nodiscard]] bool stable(int p, SimTau t) const;
  [[nodiscard]] bool controlled_within(int p, SimTau t1, SimTau t2) const;

  McWorld& w_;
  Duration eps_;
  Duration envelope_;
  bool check_containment_;
  Duration delta_period_;
  double rho_;

  struct OpenRound {
    bool open = false;
    SimTau t;
    std::vector<double> biases;  ///< all processors' biases at open
  };
  std::vector<OpenRound> open_;

  bool have_ref_ = false;
  SimTau ref_t_;
  double ref_width_ = 0.0;
  std::vector<std::uint64_t> ref_rounds_;

  std::optional<Violation> pending_;
};

}  // namespace czsync::mc
