#include "mc/schedule_enum.h"

#include <cstdio>

namespace czsync::mc {

namespace {

const char* strategy_name(McOptions::AdversaryMode mode) {
  switch (mode) {
    case McOptions::AdversaryMode::None:
      return "";
    case McOptions::AdversaryMode::Silent:
      return "silent";
    case McOptions::AdversaryMode::Smash:
      return "clock-smash";
    case McOptions::AdversaryMode::Lie:
      return "constant-lie";
  }
  return "";
}

}  // namespace

std::vector<AdvCase> enumerate_adversary_cases(
    const McOptions& opt, const core::ProtocolParams& proto) {
  std::vector<AdvCase> cases;
  cases.push_back(AdvCase{});  // index 0: fault-free
  if (opt.adversary == McOptions::AdversaryMode::None || opt.resolved_f() < 1) {
    return cases;
  }
  const char* strat = strategy_name(opt.adversary);
  // Silent faults have no magnitude; collapse the scale grid to one
  // point so the enumeration does not multiply identical cases.
  std::vector<double> scales = opt.adv_scales;
  if (opt.adversary == McOptions::AdversaryMode::Silent || scales.empty()) {
    scales = {0.0};
  }
  const int starts = opt.adv_start_choices < 1 ? 1 : opt.adv_start_choices;
  const int dwells = opt.adv_dwell_choices < 1 ? 1 : opt.adv_dwell_choices;
  for (int victim = 0; victim < opt.n; ++victim) {
    for (int j = 0; j < starts; ++j) {
      const SimTau start =
          SimTau::zero() + opt.horizon * (static_cast<double>(j) / starts);
      for (int l = 0; l < dwells; ++l) {
        // Leave strictly inside the horizon: every schedule exercises a
        // recovery, and the enumeration over l is the enumeration of
        // recovery timings the tentpole calls for.
        const Duration dwell = (opt.horizon - (start - SimTau::zero())) *
                          (static_cast<double>(l + 1) / (dwells + 1));
        for (double s : scales) {
          AdvCase c;
          c.schedule = adversary::Schedule::single(victim, start, start + dwell);
          if (!c.schedule.is_f_limited(opt.resolved_f(), opt.delta_period)) {
            continue;
          }
          c.strategy = strat;
          c.scale = proto.way_off * s;
          char label[96];
          std::snprintf(label, sizeof(label), "%s p%d @%.3fs..%.3fs %+.2fxWayOff",
                        strat, victim, start.raw(),  // time: label text
                        (start + dwell).raw(), s);
          c.label = label;
          cases.push_back(std::move(c));
        }
      }
    }
  }
  return cases;
}

}  // namespace czsync::mc
