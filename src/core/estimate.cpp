#include "core/estimate.h"

#include <cassert>

namespace czsync::core {

Estimate estimate_from_ping(LogicalTime send_local, LogicalTime responder_clock,
                            LogicalTime recv_local) {
  assert(recv_local >= send_local);
  // Midpoint of the local send/receive instants; if the path were
  // symmetric, the responder's clock was read exactly then.
  const Duration half_rtt = (recv_local - send_local) / 2.0;
  const LogicalTime midpoint = send_local + half_rtt;
  return Estimate{responder_clock - midpoint, half_rtt};
}

Estimate best_of(const std::initializer_list<Estimate>& tries) {
  Estimate best = Estimate::timeout();
  for (const auto& e : tries) {
    if (e.a < best.a) best = e;
  }
  return best;
}

}  // namespace czsync::core
