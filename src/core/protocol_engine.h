// Common interface of clock-synchronization protocol engines.
//
// Two engines implement it: SyncProcess (the paper's no-rounds protocol,
// §3.2) and RoundSyncProcess (a round-based comparator in the style the
// paper argues against in §3.3). The analysis layer drives either
// uniformly: arm with start(), kill/revive with suspend()/resume() on
// break-in/leave, and feed inbound messages.
#pragma once

#include <cstdint>
#include <functional>

#include "core/convergence.h"
#include "net/message.h"
#include "util/metrics.h"
#include "util/time_domain.h"

namespace czsync::core {

struct SyncStats {
  std::uint64_t rounds_started = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t way_off_rounds = 0;  ///< rounds that took the escape branch
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_stale = 0;
  std::uint64_t timeouts = 0;        ///< peer estimates that timed out
  Duration max_abs_adjustment = Duration::zero();
  Duration last_adjustment = Duration::zero();
  // Round-protocol extras (zero for the no-rounds engine):
  std::uint64_t round_mismatch_discards = 0;  ///< replies from other rounds
  std::uint64_t joins = 0;                    ///< round re-acquisitions
  // Broadcast-engine extra: accepted bundles that yanked the clock far
  // backwards — successful signature replays against recovered state.
  std::uint64_t replays_accepted = 0;

  /// Snapshot into `scope`. Counters accumulate (add) and the adjustment
  /// gauges take the maximum, so exporting every node's stats into the
  /// same scope yields ensemble totals/worst-cases.
  void export_metrics(util::MetricRegistry::Scope scope) const;
};

class ProtocolEngine {
 public:
  virtual ~ProtocolEngine() = default;

  /// Arms the first alarm. Call once after handlers are wired.
  virtual void start() = 0;
  /// Break-in: kills all protocol activity and in-flight state.
  virtual void suspend() = 0;
  /// Recovery: the daemon restarts from whatever state survived.
  virtual void resume() = 0;
  /// Inbound protocol messages.
  virtual void handle_message(const net::Message& msg) = 0;

  [[nodiscard]] virtual bool suspended() const = 0;
  [[nodiscard]] virtual const SyncStats& stats() const = 0;

  /// Whether a synchronization round is currently in flight. Engines
  /// without an in-flight round notion (e.g. the broadcast comparator)
  /// report false. The model checker uses this to detect quiescent
  /// "barrier" states between round batches.
  [[nodiscard]] virtual bool round_active() const { return false; }

  /// Metrics hook, invoked after every completed synchronization with
  /// the result that was applied to the clock.
  std::function<void(const ConvergenceResult&)> on_sync_complete;
};

}  // namespace czsync::core
