// Rate discipline — the §5 "future directions" extension.
//
// The paper notes that practical protocols like NTP add "feedback to
// estimate and compensate for clock drift", and asks for such
// improvements "while making sure to retain security". This module adds
// exactly that, on top of the unmodified Sync protocol:
//
//   * after every completed Sync, the discipline observes the applied
//     adjustment and the local time since the previous Sync, giving a
//     noisy sample of the processor's rate error relative to the
//     (trimmed, hence Byzantine-robust) ensemble;
//   * an exponentially-weighted average of those samples estimates the
//     frequency error; the estimate is clamped to [-rho_max, +rho_max]
//     so a poisoned history can never push the clock faster than the
//     model's own drift bound permits;
//   * between Syncs the discipline slews: every SlewInt of local time it
//     applies a micro-adjustment `rate_estimate * SlewInt`, cancelling
//     the predictable part of the drift before the next Sync measures it.
//
// Security argument (why this retains the paper's guarantees): the only
// input is the output of the convergence function, which is already
// f-Byzantine-robust; the compensation magnitude is capped by rho_max,
// so even a maximally-poisoned estimate behaves like a legal hardware
// clock with doubled drift — the Theorem 5 analysis then applies with
// rho' = 2 rho. The ablation bench (E13) measures both the benefit and
// this worst case.
#pragma once

#include <cstdint>

#include "clock/logical_clock.h"
#include "util/time_domain.h"

namespace czsync::core {

struct DisciplineConfig {
  /// EWMA gain per Sync sample (0 < gain <= 1); NTP uses slow loops,
  /// we default to 1/8.
  double gain = 0.125;
  /// Clamp on the compensated rate magnitude. Defaults to the model rho
  /// (set by the caller); compensation can never exceed it.
  double max_rate = 1e-4;
  /// Local time between slew micro-adjustments.
  Duration slew_interval = Duration::seconds(5);
  /// Samples to skip before compensating (the first adjustments reflect
  /// initial offset, not rate).
  int warmup_samples = 3;
};

/// Frequency-error estimator + slewer for one processor. The owner wires
/// observe() to SyncProcess::on_sync_complete and drives slewing with a
/// hardware alarm (see analysis::Node); the class itself is pure logic
/// plus the clock handle, so it is unit-testable without a simulator.
class RateDiscipline {
 public:
  RateDiscipline(clk::LogicalClock& clock, DisciplineConfig config);

  /// Feeds one completed Sync: `adjustment` as applied to the clock.
  /// Internally converts to a rate sample using the local time elapsed
  /// since the previous call.
  void observe(Duration adjustment);

  /// Applies one slew tick: adjusts the clock by rate() * elapsed local
  /// time since the last tick (or since the last observe, whichever is
  /// later). Call every slew_interval of local time.
  void slew();

  /// Current frequency-error estimate (positive = our clock runs slow,
  /// so we slew forward). Clamped to [-max_rate, +max_rate].
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] Duration total_slewed() const { return total_slewed_; }

  /// Break-in handling: the adversary may have poisoned the estimator's
  /// state; recovery resets it (the estimate re-learns within a few
  /// Syncs). Called from the node's resume path.
  void reset();

  [[nodiscard]] const DisciplineConfig& config() const { return config_; }

 private:
  clk::LogicalClock& clock_;
  DisciplineConfig config_;
  double rate_ = 0.0;
  std::uint64_t samples_ = 0;
  bool has_last_observe_ = false;
  LogicalTime last_observe_;
  LogicalTime last_slew_;
  Duration total_slewed_ = Duration::zero();
};

}  // namespace czsync::core
