#include "core/protocol_engine.h"

namespace czsync::core {

void SyncStats::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.add("rounds_started", rounds_started);
  scope.add("rounds_completed", rounds_completed);
  scope.add("way_off_rounds", way_off_rounds);
  scope.add("responses_ok", responses_ok);
  scope.add("responses_stale", responses_stale);
  scope.add("timeouts", timeouts);
  scope.add("round_mismatch_discards", round_mismatch_discards);
  scope.add("joins", joins);
  scope.add("replays_accepted", replays_accepted);
  scope.maximize("max_abs_adjustment_ms", max_abs_adjustment.ms());
}

}  // namespace czsync::core
