#include "core/convergence.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <vector>

namespace czsync::core {

Dur select_low(std::span<const PeerEstimate> estimates, int f) {
  assert(static_cast<int>(estimates.size()) > f);
  std::vector<Dur> overs;
  overs.reserve(estimates.size());
  for (const auto& e : estimates) overs.push_back(e.over);
  auto nth = overs.begin() + f;
  std::nth_element(overs.begin(), nth, overs.end());
  return *nth;
}

Dur select_high(std::span<const PeerEstimate> estimates, int f) {
  assert(static_cast<int>(estimates.size()) > f);
  std::vector<Dur> unders;
  unders.reserve(estimates.size());
  for (const auto& e : estimates) unders.push_back(e.under);
  auto nth = unders.begin() + f;
  std::nth_element(unders.begin(), nth, unders.end(), std::greater<Dur>());
  return *nth;
}

namespace {

/// With at most f liars and at most f timeouts among >= 3f+1 entries both
/// order statistics are finite; outside the model's budget (breakdown
/// experiments) they may be infinite — then no information is usable and
/// the processor keeps its clock.
bool usable(Dur m, Dur big_m) { return m.is_finite() && big_m.is_finite(); }

}  // namespace

ConvergenceResult BhhnConvergence::apply(std::span<const PeerEstimate> estimates,
                                         int f, Dur way_off) const {
  const Dur m = select_low(estimates, f);
  const Dur big_m = select_high(estimates, f);
  if (!usable(m, big_m)) return ConvergenceResult{};
  ConvergenceResult r;
  // Figure 1, step 10: with at most f liars and at most f timeouts among
  // >= 3f+1 entries, both m and M are finite; defensive clamp regardless.
  if (m >= -way_off && big_m <= way_off) {
    r.adjustment = (std::min(m, Dur::zero()) + std::max(big_m, Dur::zero())) / 2.0;
    r.way_off_branch = false;
  } else {
    r.adjustment = (m + big_m) / 2.0;
    r.way_off_branch = true;
  }
  return r;
}

ConvergenceResult MidpointConvergence::apply(
    std::span<const PeerEstimate> estimates, int f, Dur /*way_off*/) const {
  const Dur m = select_low(estimates, f);
  const Dur big_m = select_high(estimates, f);
  if (!usable(m, big_m)) return ConvergenceResult{};
  return ConvergenceResult{(m + big_m) / 2.0, true};
}

CappedCorrectionConvergence::CappedCorrectionConvergence(Dur cap) : cap_(cap) {
  assert(cap > Dur::zero());
}

ConvergenceResult CappedCorrectionConvergence::apply(
    std::span<const PeerEstimate> estimates, int f, Dur /*way_off*/) const {
  const Dur m = select_low(estimates, f);
  const Dur big_m = select_high(estimates, f);
  if (!usable(m, big_m)) return ConvergenceResult{};
  const Dur raw =
      (std::min(m, Dur::zero()) + std::max(big_m, Dur::zero())) / 2.0;
  return ConvergenceResult{std::clamp(raw, -cap_, cap_), false};
}

ConvergenceResult NullConvergence::apply(std::span<const PeerEstimate>, int,
                                         Dur) const {
  return ConvergenceResult{};
}

std::shared_ptr<const ConvergenceFunction> make_convergence(
    std::string_view name, Dur cap) {
  if (name == "bhhn") return std::make_shared<BhhnConvergence>();
  if (name == "midpoint") return std::make_shared<MidpointConvergence>();
  if (name == "capped-correction")
    return std::make_shared<CappedCorrectionConvergence>(cap);
  if (name == "none") return std::make_shared<NullConvergence>();
  throw std::invalid_argument("unknown convergence function: " +
                              std::string(name));
}

}  // namespace czsync::core
