#include "core/convergence.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace czsync::core {

namespace {

/// (f+1)-st smallest overestimate, via an nth_element pass over a flat
/// double buffer (the SoA form of Figure 1 step 8). `buf` is reused
/// capacity; contents are overwritten.
double nth_over(std::span<const PeerEstimate> estimates, int f,
                std::vector<double>& buf) {
  assert(static_cast<int>(estimates.size()) > f);
  buf.clear();
  buf.reserve(estimates.size());
  for (const auto& e : estimates) buf.push_back(e.over.sec());
  auto nth = buf.begin() + f;
  std::nth_element(buf.begin(), nth, buf.end());
  return *nth;
}

/// (f+1)-st largest underestimate (Figure 1 step 9), same flat pass.
double nth_under(std::span<const PeerEstimate> estimates, int f,
                 std::vector<double>& buf) {
  assert(static_cast<int>(estimates.size()) > f);
  buf.clear();
  buf.reserve(estimates.size());
  for (const auto& e : estimates) buf.push_back(e.under.sec());
  auto nth = buf.begin() + f;
  std::nth_element(buf.begin(), nth, buf.end(), std::greater<double>());
  return *nth;
}

/// Both order statistics through the caller's scratch (or a throwaway
/// local when none was provided — identical bits either way).
struct Selected {
  Duration m;
  Duration big_m;
};

Selected select(std::span<const PeerEstimate> estimates, int f,
                ConvergenceScratch* scratch) {
  ConvergenceScratch local;
  ConvergenceScratch& s = scratch != nullptr ? *scratch : local;
  return Selected{Duration::seconds(nth_over(estimates, f, s.overs)),
                  Duration::seconds(nth_under(estimates, f, s.unders))};
}

/// With at most f liars and at most f timeouts among >= 3f+1 entries both
/// order statistics are finite; outside the model's budget (breakdown
/// experiments) they may be infinite — then no information is usable and
/// the processor keeps its clock.
bool usable(Duration m, Duration big_m) { return m.is_finite() && big_m.is_finite(); }

}  // namespace

Duration select_low(std::span<const PeerEstimate> estimates, int f) {
  std::vector<double> buf;
  return Duration::seconds(nth_over(estimates, f, buf));
}

Duration select_high(std::span<const PeerEstimate> estimates, int f) {
  std::vector<double> buf;
  return Duration::seconds(nth_under(estimates, f, buf));
}

ConvergenceResult BhhnConvergence::apply(std::span<const PeerEstimate> estimates,
                                         int f, Duration way_off,
                                         ConvergenceScratch* scratch) const {
  const auto [m, big_m] = select(estimates, f, scratch);
  if (!usable(m, big_m)) return ConvergenceResult{};
  ConvergenceResult r;
  // Figure 1, step 10: with at most f liars and at most f timeouts among
  // >= 3f+1 entries, both m and M are finite; defensive clamp regardless.
  if (m >= -way_off && big_m <= way_off) {
    r.adjustment = (std::min(m, Duration::zero()) + std::max(big_m, Duration::zero())) / 2.0;
    r.way_off_branch = false;
  } else {
    r.adjustment = (m + big_m) / 2.0;
    r.way_off_branch = true;
  }
  return r;
}

ConvergenceResult MidpointConvergence::apply(
    std::span<const PeerEstimate> estimates, int f, Duration /*way_off*/,
    ConvergenceScratch* scratch) const {
  const auto [m, big_m] = select(estimates, f, scratch);
  if (!usable(m, big_m)) return ConvergenceResult{};
  return ConvergenceResult{(m + big_m) / 2.0, true};
}

CappedCorrectionConvergence::CappedCorrectionConvergence(Duration cap) : cap_(cap) {
  assert(cap > Duration::zero());
}

ConvergenceResult CappedCorrectionConvergence::apply(
    std::span<const PeerEstimate> estimates, int f, Duration /*way_off*/,
    ConvergenceScratch* scratch) const {
  const auto [m, big_m] = select(estimates, f, scratch);
  if (!usable(m, big_m)) return ConvergenceResult{};
  const Duration raw =
      (std::min(m, Duration::zero()) + std::max(big_m, Duration::zero())) / 2.0;
  return ConvergenceResult{std::clamp(raw, -cap_, cap_), false};
}

ConvergenceResult NullConvergence::apply(std::span<const PeerEstimate>, int,
                                         Duration, ConvergenceScratch*) const {
  return ConvergenceResult{};
}

std::shared_ptr<const ConvergenceFunction> make_convergence(
    std::string_view name, Duration cap) {
  if (name == "bhhn") return std::make_shared<BhhnConvergence>();
  if (name == "midpoint") return std::make_shared<MidpointConvergence>();
  if (name == "capped-correction")
    return std::make_shared<CappedCorrectionConvergence>(cap);
  if (name == "none") return std::make_shared<NullConvergence>();
  throw std::invalid_argument("unknown convergence function: " +
                              std::string(name));
}

}  // namespace czsync::core
