#include "core/wire.h"

#include <cstring>
#include <stdexcept>

#include "trace/wire.h"

namespace czsync::core {

namespace {

using trace::wire::Reader;
using trace::wire::put_f64;
using trace::wire::put_varint;

constexpr char kMagic[4] = {'C', 'Z', 'U', '1'};

// A legitimate StRoundMsg carries at most one signature per processor;
// anything past a generous multiple of the largest supported cluster is
// a malicious length prefix trying to make us allocate.
constexpr std::uint64_t kMaxSignatures = 1u << 20;

void put_id(std::vector<unsigned char>& out, net::ProcId id) {
  if (id < 0) {
    throw std::invalid_argument("encode_message: negative processor id");
  }
  put_varint(out, static_cast<std::uint64_t>(id));
}

void put_clock(std::vector<unsigned char>& out, LogicalTime c) {
  // time: CZU1 wire format carries clock readings as bit-exact f64
  put_f64(out, c.raw());
}

struct BodyEncoder {
  std::vector<unsigned char>& out;

  void operator()(const net::PingReq& b) const { put_varint(out, b.nonce); }
  void operator()(const net::PingResp& b) const {
    put_varint(out, b.nonce);
    put_clock(out, b.responder_clock);
  }
  void operator()(const net::RoundPingReq& b) const {
    put_varint(out, b.nonce);
    put_varint(out, b.round);
  }
  void operator()(const net::RoundPingResp& b) const {
    put_varint(out, b.nonce);
    put_varint(out, b.round);
    put_clock(out, b.responder_clock);
  }
  void operator()(const net::StRoundMsg& b) const {
    put_varint(out, b.round);
    put_varint(out, b.sigs.size());
    for (const auto& sig : b.sigs) {
      put_id(out, sig.signer);
      put_varint(out, sig.mac);
    }
  }
  void operator()(const net::RefreshAnnounce& b) const {
    put_varint(out, b.epoch);
    put_varint(out, b.share_digest);
  }
  void operator()(const net::TimestampReq& b) const {
    put_varint(out, b.nonce);
  }
  void operator()(const net::TimestampResp& b) const {
    put_varint(out, b.nonce);
    put_clock(out, b.stamp);
  }
};

/// Reads a ProcId in [0, n); flags the reader on failure.
net::ProcId get_id(Reader& r, int n, bool& ok) {
  const std::uint64_t v = r.varint();
  if (!r.ok() || v >= static_cast<std::uint64_t>(n)) {
    ok = false;
    return -1;
  }
  return static_cast<net::ProcId>(v);
}

bool decode_body(Reader& r, std::uint64_t kind, int n, net::Body& body) {
  bool ok = true;
  switch (kind) {
    case 0: {  // PingReq
      net::PingReq b;
      b.nonce = r.varint();
      body = b;
      break;
    }
    case 1: {  // PingResp
      net::PingResp b;
      b.nonce = r.varint();
      b.responder_clock = LogicalTime(r.f64());
      body = b;
      break;
    }
    case 2: {  // RoundPingReq
      net::RoundPingReq b;
      b.nonce = r.varint();
      b.round = r.varint();
      body = b;
      break;
    }
    case 3: {  // RoundPingResp
      net::RoundPingResp b;
      b.nonce = r.varint();
      b.round = r.varint();
      b.responder_clock = LogicalTime(r.f64());
      body = b;
      break;
    }
    case 4: {  // StRoundMsg
      net::StRoundMsg b;
      b.round = r.varint();
      const std::uint64_t count = r.varint();
      if (!r.ok() || count > kMaxSignatures) return false;
      b.sigs.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        net::Signature sig;
        sig.signer = get_id(r, n, ok);
        sig.mac = r.varint();
        if (!ok || !r.ok()) return false;
        b.sigs.push_back(sig);
      }
      body = std::move(b);
      break;
    }
    case 5: {  // RefreshAnnounce
      net::RefreshAnnounce b;
      b.epoch = r.varint();
      b.share_digest = r.varint();
      body = b;
      break;
    }
    case 6: {  // TimestampReq
      net::TimestampReq b;
      b.nonce = r.varint();
      body = b;
      break;
    }
    case 7: {  // TimestampResp
      net::TimestampResp b;
      b.nonce = r.varint();
      b.stamp = LogicalTime(r.f64());
      body = b;
      break;
    }
    default:
      return false;
  }
  static_assert(net::kBodyAlternatives == 8,
                "keep decode_body in sync with the Body variant");
  return ok && r.ok();
}

}  // namespace

void encode_message(std::vector<unsigned char>& out, const net::Message& m) {
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_id(out, m.from);
  put_id(out, m.to);
  put_varint(out, m.body.index());
  std::visit(BodyEncoder{out}, m.body);
}

std::optional<net::Message> decode_message(const unsigned char* data,
                                           std::size_t size, int n) {
  if (n <= 0 || size < sizeof kMagic ||
      std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }
  Reader r(data + sizeof kMagic, size - sizeof kMagic);
  bool ok = true;
  net::Message m;
  m.from = get_id(r, n, ok);
  m.to = get_id(r, n, ok);
  if (!ok || m.from == m.to) return std::nullopt;
  const std::uint64_t kind = r.varint();
  if (!r.ok()) return std::nullopt;
  if (!decode_body(r, kind, n, m.body)) return std::nullopt;
  if (!r.done()) return std::nullopt;  // trailing bytes: not ours
  return m;
}

}  // namespace czsync::core
