// Explicit wire format for protocol messages.
//
// Inside the simulator a net::Message travels by value, host-endian and
// all; a real transport needs defined bytes. The encoding reuses the
// czsync-trace-v1 primitives (LEB128 varints, bit-exact little-endian
// IEEE-754 doubles — see trace/wire.h), so a clock value survives the
// round trip to the last ulp on any host, including ±inf, denormals and
// NaN payloads.
//
// Datagram layout:
//
//   magic   "CZU1"                          (4 bytes)
//   varint  from                            (sender ProcId)
//   varint  to                              (destination ProcId)
//   varint  body kind                       (Body variant index)
//   ...     body fields in declaration order; integers as varints,
//           LogicalTime as a bit-exact f64, vectors as varint length +
//           elements
//
// decode_message() is written for hostile input: every failure mode —
// short buffer, bad magic, unknown kind, out-of-range ids, oversized
// signature vector, trailing bytes — returns nullopt instead of
// touching the variant. The transport authenticates `from` by the
// source address before the message reaches a handler (§2.2's
// authenticated-links assumption lives in rt::UdpPort, not here).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.h"

namespace czsync::core {

/// Serializes `m` into `out` (appending). Throws std::invalid_argument
/// on a negative from/to id — local messages are trusted, but a negative
/// id means an upstream bug, same contract as the trace encoder.
void encode_message(std::vector<unsigned char>& out, const net::Message& m);

/// Parses one datagram. `n` is the cluster size; from/to must lie in
/// [0, n) and differ (the network never delivers self-sends). Returns
/// nullopt on any malformed input.
[[nodiscard]] std::optional<net::Message> decode_message(
    const unsigned char* data, std::size_t size, int n);

}  // namespace czsync::core
