#include "core/sync_protocol.h"

#include <algorithm>
#include <cassert>

#include "trace/record.h"
#include "util/logging.h"

namespace czsync::core {

SyncProcess::SyncProcess(trace::TracePort trace, net::Network& network,
                         clk::LogicalClock& clock, net::ProcId id,
                         SyncConfig config, Rng rng)
    : trace_(trace),
      network_(network),
      clock_(clock),
      id_(id),
      config_(std::move(config)),
      rng_(rng) {
  assert(config_.convergence != nullptr);
  assert(config_.f >= 0);
  const auto nb = network.topology().neighbors(id);
  peers_.assign(nb.begin(), nb.end());
  const auto k = static_cast<std::size_t>(std::max(config_.pings_per_peer, 1));
  round_nonces_.assign(peers_.size() * k, 0);
  nonce_live_.assign(peers_.size() * k, 0);
  collected_.assign(peers_.size(), Estimate{});
  reply_count_.assign(peers_.size(), 0);
  estimates_.reserve(peers_.size() + 1);
  if (config_.debug_bucket_reserve > 0) {
    cache_nonce_to_peer_.reserve(config_.debug_bucket_reserve);
    cache_sent_at_.reserve(config_.debug_bucket_reserve);
    cache_.reserve(config_.debug_bucket_reserve);
  }
}

void SyncProcess::clear_round_state() {
  std::fill(nonce_live_.begin(), nonce_live_.end(), std::uint8_t{0});
  std::fill(reply_count_.begin(), reply_count_.end(), 0);
}

void SyncProcess::start() {
  assert(!started_);
  started_ = true;
  Duration phase = Duration::zero();
  if (config_.random_phase) {
    phase = Duration::seconds(rng_.uniform(0.0, config_.params.sync_int.sec()));
  }
  arm_next(phase);
  if (config_.cached_estimation) cache_tick();
}

void SyncProcess::cache_tick() {
  // Background estimation thread (§3.1 caveat): ping all peers, remember
  // when; replies refresh the cache asynchronously. The burst goes out
  // as one batched fanout train.
  auto fo = network_.fanout(id_);
  for (net::ProcId q : peers_) {
    const std::uint64_t nonce = rng_();
    cache_nonce_to_peer_.emplace(nonce, q);
    cache_sent_at_[q] = CacheSentAt{clock_.read(), clock_.hardware().read()};
    fo.add(q, net::PingReq{nonce});
  }
  fo.commit();
  cache_alarm_ =
      clock_.hardware().set_alarm_after(config_.cache_refresh, [this] {
        cache_alarm_ = clk::kNoAlarm;
        cache_tick();
      });
}

void SyncProcess::arm_next(Duration in_local_time) {
  sync_alarm_ = clock_.hardware().set_alarm_after(in_local_time, [this] {
    sync_alarm_ = clk::kNoAlarm;
    begin_round();
  });
}

void SyncProcess::suspend() {
  suspended_ = true;
  if (sync_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(sync_alarm_);
    sync_alarm_ = clk::kNoAlarm;
  }
  if (timeout_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(timeout_alarm_);
    timeout_alarm_ = clk::kNoAlarm;
  }
  if (cache_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(cache_alarm_);
    cache_alarm_ = clk::kNoAlarm;
  }
  round_active_ = false;
  clear_round_state();
  cache_nonce_to_peer_.clear();
  cache_sent_at_.clear();
  cache_.clear();
  pending_ = 0;
}

void SyncProcess::resume() {
  assert(suspended_);
  suspended_ = false;
  // The recovery daemon starts a fresh Sync at once — the analysis only
  // needs "at least one full Sync per interval of length T" to begin
  // counting down the recovery envelope. (The cache restarts empty: its
  // first few syncs see only timeouts, an extra recovery penalty of the
  // cached design.)
  arm_next(Duration::zero());
  if (config_.cached_estimation) cache_tick();
}

void SyncProcess::begin_round() {
  assert(!suspended_);
  assert(!round_active_);
  round_active_ = true;
  ++stats_.rounds_started;
  if (trace::TraceSink* ts = trace_.sink()) {
    ts->record(trace::round_open(trace_.now(), id_, stats_.rounds_started));
  }
  if (config_.cached_estimation) {
    // The §3.1 caveat variant: no fresh pings — consume whatever the
    // background thread has cached.
    finish_from_cache();
    return;
  }
  clear_round_state();
  round_send_time_ = clock_.read();
  round_send_hw_ = clock_.hardware().read();
  const int k = std::max(config_.pings_per_peer, 1);
  pending_ = peers_.size() * static_cast<std::size_t>(k);
  // The round's whole fanout is one batched train: per-ping nonce draws
  // and per-message delay draws happen in add() order, exactly as the
  // per-message sends drew them.
  auto fo = network_.fanout(id_);
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    const net::ProcId q = peers_[slot];
    for (int i = 0; i < k; ++i) {
      const std::uint64_t nonce = rng_();
      const std::size_t at = slot * static_cast<std::size_t>(k) +
                             static_cast<std::size_t>(i);
      round_nonces_[at] = nonce;
      nonce_live_[at] = 1;
      fo.add(q, net::PingReq{nonce});
    }
  }
  fo.commit();
  if (pending_ == 0) {
    finish_round();
    return;
  }
  timeout_alarm_ =
      clock_.hardware().set_alarm_after(config_.params.max_wait, [this] {
        timeout_alarm_ = clk::kNoAlarm;
        finish_round();
      });
}

void SyncProcess::handle_message(const net::Message& msg) {
  if (const auto* req = std::get_if<net::PingReq>(&msg.body)) {
    // §3.3 "no rounds": always answer with the current clock value.
    network_.send(id_, msg.from, net::PingResp{req->nonce, clock_.read()});
    return;
  }
  if (const auto* resp = std::get_if<net::PingResp>(&msg.body)) {
    // Background-cache replies are recognized by their own nonce space.
    if (auto cit = cache_nonce_to_peer_.find(resp->nonce);
        cit != cache_nonce_to_peer_.end()) {
      const net::ProcId peer = cit->second;
      cache_nonce_to_peer_.erase(cit);
      if (msg.from != peer) {
        ++stats_.responses_stale;
        return;
      }
      const LogicalTime now = clock_.read();
      auto sent = cache_sent_at_.find(peer);
      if (sent == cache_sent_at_.end()) return;
      // RTT on the (monotone) hardware clock; see round_send_hw_.
      const Duration rtt = clock_.hardware().read() - sent->second.hw;
      cache_[peer] = CacheEntry{
          estimate_from_ping(sent->second.logical, resp->responder_clock,
                             sent->second.logical + rtt),
          now};
      ++stats_.responses_ok;
      return;
    }
    if (!round_active_) {
      ++stats_.responses_stale;
      return;
    }
    // A valid reply must carry a still-live nonce that was pinged to its
    // authenticated sender; anything else (unknown, already consumed, or
    // another peer's nonce) drops as stale. Only the sender's own k
    // nonce entries need checking.
    const int slot = slot_of(msg.from);
    if (slot < 0) {
      ++stats_.responses_stale;
      return;
    }
    const auto k = static_cast<std::size_t>(std::max(config_.pings_per_peer, 1));
    const std::size_t base = static_cast<std::size_t>(slot) * k;
    std::size_t hit = base + k;
    for (std::size_t at = base; at < base + k; ++at) {
      if (nonce_live_[at] != 0 && round_nonces_[at] == resp->nonce) {
        hit = at;
        break;
      }
    }
    if (hit == base + k) {
      ++stats_.responses_stale;
      return;
    }
    nonce_live_[hit] = 0;  // each nonce is redeemable exactly once
    // RTT on the (monotone) hardware clock; the logical clock may have
    // been slewed mid-flight.
    const Duration rtt = clock_.hardware().read() - round_send_hw_;
    const Estimate e = estimate_from_ping(
        round_send_time_, resp->responder_clock, round_send_time_ + rtt);
    // Keep the best (smallest error bound) of this peer's k replies.
    auto& best = collected_[static_cast<std::size_t>(slot)];
    if (reply_count_[static_cast<std::size_t>(slot)] == 0 || e.a < best.a) {
      best = e;
    }
    ++reply_count_[static_cast<std::size_t>(slot)];
    ++stats_.responses_ok;
    assert(pending_ > 0);
    if (--pending_ == 0) finish_round();
    return;
  }
  // Other message kinds belong to other subsystems; ignore.
}

void SyncProcess::finish_from_cache() {
  assert(round_active_);
  round_active_ = false;
  estimates_.clear();
  estimates_.push_back(PeerEstimate::from(Estimate::self()));
  const LogicalTime now = clock_.read();
  for (net::ProcId q : peers_) {
    auto it = cache_.find(q);
    if (it == cache_.end() ||
        now - it->second.measured_at > config_.max_cache_age) {
      ++stats_.timeouts;
      estimates_.push_back(PeerEstimate::from(Estimate::timeout()));
    } else {
      // Deliberately NO staleness compensation: the estimate refers to
      // the clock as it was when measured; any adjustment applied since
      // (including our own last sync!) silently invalidates it. This is
      // the exact hazard §3.1 warns about.
      estimates_.push_back(PeerEstimate::from(it->second.estimate));
    }
  }
  const ConvergenceResult result = config_.convergence->apply(
      estimates_, config_.f, config_.params.way_off, &conv_scratch_);
  clock_.adjust(result.adjustment);
  ++stats_.rounds_completed;
  if (result.way_off_branch) ++stats_.way_off_rounds;
  stats_.last_adjustment = result.adjustment;
  stats_.max_abs_adjustment =
      std::max(stats_.max_abs_adjustment, result.adjustment.abs());
  if (trace::TraceSink* ts = trace_.sink()) {
    const SimTau t = trace_.now();
    ts->record(trace::adj_write(t, id_, trace::AdjKind::Sync,
                                result.adjustment,
                                clock_.adjustment()));
    std::uint32_t flags = trace::kRoundFromCache;
    if (result.way_off_branch) flags |= trace::kRoundWayOff;
    ts->record(trace::round_close(t, id_, stats_.rounds_completed, flags));
  }
  if (on_sync_complete) on_sync_complete(result);
  arm_next(config_.params.sync_int);
}

void SyncProcess::finish_round() {
  assert(round_active_);
  round_active_ = false;
  if (timeout_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(timeout_alarm_);
    timeout_alarm_ = clk::kNoAlarm;
  }

  // Build the estimate table: self first (exact), then one entry per
  // peer; peers that did not answer in time count as timeouts
  // (d=0, a=infinity), exactly as §3.1 prescribes.
  estimates_.clear();
  estimates_.push_back(PeerEstimate::from(Estimate::self()));
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    if (reply_count_[slot] == 0) {
      ++stats_.timeouts;
      estimates_.push_back(PeerEstimate::from(Estimate::timeout()));
    } else {
      estimates_.push_back(PeerEstimate::from(collected_[slot]));
    }
  }
  clear_round_state();

  const ConvergenceResult result = config_.convergence->apply(
      estimates_, config_.f, config_.params.way_off, &conv_scratch_);
  clock_.adjust(result.adjustment);

  ++stats_.rounds_completed;
  if (result.way_off_branch) ++stats_.way_off_rounds;
  stats_.last_adjustment = result.adjustment;
  stats_.max_abs_adjustment =
      std::max(stats_.max_abs_adjustment, result.adjustment.abs());
  if (trace::TraceSink* ts = trace_.sink()) {
    const SimTau t = trace_.now();
    ts->record(trace::adj_write(t, id_, trace::AdjKind::Sync,
                                result.adjustment,
                                clock_.adjustment()));
    ts->record(trace::round_close(
        t, id_, stats_.rounds_completed,
        result.way_off_branch ? trace::kRoundWayOff : 0u));
  }
  CZ_TRACE << "proc " << id_ << " sync #" << stats_.rounds_completed
           << " adj=" << result.adjustment;

  if (on_sync_complete) on_sync_complete(result);
  arm_next(config_.params.sync_int);
}

}  // namespace czsync::core
