// Clock-offset estimation — §3.1 and Definition 4.
//
// The arithmetic of the ping estimator, factored out of the protocol
// engine so it is testable in isolation:
//   p sends at local time S, q answers with its clock C, p receives at
//   local time R:   d = C - (R+S)/2,   a = (R-S)/2.
// If no reply arrives within MaxWait, (d, a) = (0, +infinity).
// Contract (Def. 4): if both ends stay non-faulty there was an instant
// tau'' during the exchange with C_q(tau'') - C_p(tau'') in [d-a, d+a].
#pragma once

#include <initializer_list>

#include "util/time_domain.h"

namespace czsync::core {

/// One peer's offset estimate. `d` is the estimated C_q - C_p; `a` the
/// error bound. A timed-out estimate has a = +infinity.
struct Estimate {
  Duration d = Duration::zero();
  Duration a = Duration::infinity();

  [[nodiscard]] bool timed_out() const { return !a.is_finite(); }
  /// Overestimate d + a (Figure 1, step 6); +infinity when timed out.
  [[nodiscard]] Duration over() const { return d + a; }
  /// Underestimate d - a (Figure 1, step 7); -infinity when timed out.
  [[nodiscard]] Duration under() const { return d - a; }

  [[nodiscard]] static Estimate timeout() { return Estimate{}; }
  /// The trivial self-estimate: a processor knows its own clock exactly.
  [[nodiscard]] static Estimate self() { return Estimate{Duration::zero(), Duration::zero()}; }
};

/// Computes the estimate from one completed ping exchange.
/// Preconditions: R >= S (a reply cannot precede its request).
[[nodiscard]] Estimate estimate_from_ping(LogicalTime send_local,
                                          LogicalTime responder_clock,
                                          LogicalTime recv_local);

/// Combines k repeated pings by keeping the one with the smallest error
/// bound (the NTP trick mentioned in §3.1: choose the estimation from the
/// ping with the least round-trip time). Empty input yields a timeout.
[[nodiscard]] Estimate best_of(const std::initializer_list<Estimate>& tries);

}  // namespace czsync::core
