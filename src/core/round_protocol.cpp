#include "core/round_protocol.h"

#include <algorithm>
#include <cassert>

#include "trace/record.h"
#include "util/logging.h"

namespace czsync::core {

RoundSyncProcess::RoundSyncProcess(trace::TracePort trace, net::Network& network,
                                   clk::LogicalClock& clock, net::ProcId id,
                                   SyncConfig config, Rng rng)
    : trace_(trace),
      network_(network),
      clock_(clock),
      id_(id),
      config_(std::move(config)),
      rng_(rng) {
  assert(config_.convergence != nullptr);
  const auto nb = network.topology().neighbors(id);
  peers_.assign(nb.begin(), nb.end());
  round_nonces_.assign(peers_.size(), 0);
  replies_.assign(peers_.size(), Reply{});
  estimates_.reserve(peers_.size() + 1);
}

void RoundSyncProcess::start() {
  assert(!started_);
  started_ = true;
  Duration phase = Duration::zero();
  if (config_.random_phase) {
    phase = Duration::seconds(rng_.uniform(0.0, config_.params.sync_int.sec()));
  }
  arm_next(phase);
}

void RoundSyncProcess::arm_next(Duration in_local_time) {
  sync_alarm_ = clock_.hardware().set_alarm_after(in_local_time, [this] {
    sync_alarm_ = clk::kNoAlarm;
    begin_round();
  });
}

void RoundSyncProcess::suspend() {
  suspended_ = true;
  if (sync_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(sync_alarm_);
    sync_alarm_ = clk::kNoAlarm;
  }
  if (timeout_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(timeout_alarm_);
    timeout_alarm_ = clk::kNoAlarm;
  }
  round_active_ = false;
  std::fill(replies_.begin(), replies_.end(), Reply{});
  pending_ = 0;
}

void RoundSyncProcess::resume() {
  assert(suspended_);
  suspended_ = false;
  // round_ is whatever survived the break-in — typically several rounds
  // stale. The first post-recovery round will detect the mismatch and
  // run the join protocol.
  arm_next(Duration::zero());
}

void RoundSyncProcess::begin_round() {
  assert(!suspended_ && !round_active_);
  round_active_ = true;
  ++stats_.rounds_started;
  if (trace::TraceSink* ts = trace_.sink()) {
    ts->record(trace::round_open(trace_.now(), id_, round_));
  }
  std::fill(replies_.begin(), replies_.end(), Reply{});
  round_send_time_ = clock_.read();
  round_send_hw_ = clock_.hardware().read();
  pending_ = peers_.size();
  // One batched fanout train for the whole round; nonce and delay draws
  // happen in add() order, matching the per-message sends draw for draw.
  auto fo = network_.fanout(id_);
  for (std::size_t slot = 0; slot < peers_.size(); ++slot) {
    const std::uint64_t nonce = rng_();
    round_nonces_[slot] = nonce;
    fo.add(peers_[slot], net::RoundPingReq{nonce, round_});
  }
  fo.commit();
  if (pending_ == 0) {
    finish_round();
    return;
  }
  timeout_alarm_ =
      clock_.hardware().set_alarm_after(config_.params.max_wait, [this] {
        timeout_alarm_ = clk::kNoAlarm;
        finish_round();
      });
}

void RoundSyncProcess::handle_message(const net::Message& msg) {
  if (const auto* req = std::get_if<net::RoundPingReq>(&msg.body)) {
    // Round-based semantics: the reply is tagged with OUR round; the
    // requester decides whether it can use it.
    network_.send(id_, msg.from,
                  net::RoundPingResp{req->nonce, round_, clock_.read()});
    return;
  }
  const auto* resp = std::get_if<net::RoundPingResp>(&msg.body);
  if (resp == nullptr) return;
  if (!round_active_) {
    ++stats_.responses_stale;
    return;
  }
  // A valid reply must carry this round's nonce for its authenticated
  // sender, at most once; anything else (unknown nonce, another peer's
  // nonce, a duplicate) drops as stale — the dense-slot equivalent of
  // the old nonce-map lookup + collected-set check.
  const int slot = slot_of(msg.from);
  if (slot < 0 || round_nonces_[static_cast<std::size_t>(slot)] != resp->nonce ||
      replies_[static_cast<std::size_t>(slot)].answered) {
    ++stats_.responses_stale;
    return;
  }
  Reply& reply = replies_[static_cast<std::size_t>(slot)];
  reply.answered = true;
  reply.round = resp->round;
  // A cross-round clock value is unusable for a round-based algorithm
  // (it refers to a different synchronization state). +-1 tolerance
  // covers the natural phase skew between unsynchronized round starts.
  const std::uint64_t lo = round_ > 0 ? round_ - 1 : 0;
  reply.mismatched = resp->round < lo || resp->round > round_ + 1;
  // RTT on the (monotone) hardware clock — the logical clock is not.
  const Duration rtt = clock_.hardware().read() - round_send_hw_;
  const Estimate fresh = estimate_from_ping(
      round_send_time_, resp->responder_clock, round_send_time_ + rtt);
  if (reply.mismatched) {
    ++stats_.round_mismatch_discards;
    reply.estimate = Estimate::timeout();
    // Keep d around for the join path even though it is discarded for
    // normal convergence.
    reply.estimate.d = fresh.d;
  } else {
    reply.estimate = fresh;
    ++stats_.responses_ok;
  }
  assert(pending_ > 0);
  if (--pending_ == 0) finish_round();
}

void RoundSyncProcess::finish_round() {
  assert(round_active_);
  round_active_ = false;
  if (timeout_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(timeout_alarm_);
    timeout_alarm_ = clk::kNoAlarm;
  }

  // Materialize timeouts in place and count mismatches — replies_ is
  // already in peer order; no per-round reply table is built.
  std::size_t mismatched = 0;
  for (Reply& r : replies_) {
    if (!r.answered) {
      ++stats_.timeouts;
      r = Reply{Estimate::timeout(), 0, false, false};
    } else if (r.mismatched) {
      ++mismatched;
    }
  }

  if (mismatched > static_cast<std::size_t>(config_.f)) {
    // Our round counter is the odd one out: rejoin.
    join(replies_);
  } else {
    estimates_.clear();
    estimates_.push_back(PeerEstimate::from(Estimate::self()));
    for (const auto& r : replies_)
      estimates_.push_back(PeerEstimate::from(r.estimate));
    const ConvergenceResult result = config_.convergence->apply(
        estimates_, config_.f, config_.params.way_off, &conv_scratch_);
    clock_.adjust(result.adjustment);
    ++stats_.rounds_completed;
    if (result.way_off_branch) ++stats_.way_off_rounds;
    stats_.last_adjustment = result.adjustment;
    stats_.max_abs_adjustment =
        std::max(stats_.max_abs_adjustment, result.adjustment.abs());
    if (trace::TraceSink* ts = trace_.sink()) {
      const SimTau t = trace_.now();
      ts->record(trace::adj_write(t, id_, trace::AdjKind::Sync,
                                  result.adjustment,
                                  clock_.adjustment()));
      ts->record(trace::round_close(
          t, id_, round_, result.way_off_branch ? trace::kRoundWayOff : 0u));
    }
    if (on_sync_complete) on_sync_complete(result);
  }

  ++round_;
  arm_next(config_.params.sync_int);
}

void RoundSyncProcess::join(const std::vector<Reply>& replies) {
  // Adopt the (f+1)-st largest reported round: f liars cannot inflate
  // it, and honest processors' rounds agree to +-1.
  std::vector<std::uint64_t> rounds;
  std::vector<PeerEstimate> estimates;
  for (const auto& r : replies) {
    if (!r.answered) continue;  // true timeout carries no information
    rounds.push_back(r.round);
    // The join trusts midpoints even of mismatched-round replies: our own
    // round tag is known-broken, so the tag filter does not apply.
    estimates.push_back(PeerEstimate{r.estimate.d, r.estimate.d});
  }
  ++stats_.joins;
  if (rounds.size() < static_cast<std::size_t>(config_.f) + 1) {
    CZ_DEBUG << "proc " << id_ << " join failed: not enough replies";
    return;  // retry next round
  }
  std::sort(rounds.begin(), rounds.end(), std::greater<>());
  round_ = rounds[static_cast<std::size_t>(config_.f)];

  const ConvergenceResult result =
      MidpointConvergence().apply(estimates, config_.f, config_.params.way_off);
  clock_.adjust(result.adjustment);
  stats_.last_adjustment = result.adjustment;
  stats_.max_abs_adjustment =
      std::max(stats_.max_abs_adjustment, result.adjustment.abs());
  if (trace::TraceSink* ts = trace_.sink()) {
    const SimTau t = trace_.now();
    ts->record(trace::adj_write(t, id_, trace::AdjKind::Join,
                                result.adjustment,
                                clock_.adjustment()));
    ts->record(trace::round_close(t, id_, round_, trace::kRoundJoin));
  }
  if (on_sync_complete) on_sync_complete(result);
}

}  // namespace czsync::core
