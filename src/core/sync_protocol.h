// The Sync protocol of §3.2 (Figure 1), as an event-driven process.
//
// Life cycle per round:
//   alarm fires -> ping every neighbor in parallel, remember the local
//   send time S; each PingResp yields an estimate via §3.1; when all
//   neighbors answered or MaxWait elapsed on the local clock, feed the
//   over/under-estimates (self included, exact) to the convergence
//   function, adjust the clock, and arm the next alarm SyncInt away.
//
// Design notes mirroring §3.3:
//   * no rounds across processors — a processor always answers pings with
//     its *current* clock, and peers' Syncs are mutually unsynchronized
//     (we even randomize the initial phase);
//   * suspend()/resume() model the break-in/recovery of the protocol
//     daemon: resume() re-arms the alarm, the "make sure this alarm is
//     recovered after a break-in" requirement;
//   * replay/staleness: responses carry a per-(round, peer) nonce; late
//     or duplicated responses are dropped.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "clock/logical_clock.h"
#include "core/convergence.h"
#include "core/estimate.h"
#include "core/params.h"
#include "core/protocol_engine.h"
#include "net/network.h"
#include "trace/port.h"
#include "util/rng.h"

namespace czsync::core {

struct SyncConfig {
  ProtocolParams params;
  int f = 1;  ///< trim depth used by the convergence function
  std::shared_ptr<const ConvergenceFunction> convergence;
  /// Randomize the first alarm within [0, SyncInt) so processors do not
  /// sync in lockstep. Disable for tests that need exact phase control.
  bool random_phase = true;
  /// §3.1 optimization: send k pings per peer per round and keep the
  /// estimate with the smallest error bound (NTP's minimum-round-trip
  /// trick). All k are sent together; the round still ends at MaxWait.
  /// 1 = the plain protocol.
  int pings_per_peer = 1;

  /// §3.1 caveat, implemented to demonstrate it: spread the estimation
  /// over a background thread and have sync() consume *cached* values.
  /// The paper warns that "the separate thread may return an old cached
  /// value which was measured before the call ... the analysis in this
  /// paper cannot be applied right out of the box". We implement the
  /// naive version (no staleness compensation) so experiment E19 can
  /// measure exactly how Definition 4 breaks.
  bool cached_estimation = false;
  /// Background refresh cadence (local time) when cached_estimation.
  Duration cache_refresh = Duration::seconds(20);
  /// Entries older than this (local time) count as timeouts.
  Duration max_cache_age = Duration::minutes(2);

  /// Test-only: pre-reserve the unordered nonce/cache tables to this many
  /// buckets. Perturbs hash-table geometry — and thus the iteration order
  /// any accidental walk over them would see — without changing protocol
  /// behaviour; the hash_perturb regression test asserts traces stay
  /// byte-identical across values. 0 = library default geometry.
  std::size_t debug_bucket_reserve = 0;
};

class SyncProcess final : public ProtocolEngine {
 public:
  SyncProcess(trace::TracePort trace, net::Network& network,
              clk::LogicalClock& clock, net::ProcId id, SyncConfig config,
              Rng rng);

  /// Arms the first sync alarm. Call once after handlers are wired.
  void start() override;

  /// Kills all protocol activity (alarms, the in-flight round). Called at
  /// break-in; in-flight responses arriving afterwards are dropped as
  /// stale.
  void suspend() override;

  /// Restarts the daemon: begins a fresh round immediately, then resumes
  /// the SyncInt cadence. Called when the adversary leaves.
  void resume() override;

  /// Inbound protocol messages. PingReq is answered with the current
  /// clock (always — even mid-round, §3.3 "no rounds"); PingResp feeds
  /// the in-flight round.
  void handle_message(const net::Message& msg) override;

  [[nodiscard]] bool round_active() const override { return round_active_; }
  [[nodiscard]] bool suspended() const override { return suspended_; }
  [[nodiscard]] const SyncStats& stats() const override { return stats_; }
  [[nodiscard]] net::ProcId id() const { return id_; }

 private:
  void begin_round();
  void finish_round();
  void clear_round_state();
  void arm_next(Duration in_local_time);
  void cache_tick();
  void finish_from_cache();

  trace::TracePort trace_;
  net::Network& network_;
  clk::LogicalClock& clock_;
  net::ProcId id_;
  SyncConfig config_;
  Rng rng_;
  std::vector<net::ProcId> peers_;

  bool started_ = false;
  bool suspended_ = false;
  clk::AlarmId sync_alarm_ = clk::kNoAlarm;
  clk::AlarmId timeout_alarm_ = clk::kNoAlarm;

  /// Maps an authenticated sender to its dense peer slot via binary
  /// search over the (sorted, degree-sized) peers_ list; -1 for
  /// non-neighbors. Every per-peer array is sized by degree, so a
  /// process costs O(deg) memory however large the ensemble — the old
  /// n-sized peer_slot_ lookup table made the ensemble O(n^2) total.
  [[nodiscard]] int slot_of(net::ProcId from) const {
    const auto it = std::lower_bound(peers_.begin(), peers_.end(), from);
    if (it == peers_.end() || *it != from) return -1;
    return static_cast<int>(it - peers_.begin());
  }

  // In-flight round state. Sized once at construction and reset in place
  // per round: the steady-state round performs no allocations (the old
  // nonce/estimate unordered_maps paid a node allocation per ping).
  // Peers are dense slots 0..peers_.size(): slot_of(proc) maps an
  // authenticated sender to its slot (-1 for non-neighbors), each slot
  // owns pings_per_peer consecutive entries of round_nonces_/nonce_live_,
  // and collected_[slot] holds the best estimate iff reply_count_[slot]>0.
  bool round_active_ = false;
  LogicalTime round_send_time_;     // S on the logical clock (same for all)
  HwTime round_send_hw_;            // send instant on the hardware clock:
                                  // the RTT is measured on it because the
                                  // logical clock may be adjusted (e.g. a
                                  // negative discipline slew) mid-flight
                                  // and is not monotonic
  std::vector<std::uint64_t> round_nonces_;
  std::vector<std::uint8_t> nonce_live_;
  std::vector<Estimate> collected_;   // best-so-far, by peer slot
  std::vector<int> reply_count_;      // valid replies, by peer slot
  std::size_t pending_ = 0;  // outstanding replies across all peers

  // Round-close scratch, reused every round (allocation-free once at
  // capacity): the estimate table fed to the convergence function and
  // the flat buffers its (f+1)-trim selection runs over.
  std::vector<PeerEstimate> estimates_;
  ConvergenceScratch conv_scratch_;

  // Cached-estimation mode (§3.1 caveat).
  struct CacheEntry {
    Estimate estimate;
    LogicalTime measured_at;  // local clock when the reply landed
  };
  struct CacheSentAt {
    LogicalTime logical;
    HwTime hw;
  };
  clk::AlarmId cache_alarm_ = clk::kNoAlarm;
  std::unordered_map<std::uint64_t, net::ProcId> cache_nonce_to_peer_;
  std::unordered_map<net::ProcId, CacheSentAt> cache_sent_at_;
  std::unordered_map<net::ProcId, CacheEntry> cache_;

  SyncStats stats_;
};

}  // namespace czsync::core
