#include "core/envelope.h"

#include <cassert>

namespace czsync::core {

Envelope::Envelope(SimTau tau0, BiasInterval at_tau0, double rho)
    : tau0_(tau0), base_(at_tau0), rho_(rho) {
  assert(at_tau0.lo <= at_tau0.hi);
  assert(rho >= 0.0);
}

BiasInterval Envelope::at(SimTau tau) const {
  assert(tau >= tau0_);
  const Duration spread = (tau - tau0_) * rho_;
  return BiasInterval{base_.lo - spread, base_.hi + spread};
}

bool Envelope::contains(SimTau tau, Duration beta) const {
  return at(tau).contains(beta);
}

bool Envelope::not_above(SimTau tau, Duration beta) const {
  return beta <= at(tau).hi;
}

bool Envelope::not_below(SimTau tau, Duration beta) const {
  return beta >= at(tau).lo;
}

Envelope Envelope::widen(Duration c) const {
  assert(c >= Duration::zero());
  return Envelope(tau0_, BiasInterval{base_.lo - c, base_.hi + c}, rho_);
}

Envelope Envelope::average(const Envelope& e1, const Envelope& e2) {
  assert(e1.tau0_ == e2.tau0_);
  assert(e1.rho_ == e2.rho_);
  return Envelope(e1.tau0_,
                  BiasInterval{(e1.base_.lo + e2.base_.lo) / 2.0,
                               (e1.base_.hi + e2.base_.hi) / 2.0},
                  e1.rho_);
}

Envelope Envelope::rebase(SimTau tau) const {
  return Envelope(tau, at(tau), rho_);
}

}  // namespace czsync::core
