// Round-based comparator protocol — the design §3.3 argues against.
//
// Many convergence-function algorithms ([8, 9]) proceed in rounds: every
// processor keeps a round counter, synchronizes once per round, and
// clock queries are answered relative to a round ("if a processor is
// asked for a round-i clock when it is already in round i+1, it returns
// the value as if it didn't do the last synchronization"). The paper's
// §3.3 argues this is the wrong structure for the mobile-adversary
// setting, because "variables such as the current round number, last
// round's clock, and the time to begin the next round have to be
// recovered from a break-in".
//
// This engine makes that cost concrete. It is the same estimation +
// convergence machinery as SyncProcess, with the round structure added:
//   * requests and replies are round-tagged; a requester only accepts
//     replies whose round is within +-1 of its own (cross-round clock
//     values are meaningless to a round-based algorithm), others are
//     discarded and count as timeouts;
//   * a processor whose round counter went stale (a recovering victim)
//     finds most replies mismatched; when more than f replies in one
//     round mismatch, it runs a JOIN: adopt the (f+1)-st largest
//     reported round (robust against f inflating liars) and jump the
//     clock to the trimmed midrange;
//   * symmetrically, while stale, its own replies are discarded by the
//     others — a recovering processor burdens the network like an extra
//     silent fault until its JOIN completes, which is exactly the
//     structural weakness the no-rounds design avoids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "clock/logical_clock.h"
#include "core/protocol_engine.h"
#include "core/sync_protocol.h"  // SyncConfig
#include "net/network.h"
#include "trace/port.h"
#include "util/rng.h"

namespace czsync::core {

class RoundSyncProcess final : public ProtocolEngine {
 public:
  RoundSyncProcess(trace::TracePort trace, net::Network& network,
                   clk::LogicalClock& clock, net::ProcId id, SyncConfig config,
                   Rng rng);

  void start() override;
  void suspend() override;
  /// Restarts with the *stale* round counter left from before the
  /// break-in — recovering the counter is the join protocol's job.
  void resume() override;
  void handle_message(const net::Message& msg) override;

  [[nodiscard]] bool round_active() const override { return round_active_; }
  [[nodiscard]] bool suspended() const override { return suspended_; }
  [[nodiscard]] const SyncStats& stats() const override { return stats_; }
  [[nodiscard]] std::uint64_t round() const { return round_; }
  [[nodiscard]] net::ProcId id() const { return id_; }

 private:
  struct Reply {
    Estimate estimate;
    std::uint64_t round = 0;
    bool mismatched = false;
    bool answered = false;  ///< false = never replied (true timeout)
  };

  void arm_next(Duration in_local_time);
  void begin_round();
  void finish_round();
  void join(const std::vector<Reply>& replies);

  trace::TracePort trace_;
  net::Network& network_;
  clk::LogicalClock& clock_;
  net::ProcId id_;
  SyncConfig config_;
  Rng rng_;
  std::vector<net::ProcId> peers_;

  std::uint64_t round_ = 1;
  bool started_ = false;
  bool suspended_ = false;
  clk::AlarmId sync_alarm_ = clk::kNoAlarm;
  clk::AlarmId timeout_alarm_ = clk::kNoAlarm;

  bool round_active_ = false;
  LogicalTime round_send_time_;  // S on the logical clock
  HwTime round_send_hw_;         // send instant on the monotone hw clock

  /// Sender -> dense peer slot via binary search over the sorted,
  /// degree-sized peers_ list (-1 for non-neighbors). Keeps per-process
  /// state O(deg) rather than O(n); see SyncProcess::slot_of.
  [[nodiscard]] int slot_of(net::ProcId from) const {
    const auto it = std::lower_bound(peers_.begin(), peers_.end(), from);
    if (it == peers_.end() || *it != from) return -1;
    return static_cast<int>(it - peers_.begin());
  }

  // In-flight round state, SoA like SyncProcess's: dense per-peer-slot
  // arrays sized once at construction and reset in place per round, so
  // the steady-state round allocates nothing (the old per-round
  // unordered_maps paid a node allocation per ping and reply).
  // slot_of(proc) maps an authenticated sender to its slot (-1 for
  // non-neighbors); round_nonces_[slot] is this round's nonce for that
  // peer; replies_[slot].answered doubles as the "already collected"
  // guard the old map's contains() provided.
  std::vector<std::uint64_t> round_nonces_;
  std::vector<Reply> replies_;
  std::size_t pending_ = 0;

  // Round-close scratch, reused every round (see SyncProcess).
  std::vector<PeerEstimate> estimates_;
  ConvergenceScratch conv_scratch_;

  SyncStats stats_;
};

}  // namespace czsync::core
