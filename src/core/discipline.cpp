#include "core/discipline.h"

#include <algorithm>
#include <cassert>

namespace czsync::core {

RateDiscipline::RateDiscipline(clk::LogicalClock& clock,
                               DisciplineConfig config)
    : clock_(clock), config_(config) {
  assert(config_.gain > 0.0 && config_.gain <= 1.0);
  assert(config_.max_rate > 0.0);
  assert(config_.slew_interval > Duration::zero());
  last_observe_ = clock_.read();
  last_slew_ = last_observe_;
}

void RateDiscipline::observe(Duration adjustment) {
  const LogicalTime now = clock_.read();
  if (!has_last_observe_) {
    has_last_observe_ = true;
    last_observe_ = now;
    return;
  }
  const Duration span = now - last_observe_;
  last_observe_ = now;
  if (span <= Duration::zero()) return;
  ++samples_;
  // Anything the ensemble just corrected must not be slewed again: fold
  // the slew origin to the post-adjustment reading.
  last_slew_ = now;
  if (samples_ <= static_cast<std::uint64_t>(config_.warmup_samples)) return;
  // A positive adjustment means the ensemble was ahead of us: we ran slow
  // by adjustment/span — and that is the *residual* error left after the
  // slewing already active during the span. Integral action (accumulate
  // the residual, don't average toward it) therefore drives the residual
  // to zero: at the fixed point the Sync adjustments no longer contain a
  // systematic rate component.
  const double sample = adjustment / span;
  rate_ = std::clamp(rate_ + config_.gain * sample, -config_.max_rate,
                     config_.max_rate);
}

void RateDiscipline::slew() {
  const LogicalTime now = clock_.read();
  const Duration span = now - last_slew_;
  last_slew_ = now;
  if (span <= Duration::zero() || rate_ == 0.0) return;
  const Duration correction = span * rate_;
  clock_.adjust(correction);
  total_slewed_ += correction;
  // The adjust just moved the clock; fold it into the slew origin so the
  // next span is measured from the post-correction reading.
  last_slew_ = clock_.read();
}

void RateDiscipline::reset() {
  rate_ = 0.0;
  samples_ = 0;
  has_last_observe_ = false;
  last_observe_ = clock_.read();
  last_slew_ = last_observe_;
  total_slewed_ = Duration::zero();
}

}  // namespace czsync::core
