// Facade: the strong time-domain types for protocol-layer code.
//
// ISSUE and DESIGN.md §4.14 name core/ as the home of the time-domain
// vocabulary, but the types themselves must live below sim/ in the
// layering DAG (sim stamps events with SimTau yet must never include
// core/). The definitions therefore sit in util/time_domain.h; this
// header is the sanctioned spelling for core/broadcast/proactive and
// everything above them, and is where any future protocol-level time
// aliases (round deadlines, epoch stamps) would be declared.
//
// Nothing may be defined here that sim/ or clock/ would need — add such
// types to util/time_domain.h instead.
#pragma once

#include "util/time_domain.h"  // SimTau, HwTime, LogicalTime, Duration
