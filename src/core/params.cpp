#include "core/params.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace czsync::core {

Duration reading_error_bound(double rho, Duration delta) {
  return delta * (1.0 + rho);
}

namespace {

Duration interval_t(const ModelParams& m, Duration sync_int, Duration max_wait) {
  return sync_int * (1.0 + m.rho) + 2.0 * max_wait;
}

}  // namespace

ProtocolParams ProtocolParams::derive(const ModelParams& m, Duration sync_int) {
  assert(sync_int > Duration::zero());
  ProtocolParams p;
  p.sync_int = sync_int;
  p.max_wait = 2.0 * m.delta;
  const Duration t = interval_t(m, p.sync_int, p.max_wait);
  const Duration eps = reading_error_bound(m.rho, m.delta);
  // Appendix A.2: WayOff = 16 eps + 18 rho T + eps.
  p.way_off = 16.0 * eps + 18.0 * m.rho * t + eps;
  return p;
}

ProtocolParams ProtocolParams::derive_for_k(const ModelParams& m, int k) {
  assert(k >= 1);
  const Duration max_wait = 2.0 * m.delta;
  // T = Delta / k  =>  SyncInt = (T - 2 MaxWait) / (1 + rho).
  const Duration t = m.delta_period / static_cast<double>(k);
  Duration sync_int = (t - 2.0 * max_wait) / (1.0 + m.rho);
  if (sync_int <= Duration::zero()) sync_int = Duration::millis(1);
  return derive(m, sync_int);
}

TheoremBounds TheoremBounds::compute(const ModelParams& m,
                                     const ProtocolParams& p) {
  TheoremBounds b;
  b.T = interval_t(m, p.sync_int, p.max_wait);
  b.K = static_cast<int>(std::floor(m.delta_period / b.T));
  b.epsilon = reading_error_bound(m.rho, m.delta);
  b.k_precondition_ok = b.K >= 5;
  const Duration base = 17.0 * b.epsilon + 18.0 * m.rho * b.T;
  // C = (17 eps + 18 rho T) / 2^(K-3); for K < 3 the exponent would
  // inflate C, which is fine — the theorem requires K >= 5 anyway and the
  // flag above records violations.
  b.C = base / std::pow(2.0, b.K - 3);
  b.envelope_d = 8.0 * b.epsilon + 8.0 * m.rho * b.T + 2.0 * b.C;
  b.max_deviation = 16.0 * b.epsilon + 18.0 * m.rho * b.T + 4.0 * b.C;
  b.logical_drift = m.rho + b.C / (2.0 * b.T);
  b.discontinuity = b.epsilon + b.C * 0.5;
  return b;
}

std::string TheoremBounds::summary() const {
  std::ostringstream os;
  os << "T=" << T.sec() << "s K=" << K << " eps=" << epsilon.ms()
     << "ms C=" << C.ms() << "ms gamma=" << max_deviation.ms()
     << "ms rho~=" << logical_drift << " psi=" << discontinuity.ms() << "ms";
  if (!k_precondition_ok) os << " [WARNING: K<5, Theorem 5 precondition violated]";
  return os.str();
}

}  // namespace czsync::core
