// Envelopes in the (tau, beta)-plane — Definition 6 of Appendix A.
//
// An envelope Env{tau0, [a,b]} is the region reachable by the bias of a
// drifting-but-never-reset clock that started in [a,b] at tau0:
//   E(tau) = [a - rho (tau - tau0),  b + rho (tau - tau0)],  tau >= tau0.
// Lemma 7's proof machinery manipulates these; we expose the same algebra
// (widen by a constant, average two envelopes, membership) so the tests
// can check the lemma's *shape* against simulation traces.
#pragma once

#include "util/time_domain.h"

namespace czsync::core {

/// Closed interval on the bias axis.
struct BiasInterval {
  Duration lo;
  Duration hi;

  [[nodiscard]] Duration width() const { return hi - lo; }
  [[nodiscard]] Duration mid() const { return (lo + hi) / 2.0; }
  [[nodiscard]] bool contains(Duration b) const { return b >= lo && b <= hi; }
};

class Envelope {
 public:
  /// Env{tau0, [a, b]} with drift bound rho.
  Envelope(SimTau tau0, BiasInterval at_tau0, double rho);

  [[nodiscard]] SimTau tau0() const { return tau0_; }
  [[nodiscard]] double rho() const { return rho_; }

  /// E(tau): the bias interval at time tau (>= tau0).
  [[nodiscard]] BiasInterval at(SimTau tau) const;

  /// |E(tau)|.
  [[nodiscard]] Duration width_at(SimTau tau) const { return at(tau).width(); }

  /// Membership: bias beta is inside E at time tau.
  [[nodiscard]] bool contains(SimTau tau, Duration beta) const;
  /// "not above E" / "not below E" (Appendix A.1).
  [[nodiscard]] bool not_above(SimTau tau, Duration beta) const;
  [[nodiscard]] bool not_below(SimTau tau, Duration beta) const;

  /// E + c: widen by c on both sides (c >= 0).
  [[nodiscard]] Envelope widen(Duration c) const;

  /// avg(E, E'): averages the defining intervals; requires equal tau0 and
  /// rho (as in the appendix, where both are re-based first).
  [[nodiscard]] static Envelope average(const Envelope& e1, const Envelope& e2);

  /// Re-bases the envelope at a later instant: Env{tau, E(tau)}.
  [[nodiscard]] Envelope rebase(SimTau tau) const;

 private:
  SimTau tau0_;
  BiasInterval base_;
  double rho_;
};

}  // namespace czsync::core
