// Model parameters, protocol parameters and the Theorem-5 calculator.
//
// The paper's quantities, with our names:
//   rho      drift bound (Eq. 2)                      ModelParams::rho
//   delta    message delivery bound (§2.2)            ModelParams::delta
//   Delta    adversary time period (Def. 2)           ModelParams::delta_period
//   f        faulty processors per period (Def. 2)    ModelParams::f
//   epsilon  clock-estimation reading error (Def. 4)  TheoremBounds::epsilon
//   SyncInt, MaxWait, WayOff (§3.2)                   ProtocolParams
//   T = (1+rho)*SyncInt + 2*MaxWait (§4)              TheoremBounds::T
//   K = floor(Delta / T), K >= 5 (Thm. 5)             TheoremBounds::K
//   C = (17 eps + 18 rho T) / 2^(K-3)                 TheoremBounds::C
//   gamma = 16 eps + 18 rho T + 4C  (max deviation)   TheoremBounds::max_deviation
//   rho~  = rho + C/(2T)            (logical drift)   TheoremBounds::logical_drift
//   psi   = eps + C/2               (discontinuity)   TheoremBounds::discontinuity
//   D = 8 eps + 8 rho T + 2C (Appendix A.3 envelope half-width)
#pragma once

#include <string>

#include "util/time_domain.h"

namespace czsync::core {

/// The environment: fixed by nature and by the adversary's budget.
struct ModelParams {
  int n = 4;                        ///< number of processors
  int f = 1;                        ///< faults per period (Def. 2)
  double rho = 1e-4;                ///< hardware drift bound (Eq. 2)
  Duration delta = Duration::millis(50);      ///< message delivery bound
  Duration delta_period = Duration::hours(1); ///< the period Delta of Def. 2

  /// n >= 3f+1 (assumed throughout §2.2).
  [[nodiscard]] bool byzantine_quorum_ok() const { return n >= 3 * f + 1; }
  /// Largest f tolerable at this n.
  [[nodiscard]] static int max_f(int n) { return (n - 1) / 3; }
};

/// The knobs of Figure 1. §3.3 stresses these may safely *overestimate*
/// the model values; derive() uses the tight settings from the analysis.
struct ProtocolParams {
  Duration sync_int = Duration::minutes(1);  ///< local time between Syncs
  Duration max_wait = Duration::millis(100); ///< estimation timeout (= 2 delta)
  Duration way_off = Duration::seconds(1);   ///< "very far" threshold (§3.2)

  /// Derives the paper's settings from the model:
  ///   MaxWait = 2 delta,  SyncInt as given,
  ///   WayOff  = 16 eps + 18 rho T + eps   (Appendix A.2: gamma_hat + eps).
  [[nodiscard]] static ProtocolParams derive(const ModelParams& m, Duration sync_int);

  /// Derives settings that hit a target K = floor(Delta/T): picks SyncInt
  /// from T = Delta/K (useful for the K-sweep of experiment E4).
  [[nodiscard]] static ProtocolParams derive_for_k(const ModelParams& m, int k);
};

/// All quantities of Theorem 5 for a given (model, protocol) pair.
struct TheoremBounds {
  Duration T;                  ///< interval length (§4)
  int K = 0;              ///< floor(Delta / T)
  Duration epsilon;            ///< reading error bound of the §3.1 estimator
  Duration C;                  ///< the 2^-(K-3) penalty term
  Duration envelope_d;         ///< D = 8 eps + 8 rho T + 2C (Appendix A.3)
  Duration max_deviation;      ///< gamma (Thm. 5 i)
  double logical_drift = 0.0;  ///< rho~ (Thm. 5 ii)
  Duration discontinuity;      ///< psi (Thm. 5 ii)
  bool k_precondition_ok = false;  ///< K >= 5

  [[nodiscard]] static TheoremBounds compute(const ModelParams& m,
                                             const ProtocolParams& p);

  /// Human-readable one-line summary for bench headers.
  [[nodiscard]] std::string summary() const;
};

/// Reading error of the ping estimator under (rho, delta): the round trip
/// takes at most 2*delta real time, i.e. at most 2*delta*(1+rho) on the
/// requester's clock, so a = (R-S)/2 <= delta*(1+rho).
[[nodiscard]] Duration reading_error_bound(double rho, Duration delta);

}  // namespace czsync::core
