// Convergence functions (Schneider's framework, [26]).
//
// Given the estimates a processor collected in one Sync round, a
// convergence function computes the adjustment to apply to its clock.
// The paper's function (Figure 1, steps 6-12) is BhhnConvergence; the
// baselines reproduce the design space discussed in §1.1/§3.3:
//   * MidpointConvergence — Lynch-Welch-flavoured trimmed midpoint with
//     no own-clock preservation: always jumps to (m+M)/2.
//   * CappedCorrectionConvergence — Fetzer-Cristian-flavoured: the
//     paper's "normal" branch, but the per-round correction is clamped to
//     a small bound (their design goal of minimal clock change). This is
//     the function whose recovery "may never complete" (§1.1).
//   * NullConvergence — never adjusts (the unsynchronized baseline).
//
// All functions receive one PeerEstimate per processor, self included
// (the self-estimate is exact: over = under = 0), and the trim count f.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/estimate.h"
#include "util/time_domain.h"

namespace czsync::core {

/// One row of Figure 1 steps 6-7: overestimate and underestimate of the
/// peer's clock minus ours. Timeouts are (+inf, -inf).
struct PeerEstimate {
  Duration over;
  Duration under;

  [[nodiscard]] static PeerEstimate from(const Estimate& e) {
    return PeerEstimate{e.over(), e.under()};
  }
};

/// Outcome of one convergence evaluation, for metrics: the adjustment and
/// whether the WayOff escape branch fired (Figure 1, step 12).
struct ConvergenceResult {
  Duration adjustment = Duration::zero();
  bool way_off_branch = false;
};

/// Reusable flat buffers for the (f+1)-trim order statistics: the
/// selection runs nth_element over plain double arrays (SoA, no Duration
/// wrappers, no per-round vector allocation). Protocol engines keep one
/// per process and pass it to apply(); steady-state rounds then allocate
/// nothing. Purely scratch — carries no state between calls.
struct ConvergenceScratch {
  std::vector<double> overs;
  std::vector<double> unders;
};

class ConvergenceFunction {
 public:
  virtual ~ConvergenceFunction() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Computes the clock adjustment from this round's estimates.
  /// `estimates` holds one entry per reachable processor (self included);
  /// `f` is the trim depth; `way_off` the Figure-1 threshold. `scratch`
  /// (optional) makes the call allocation-free in steady state; the
  /// result is bit-identical with or without it.
  [[nodiscard]] virtual ConvergenceResult apply(
      std::span<const PeerEstimate> estimates, int f, Duration way_off,
      ConvergenceScratch* scratch = nullptr) const = 0;
};

/// Figure 1 of the paper, verbatim:
///   m = (f+1)-st smallest overestimate, M = (f+1)-st largest
///   underestimate; if both within WayOff of our clock, nudge by
///   (min(m,0)+max(M,0))/2, else jump by (m+M)/2.
class BhhnConvergence final : public ConvergenceFunction {
 public:
  [[nodiscard]] std::string_view name() const override { return "bhhn"; }
  [[nodiscard]] ConvergenceResult apply(
      std::span<const PeerEstimate> estimates, int f, Duration way_off,
      ConvergenceScratch* scratch = nullptr) const override;
};

/// Trimmed midpoint without the own-clock branch: always (m+M)/2.
class MidpointConvergence final : public ConvergenceFunction {
 public:
  [[nodiscard]] std::string_view name() const override { return "midpoint"; }
  [[nodiscard]] ConvergenceResult apply(
      std::span<const PeerEstimate> estimates, int f, Duration way_off,
      ConvergenceScratch* scratch = nullptr) const override;
};

/// The paper's normal branch with the per-round correction clamped to
/// [-cap, +cap]; models minimal-correction designs ([9]) whose recovery
/// from a far-off clock is slow or never completes.
class CappedCorrectionConvergence final : public ConvergenceFunction {
 public:
  explicit CappedCorrectionConvergence(Duration cap);

  [[nodiscard]] std::string_view name() const override {
    return "capped-correction";
  }
  [[nodiscard]] ConvergenceResult apply(
      std::span<const PeerEstimate> estimates, int f, Duration way_off,
      ConvergenceScratch* scratch = nullptr) const override;
  [[nodiscard]] Duration cap() const { return cap_; }

 private:
  Duration cap_;
};

/// Never adjusts: free-running hardware clocks.
class NullConvergence final : public ConvergenceFunction {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  [[nodiscard]] ConvergenceResult apply(
      std::span<const PeerEstimate> estimates, int f, Duration way_off,
      ConvergenceScratch* scratch = nullptr) const override;
};

/// Selection helpers shared by the implementations (exposed for tests).
/// (f+1)-st smallest overestimate m (Figure 1, step 8).
[[nodiscard]] Duration select_low(std::span<const PeerEstimate> estimates, int f);
/// (f+1)-st largest underestimate M (Figure 1, step 9).
[[nodiscard]] Duration select_high(std::span<const PeerEstimate> estimates, int f);

/// Factory by name: "bhhn", "midpoint", "capped-correction", "none".
/// `cap` is only used by capped-correction.
[[nodiscard]] std::shared_ptr<const ConvergenceFunction> make_convergence(
    std::string_view name, Duration cap = Duration::millis(100));

}  // namespace czsync::core
