// Toy proactive secret sharing.
//
// We model the *lifecycle*, not the cryptography: each processor holds a
// share tagged with the epoch it was generated in; refreshing replaces it
// with a fresh share for the new epoch. The security invariant of
// proactive secret sharing is that an adversary must collect f+1 shares
// OF THE SAME EPOCH to reconstruct the secret; shares from different
// epochs are useless together. Hence: synchronized refreshes => at most f
// captures per epoch => safe; a processor whose clock is stuck never
// refreshes, its stale share stays valid for capture in later periods,
// and the invariant can be violated.
#pragma once

#include <cstdint>
#include <vector>

namespace czsync::proactive {

struct Share {
  std::uint64_t epoch = 0;
  std::uint64_t value = 0;
};

/// Deterministic share derivation (stands in for the re-randomization of
/// a real proactive secret sharing protocol).
[[nodiscard]] std::uint64_t derive_share(std::uint64_t secret_seed, int proc,
                                         std::uint64_t epoch);

/// The shares currently held by all processors.
class ShareStore {
 public:
  ShareStore(int n, std::uint64_t secret_seed);

  /// Installs the epoch-e share at processor p (called by its refresh).
  void refresh(int proc, std::uint64_t epoch);

  /// The share processor p currently holds (what a break-in captures).
  [[nodiscard]] const Share& share(int proc) const;

  [[nodiscard]] int size() const { return static_cast<int>(shares_.size()); }
  [[nodiscard]] std::uint64_t refresh_count() const { return refreshes_; }

 private:
  std::uint64_t secret_seed_;
  std::vector<Share> shares_;
  std::uint64_t refreshes_ = 0;
};

}  // namespace czsync::proactive
