#include "proactive/secret_sharing.h"

#include <cassert>

#include "util/rng.h"

namespace czsync::proactive {

std::uint64_t derive_share(std::uint64_t secret_seed, int proc,
                           std::uint64_t epoch) {
  std::uint64_t s = secret_seed ^ (0x9e3779b97f4a7c15ULL * (epoch + 1)) ^
                    (0xd1b54a32d192ed03ULL * static_cast<std::uint64_t>(proc + 1));
  return splitmix64(s);
}

ShareStore::ShareStore(int n, std::uint64_t secret_seed)
    : secret_seed_(secret_seed), shares_(static_cast<std::size_t>(n)) {
  assert(n >= 1);
  for (int p = 0; p < n; ++p) refresh(p, 0);
  refreshes_ = 0;
}

void ShareStore::refresh(int proc, std::uint64_t epoch) {
  auto& s = shares_[static_cast<std::size_t>(proc)];
  s.epoch = epoch;
  s.value = derive_share(secret_seed_, proc, epoch);
  ++refreshes_;
}

const Share& ShareStore::share(int proc) const {
  return shares_[static_cast<std::size_t>(proc)];
}

}  // namespace czsync::proactive
