// The per-processor refresh daemon.
//
// Fires at every epoch boundary *of the local logical clock*, installs a
// fresh share, and announces the refresh to peers. Because the boundary
// is a logical-clock target and the Sync protocol keeps adjusting that
// clock, the alarm re-validates on fire: if the clock was set backwards
// past the boundary it re-arms, if it jumped forward it refreshes for the
// epoch the clock now shows.
#pragma once

#include <cstdint>
#include <functional>

#include "clock/logical_clock.h"
#include "net/network.h"
#include "proactive/epoch.h"
#include "proactive/secret_sharing.h"

namespace czsync::proactive {

class RefreshProcess {
 public:
  RefreshProcess(clk::LogicalClock& clock, net::Network& network,
                 net::ProcId id, ShareStore& store, Duration epoch_len,
                 bool announce = true);

  /// Arms the first boundary alarm. Call once.
  void start();

  /// Break-in: the adversary kills the daemon (and may smash the clock).
  void suspend();

  /// Recovery: the daemon restarts and re-derives its alarm from the
  /// (possibly corrected) clock.
  void resume();

  [[nodiscard]] std::uint64_t last_epoch() const { return last_epoch_; }
  [[nodiscard]] std::uint64_t refreshes_done() const { return refreshes_; }
  [[nodiscard]] bool suspended() const { return suspended_; }

  /// Invoked after each refresh with the new epoch (metrics hook).
  std::function<void(std::uint64_t)> on_refresh;

 private:
  void arm();
  void on_alarm();

  clk::LogicalClock& clock_;
  net::Network& network_;
  net::ProcId id_;
  ShareStore& store_;
  Duration epoch_len_;
  bool announce_;

  bool suspended_ = false;
  clk::AlarmId alarm_ = clk::kNoAlarm;
  std::uint64_t last_epoch_ = 0;
  std::uint64_t refreshes_ = 0;
};

}  // namespace czsync::proactive
