#include "proactive/audit.h"

#include <algorithm>
#include <cassert>

namespace czsync::proactive {

void Auditor::capture(int proc) {
  const Share& s = store_.share(proc);
  by_epoch_[s.epoch].insert(proc);
  ++captures_;
}

int Auditor::worst_epoch_exposure() const {
  int worst = 0;
  for (const auto& [epoch, procs] : by_epoch_) {
    worst = std::max(worst, static_cast<int>(procs.size()));
  }
  return worst;
}

CapturingStrategy::CapturingStrategy(std::shared_ptr<adversary::Strategy> inner,
                                     Auditor& auditor)
    : inner_(std::move(inner)), auditor_(auditor) {
  assert(inner_ != nullptr);
}

std::string_view CapturingStrategy::name() const { return inner_->name(); }

void CapturingStrategy::on_break_in(adversary::AdvContext& ctx,
                                    adversary::ControlledProcess& proc) {
  auditor_.capture(proc.id());
  inner_->on_break_in(ctx, proc);
}

void CapturingStrategy::on_leave(adversary::AdvContext& ctx,
                                 adversary::ControlledProcess& proc) {
  inner_->on_leave(ctx, proc);
}

void CapturingStrategy::on_message(adversary::AdvContext& ctx,
                                   adversary::ControlledProcess& proc,
                                   const net::Message& msg) {
  inner_->on_message(ctx, proc, msg);
}

}  // namespace czsync::proactive
