#include "proactive/audit.h"

#include <algorithm>
#include <cassert>

namespace czsync::proactive {

void Auditor::capture(int proc) {
  const Share& s = store_.share(proc);
  by_epoch_[s.epoch].insert(proc);
  ++captures_;
}

int Auditor::worst_epoch_exposure() const {
  int worst = 0;
  for (const auto& [epoch, procs] : by_epoch_) {
    worst = std::max(worst, static_cast<int>(procs.size()));
  }
  return worst;
}

}  // namespace czsync::proactive
