// Epoch arithmetic for proactive maintenance.
//
// Proactive security (§1 of the paper) divides time into fixed periods;
// every processor must perform its corrective action (share refresh, key
// rotation) once per period. Processors derive the current epoch from
// their *logical clock*, so epoch alignment across the network is exactly
// as good as clock synchronization — that is the dependency the paper
// exists to provide.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/time_domain.h"

namespace czsync::proactive {

/// Epoch index of clock value `c` with period `len`: floor(C / len).
/// Clock values are nonnegative in our scenarios; negative values (a
/// badly smashed clock) map to epoch 0 so indices stay unsigned.
[[nodiscard]] inline std::uint64_t epoch_of(LogicalTime c, Duration len) {
  // time: epoch index floors the raw clock reading by the period
  const double e = std::floor(c.raw() / len.sec());
  return e <= 0.0 ? 0 : static_cast<std::uint64_t>(e);
}

/// Local-clock time remaining until the next epoch boundary.
[[nodiscard]] inline Duration until_next_epoch(LogicalTime c, Duration len) {
  const auto e = epoch_of(c, len);
  const LogicalTime boundary(static_cast<double>(e + 1) * len.sec());
  Duration left = boundary - c;
  if (left <= Duration::zero()) left = Duration::seconds(1e-9);
  return left;
}

}  // namespace czsync::proactive
