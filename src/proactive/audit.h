// Security audit for the proactive service.
//
// Tracks what the adversary captured: every break-in grabs the victim's
// current share (epoch-tagged). The proactive invariant is violated when
// some single epoch has >= f+1 captured shares. CapturingStrategy wraps
// any attack strategy with this bookkeeping so the same schedules and
// behaviours drive both the clock experiments and the end-to-end
// security experiment (E10).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "adversary/strategies.h"
#include "proactive/secret_sharing.h"

namespace czsync::proactive {

class Auditor {
 public:
  explicit Auditor(const ShareStore& store) : store_(store) {}

  /// Records that the adversary captured processor p's current share.
  void capture(int proc);

  /// Largest number of distinct processors whose shares of one single
  /// epoch were captured.
  [[nodiscard]] int worst_epoch_exposure() const;
  /// The secret is compromised iff some epoch has >= threshold captures
  /// (threshold = f+1 for an (f+1)-out-of-n sharing).
  [[nodiscard]] bool compromised(int threshold) const {
    return worst_epoch_exposure() >= threshold;
  }
  [[nodiscard]] std::uint64_t captures() const { return captures_; }
  [[nodiscard]] const std::map<std::uint64_t, std::set<int>>& by_epoch() const {
    return by_epoch_;
  }

 private:
  const ShareStore& store_;
  std::map<std::uint64_t, std::set<int>> by_epoch_;
  std::uint64_t captures_ = 0;
};

/// Decorator: delegates all behaviour to `inner`, additionally capturing
/// the victim's share at each break-in.
class CapturingStrategy final : public adversary::Strategy {
 public:
  CapturingStrategy(std::shared_ptr<adversary::Strategy> inner, Auditor& auditor);

  [[nodiscard]] std::string_view name() const override;
  void on_break_in(adversary::AdvContext& ctx,
                   adversary::ControlledProcess& proc) override;
  void on_leave(adversary::AdvContext& ctx,
                adversary::ControlledProcess& proc) override;
  void on_message(adversary::AdvContext& ctx,
                  adversary::ControlledProcess& proc,
                  const net::Message& msg) override;

 private:
  std::shared_ptr<adversary::Strategy> inner_;
  Auditor& auditor_;
};

}  // namespace czsync::proactive
