// Security audit for the proactive service.
//
// Tracks what the adversary captured: every break-in grabs the victim's
// current share (epoch-tagged). The proactive invariant is violated when
// some single epoch has >= f+1 captured shares. The Strategy decorator
// that feeds this bookkeeping (adversary::CapturingStrategy) lives in
// adversary/ — proactive/ sits below the attack machinery in the
// layering DAG and must not include it.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "proactive/secret_sharing.h"

namespace czsync::proactive {

class Auditor {
 public:
  explicit Auditor(const ShareStore& store) : store_(store) {}

  /// Records that the adversary captured processor p's current share.
  void capture(int proc);

  /// Largest number of distinct processors whose shares of one single
  /// epoch were captured.
  [[nodiscard]] int worst_epoch_exposure() const;
  /// The secret is compromised iff some epoch has >= threshold captures
  /// (threshold = f+1 for an (f+1)-out-of-n sharing).
  [[nodiscard]] bool compromised(int threshold) const {
    return worst_epoch_exposure() >= threshold;
  }
  [[nodiscard]] std::uint64_t captures() const { return captures_; }
  [[nodiscard]] const std::map<std::uint64_t, std::set<int>>& by_epoch() const {
    return by_epoch_;
  }

 private:
  const ShareStore& store_;
  std::map<std::uint64_t, std::set<int>> by_epoch_;
  std::uint64_t captures_ = 0;
};

}  // namespace czsync::proactive
