#include "proactive/refresh.h"

#include <cassert>

namespace czsync::proactive {

RefreshProcess::RefreshProcess(clk::LogicalClock& clock, net::Network& network,
                               net::ProcId id, ShareStore& store, Duration epoch_len,
                               bool announce)
    : clock_(clock),
      network_(network),
      id_(id),
      store_(store),
      epoch_len_(epoch_len),
      announce_(announce) {
  assert(epoch_len > Duration::zero());
}

void RefreshProcess::start() { arm(); }

void RefreshProcess::arm() {
  // The alarm runs on the hardware clock; the logical-clock distance to
  // the boundary equals the hardware distance as long as adj is stable.
  // on_alarm() re-validates against the logical clock, so Sync
  // adjustments between now and then merely cause a re-arm.
  const Duration wait = until_next_epoch(clock_.read(), epoch_len_);
  alarm_ = clock_.hardware().set_alarm_after(wait, [this] {
    alarm_ = clk::kNoAlarm;
    on_alarm();
  });
}

void RefreshProcess::on_alarm() {
  const std::uint64_t now_epoch = epoch_of(clock_.read(), epoch_len_);
  if (now_epoch > last_epoch_) {
    last_epoch_ = now_epoch;
    store_.refresh(id_, now_epoch);
    ++refreshes_;
    if (announce_) {
      const auto digest = store_.share(id_).value;
      for (net::ProcId q : network_.topology().neighbors(id_)) {
        network_.send(id_, q, net::RefreshAnnounce{now_epoch, digest});
      }
    }
    if (on_refresh) on_refresh(now_epoch);
  }
  arm();
}

void RefreshProcess::suspend() {
  suspended_ = true;
  if (alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(alarm_);
    alarm_ = clk::kNoAlarm;
  }
}

void RefreshProcess::resume() {
  assert(suspended_);
  suspended_ = false;
  arm();
}

}  // namespace czsync::proactive
