#include "util/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace czsync {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::optional<Duration> parse_duration(const std::string& text) {
  const std::string t = trim(text);
  if (t.empty()) return std::nullopt;
  // Split number prefix from unit suffix.
  std::size_t pos = 0;
  while (pos < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[pos])) || t[pos] == '.' ||
          t[pos] == '-' || t[pos] == '+' || t[pos] == 'e' || t[pos] == 'E' ||
          (pos > 0 && (t[pos - 1] == 'e' || t[pos - 1] == 'E') &&
           (t[pos] == '-' || t[pos] == '+')))) {
    ++pos;
  }
  // An 'e'/'E' at the very end is not scientific notation but can't be a
  // unit either; reject via strtod below.
  const std::string num = t.substr(0, pos);
  const std::string unit = trim(t.substr(pos));
  char* end = nullptr;
  const double v = std::strtod(num.c_str(), &end);
  if (num.empty() || end != num.c_str() + num.size()) return std::nullopt;
  if (unit.empty() || unit == "s") return Duration::seconds(v);
  if (unit == "us") return Duration::micros(v);
  if (unit == "ms") return Duration::millis(v);
  if (unit == "m" || unit == "min") return Duration::minutes(v);
  if (unit == "h") return Duration::hours(v);
  return std::nullopt;
}

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": expected key = value, got '" + t + "'");
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": empty key");
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot read config file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

bool Config::has(const std::string& key) const { return values_.contains(key); }

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!read_.contains(k)) out.push_back(k);
  }
  return out;
}

const std::string& Config::raw(const std::string& key) const {
  read_[key] = true;
  return values_.at(key);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return has(key) ? raw(key) : fallback;
}

long Config::get_int(const std::string& key, long fallback) const {
  if (!has(key)) return fallback;
  const std::string& v = raw(key);
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size()) {
    throw std::invalid_argument("config key '" + key + "': not an integer: " + v);
  }
  return out;
}

double Config::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const std::string& v = raw(key);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) {
    throw std::invalid_argument("config key '" + key + "': not a number: " + v);
  }
  return out;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string& v = raw(key);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw std::invalid_argument("config key '" + key + "': not a bool: " + v);
}

Duration Config::get_duration(const std::string& key, Duration fallback) const {
  if (!has(key)) return fallback;
  const std::string& v = raw(key);
  const auto d = parse_duration(v);
  if (!d) {
    throw std::invalid_argument("config key '" + key + "': not a duration: " + v);
  }
  return *d;
}

}  // namespace czsync
