// Strict --jobs / CZSYNC_JOBS parsing shared by czsync_bench and
// czsync_cli. The old per-bench copies used std::atoi, which silently
// mapped "abc", "0", and "-3" to the hardware default — a sweep you
// thought was serialized could quietly run on 8 threads.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace czsync::util {

/// Parses a job count: strictly positive decimal integer, whole string
/// consumed, within int range. Returns nullopt and fills *error (when
/// non-null) with a human-readable reason otherwise.
[[nodiscard]] std::optional<int> parse_jobs(std::string_view text,
                                            std::string* error = nullptr);

/// Job count from the CZSYNC_JOBS environment variable, or
/// ThreadPool::default_jobs() when unset/empty. A set-but-garbage value
/// is an error (nullopt + *error), never a silent fallback.
[[nodiscard]] std::optional<int> jobs_from_env_or_default(
    std::string* error = nullptr);

}  // namespace czsync::util
