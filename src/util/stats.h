// Small statistics toolkit used by the analysis layer and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace czsync {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one.
  void merge(const RunningStats& o);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with exact quantiles. O(n) memory; sorts lazily.
class Series {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Exact quantile with linear interpolation; q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins. Used for reading-error and discontinuity distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_at(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Renders a simple ASCII bar chart, one bin per line.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace czsync
