// Move-only callable with small-buffer-optimized storage.
//
// The simulator schedules millions of short-lived events per run; storing
// each action in a std::function costs a heap allocation whenever the
// capture exceeds the library's tiny SSO buffer (16 bytes on libstdc++).
// SmallFn stores any nothrow-movable callable up to kInlineCapacity bytes
// directly in-place — sized so every scheduling site in the repository
// (network delivery carrying a full net::Message included) stays inline —
// and falls back to a single heap allocation only for oversized captures.
// is_inline() lets the event pool count hits vs. fallback allocations.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace czsync {

class SmallFn {
 public:
  /// Inline storage size. Chosen to fit the largest hot-path event
  /// (net::Network's delivery event: pointer + Message) with headroom.
  static constexpr std::size_t kInlineCapacity = 64;

  /// True when `Fn` is stored in-place (no allocation on construction).
  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  SmallFn() = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    emplace(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs `f` in place —
  /// the allocation-free way to fill a pooled, reused SmallFn.
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) relocate_from(o);
    o.vt_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) relocate_from(o);
      o.vt_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroys the held callable, if any. Trivially-destructible inline
  /// callables skip the indirect destroy call entirely — on the event
  /// pool's churn path (plain-struct actions like the network's delivery
  /// events) this turns the per-event teardown into a branch.
  void reset() {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  /// True when the held callable lives in the inline buffer.
  [[nodiscard]] bool is_inline() const {
    return vt_ != nullptr && vt_->inline_stored;
  }

  /// Invokes the held callable. Precondition: bool(*this).
  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into `to` and destroy `from` (inline) or steal the
    // heap pointer (fallback). Both are noexcept by construction.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool inline_stored;
    // Trivially copyable (hence trivially destructible) inline callable:
    // relocation is a fixed-size memcpy of the whole buffer and reset()
    // needs no destroy call. Both checks stay branches instead of
    // indirect calls — the event pool moves every action once per fire,
    // so this is two saved indirections per simulated event.
    bool trivial;
  };

  // Relocation with `vt_` already set from `o`. Copying the full inline
  // buffer is deliberate: a constant-size memcpy compiles to a handful of
  // vector moves, cheaper than an indirect call that moves sizeof(Fn)
  // bytes. The bytes past sizeof(Fn) are unsigned char and may be
  // indeterminate; copying them is harmless.
  void relocate_from(SmallFn& o) noexcept {
    if (vt_->trivial) {
      std::memcpy(buf_, o.buf_, kInlineCapacity);
    } else {
      vt_->relocate(o.buf_, buf_);
    }
  }

  template <class Fn>
  static constexpr VTable kInlineVTable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* from, void* to) {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      /*inline_stored=*/true,
      /*trivial=*/std::is_trivially_copyable_v<Fn>};

  template <class Fn>
  static constexpr VTable kHeapVTable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* from, void* to) { ::new (to) Fn*(*static_cast<Fn**>(from)); },
      [](void* p) { delete *static_cast<Fn**>(p); },
      /*inline_stored=*/false,
      /*trivial=*/false};

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const VTable* vt_ = nullptr;
};

}  // namespace czsync
