// Fixed-size worker pool for embarrassingly parallel analysis work.
//
// The simulator itself is single-threaded by design (the paper's event
// model executes one event at a time); parallelism lives strictly ABOVE
// it: independent (Scenario, seed) runs fan out across workers, each with
// its own World, Rng and adversary schedule, and results merge after the
// fact. ThreadPool is the only concurrency primitive in the codebase —
// keep it boring: a mutex-guarded deque, a condition variable, futures
// for results and exception propagation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace czsync {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is clamped to 1). Workers start idle.
  explicit ThreadPool(std::size_t threads);

  /// Clean shutdown: runs every task already submitted, then joins the
  /// workers. Exceptions from drained tasks stay in their futures.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `f` and returns a future for its result. An exception
  /// thrown by the task is captured and rethrown from future::get() in
  /// the submitting thread. Throws std::runtime_error if the pool is
  /// already shutting down.
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    // packaged_task is move-only and std::function requires copyable
    // targets, so the task rides behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Worker count to use when the caller does not specify one:
  /// std::thread::hardware_concurrency, clamped to at least 1.
  [[nodiscard]] static std::size_t default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace czsync
