// ASCII table rendering for bench output (the "tables" of EXPERIMENTS.md).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace czsync {

/// Collects rows and renders an aligned ASCII table with a rule under the
/// header. Cells are strings; numeric helpers format via fmt_num.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  void row(std::initializer_list<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Renders the table; every column is padded to its widest cell.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace czsync
