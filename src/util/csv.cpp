#include "util/csv.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace czsync {

std::string fmt_num(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), width_(columns.size()) {
  write_row(columns);
  rows_ = 0;  // header does not count
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  assert(cells.size() == width_);
  write_row(cells);
  ++rows_;
}

void CsvWriter::row_numeric(std::initializer_list<double> cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(fmt_num(v));
  row(out);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace czsync
