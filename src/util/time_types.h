// Strong time types used throughout the library.
//
// The paper's model has three distinct notions of "time":
//   * real time tau            -> czsync::RealTime
//   * a processor's clock C(.) -> czsync::ClockTime (hardware or logical)
//   * differences of either    -> czsync::Dur
//
// All are thin wrappers over double seconds. Keeping them distinct prevents
// the classic bug family of mixing a local clock reading with a real-time
// instant (which the protocol, by construction, never has access to).
#pragma once

#include <cmath>
#include <compare>
#include <limits>
#include <ostream>

namespace czsync {

/// A span of time in seconds. Used for delays, drift-scaled intervals,
/// clock offsets/biases and error bounds. May be negative (offsets) or
/// +infinity (estimation timeout, Def. 4).
class Dur {
 public:
  constexpr Dur() = default;
  constexpr explicit Dur(double seconds) : s_(seconds) {}

  /// Value in seconds.
  [[nodiscard]] constexpr double sec() const { return s_; }
  /// Value in milliseconds (convenience for reporting).
  [[nodiscard]] constexpr double ms() const { return s_ * 1e3; }

  [[nodiscard]] static constexpr Dur seconds(double s) { return Dur(s); }
  [[nodiscard]] static constexpr Dur millis(double ms) { return Dur(ms * 1e-3); }
  [[nodiscard]] static constexpr Dur micros(double us) { return Dur(us * 1e-6); }
  [[nodiscard]] static constexpr Dur minutes(double m) { return Dur(m * 60.0); }
  [[nodiscard]] static constexpr Dur hours(double h) { return Dur(h * 3600.0); }
  [[nodiscard]] static constexpr Dur zero() { return Dur(0.0); }
  [[nodiscard]] static constexpr Dur infinity() {
    return Dur(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(s_); }
  [[nodiscard]] constexpr Dur abs() const { return Dur(s_ < 0 ? -s_ : s_); }

  constexpr auto operator<=>(const Dur&) const = default;

  constexpr Dur operator+(Dur o) const { return Dur(s_ + o.s_); }
  constexpr Dur operator-(Dur o) const { return Dur(s_ - o.s_); }
  constexpr Dur operator-() const { return Dur(-s_); }
  constexpr Dur operator*(double k) const { return Dur(s_ * k); }
  constexpr Dur operator/(double k) const { return Dur(s_ / k); }
  /// Ratio of two durations (dimensionless).
  constexpr double operator/(Dur o) const { return s_ / o.s_; }
  constexpr Dur& operator+=(Dur o) { s_ += o.s_; return *this; }
  constexpr Dur& operator-=(Dur o) { s_ -= o.s_; return *this; }

 private:
  double s_ = 0.0;
};

constexpr Dur operator*(double k, Dur d) { return d * k; }

/// An instant on the simulator's real-time axis (the tau of the paper).
class RealTime {
 public:
  constexpr RealTime() = default;
  constexpr explicit RealTime(double seconds) : s_(seconds) {}

  [[nodiscard]] constexpr double sec() const { return s_; }
  [[nodiscard]] static constexpr RealTime zero() { return RealTime(0.0); }
  [[nodiscard]] static constexpr RealTime infinity() {
    return RealTime(std::numeric_limits<double>::infinity());
  }

  constexpr auto operator<=>(const RealTime&) const = default;

  constexpr RealTime operator+(Dur d) const { return RealTime(s_ + d.sec()); }
  constexpr RealTime operator-(Dur d) const { return RealTime(s_ - d.sec()); }
  constexpr Dur operator-(RealTime o) const { return Dur(s_ - o.s_); }
  constexpr RealTime& operator+=(Dur d) { s_ += d.sec(); return *this; }

 private:
  double s_ = 0.0;
};

/// A reading of some processor's clock (hardware H_p or logical C_p).
/// ClockTime minus RealTime (bias, Eq. 4) is expressed by taking .sec()
/// explicitly in the analysis layer; the protocol layer never does that.
class ClockTime {
 public:
  constexpr ClockTime() = default;
  constexpr explicit ClockTime(double seconds) : s_(seconds) {}

  [[nodiscard]] constexpr double sec() const { return s_; }
  [[nodiscard]] static constexpr ClockTime zero() { return ClockTime(0.0); }

  constexpr auto operator<=>(const ClockTime&) const = default;

  constexpr ClockTime operator+(Dur d) const { return ClockTime(s_ + d.sec()); }
  constexpr ClockTime operator-(Dur d) const { return ClockTime(s_ - d.sec()); }
  constexpr Dur operator-(ClockTime o) const { return Dur(s_ - o.s_); }
  constexpr ClockTime& operator+=(Dur d) { s_ += d.sec(); return *this; }

 private:
  double s_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, Dur d) {
  return os << d.sec() << "s";
}
inline std::ostream& operator<<(std::ostream& os, RealTime t) {
  return os << "tau=" << t.sec();
}
inline std::ostream& operator<<(std::ostream& os, ClockTime t) {
  return os << "C=" << t.sec();
}

}  // namespace czsync
