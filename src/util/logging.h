// Minimal leveled logger.
//
// Simulations are deterministic, so logs double as debugging traces; the
// default level is Warn to keep test and bench output clean. Each
// simulator is single-threaded, but parallel sweeps run several
// simulators at once against this one global sink, so write/set_sink are
// serialized by a mutex (the level check stays lock-free).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace czsync {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global logger; a single sink, defaulting to stderr.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel lv) { level_.store(lv, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel lv) const { return lv >= level(); }

  /// Replaces the output sink (e.g. to capture logs in tests).
  void set_sink(Sink sink);
  void write(LogLevel lv, const std::string& msg);

 private:
  Logger();
  std::atomic<LogLevel> level_ = LogLevel::Warn;
  std::mutex mu_;
  Sink sink_;
};

[[nodiscard]] const char* to_string(LogLevel lv);

namespace log_detail {
/// Builds a message via operator<< and forwards it to the logger on
/// destruction. Instantiated only when the level is enabled.
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel lv) : lv_(lv) {}
  ~LineBuilder() { Logger::instance().write(lv_, os_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lv_;
  std::ostringstream os_;
};
}  // namespace log_detail

}  // namespace czsync

#define CZ_LOG(lv)                                  \
  if (!::czsync::Logger::instance().enabled(lv)) {} \
  else ::czsync::log_detail::LineBuilder(lv)

#define CZ_TRACE CZ_LOG(::czsync::LogLevel::Trace)
#define CZ_DEBUG CZ_LOG(::czsync::LogLevel::Debug)
#define CZ_INFO CZ_LOG(::czsync::LogLevel::Info)
#define CZ_WARN CZ_LOG(::czsync::LogLevel::Warn)
#define CZ_ERROR CZ_LOG(::czsync::LogLevel::Error)
