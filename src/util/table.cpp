#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace czsync {

TextTable::TextTable(std::vector<std::string> columns)
    : header_(std::move(columns)) {}

void TextTable::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

void TextTable::row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = header_.empty() ? 0 : 2 * (header_.size() - 1);
  for (auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace czsync
