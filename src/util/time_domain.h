// Strong time-domain types used throughout the library (DESIGN.md §4.14).
//
// The paper's correctness argument rests on keeping three time axes
// straight, and a tau-vs-H confusion would compile silently if all three
// were raw doubles. They are therefore distinct wrapper types:
//
//   * real time tau                      -> czsync::SimTau
//   * hardware clocks H_p(tau) (Def. 1)  -> czsync::HwTime
//   * logical clocks C_p = H_p + adj_p   -> czsync::LogicalTime
//   * spans / delays / offsets / bounds  -> czsync::Duration
//
// Only physically meaningful operations exist:
//   point - point  = Duration,   within ONE domain;
//   point +- Duration            stays in-domain;
//   cross-domain comparison, arithmetic and implicit conversion are
//   compile errors (tests/compile_fail/ proves each one fails to build).
//
// Every legitimate domain crossing is a named, greppable cast:
//   * HwTime::from_tau_unsafe(tau)       clock models evaluating
//                                        H(tau) on the real-time axis;
//   * LogicalTime::from_hw(h, adj)       the definitional C = H + adj
//     / LogicalTime::minus_hw(h)         and its inverse (adj = C - H);
//   * .raw() / explicit X(double)        serialization (trace/wire
//                                        formats), envelope
//                                        reconstruction, and analysis
//                                        code that measures bias C - tau
//                                        (which no processor may do).
// czsync-lint rule `unsafe-cast-audit` requires a `// time: <why>`
// justification at every `_unsafe`/`.raw()` call site under src/.
//
// All four types are trivially copyable doubles with identical codegen
// to the raw value (static_asserts below); serializing `.raw()` writes
// the very same f64 the old code wrote, so trace bytes are unchanged.
//
// This header lives in util/ because every layer of the DAG — including
// sim/, which must not see core/ — speaks these types; protocol-layer
// code includes the core/time_domain.h facade instead.
#pragma once

#include <cmath>
#include <compare>
#include <limits>
#include <ostream>
#include <type_traits>

namespace czsync {

/// A span of time in seconds. Used for delays, drift-scaled intervals,
/// clock offsets/biases and error bounds. May be negative (offsets) or
/// +infinity (estimation timeout, Def. 4). Durations are domain-free:
/// "3 seconds" means the same on every axis, so reading .sec() is not a
/// domain escape (unlike a point type's .raw()).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(double seconds) : s_(seconds) {}

  /// Value in seconds.
  [[nodiscard]] constexpr double sec() const { return s_; }
  /// Value in milliseconds (convenience for reporting).
  [[nodiscard]] constexpr double ms() const { return s_ * 1e3; }

  [[nodiscard]] static constexpr Duration seconds(double s) {
    return Duration(s);
  }
  [[nodiscard]] static constexpr Duration millis(double ms) {
    return Duration(ms * 1e-3);
  }
  [[nodiscard]] static constexpr Duration micros(double us) {
    return Duration(us * 1e-6);
  }
  [[nodiscard]] static constexpr Duration minutes(double m) {
    return Duration(m * 60.0);
  }
  [[nodiscard]] static constexpr Duration hours(double h) {
    return Duration(h * 3600.0);
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0.0); }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(s_); }
  [[nodiscard]] constexpr Duration abs() const {
    return Duration(s_ < 0 ? -s_ : s_);
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(s_ + o.s_); }
  constexpr Duration operator-(Duration o) const { return Duration(s_ - o.s_); }
  constexpr Duration operator-() const { return Duration(-s_); }
  constexpr Duration operator*(double k) const { return Duration(s_ * k); }
  constexpr Duration operator/(double k) const { return Duration(s_ / k); }
  /// Ratio of two durations (dimensionless).
  constexpr double operator/(Duration o) const { return s_ / o.s_; }
  constexpr Duration& operator+=(Duration o) { s_ += o.s_; return *this; }
  constexpr Duration& operator-=(Duration o) { s_ -= o.s_; return *this; }

 private:
  double s_ = 0.0;
};

constexpr Duration operator*(double k, Duration d) { return d * k; }

namespace detail {

/// CRTP base of the three point-on-an-axis types. Each derived type gets
/// the full in-domain algebra; nothing here is templated over TWO point
/// types, so every cross-domain expression fails overload resolution at
/// compile time (there is no candidate to reject — and no implicit
/// conversion path, because construction from double is explicit and
/// construction from a sibling domain does not exist).
template <class D>
class TimePointBase {
 public:
  constexpr TimePointBase() = default;

  /// Raw value on this axis, in seconds. Reading it erases the domain:
  /// call sites under src/ carry a `// time: <why>` justification,
  /// enforced by czsync-lint rule `unsafe-cast-audit`.
  [[nodiscard]] constexpr double raw() const { return s_; }

  [[nodiscard]] static constexpr D zero() { return D(0.0); }
  [[nodiscard]] static constexpr D infinity() {
    return D(std::numeric_limits<double>::infinity());
  }

  friend constexpr bool operator==(D a, D b) { return a.s_ == b.s_; }
  friend constexpr auto operator<=>(D a, D b) { return a.s_ <=> b.s_; }

  friend constexpr D operator+(D p, Duration d) { return D(p.s_ + d.sec()); }
  friend constexpr D operator-(D p, Duration d) { return D(p.s_ - d.sec()); }
  friend constexpr Duration operator-(D a, D b) { return Duration(a.s_ - b.s_); }
  constexpr D& operator+=(Duration d) {
    s_ += d.sec();
    return static_cast<D&>(*this);
  }
  constexpr D& operator-=(Duration d) {
    s_ -= d.sec();
    return static_cast<D&>(*this);
  }

 protected:
  constexpr explicit TimePointBase(double seconds) : s_(seconds) {}
  double s_ = 0.0;
};

}  // namespace detail

/// An instant on the one true real-time axis (the tau of the paper):
/// virtual simulator time in sim builds, the shared CLOCK_MONOTONIC
/// epoch axis in rt builds. Protocol engines never hold one — by
/// construction they can only read clocks.
class SimTau : public detail::TimePointBase<SimTau> {
 public:
  constexpr SimTau() = default;
  constexpr explicit SimTau(double seconds) : TimePointBase(seconds) {}
};

/// A reading of some processor's hardware clock H_p (Definition 1):
/// monotone, drift-bounded, unresettable. RTTs and alarm targets are
/// measured on this axis because the logical clock may be adjusted
/// backwards mid-interval.
class HwTime : public detail::TimePointBase<HwTime> {
 public:
  constexpr HwTime() = default;
  constexpr explicit HwTime(double seconds) : TimePointBase(seconds) {}

  /// Clock-model boundary: reinterprets a real-time instant as a
  /// hardware reading with the same numeric value. Only clock models
  /// evaluating H(tau) = offset + rate * tau (clk::HardwareClock's fold
  /// point, rt::Clock's configured perturbation) may cross this way;
  /// call sites carry a `// time:` justification (lint-enforced).
  [[nodiscard]] static constexpr HwTime from_tau_unsafe(SimTau t) {
    return HwTime(t.raw());
  }
};

/// A reading of some processor's logical clock C_p = H_p + adj_p
/// (Definition 1) — the value the protocol exchanges, adjusts and
/// ultimately synchronizes.
class LogicalTime : public detail::TimePointBase<LogicalTime> {
 public:
  constexpr LogicalTime() = default;
  constexpr explicit LogicalTime(double seconds) : TimePointBase(seconds) {}

  /// The definitional crossing C = H + adj (clk::LogicalClock::read and
  /// the offline envelope reconstruction). Named rather than an
  /// operator so hardware readings never silently become logical ones.
  [[nodiscard]] static constexpr LogicalTime from_hw(HwTime h, Duration adj) {
    return LogicalTime(h.raw() + adj.sec());
  }

  /// Inverse of from_hw: the adjustment that makes this logical value
  /// out of hardware reading `h` (adversary clock smash, Lemma 7
  /// bookkeeping).
  [[nodiscard]] constexpr Duration minus_hw(HwTime h) const {
    return Duration(raw() - h.raw());
  }
};

/// True for the point-on-an-axis types (not Duration). The compile-fail
/// harness and generic trace plumbing key on this.
template <class T>
inline constexpr bool is_time_point_v =
    std::is_base_of_v<detail::TimePointBase<T>, T>;

// Zero-overhead claim, enforced: each type is layout-identical to the
// double it wraps, trivially copyable and passable in registers, so
// strong typing compiles to the same codegen as raw doubles (the bench
// floors in tools/check_bench_regression.py hold this to account).
static_assert(sizeof(Duration) == sizeof(double));
static_assert(sizeof(SimTau) == sizeof(double));
static_assert(sizeof(HwTime) == sizeof(double));
static_assert(sizeof(LogicalTime) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Duration> &&
              std::is_trivially_copyable_v<SimTau> &&
              std::is_trivially_copyable_v<HwTime> &&
              std::is_trivially_copyable_v<LogicalTime>);
static_assert(std::is_standard_layout_v<SimTau> &&
              std::is_standard_layout_v<HwTime> &&
              std::is_standard_layout_v<LogicalTime>);
static_assert(is_time_point_v<SimTau> && is_time_point_v<HwTime> &&
              is_time_point_v<LogicalTime> && !is_time_point_v<Duration>);

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.sec() << "s";
}
inline std::ostream& operator<<(std::ostream& os, SimTau t) {
  return os << "tau=" << t.raw();  // time: rendering for humans
}
inline std::ostream& operator<<(std::ostream& os, HwTime t) {
  return os << "H=" << t.raw();  // time: rendering for humans
}
inline std::ostream& operator<<(std::ostream& os, LogicalTime t) {
  return os << "C=" << t.raw();  // time: rendering for humans
}

}  // namespace czsync
