#include "util/metrics.h"

#include <algorithm>

namespace czsync::util {

void MetricRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name),
                     Entry{static_cast<double>(delta), /*integral=*/true});
  } else {
    it->second.value += static_cast<double>(delta);
    it->second.integral = true;
  }
}

void MetricRegistry::counter(std::string_view name, std::uint64_t v) {
  entries_[std::string(name)] = Entry{static_cast<double>(v), true};
}

void MetricRegistry::gauge(std::string_view name, double v) {
  entries_[std::string(name)] = Entry{v, false};
}

void MetricRegistry::maximize(std::string_view name, double v) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name), Entry{v, false});
  } else {
    it->second.value = std::max(it->second.value, v);
    it->second.integral = false;
  }
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  for (const auto& [name, entry] : other.entries_) {
    if (entry.integral) {
      add(name, static_cast<std::uint64_t>(entry.value));
    } else {
      maximize(name, entry.value);
    }
  }
}

bool MetricRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

double MetricRegistry::value(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.value;
}

}  // namespace czsync::util
