#include "util/thread_pool.h"

namespace czsync {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

std::size_t ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace czsync
