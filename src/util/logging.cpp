#include "util/logging.h"

#include <cstdio>

namespace czsync {

const char* to_string(LogLevel lv) {
  switch (lv) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel lv, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", to_string(lv), msg.c_str());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (!sink) return;
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel lv, const std::string& msg) {
  if (!enabled(lv)) return;
  std::lock_guard<std::mutex> lock(mu_);
  sink_(lv, msg);
}

}  // namespace czsync
