#include "util/rng.h"

#include <cmath>

namespace czsync {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64 to obtain
  // an unrelated seed for the child.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  sm ^= 0xd1b54a32d192ed03ULL * (stream_id + 1);
  std::uint64_t child_seed = splitmix64(sm);
  return Rng(child_seed);
}

Rng Rng::fork(std::string_view stream_name) const {
  // FNV-1a over the name, then fork by the hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : stream_name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return fork(h);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform01() < p; }

}  // namespace czsync
