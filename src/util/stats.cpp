#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace czsync {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Series::add(double x) {
  xs_.push_back(x);
  sorted_ = false;
}

void Series::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Series::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Series::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Series::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Series::quantile(double q) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  double t = span > 0 ? (x - lo_) / span : 0.0;
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os.setf(std::ios::scientific);
    os.precision(2);
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    const auto bar = counts_[i] * width / peak;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace czsync
