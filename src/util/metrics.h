// Unified metrics pipeline: named counters and gauges with hierarchical
// dot-separated prefixes ("sim.event_pool.pushed", "net.sent", ...).
//
// The hot layers (EventQueue, Network, the protocol engines) keep their
// cheap always-on stats structs — plain increments on cache lines they
// already touch — and EXPORT into a MetricRegistry snapshot after a run.
// The registry is therefore a collection format, not a hot-path counter:
// one queryable, deterministically ordered map that the experiment
// harness serializes into RunRecord JSON and tools diff across PRs.
//
// Counters are integral and sum when exported repeatedly (so exporting
// every node's SyncStats into one scope aggregates across the ensemble);
// gauges are doubles and either overwrite (gauge) or keep the maximum
// (maximize).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace czsync::util {

class MetricRegistry {
 public:
  struct Entry {
    double value = 0.0;
    /// Counters render as integers in JSON/tables; gauges as doubles.
    bool integral = true;
  };
  using Map = std::map<std::string, Entry, std::less<>>;

  /// Adds `delta` to the counter `name`, creating it at zero first.
  void add(std::string_view name, std::uint64_t delta);
  /// Sets the counter `name` to `v`.
  void counter(std::string_view name, std::uint64_t v);
  /// Sets the gauge `name` to `v`.
  void gauge(std::string_view name, double v);
  /// Sets the gauge `name` to max(current, v); missing counts as v.
  void maximize(std::string_view name, double v);

  /// Accumulates `other` into this registry — counters add, gauges take
  /// the maximum. The cross-run aggregation used for harness totals.
  void merge_from(const MetricRegistry& other);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Value of `name`, or 0 when absent (absent counters never fired).
  [[nodiscard]] double value(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Name-sorted (deterministic serialization order).
  [[nodiscard]] const Map& entries() const { return entries_; }

  /// A prefixing view: every write through a Scope lands in the parent
  /// registry under "prefix.name". Scopes nest ("sim" -> "sim.event_pool").
  class Scope {
   public:
    Scope(MetricRegistry& reg, std::string_view prefix)
        : reg_(&reg), prefix_(std::string(prefix) + ".") {}

    [[nodiscard]] Scope scope(std::string_view sub) const {
      return Scope(*reg_, prefix_ + std::string(sub));
    }
    void add(std::string_view name, std::uint64_t delta) {
      reg_->add(prefix_ + std::string(name), delta);
    }
    void counter(std::string_view name, std::uint64_t v) {
      reg_->counter(prefix_ + std::string(name), v);
    }
    void gauge(std::string_view name, double v) {
      reg_->gauge(prefix_ + std::string(name), v);
    }
    void maximize(std::string_view name, double v) {
      reg_->maximize(prefix_ + std::string(name), v);
    }

   private:
    MetricRegistry* reg_;
    std::string prefix_;  ///< includes the trailing '.'
  };
  [[nodiscard]] Scope scope(std::string_view prefix) {
    return Scope(*this, prefix);
  }

 private:
  Map entries_;
};

}  // namespace czsync::util
