// Deterministic random number generation.
//
// Every stochastic element of a simulation (drift rates, message delays,
// adversary choices) draws from an Rng forked from one master seed, so a
// whole experiment is reproducible from (config, seed). We use
// xoshiro256++ seeded via splitmix64 — fast, high quality, and trivially
// forkable without correlation.
#pragma once

#include <cstdint>
#include <string_view>

namespace czsync {

/// splitmix64 step; used for seeding and for hashing stream names.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Derives an independent child stream identified by `stream_id`.
  /// fork(a) and fork(b) for a != b are statistically independent of each
  /// other and of the parent's future output.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;
  /// Convenience: fork keyed by a human-readable stream name.
  [[nodiscard]] Rng fork(std::string_view stream_name) const;

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial with probability p of true.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  // Cached second output of the polar method.
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace czsync
