// CSV emission for experiment results (series a plotting tool can ingest).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace czsync {

/// Streams rows of a CSV table to an ostream. Quotes fields when needed.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> columns);

  /// Writes one data row; the number of cells must match the header.
  void row(std::initializer_list<std::string> cells);
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row_numeric(std::initializer_list<double> cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& s);

  std::ostream& os_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// Formats a double compactly (up to 9 significant digits, no trailing noise).
[[nodiscard]] std::string fmt_num(double v);

}  // namespace czsync
