#include "util/jobs.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/thread_pool.h"

namespace czsync::util {

std::optional<int> parse_jobs(std::string_view text, std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<int> {
    if (error) *error = why;
    return std::nullopt;
  };
  if (text.empty()) return fail("job count is empty");
  // std::from_chars accepts a leading '-'; reject any non-digit up front
  // so "-3", "+3", " 3" and "3 " all fail loudly.
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return fail("job count '" + std::string(text) +
                  "' is not a positive integer");
    }
  }
  int jobs = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), jobs);
  if (ec == std::errc::result_out_of_range) {
    return fail("job count '" + std::string(text) + "' is out of range");
  }
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return fail("job count '" + std::string(text) +
                "' is not a positive integer");
  }
  if (jobs <= 0) {
    return fail("job count must be >= 1, got '" + std::string(text) + "'");
  }
  return jobs;
}

std::optional<int> jobs_from_env_or_default(std::string* error) {
  const char* env = std::getenv("CZSYNC_JOBS");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(ThreadPool::default_jobs());
  }
  std::string why;
  const auto jobs = parse_jobs(env, &why);
  if (!jobs) {
    if (error) *error = "CZSYNC_JOBS: " + why;
    return std::nullopt;
  }
  return jobs;
}

}  // namespace czsync::util
