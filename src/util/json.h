// Minimal streaming JSON writer for RunRecord emission — no DOM, no
// parsing, just correctly escaped, deterministically ordered output.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace czsync::util {

/// Streams a JSON document to an ostream with 2-space indentation.
/// Usage mirrors the document structure:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("seed"); w.value(std::uint64_t{7});
///   w.key("metrics"); w.begin_object(); ... w.end_object();
///   w.end_object();
///
/// Misuse (value without key inside an object, unbalanced begin/end) is
/// caught by asserts, not exceptions: the writer is driver-internal.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Names the next value inside an object.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void null();

  /// Escapes `s` per RFC 8259 (quotes included in the return).
  [[nodiscard]] static std::string quote(std::string_view s);

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace czsync::util
