#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace czsync::util {

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Ctx::kObject) {
    assert(key_pending_ && "object members need key() first");
    key_pending_ = false;
    return;
  }
  // Array element.
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Ctx::kObject);
  assert(!key_pending_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Ctx::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Ctx::kObject);
  assert(!key_pending_);
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << quote(name) << ": ";
  key_pending_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  os_ << quote(s);
}

void JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; emit as string so readers see the intent.
    os_ << (std::isnan(d) ? "\"nan\"" : (d > 0 ? "\"inf\"" : "\"-inf\""));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os_ << buf;
}

void JsonWriter::value(std::int64_t i) {
  before_value();
  os_ << i;
}

void JsonWriter::value(std::uint64_t u) {
  before_value();
  os_ << u;
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

}  // namespace czsync::util
