// Minimal key=value configuration files for the CLI driver.
//
// Format: one `key = value` per line; `#` starts a comment; whitespace
// is trimmed; later assignments override earlier ones. Durations accept
// the suffixes us, ms, s, m, h (e.g. "50ms", "1.5h").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/time_domain.h"

namespace czsync {

/// Parses "123us" / "50ms" / "2.5s" / "10m" / "1h" / bare seconds.
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<Duration> parse_duration(const std::string& text);

class Config {
 public:
  /// Parses a config from text. Throws std::invalid_argument with a
  /// line-numbered message on malformed lines.
  [[nodiscard]] static Config parse(const std::string& text);
  /// Loads and parses a file. Throws std::runtime_error if unreadable.
  [[nodiscard]] static Config load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Keys present in the file but never read through a getter — catches
  /// typos in config files.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  // Typed getters; each returns `fallback` when the key is absent and
  // throws std::invalid_argument when present but malformed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] Duration get_duration(const std::string& key, Duration fallback) const;

 private:
  const std::string& raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace czsync
