#include "sim/event_queue.h"

#include <cassert>

namespace czsync::sim {

void EventQueueStats::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("pushed", pushed);
  scope.counter("popped", popped);
  scope.counter("cancelled", cancelled);
  scope.counter("stale_skipped", stale_skipped);
  scope.counter("inline_actions", inline_actions);
  scope.counter("fallback_allocs", fallback_allocs);
  scope.counter("peak_slots", peak_slots);
  scope.counter("fanout_batches", fanout_batches);
  scope.counter("fanout_entries", fanout_entries);
  scope.counter("fanout_cancelled", fanout_cancelled);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t low = static_cast<std::uint32_t>(id);
  if (low == 0) return false;  // kNoEvent
  const std::uint32_t index = low - 1;
  if (index >= slots_.size()) return false;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  Slot& s = slots_[index];
  if (!s.occupied || s.gen != gen) return false;  // fired, cancelled, stale
  if (s.stamps != nullptr) ++stats_.fanout_cancelled;
  ShardState& sh = shards_[s.shard];
  if (sh.has_cached && sh.cached.slot == index) {
    // Cancelling the shard's earliest event: invalidate its cached-min
    // entry eagerly. This keeps the invariant that caches are never
    // stale, which is what lets peek skip the slot probe entirely.
    assert(sh.cached.gen == gen);
    sh.has_cached = false;
  }
  release_slot(index);  // any heap entry goes stale and is skipped lazily
  --live_;
  ++stats_.cancelled;
  return true;
}

EventQueue::Action EventQueue::pop(SimTau& t) {
  [[maybe_unused]] const Entry* top = peek_entry();
  assert(top != nullptr);
  ShardState& sh = shards_[min_shard_];
  const Entry e = sh.cached;
  sh.has_cached = false;
  t = e.t;
  Slot& s = slots_[e.slot];
  assert(s.occupied && s.gen == e.gen);
  assert(s.stamps == nullptr && "fanout trains fire via fire_top()");
  Action fn = std::move(s.fn);
  release_slot(e.slot);
  --live_;
  ++stats_.popped;
  return fn;
}

void EventQueue::fire_train_entry(const Entry& e, Slot& s) {
  // Train entry. Re-arm the next stamp (same generation) BEFORE invoking:
  // if the action cancels its own train, the just-armed entry goes stale
  // via the generation bump, exactly like any cancelled event. The action
  // is moved out for the call — a cancel() from inside it resets the
  // slot's fn, which must not destroy the currently-running callable —
  // and moved back afterwards iff the train is still live.
  ++stats_.fanout_entries;
  const std::uint32_t next = s.stamp_next + 1;
  if (next < s.stamp_count) {
    s.stamp_next = next;
    insert_entry(Entry{s.stamps[next].t, s.stamps[next].seq, e.slot, e.gen});
    Action fn = std::move(s.fn);
    fn();
    Slot& again = slots_[e.slot];  // re-fetch: fn may have grown the slab
    if (again.occupied && again.gen == e.gen) again.fn = std::move(fn);
    return;
  }
  // Final entry: the train completes and its slot is released like a
  // plain event's.
  Action fn = std::move(s.fn);
  release_slot(e.slot);
  --live_;
  ++stats_.popped;
  fn();
}

}  // namespace czsync::sim
