#include "sim/event_queue.h"

#include <cassert>

namespace czsync::sim {

void EventQueueStats::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("pushed", pushed);
  scope.counter("popped", popped);
  scope.counter("cancelled", cancelled);
  scope.counter("stale_skipped", stale_skipped);
  scope.counter("inline_actions", inline_actions);
  scope.counter("fallback_allocs", fallback_allocs);
  scope.counter("peak_slots", peak_slots);
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kFreeListEnd) {
    const std::uint32_t index = free_head_;
    Slot& s = slots_[index];
    free_head_ = s.next_free;
    s.next_free = kFreeListEnd;
    s.occupied = true;
    return index;
  }
  slots_.emplace_back().occupied = true;
  if (slots_.size() > stats_.peak_slots) stats_.peak_slots = slots_.size();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn.reset();
  s.occupied = false;
  ++s.gen;  // invalidates every outstanding EventId / heap entry for it
  s.next_free = free_head_;
  free_head_ = index;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t low = static_cast<std::uint32_t>(id);
  if (low == 0) return false;  // kNoEvent
  const std::uint32_t index = low - 1;
  if (index >= slots_.size()) return false;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  Slot& s = slots_[index];
  if (!s.occupied || s.gen != gen) return false;  // fired, cancelled, stale
  release_slot(index);  // the heap entry goes stale and is skipped on pop
  --live_;
  ++stats_.cancelled;
  return true;
}

void EventQueue::skip_stale() const {
  while (!heap_.empty()) {
    const Entry& e = heap_.top();
    const Slot& s = slots_[e.slot];
    if (s.occupied && s.gen == e.gen) break;
    heap_.pop();
    ++stats_.stale_skipped;
  }
}

bool EventQueue::empty() const {
  skip_stale();
  return heap_.empty();
}

RealTime EventQueue::next_time() const {
  skip_stale();
  assert(!heap_.empty());
  return heap_.top().t;
}

EventQueue::Action EventQueue::pop(RealTime& t) {
  skip_stale();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  t = e.t;
  Slot& s = slots_[e.slot];
  assert(s.occupied && s.gen == e.gen);
  Action fn = std::move(s.fn);
  release_slot(e.slot);
  --live_;
  ++stats_.popped;
  return fn;
}

}  // namespace czsync::sim
