#include "sim/event_queue.h"

#include <cassert>

namespace czsync::sim {

EventId EventQueue::push(RealTime t, Action fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  actions_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::skip_tombstones() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skip_tombstones();
  return heap_.empty();
}

RealTime EventQueue::next_time() const {
  skip_tombstones();
  assert(!heap_.empty());
  return heap_.top().t;
}

EventQueue::Action EventQueue::pop(RealTime& t) {
  skip_tombstones();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  t = e.t;
  auto it = actions_.find(e.id);
  assert(it != actions_.end());
  Action fn = std::move(it->second);
  actions_.erase(it);
  --live_;
  return fn;
}

}  // namespace czsync::sim
