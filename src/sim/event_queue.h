// Priority queue of timed events with O(log n) cancellation.
//
// Events at equal times fire in scheduling (FIFO) order, which together
// with seeded RNG makes every simulation bit-reproducible.
//
// Storage is a slab/free-list pool: each event's action lives inline in a
// pool slot (SmallFn small-buffer storage — typical lambdas never touch
// the allocator), heap entries carry only (time, seq, slot, generation),
// and cancellation flips the slot in place. A stale heap entry — its slot
// was cancelled or already reused — is detected on pop by a generation
// mismatch, so there are no hash-map lookups or tombstone sets anywhere
// on the hot path. The steady state of a simulation run performs zero
// allocations once the slab and heap have reached their high-water marks.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/metrics.h"
#include "util/small_fn.h"
#include "util/time_types.h"

namespace czsync::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued and may be used as "no event".
/// Internally encodes (slot generation << 32) | (slot index + 1), so a
/// handle kept past its event's lifetime is rejected even after the slot
/// has been reused.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Always-on counters; cheap enough for release builds (plain increments
/// on paths that already touch the same cache lines).
struct EventQueueStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t cancelled = 0;
  /// Heap entries discarded because their slot generation no longer
  /// matched (the lazy-deletion analogue of the old tombstone set).
  std::uint64_t stale_skipped = 0;
  /// Actions stored in-slot vs. oversized captures that fell back to one
  /// heap allocation (see SmallFn::kInlineCapacity).
  std::uint64_t inline_actions = 0;
  std::uint64_t fallback_allocs = 0;
  /// Slab high-water mark: peak number of concurrently pooled slots.
  std::size_t peak_slots = 0;

  /// Snapshot into `scope` (one entry per counter, same names as the
  /// fields) for RunRecord emission.
  void export_metrics(util::MetricRegistry::Scope scope) const;
};

/// Min-heap of (time, sequence) ordered events backed by the slot pool.
class EventQueue {
 public:
  using Action = SmallFn;

  /// Enqueues `fn` (any void() callable) to fire at time `t`; the callable
  /// is constructed directly in a pool slot. Returns a cancellable handle.
  template <class F>
  EventId push(RealTime t, F&& fn) {
    const std::uint32_t index = acquire_slot();
    Slot& s = slots_[index];
    s.fn.emplace(std::forward<F>(fn));
    heap_.push(Entry{t, next_seq_++, index, s.gen});
    ++live_;
    ++stats_.pushed;
    if (s.fn.is_inline()) {
      ++stats_.inline_actions;
    } else {
      ++stats_.fallback_allocs;
    }
    return encode(index, s.gen);
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] RealTime next_time() const;

  /// Time of the earliest live event, or nullptr when the queue is empty.
  /// One stale-skip pass covering the empty()/next_time()/pop() triple in
  /// the simulator's step loop.
  [[nodiscard]] const RealTime* peek_time() const {
    skip_stale();
    return heap_.empty() ? nullptr : &heap_.top().t;
  }

  /// Removes and returns the earliest live event's action, advancing past
  /// stale heap entries. The slot is released before returning, so the
  /// action may re-schedule into it. Precondition: !empty(). Sets `t` to
  /// the event's time.
  Action pop(RealTime& t);

  /// Number of live events (O(1), maintained incrementally).
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever pushed (for throughput accounting).
  [[nodiscard]] std::uint64_t total_pushed() const { return stats_.pushed; }

  [[nodiscard]] const EventQueueStats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;

  struct Slot {
    Action fn;
    /// Bumped every time the slot is released; heap entries and EventIds
    /// carrying an older generation are stale.
    std::uint32_t gen = 0;
    bool occupied = false;
    std::uint32_t next_free = kFreeListEnd;
  };

  struct Entry {
    RealTime t;
    std::uint64_t seq;  ///< global push order: FIFO tie-break at equal t
    std::uint32_t slot;
    std::uint32_t gen;
    // Heap entries are compared so that the smallest time (then smallest
    // seq, i.e. FIFO) is on top of the max-heap-by-default priority_queue.
    // Ordering is RealTime's own comparison, not raw double access.
    bool operator<(const Entry& o) const {
      if (t != o.t) return o.t < t;
      return seq > o.seq;
    }
  };

  static constexpr EventId encode(std::uint32_t index, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(index) + 1);
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void skip_stale() const;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kFreeListEnd;
  mutable std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  mutable EventQueueStats stats_;
};

}  // namespace czsync::sim
