// Priority queue of timed events with O(log n) cancellation.
//
// Events at equal times fire in scheduling (FIFO) order, which together
// with seeded RNG makes every simulation bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time_types.h"

namespace czsync::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued and may be used as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Min-heap of (time, sequence) ordered events. Cancellation is lazy:
/// cancelled ids are tombstoned and skipped on pop.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Enqueues `fn` to fire at time `t`. Returns a cancellable handle.
  EventId push(RealTime t, Action fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] RealTime next_time() const;

  /// Removes and returns the earliest live event's action, advancing past
  /// tombstones. Precondition: !empty(). Sets `t` to the event's time.
  Action pop(RealTime& t);

  /// Number of live events (O(1), maintained incrementally).
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever pushed (for throughput accounting).
  [[nodiscard]] std::uint64_t total_pushed() const { return next_id_ - 1; }

 private:
  struct Entry {
    RealTime t;
    EventId id;
    // Heap entries are compared so that the smallest time (then smallest
    // id, i.e. FIFO) is on top of the max-heap-by-default priority_queue.
    bool operator<(const Entry& o) const {
      if (t.sec() != o.t.sec()) return t.sec() > o.t.sec();
      return id > o.id;
    }
  };

  void skip_tombstones() const;

  mutable std::priority_queue<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, Action> actions_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace czsync::sim
