// Priority queue of timed events with O(log n) cancellation.
//
// Events at equal times fire in scheduling (FIFO) order, which together
// with seeded RNG makes every simulation bit-reproducible.
//
// Storage is a slab/free-list pool: each event's action lives inline in a
// pool slot (SmallFn small-buffer storage — typical lambdas never touch
// the allocator), heap entries carry only (time, seq, slot, generation),
// and cancellation flips the slot in place. A stale heap entry — its slot
// was cancelled or already reused — is detected on pop by a generation
// mismatch, so there are no hash-map lookups or tombstone sets anywhere
// on the hot path. The steady state of a simulation run performs zero
// allocations once the slab and heap have reached their high-water marks.
//
// Two batching layers sit on top of the plain pool:
//
//   * Cached-min entry. The earliest live entry is held outside the
//     binary heap in `cached_`. The dominant simulation pattern —
//     pop the earliest event, which immediately schedules the next
//     earliest — then never touches the heap at all: the new entry
//     replaces the cache in O(1) and the sift-up/sift-down pairs that
//     used to dominate the churn profile disappear.
//
//   * Fanout trains (push_train). A round's n-message fanout occupies
//     ONE pool slot whose heap entry is re-armed once per delivery from
//     a caller-owned, (time, seq)-sorted stamp array. Each stamp's seq
//     is pre-reserved via reserve_seq() at the moment the unbatched code
//     would have pushed, so the train's entries interleave with every
//     other event exactly as n independent pushes would have: global
//     fire order — and therefore czsync-trace-v1 bytes — are unchanged
//     by batching. What changes is the cost: one slot + one live heap
//     entry per round instead of n, and no per-message SmallFn
//     construct/destroy.
//
// Sharding (set_shard_count): the heap + cached-min pair replicated
// K ways, events routed to a shard at push time (the simulator keys
// shards by processor id). Seqs stay GLOBAL and every peek min-merges
// the shards' validated cached-mins on the unique (t, seq) key — fire
// order and trace bytes are bit-identical at any shard count.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/metrics.h"
#include "util/small_fn.h"
#include "util/time_domain.h"

namespace czsync::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued and may be used as "no event".
/// Internally encodes (slot generation << 32) | (slot index + 1), so a
/// handle kept past its event's lifetime is rejected even after the slot
/// has been reused.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// One entry of a fanout train: the absolute fire time plus the global
/// sequence number (from reserve_seq()) that fixes its FIFO rank among
/// all events at equal times. Stamp arrays handed to push_train must be
/// sorted by fire order and outlive the train.
struct BatchStamp {
  SimTau t;
  std::uint64_t seq = 0;
};

/// Always-on counters; cheap enough for release builds (plain increments
/// on paths that already touch the same cache lines).
struct EventQueueStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t cancelled = 0;
  /// Heap entries discarded because their slot generation no longer
  /// matched (the lazy-deletion analogue of the old tombstone set).
  /// Cancelling the *earliest* event does not count here: the cached-min
  /// entry is invalidated eagerly by cancel() and never reaches the
  /// stale-skip pass.
  std::uint64_t stale_skipped = 0;
  /// Actions stored in-slot vs. oversized captures that fell back to one
  /// heap allocation (see SmallFn::kInlineCapacity).
  std::uint64_t inline_actions = 0;
  std::uint64_t fallback_allocs = 0;
  /// Slab high-water mark: peak number of concurrently pooled slots.
  std::size_t peak_slots = 0;
  /// Fanout trains issued via push_train (each counts once in `pushed`).
  std::uint64_t fanout_batches = 0;
  /// Individual train entries fired (n per fully-delivered n-message
  /// train; the per-message analogue of `popped` for batched fanout).
  std::uint64_t fanout_entries = 0;
  /// Trains cancelled mid-flight (each also counts once in `cancelled`;
  /// the entries never delivered are simply dropped with the slot).
  std::uint64_t fanout_cancelled = 0;

  /// Snapshot into `scope` (one entry per counter, same names as the
  /// fields) for RunRecord emission.
  void export_metrics(util::MetricRegistry::Scope scope) const;
};

/// Min-heap of (time, sequence) ordered events backed by the slot pool.
class EventQueue {
 public:
  using Action = SmallFn;

  /// Enqueues `fn` (any void() callable) to fire at time `t`; the callable
  /// is constructed directly in a pool slot. Returns a cancellable handle.
  /// `shard` picks the heap partition (out-of-range routes to shard 0);
  /// shard choice never affects fire order, only pool bookkeeping.
  template <class F>
  EventId push(SimTau t, F&& fn, std::uint32_t shard = 0) {
    const std::uint32_t index = acquire_slot();
    Slot& s = slots_[index];
    s.fn.emplace(std::forward<F>(fn));
    s.shard = shard < shards_.size() ? shard : 0;
    insert_entry(Entry{t, next_seq_++, index, s.gen});
    ++live_;
    ++stats_.pushed;
    if (s.fn.is_inline()) {
      ++stats_.inline_actions;
    } else {
      ++stats_.fallback_allocs;
    }
    return encode(index, s.gen);
  }

  /// Reserves the next global sequence number without scheduling
  /// anything. A fanout batcher calls this once per message at the
  /// instant the unbatched code would have pushed, then hands the
  /// (time, seq) stamps to push_train — preserving the FIFO rank every
  /// message would have had as an independent event.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// Enqueues one pooled fanout train: `fn` fires once per stamp, at the
  /// stamp's (time, seq) position in the global fire order. `stamps`
  /// must be non-empty, sorted by fire order (time, then seq, with seqs
  /// from reserve_seq()), and must stay valid until the train fully
  /// fires or is cancelled. Returns one cancellable handle covering all
  /// undelivered entries.
  template <class F>
  EventId push_train(const BatchStamp* stamps, std::uint32_t count, F&& fn,
                     std::uint32_t shard = 0) {
    assert(stamps != nullptr && count > 0);
    const std::uint32_t index = acquire_slot();
    Slot& s = slots_[index];
    s.fn.emplace(std::forward<F>(fn));
    s.shard = shard < shards_.size() ? shard : 0;
    s.stamps = stamps;
    s.stamp_next = 0;
    s.stamp_count = count;
    insert_entry(Entry{stamps[0].t, stamps[0].seq, index, s.gen});
    ++live_;
    ++stats_.pushed;
    ++stats_.fanout_batches;
    if (s.fn.is_inline()) {
      ++stats_.inline_actions;
    } else {
      ++stats_.fallback_allocs;
    }
    return encode(index, s.gen);
  }

  /// Cancels a pending event (or a whole train's undelivered remainder).
  /// Returns false if the event already fired, was already cancelled, or
  /// never existed.
  bool cancel(EventId id);

  /// Repartitions the pool into `count` (>= 1, clamped) independent
  /// shards, each with its own heap + cached-min pair. Must be called
  /// while the queue holds no live events — World configures sharding
  /// before anything schedules. Fire order is bit-identical at any
  /// count: peek min-merges shards on the global (t, seq) order.
  void set_shard_count(std::uint32_t count) {
    assert(live_ == 0 && "reshard only while the queue is empty");
    shards_.assign(count < 1 ? 1 : count, ShardState{});
    min_shard_ = 0;
  }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return peek_entry() == nullptr; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTau next_time() const {
    const Entry* e = peek_entry();
    assert(e != nullptr);
    return e->t;
  }

  /// Time of the earliest live event, or nullptr when the queue is empty.
  /// One stale-skip pass covering the empty()/next_time()/fire_top()
  /// triple in the simulator's step loop.
  [[nodiscard]] const SimTau* peek_time() const {
    const Entry* e = peek_entry();
    return e == nullptr ? nullptr : &e->t;
  }

  /// Removes and returns the earliest live event's action, advancing past
  /// stale heap entries. The slot is released before returning, so the
  /// action may re-schedule into it. Precondition: !empty() and the
  /// earliest event is not a fanout train (trains are fired in place via
  /// fire_top()). Sets `t` to the event's time.
  Action pop(SimTau& t);

  /// Fires the earliest live event in place: invokes the action after
  /// releasing (plain event) or re-arming (train entry) its slot, fusing
  /// the pop + invoke that pop()-based loops split across a SmallFn
  /// relocation. Precondition: a preceding peek_time() returned non-null
  /// with no intervening mutation. Defined inline: this is the body of
  /// the simulator's step loop, and inlining it next to peek_time() lets
  /// the compiler share the slot load between the two.
  void fire_top() {
    ShardState& sh = shards_[min_shard_];
    assert(sh.has_cached);
    const Entry e = sh.cached;
    sh.has_cached = false;
    Slot& s = slots_[e.slot];
    assert(s.occupied && s.gen == e.gen);
    if (s.stamps == nullptr) {
      // Plain event: release the slot before invoking so the action may
      // re-schedule into it, then run the action from the stack.
      Action fn = std::move(s.fn);
      release_slot(e.slot);
      --live_;
      ++stats_.popped;
      fn();
      return;
    }
    fire_train_entry(e, s);
  }

  /// Convenience for drains outside the simulator: fires the earliest
  /// live event (if any) and reports its time. False when empty.
  bool fire_next(SimTau* t = nullptr) {
    const SimTau* next = peek_time();
    if (next == nullptr) return false;
    if (t != nullptr) *t = *next;
    fire_top();
    return true;
  }

  /// Number of live events (O(1), maintained incrementally). A fanout
  /// train counts as one event regardless of undelivered entries.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever pushed (for throughput accounting).
  [[nodiscard]] std::uint64_t total_pushed() const { return stats_.pushed; }

  [[nodiscard]] const EventQueueStats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;

  struct Slot {
    Action fn;
    /// Bumped every time the slot is released; heap entries and EventIds
    /// carrying an older generation are stale.
    std::uint32_t gen = 0;
    bool occupied = false;
    std::uint32_t next_free = kFreeListEnd;
    /// Heap partition this slot's entries live in; a train's re-armed
    /// entries stay on the shard chosen at push time.
    std::uint32_t shard = 0;
    /// Train state: non-null while the slot holds a fanout train;
    /// stamps[stamp_next] is the next undelivered entry.
    const BatchStamp* stamps = nullptr;
    std::uint32_t stamp_next = 0;
    std::uint32_t stamp_count = 0;
  };

  struct Entry {
    SimTau t;
    std::uint64_t seq;  ///< global push order: FIFO tie-break at equal t
    std::uint32_t slot;
    std::uint32_t gen;
    // Heap entries are compared so that the smallest time (then smallest
    // seq, i.e. FIFO) is on top of the max-heap-by-default priority_queue.
    // Ordering is SimTau's own comparison, not raw double access.
    bool operator<(const Entry& o) const {
      if (t != o.t) return o.t < t;
      return seq > o.seq;
    }
  };

  /// True when `a` fires strictly before `b` (min-order; the inverse
  /// orientation of Entry::operator<, which is max-heap flavoured).
  static bool fires_before(const Entry& a, const Entry& b) {
    return b < a;
  }

  /// Flat 4-ary min-heap of entries in fire order. Four children per
  /// node quarters the sift depth of a binary heap — the heap holds one
  /// entry per live *event or train* (not per message), so it is small
  /// and the wide nodes keep comparisons within one or two cache lines.
  /// (t, seq) keys are unique, so the pop sequence is a strict total
  /// order: swapping the container never reorders anything observable.
  class EntryHeap {
   public:
    [[nodiscard]] bool empty() const { return v_.empty(); }
    [[nodiscard]] const Entry& top() const { return v_[0]; }

    void push(const Entry& e) {
      std::size_t i = v_.size();
      v_.push_back(e);  // placeholder; holes shift down below
      while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!fires_before(e, v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      }
      v_[i] = e;
    }

    void pop() {
      const std::size_t n = v_.size() - 1;
      const Entry last = v_[n];
      v_.pop_back();
      if (n == 0) return;
      sift_down(last, n);
    }

    /// Replaces the top entry with `e` in one sift-down — the fused form
    /// of push(e) + pop() for callers that already consumed top(). The
    /// fire/re-arm cycle of a fanout train hits this once per message.
    void replace_top(const Entry& e) { sift_down(e, v_.size()); }

   private:
    void sift_down(const Entry& e, std::size_t n) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        const std::size_t end = std::min(first + 4, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (fires_before(v_[c], v_[best])) best = c;
        }
        if (!fires_before(v_[best], e)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = e;
    }

    std::vector<Entry> v_;
  };

  static constexpr EventId encode(std::uint32_t index, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(index) + 1);
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kFreeListEnd) {
      const std::uint32_t index = free_head_;
      Slot& s = slots_[index];
      free_head_ = s.next_free;
      s.next_free = kFreeListEnd;
      s.occupied = true;
      return index;
    }
    slots_.emplace_back().occupied = true;
    if (slots_.size() > stats_.peak_slots) stats_.peak_slots = slots_.size();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t index) {
    Slot& s = slots_[index];
    s.fn.reset();
    s.occupied = false;
    ++s.gen;  // invalidates every outstanding EventId / heap entry for it
    s.stamps = nullptr;
    s.stamp_next = 0;
    s.stamp_count = 0;
    s.next_free = free_head_;
    free_head_ = index;
  }

  /// One heap partition: a 4-ary heap plus the cached-min entry held
  /// outside it. `cached` is valid iff has_cached, and never stale —
  /// every path that could invalidate it (cancel of its event) clears
  /// has_cached on the spot, so peek/fire trust it without probing the
  /// slot.
  struct ShardState {
    EntryHeap heap;
    Entry cached{};
    bool has_cached = false;
  };

  /// Refills one shard's cache from its heap, discarding stale entries.
  /// Only entries surfacing from the heap need validation (see
  /// ShardState::cached).
  void skip_stale(ShardState& sh) const {
    while (!sh.has_cached && !sh.heap.empty()) {
      const Entry e = sh.heap.top();
      sh.heap.pop();
      const Slot& s = slots_[e.slot];
      if (s.occupied && s.gen == e.gen) {
        sh.cached = e;
        sh.has_cached = true;
      } else {
        ++stats_.stale_skipped;
      }
    }
  }

  /// Validates every shard's cached-min and returns the global earliest
  /// entry — (t, seq) keys are unique, so the winner is a deterministic
  /// K-way merge independent of shard layout. Remembers the winning
  /// shard for the fire_top()/pop() that follows. Null when drained.
  /// O(shard_count) per call; shard_count is 1 unless configured.
  const Entry* peek_entry() const {
    const Entry* best = nullptr;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      ShardState& sh = shards_[k];
      skip_stale(sh);
      if (!sh.has_cached) continue;
      if (best == nullptr || fires_before(sh.cached, *best)) {
        best = &sh.cached;
        min_shard_ = static_cast<std::uint32_t>(k);
      }
    }
    return best;
  }

  void fire_train_entry(const Entry& e, Slot& s);

  /// Routes a new entry to its slot's shard — cache or heap — preserving
  /// the per-shard invariant: while has_cached, cached fires before every
  /// heap entry (stale ones included — staleness only ever delays, never
  /// reorders).
  void insert_entry(Entry e) {
    ShardState& sh = shards_[slots_[e.slot].shard];
    if (sh.has_cached) {
      if (fires_before(e, sh.cached)) {
        sh.heap.push(sh.cached);
        sh.cached = e;
      } else {
        sh.heap.push(e);
      }
      return;
    }
    // Cache empty (we are mid-fire, or the shard was drained): refill it
    // with the earliest of `e` and the validated heap top. When the heap
    // top wins, `e` takes its place via one sift-down — fusing the heap
    // push the old code did here with the pop the next peek would have
    // paid. The ping-pong churn case (empty heap) stays allocation- and
    // heap-free.
    for (;;) {
      if (sh.heap.empty()) {
        sh.cached = e;
        sh.has_cached = true;
        return;
      }
      const Entry& top = sh.heap.top();
      const Slot& s = slots_[top.slot];
      if (s.occupied && s.gen == top.gen) break;
      ++stats_.stale_skipped;
      sh.heap.pop();
    }
    if (fires_before(e, sh.heap.top())) {
      sh.cached = e;
      sh.has_cached = true;
      return;
    }
    sh.cached = sh.heap.top();
    sh.has_cached = true;
    sh.heap.replace_top(e);
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kFreeListEnd;
  /// Heap partitions (>= 1; exactly one unless set_shard_count was
  /// called). Mutable because peek/skip_stale lazily validate caches
  /// from const observers, same as the single heap they replaced.
  mutable std::vector<ShardState> shards_ = std::vector<ShardState>(1);
  /// Shard whose cached entry won the last peek_entry(); what fire_top
  /// and pop consume. Only meaningful right after a non-null peek.
  mutable std::uint32_t min_shard_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  mutable EventQueueStats stats_;
};

}  // namespace czsync::sim
