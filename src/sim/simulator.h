// Deterministic discrete-event simulator.
//
// This is the "real time" axis of the paper: every network delay, drift
// segment and adversary action is an event on this queue. The simulator is
// single-threaded; concurrency in the modelled system is expressed as
// interleaved events, which is exactly the asynchronous model of §2.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "trace/port.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/time_domain.h"

namespace czsync::sim {

class Simulator {
 public:
  /// Current virtual real time tau.
  [[nodiscard]] SimTau now() const { return now_; }

  /// Partitions the event pool into `count` shards keyed by processor id
  /// (see EventQueue::set_shard_count). Call once, before anything
  /// schedules; `num_procs` sizes the contiguous id -> shard map.
  /// Bit-exact at any count: sharding changes pool bookkeeping, never
  /// fire order.
  void configure_shards(std::uint32_t count, int num_procs) {
    assert(num_procs > 0);
    num_procs_ = num_procs;
    queue_.set_shard_count(count);
  }

  /// Shard owning processor `p`'s events: contiguous id blocks of
  /// ~num_procs/shard_count. Shard 0 (always present) for out-of-range
  /// ids and unconfigured simulators — callers that predate sharding
  /// simply never pass a shard and everything lands there.
  [[nodiscard]] std::uint32_t shard_of(int p) const {
    const std::uint32_t k = queue_.shard_count();
    if (k == 1 || p < 0 || p >= num_procs_) return 0;
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) * k /
                                      static_cast<std::uint64_t>(num_procs_));
  }

  [[nodiscard]] std::uint32_t shard_count() const {
    return queue_.shard_count();
  }

  /// Schedules `fn` (any void() callable; constructed directly in the
  /// event pool, no std::function wrapper) at absolute time `t`; times in
  /// the past are clamped to `now()` (the event fires after
  /// currently-pending events at `now()`). `shard` picks the pool
  /// partition (use shard_of(owner) when sharding is configured).
  template <class F>
  EventId schedule_at(SimTau t, F&& fn, std::uint32_t shard = 0) {
    if (t < now_) t = now_;
    return queue_.push(t, std::forward<F>(fn), shard);
  }

  /// Schedules `fn` to fire `d` from now. `d` must be finite; negative
  /// delays clamp to zero.
  template <class F>
  EventId schedule_after(Duration d, F&& fn, std::uint32_t shard = 0) {
    assert(d.is_finite());
    if (d < Duration::zero()) d = Duration::zero();
    return queue_.push(now_ + d, std::forward<F>(fn), shard);
  }

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Reserves the global FIFO sequence number the next scheduled event
  /// would get, without scheduling. Fanout batchers (net::Network) call
  /// this once per message so a batched train fires in exactly the order
  /// the unbatched per-message pushes would have.
  std::uint64_t reserve_event_seq() { return queue_.reserve_seq(); }

  /// Schedules one pooled fanout train: `fn` fires once per stamp at the
  /// stamp's (time, seq) global-order position. `stamps` must be sorted
  /// by fire order, lie at or after now(), and stay valid until the
  /// train fully fires or is cancelled — see EventQueue::push_train.
  template <class F>
  EventId schedule_train(const BatchStamp* stamps, std::uint32_t count,
                         F&& fn, std::uint32_t shard = 0) {
    assert(count > 0 && !(stamps[0].t < now_));
    return queue_.push_train(stamps, count, std::forward<F>(fn), shard);
  }

  /// Runs events until the queue is exhausted or `limit` is reached;
  /// `now()` ends at min(limit, last event time). Events exactly at
  /// `limit` are executed.
  void run_until(SimTau limit);

  /// Runs for a span of virtual time from the current instant.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Executes exactly one event if any exists before `limit`.
  /// Returns false when nothing was executed.
  bool step(SimTau limit = SimTau::infinity());

  /// Time of the earliest pending event, or SimTau::infinity() when
  /// idle. The peek shares the step loop's stale-skip pass, so calling
  /// it between steps costs O(1).
  [[nodiscard]] SimTau next_event_time() const;

  /// Quiet-interval batch-step: advances now() straight to `t` iff no
  /// event is due at or before `t` — one comparison, no per-event heap
  /// traffic however long the idle gap. Returns false (now() unchanged)
  /// when an event is due first; the caller step()s to drain it and
  /// retries. Times at or before now() trivially succeed. `t` must be
  /// finite. Time-driven drivers (fixed-tick loops, the MC stepper, a
  /// future daemon loop) use this to skip idle regions in O(1) instead
  /// of spinning the event loop.
  bool advance_to(SimTau t);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Event-pool counters (pushes/pops/cancellations, inline vs. fallback
  /// action storage) for perf reporting — see EventQueueStats.
  [[nodiscard]] const EventQueueStats& queue_stats() const {
    return queue_.stats();
  }

  /// Snapshot of the simulator layer into `scope`: executed/pending event
  /// counts plus the pool counters under an "event_pool" sub-scope.
  void export_metrics(util::MetricRegistry::Scope scope) const;

  /// Attaches a trace sink (nullptr detaches — the default). The sink is
  /// pure observation: it records each event fire but never perturbs
  /// scheduling, so traced and untraced runs are bit-identical.
  void set_trace_sink(trace::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] trace::TraceSink* trace_sink() const { return trace_; }

  /// Borrowed window for protocol engines (core/, broadcast/): they sit
  /// below sim/ in the layering DAG and must not include this header, yet
  /// need the installed sink and the current real time to stamp records.
  [[nodiscard]] trace::TracePort trace_port() const {
    return trace::TracePort(&trace_, &now_);
  }

 private:
  EventQueue queue_;
  SimTau now_ = SimTau::zero();
  std::uint64_t executed_ = 0;
  int num_procs_ = 0;  ///< ensemble size behind shard_of (0 = unconfigured)
  trace::TraceSink* trace_ = nullptr;
};

}  // namespace czsync::sim
