#include "sim/simulator.h"

namespace czsync::sim {

bool Simulator::step(SimTau limit) {
  const SimTau* next = queue_.peek_time();
  if (next == nullptr || *next > limit) return false;
  const SimTau t = *next;
  assert(t >= now_);
  now_ = t;
  ++executed_;
  if (trace_ != nullptr) {
    trace_->record(trace::event_fire(t, executed_));
  }
  // Fused fire: the queue invokes the action in place of the peeked
  // entry, skipping the SmallFn relocation a pop()-then-call pays.
  queue_.fire_top();
  return true;
}

SimTau Simulator::next_event_time() const {
  const SimTau* next = queue_.peek_time();
  return next == nullptr ? SimTau::infinity() : *next;
}

bool Simulator::advance_to(SimTau t) {
  assert(t < SimTau::infinity());
  if (t <= now_) return true;
  const SimTau* next = queue_.peek_time();
  if (next != nullptr && *next <= t) return false;
  now_ = t;
  return true;
}

void Simulator::run_until(SimTau limit) {
  while (step(limit)) {
  }
  if (limit > now_ && limit < SimTau::infinity()) now_ = limit;
}

void Simulator::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("events_executed", executed_);
  scope.counter("events_pending", queue_.size());
  queue_.stats().export_metrics(scope.scope("event_pool"));
}

}  // namespace czsync::sim
