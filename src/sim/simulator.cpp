#include "sim/simulator.h"

namespace czsync::sim {

bool Simulator::step(RealTime limit) {
  const RealTime* next = queue_.peek_time();
  if (next == nullptr || *next > limit) return false;
  RealTime t{};
  auto fn = queue_.pop(t);
  assert(t >= now_);
  now_ = t;
  ++executed_;
  if (trace_ != nullptr) {
    trace_->record(trace::event_fire(t.sec(), executed_));
  }
  fn();
  return true;
}

void Simulator::run_until(RealTime limit) {
  while (step(limit)) {
  }
  if (limit > now_ && limit < RealTime::infinity()) now_ = limit;
}

void Simulator::export_metrics(util::MetricRegistry::Scope scope) const {
  scope.counter("events_executed", executed_);
  scope.counter("events_pending", queue_.size());
  queue_.stats().export_metrics(scope.scope("event_pool"));
}

}  // namespace czsync::sim
