#include "sim/simulator.h"

#include <cassert>

namespace czsync::sim {

EventId Simulator::schedule_at(RealTime t, Action fn) {
  if (t < now_) t = now_;
  return queue_.push(t, std::move(fn));
}

EventId Simulator::schedule_after(Dur d, Action fn) {
  assert(d.is_finite());
  if (d < Dur::zero()) d = Dur::zero();
  return queue_.push(now_ + d, std::move(fn));
}

bool Simulator::step(RealTime limit) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > limit) return false;
  RealTime t{};
  auto fn = queue_.pop(t);
  assert(t >= now_);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

void Simulator::run_until(RealTime limit) {
  while (step(limit)) {
  }
  if (limit > now_ && limit < RealTime::infinity()) now_ = limit;
}

}  // namespace czsync::sim
