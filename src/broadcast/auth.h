// Toy message authentication for the broadcast comparator.
//
// The [10]-family algorithms "rely on signatures rather than
// authenticated links" (§1.1). We model signatures with per-processor
// secret keys held by this service: sign(p, payload) is only callable on
// behalf of p (the simulation's calling discipline stands in for key
// possession), and verify is public. Within the simulation this makes
// signatures unforgeable — but, crucially, NOT unreplayable: a genuine
// old signature verifies forever, which is exactly the exposure behind
// [10]'s assumption A4 ("the attacker cannot collect too many bad
// signatures") that experiment E20 demonstrates.
#pragma once

#include <cstdint>

#include "net/message.h"

namespace czsync::broadcast {

class Authenticator {
 public:
  explicit Authenticator(std::uint64_t master_secret);

  /// Signs `payload` with processor `signer`'s key.
  [[nodiscard]] net::Signature sign(net::ProcId signer,
                                    std::uint64_t payload) const;

  /// True iff `sig` is `signer`'s genuine signature over `payload`.
  [[nodiscard]] bool verify(const net::Signature& sig,
                            std::uint64_t payload) const;

  /// Counts distinct signers with valid signatures over `payload`.
  [[nodiscard]] int count_valid(const std::vector<net::Signature>& sigs,
                                std::uint64_t payload) const;

 private:
  [[nodiscard]] std::uint64_t key_of(net::ProcId p) const;
  std::uint64_t master_secret_;
};

}  // namespace czsync::broadcast
