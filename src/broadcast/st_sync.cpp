#include "broadcast/st_sync.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace czsync::broadcast {

StSyncProcess::StSyncProcess(net::Network& network,
                             clk::LogicalClock& clock, net::ProcId id,
                             StConfig config,
                             std::shared_ptr<const Authenticator> auth)
    : network_(network),
      clock_(clock),
      id_(id),
      config_(std::move(config)),
      auth_(std::move(auth)) {
  assert(auth_ != nullptr);
  assert(config_.period > Duration::zero());
  assert(config_.f >= 0);
}

void StSyncProcess::start() {
  assert(!started_);
  started_ = true;
  arm_ready();
}

void StSyncProcess::arm_ready() {
  // Fire when the logical clock reaches T_{last_accepted+1}. The alarm
  // runs on the hardware clock; on_ready re-validates against the
  // logical clock (which acceptance may have moved).
  const std::uint64_t next = last_accepted_ + 1;
  const LogicalTime target(static_cast<double>(next) * config_.period.sec());
  Duration wait = target - clock_.read();
  if (wait < Duration::zero()) wait = Duration::zero();
  ready_alarm_ = clock_.hardware().set_alarm_after(wait, [this] {
    ready_alarm_ = clk::kNoAlarm;
    on_ready();
  });
}

void StSyncProcess::on_ready() {
  const std::uint64_t next = last_accepted_ + 1;
  const LogicalTime target(static_cast<double>(next) * config_.period.sec());
  if (clock_.read() < target) {
    // The clock was adjusted backwards since arming: not ready yet.
    arm_ready();
    return;
  }
  if (!signed_rounds_.contains(next)) {
    signed_rounds_.insert(next);
    ++stats_.rounds_started;
    merge_and_maybe_accept(next, {auth_->sign(id_, next)});
    // Announce our readiness (with every signature gathered so far).
    // When the merge already accepted, accept() broadcast and erased the
    // slot; otherwise progress now depends on further signatures — the
    // ready alarm is NOT re-armed (rounds only advance on acceptance).
    if (pending_.contains(next)) broadcast_round(next);
  }
}

void StSyncProcess::broadcast_round(std::uint64_t round) {
  auto it = pending_.find(round);
  std::vector<net::Signature> sigs;
  if (it != pending_.end()) {
    sigs.reserve(it->second.size());
    for (const auto& [signer, sig] : it->second) sigs.push_back(sig);
  }
  auto fo = network_.fanout(id_);
  for (net::ProcId q : network_.topology().neighbors(id_)) {
    fo.add(q, net::StRoundMsg{round, sigs});
  }
  fo.commit();
}

void StSyncProcess::handle_message(const net::Message& msg) {
  const auto* st = std::get_if<net::StRoundMsg>(&msg.body);
  if (st == nullptr) return;
  if (st->round <= last_accepted_) {
    ++stats_.responses_stale;  // old round: freshness check rejects it
    return;
  }
  merge_and_maybe_accept(st->round, st->sigs);
}

void StSyncProcess::merge_and_maybe_accept(
    std::uint64_t round, const std::vector<net::Signature>& sigs) {
  auto& slot = pending_[round];
  for (const auto& sig : sigs) {
    if (!auth_->verify(sig, round)) continue;  // forged: ignored
    slot.emplace(sig.signer, sig);
  }
  ++stats_.responses_ok;
  if (static_cast<int>(slot.size()) >= config_.f + 1) accept(round);
}

void StSyncProcess::accept(std::uint64_t round) {
  assert(round > last_accepted_);
  // Detect replay damage: accepting a round whose time target is far
  // BELOW our current clock means a stale bundle dragged us backwards.
  const LogicalTime target(static_cast<double>(round) * config_.period.sec() +
                         config_.skew_allowance.sec());
  const Duration correction = target - clock_.read();
  if (correction < -1.5 * config_.period) ++stats_.replays_accepted;

  last_accepted_ = round;
  // Make sure our own signature travels with the final relay.
  if (!signed_rounds_.contains(round)) {
    signed_rounds_.insert(round);
    pending_[round].emplace(id_, auth_->sign(id_, round));
  }
  clock_.adjust(correction);
  ++stats_.rounds_completed;
  stats_.last_adjustment = correction;
  stats_.max_abs_adjustment =
      std::max(stats_.max_abs_adjustment, correction.abs());
  broadcast_round(round);
  // Drop bookkeeping for superseded rounds.
  pending_.erase(pending_.begin(), pending_.upper_bound(round));
  if (on_sync_complete) {
    on_sync_complete(core::ConvergenceResult{correction, false});
  }
  if (ready_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(ready_alarm_);
    ready_alarm_ = clk::kNoAlarm;
  }
  if (!suspended_) arm_ready();
  CZ_TRACE << "proc " << id_ << " accepted ST round " << round;
}

void StSyncProcess::suspend() {
  suspended_ = true;
  if (ready_alarm_ != clk::kNoAlarm) {
    clock_.hardware().cancel_alarm(ready_alarm_);
    ready_alarm_ = clk::kNoAlarm;
  }
  pending_.clear();
}

void StSyncProcess::resume() {
  assert(suspended_);
  suspended_ = false;
  // §3.3's recovery problem, broadcast edition: the round state was in
  // adversary hands. The processor must treat it as lost — and until an
  // honest bundle for the CURRENT round arrives, any genuine stale
  // bundle (a replay) passes both the signature check and the
  // round > last_accepted freshness check.
  last_accepted_ = 0;
  signed_rounds_.clear();
  pending_.clear();
  arm_ready();
}

}  // namespace czsync::broadcast
