#include "broadcast/auth.h"

#include <set>

#include "util/rng.h"

namespace czsync::broadcast {

Authenticator::Authenticator(std::uint64_t master_secret)
    : master_secret_(master_secret) {}

std::uint64_t Authenticator::key_of(net::ProcId p) const {
  std::uint64_t s = master_secret_ ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(p) + 1));
  return splitmix64(s);
}

net::Signature Authenticator::sign(net::ProcId signer,
                                   std::uint64_t payload) const {
  std::uint64_t s = key_of(signer) ^ (payload * 0xd1b54a32d192ed03ULL);
  return net::Signature{signer, splitmix64(s)};
}

bool Authenticator::verify(const net::Signature& sig,
                           std::uint64_t payload) const {
  if (sig.signer < 0) return false;
  return sign(sig.signer, payload).mac == sig.mac;
}

int Authenticator::count_valid(const std::vector<net::Signature>& sigs,
                               std::uint64_t payload) const {
  std::set<net::ProcId> signers;
  for (const auto& s : sigs) {
    if (verify(s, payload)) signers.insert(s.signer);
  }
  return static_cast<int>(signers.size());
}

}  // namespace czsync::broadcast
