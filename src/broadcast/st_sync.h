// Broadcast-based synchronization comparator — the [10] family of §1.1.
//
// A Srikanth-Toueg-style authenticated algorithm: logical time is divided
// into periods P; when a processor's clock reaches T_k = k*P it signs and
// broadcasts "round k". Any processor holding f+1 distinct valid
// signatures for round k accepts: it sets its clock to T_k + skew, relays
// the signature bundle to all neighbors, and waits for T_{k+1}. With
// unforgeable signatures, f+1 signers include one correct processor, so
// acceptance implies some correct clock really reached T_k; resilience is
// a simple majority (n > 2f) and propagation only needs a connected
// graph — the two advantages §1.1 credits to [10].
//
// The costs the paper lists are also faithfully present:
//   * every acceptance triggers a relay of an O(f)-signature bundle to
//     every neighbor: O(n^2) bundle transmissions per round network-wide;
//   * progress per round waits for the broadcast to reach everyone
//     (sensitivity to transient delays);
//   * recovery depends on *protocol state* (the last accepted round):
//     a break-in wipes it, and until the next honest round arrives the
//     processor will accept ANY genuine bundle — including a replayed
//     stale one. Signatures verify forever, which is why [10] needs its
//     assumption A4; experiment E20's replay attack shows the window.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "broadcast/auth.h"
#include "clock/logical_clock.h"
#include "core/protocol_engine.h"
#include "net/network.h"
#include "util/rng.h"

namespace czsync::broadcast {

struct StConfig {
  Duration period = Duration::minutes(1);        ///< P: logical time between rounds
  Duration skew_allowance = Duration::millis(100);  ///< added to T_k on accept
  int f = 1;                           ///< tolerated faults (n > 2f)
};

class StSyncProcess final : public core::ProtocolEngine {
 public:
  StSyncProcess(net::Network& network, clk::LogicalClock& clock,
                net::ProcId id, StConfig config,
                std::shared_ptr<const Authenticator> auth);

  void start() override;
  void suspend() override;
  /// Restarts with the round state LOST (the adversary had full state
  /// access): last_accepted resets to 0 — the replay-vulnerable window.
  void resume() override;
  void handle_message(const net::Message& msg) override;

  [[nodiscard]] bool suspended() const override { return suspended_; }
  [[nodiscard]] const core::SyncStats& stats() const override { return stats_; }
  [[nodiscard]] std::uint64_t last_accepted() const { return last_accepted_; }
  [[nodiscard]] std::uint64_t replays_accepted() const {
    return stats_.replays_accepted;
  }

 private:
  void arm_ready();
  void on_ready();
  void merge_and_maybe_accept(std::uint64_t round,
                              const std::vector<net::Signature>& sigs);
  void accept(std::uint64_t round);
  void broadcast_round(std::uint64_t round);

  net::Network& network_;
  clk::LogicalClock& clock_;
  net::ProcId id_;
  StConfig config_;
  std::shared_ptr<const Authenticator> auth_;

  bool started_ = false;
  bool suspended_ = false;
  clk::AlarmId ready_alarm_ = clk::kNoAlarm;

  std::uint64_t last_accepted_ = 0;
  std::set<std::uint64_t> signed_rounds_;  // own-signature dedupe
  /// Collected valid signatures per pending round, deduped by signer.
  std::map<std::uint64_t, std::map<net::ProcId, net::Signature>> pending_;
  core::SyncStats stats_;
};

}  // namespace czsync::broadcast
