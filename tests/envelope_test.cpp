// Unit tests for rt::check_envelope against synthetic trace segments.
//
// The rt cluster gates (rt_envelope_differential etc.) exercise the
// reconstruction end-to-end but SKIP in sandboxes without UDP; these
// tests pin the checker itself with hand-built AdjWrite segments whose
// reconstructed clocks are known in closed form: pass/fail straddling
// the Theorem 5 gamma, the re-join bound, and the sampling-grid
// boundary discipline (the integer-indexed grid must include an
// exact-dividing endpoint and must never sample off-grid instants).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/params.h"
#include "rt/envelope.h"
#include "trace/format.h"
#include "trace/record.h"
#include "util/time_domain.h"

namespace czsync::rt {
namespace {

class EnvelopeCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "czsync_envelope_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    params_.model.n = 4;
    params_.sync_int = Duration::seconds(2);
    const core::ProtocolParams proto =
        core::ProtocolParams::derive(params_.model, params_.sync_int);
    gamma_ = core::TheoremBounds::compute(params_.model, proto).max_deviation;
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes a trace for node `id` spanning [0, t_end]: an AdjWrite at
  /// each (t, adj) step plus EventFire markers pinning the span. With
  /// rate 1 and offset `offset`, the reconstructed clock is
  /// C(tau) = offset + tau + adj(tau), joined from the first step.
  NodeSegment segment(int id, double offset, double t_end,
                      const std::vector<std::pair<double, double>>& steps) {
    trace::TraceData data;
    data.records.push_back(trace::event_fire(SimTau(0.0), 0));
    for (const auto& [t, adj] : steps) {
      data.records.push_back(trace::adj_write(
          SimTau(t), id, trace::AdjKind::Sync, Duration(adj), Duration(adj)));
    }
    data.records.push_back(trace::event_fire(SimTau(t_end), 1));
    const std::string path =
        (dir_ / ("node" + std::to_string(id) + "_" +
                 std::to_string(serial_++) + ".cztrace"))
            .string();
    trace::write_trace_file(path, data);
    NodeSegment ns;
    ns.id = id;
    ns.rate = 1.0;
    ns.offset_sec = offset;
    ns.adj0_sec = 0.0;
    ns.path = path;
    return ns;
  }

  std::filesystem::path dir_;
  EnvelopeParams params_;
  Duration gamma_;
  int serial_ = 0;
};

TEST_F(EnvelopeCheckTest, PassesWhenDeviationStaysInsideGamma) {
  const double d = gamma_.sec() * 0.5;
  const auto report = check_envelope(
      params_, {segment(0, 0.0, 10.0, {{0.0, 0.0}}),
                segment(1, d, 10.0, {{0.0, 0.0}})});
  EXPECT_TRUE(report.pass) << report.first_violation;
  EXPECT_EQ(report.violations, 0);
  EXPECT_NEAR(report.max_stable_deviation.sec(), d, 1e-12);
  EXPECT_EQ(report.gamma.sec(), gamma_.sec());
}

TEST_F(EnvelopeCheckTest, FailsWhenDeviationExceedsGamma) {
  const double d = gamma_.sec() * 2.0;
  const auto report = check_envelope(
      params_, {segment(0, 0.0, 10.0, {{0.0, 0.0}}),
                segment(1, d, 10.0, {{0.0, 0.0}})});
  EXPECT_FALSE(report.pass);
  EXPECT_GT(report.violations, 0);
  EXPECT_FALSE(report.first_violation.empty());
  EXPECT_NEAR(report.max_stable_deviation.sec(), d, 1e-12);
}

TEST_F(EnvelopeCheckTest, SegmentThatNeverJoinsPastBoundIsAViolation) {
  // Node 2 writes no adjustment for its whole (long) segment; the other
  // two stay tight so the only violation is the missed re-join.
  params_.join_bound = Duration::seconds(5);
  const auto report = check_envelope(
      params_, {segment(0, 0.0, 10.0, {{0.0, 0.0}}),
                segment(1, 0.0, 10.0, {{0.0, 0.0}}),
                segment(2, 0.0, 10.0, {})});
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.violations, 1);
  EXPECT_NE(report.first_violation.find("never wrote an adjustment"),
            std::string::npos)
      << report.first_violation;
}

TEST_F(EnvelopeCheckTest, LateJoinInsideBoundReportsLatency) {
  params_.join_bound = Duration::seconds(5);
  const auto report = check_envelope(
      params_, {segment(0, 0.0, 10.0, {{0.0, 0.0}}),
                segment(1, 0.0, 10.0, {{3.0, 0.0}})});
  EXPECT_TRUE(report.pass) << report.first_violation;
  EXPECT_NEAR(report.max_join_latency.sec(), 3.0, 1e-12);
}

TEST_F(EnvelopeCheckTest, ExactBoundaryGridPointIsSampled) {
  // Span 10 s at the default 100 ms period divides exactly: 101 grid
  // points, and the deviation blows past gamma ONLY at tau = 10.0 (the
  // final AdjWrite smashes node 1 at the very last instant). A grid
  // loop that accumulates floating error — or floors 10/0.1 to 99 —
  // misses the endpoint and wrongly passes.
  const double smash = gamma_.sec() * 4.0;
  const auto report = check_envelope(
      params_, {segment(0, 0.0, 10.0, {{0.0, 0.0}}),
                segment(1, 0.0, 10.0, {{0.0, 0.0}, {10.0, smash}})});
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.violations, 1);
  EXPECT_EQ(report.samples, 101u);
  EXPECT_NE(report.first_violation.find("tau=10"), std::string::npos)
      << report.first_violation;
}

TEST_F(EnvelopeCheckTest, StepNotDividingSpanNeverSamplesOffGrid) {
  // Span 10.05 s / 100 ms period: the last grid point is 10.0, not the
  // segment end. The smash lands at 10.05 — off-grid — so the checker
  // must neither sample past the last multiple nor invent an instant at
  // grid_hi: still 101 samples, still a pass.
  const double smash = gamma_.sec() * 4.0;
  const auto report = check_envelope(
      params_, {segment(0, 0.0, 10.05, {{0.0, 0.0}}),
                segment(1, 0.0, 10.05, {{0.0, 0.0}, {10.05, smash}})});
  EXPECT_TRUE(report.pass) << report.first_violation;
  EXPECT_EQ(report.samples, 101u);
  EXPECT_EQ(report.violations, 0);
}

}  // namespace
}  // namespace czsync::rt
