// Tests for the §5 rate-discipline extension: estimator convergence,
// clamping, slewing arithmetic, reset-on-recovery, and end-to-end effect
// plus safety under attack.
#include <gtest/gtest.h>

#include "adversary/schedule.h"
#include "analysis/experiment.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/discipline.h"
#include "sim/simulator.h"

namespace czsync::core {
namespace {

class DisciplineTest : public ::testing::Test {
 protected:
  DisciplineTest()
      : hw(sim, clk::make_pinned_drift(1e-3, 1.0 + 1e-3), Rng(1)), clock(hw) {}

  DisciplineConfig config(double max_rate = 1e-3) {
    DisciplineConfig c;
    c.gain = 0.25;
    c.max_rate = max_rate;
    c.warmup_samples = 1;
    return c;
  }

  sim::Simulator sim;
  clk::HardwareClock hw;  // runs fast by 1e-3
  clk::LogicalClock clock;
};

TEST_F(DisciplineTest, StartsNeutral) {
  RateDiscipline d(clock, config());
  EXPECT_DOUBLE_EQ(d.rate(), 0.0);
  EXPECT_EQ(d.samples(), 0u);
}

TEST_F(DisciplineTest, LearnsConsistentRateError) {
  RateDiscipline d(clock, config());
  // Our clock is fast by 1e-3: the ensemble keeps telling us to step
  // back by 0.06 s per 60 s span. The integral controller accumulates
  // toward the clamp at -1e-3 (the true error).
  for (int i = 0; i < 40; ++i) {
    sim.run_until(SimTau(sim.now().raw() + 60.0));
    d.observe(Duration::seconds(-0.06));
  }
  EXPECT_NEAR(d.rate(), -1e-3, 1e-4);
}

TEST_F(DisciplineTest, WarmupSamplesSkipped) {
  auto c = config();
  c.warmup_samples = 5;
  RateDiscipline d(clock, c);
  for (int i = 0; i < 5; ++i) {
    sim.run_until(SimTau(sim.now().raw() + 60.0));
    d.observe(Duration::seconds(-0.06));
  }
  // First observe only set the baseline; 4 more are inside warmup.
  EXPECT_DOUBLE_EQ(d.rate(), 0.0);
}

TEST_F(DisciplineTest, RateClampedToMaxRate) {
  RateDiscipline d(clock, config(/*max_rate=*/1e-4));
  for (int i = 0; i < 50; ++i) {
    sim.run_until(SimTau(sim.now().raw() + 60.0));
    d.observe(Duration::seconds(-30.0));  // absurd "rate" of -0.5
  }
  EXPECT_GE(d.rate(), -1e-4);
  EXPECT_LE(d.rate(), 1e-4);
}

TEST_F(DisciplineTest, SlewAppliesRateTimesSpan) {
  RateDiscipline d(clock, config());
  // Teach it -1e-3.
  for (int i = 0; i < 40; ++i) {
    sim.run_until(SimTau(sim.now().raw() + 60.0));
    d.observe(Duration::seconds(-0.06));
  }
  const double rate = d.rate();
  const Duration adj_before = clock.adjustment();
  sim.run_until(SimTau(sim.now().raw() + 10.0));
  d.slew();
  const double applied = (clock.adjustment() - adj_before).sec();
  // 10 s of local time at `rate`; local ~ real here up to 1e-3.
  EXPECT_NEAR(applied, rate * 10.0, std::abs(rate) * 0.1);
  EXPECT_NEAR(d.total_slewed().sec(), applied, 1e-12);
}

TEST_F(DisciplineTest, SlewNoopWhenNeutral) {
  RateDiscipline d(clock, config());
  sim.run_until(SimTau(100.0));
  const Duration before = clock.adjustment();
  d.slew();
  EXPECT_EQ(clock.adjustment(), before);
}

TEST_F(DisciplineTest, ResetForgetsEverything) {
  RateDiscipline d(clock, config());
  for (int i = 0; i < 10; ++i) {
    sim.run_until(SimTau(sim.now().raw() + 60.0));
    d.observe(Duration::seconds(-0.06));
  }
  EXPECT_NE(d.rate(), 0.0);
  d.reset();
  EXPECT_DOUBLE_EQ(d.rate(), 0.0);
  EXPECT_EQ(d.samples(), 0u);
  EXPECT_EQ(d.total_slewed(), Duration::zero());
}

TEST_F(DisciplineTest, CompensationCancelsDrift) {
  // Closed loop: every 60 s the "ensemble" reports our residual bias
  // (relative to real time) as the adjustment; we also slew every 5 s.
  // With the discipline the residual converges near zero even though the
  // hardware runs fast by 1e-3.
  RateDiscipline d(clock, config());
  double corrected_total = 0.0;
  for (int round = 0; round < 60; ++round) {
    for (int tick = 0; tick < 12; ++tick) {
      sim.run_until(SimTau(sim.now().raw() + 5.0));
      d.slew();
    }
    const double bias = clock.read().raw() - sim.now().raw();
    clock.adjust(Duration::seconds(-bias));  // the ensemble pulls us to truth
    corrected_total += std::abs(bias);
    d.observe(Duration::seconds(-bias));
  }
  // After convergence the per-round correction is tiny compared to the
  // uncompensated drift of 60 s * 1e-3 = 60 ms.
  const double bias_final = std::abs(clock.read().raw() - sim.now().raw());
  EXPECT_LT(bias_final, 0.005);
  EXPECT_NEAR(d.rate(), -1e-3, 2e-4);
}

// ---- end-to-end via the scenario runner ----

TEST(DisciplineIntegration, ReducesDeviationAtHighDrift) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-3;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(20);
  s.horizon = Duration::hours(5);
  s.warmup = Duration::hours(1);
  s.seed = 3;
  const auto off = analysis::run_scenario(s);
  s.rate_discipline = true;
  const auto on = analysis::run_scenario(s);
  EXPECT_LT(on.max_stable_deviation, off.max_stable_deviation * 0.85);
  EXPECT_LT(on.max_stable_deviation, on.bounds.max_deviation);
}

TEST(DisciplineIntegration, SafeUnderByzantineAttack) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.rate_discipline = true;
  s.horizon = Duration::hours(6);
  s.warmup = Duration::minutes(30);
  s.seed = 5;
  s.schedule = adversary::Schedule::random_mobile(
      7, 2, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
      SimTau(4.5 * 3600.0), Rng(55));
  s.strategy = "max-pull";
  const auto r = analysis::run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
  // The clamp bounds the worst-case slew: rate excess stays within
  // 2 rho + measurement allowance.
  EXPECT_LT(r.max_rate_excess, 2 * s.model.rho + 4e-4);
}

TEST(DisciplineIntegration, RecoveryStillFastAfterSmash) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.rate_discipline = true;
  s.initial_spread = Duration::millis(20);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.seed = 6;
  s.schedule = adversary::Schedule::single(2, SimTau(3600.0), SimTau(3660.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(30);
  const auto r = analysis::run_scenario(s);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_LT(r.max_recovery_time(), Duration::minutes(5));
}

}  // namespace
}  // namespace czsync::core
