// Tests for the bounded model checker (src/mc/): the choice-trail DFS
// oracle, the enumerated delay grid, adversary-case enumeration, and
// the checker end-to-end — exhaustive clean passes over the real
// engines, mutation detection, and byte-identical counterexample
// replay through czsync-trace-v1.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "mc/checker.h"
#include "mc/enumerated_delay.h"
#include "mc/mutation.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/record.h"

namespace czsync {
namespace {

// ---------- ChoiceTrail ----------

TEST(ChoiceTrail, EnumeratesFullProductInDfsOrder) {
  mc::ChoiceTrail trail;
  std::set<std::vector<int>> seen;
  do {
    std::vector<int> vec;
    vec.push_back(trail.choose(2));
    vec.push_back(trail.choose(3));
    vec.push_back(trail.choose(2));
    EXPECT_TRUE(seen.insert(vec).second) << "duplicate path";
  } while (trail.advance());
  EXPECT_EQ(seen.size(), 2u * 3u * 2u);
}

TEST(ChoiceTrail, VariableDepthTreeIsCoveredExactly) {
  // The consumed arity may depend on earlier choices (as delays depend
  // on how many messages the chosen case produces): branch 0 goes two
  // levels deeper, branch 1 stops. Leaves: 3*2 + 1 = 7.
  mc::ChoiceTrail trail;
  int leaves = 0;
  do {
    if (trail.choose(2) == 0) {
      trail.choose(3);
      trail.choose(2);
    }
    ++leaves;
  } while (trail.advance());
  EXPECT_EQ(leaves, 7);
}

TEST(ChoiceTrail, FixedReplayReproducesAndPolices) {
  mc::ChoiceTrail trail;
  trail.choose(2);
  trail.choose(3);
  ASSERT_TRUE(trail.advance());  // -> {0, 1}
  trail.choose(2);
  trail.choose(3);

  mc::ChoiceTrail replay = mc::ChoiceTrail::fixed(trail.choices());
  EXPECT_EQ(replay.choose(2), 0);
  EXPECT_EQ(replay.choose(3), 1);
  // Consuming more choices than were recorded means the execution was
  // not a deterministic function of the vector — must throw.
  EXPECT_THROW(replay.choose(2), std::logic_error);

  mc::ChoiceTrail mismatched = mc::ChoiceTrail::fixed(trail.choices());
  EXPECT_THROW(mismatched.choose(5), std::logic_error);
}

TEST(ChoiceTrail, AdvanceTruncatesExhaustedTail) {
  mc::ChoiceTrail trail;
  trail.choose(2);
  trail.choose(1);  // arity-1 tail is always exhausted
  ASSERT_TRUE(trail.advance());
  EXPECT_EQ(trail.choices().size(), 1u);
  EXPECT_EQ(trail.choices()[0].chosen, 1);
  EXPECT_FALSE(trail.advance());
}

// ---------- EnumeratedDelay ----------

TEST(EnumeratedDelay, SinglePointGridIsTheConstantMidpoint) {
  mc::ChoiceTrail trail;
  mc::EnumeratedDelay d(Duration::millis(50), 1, &trail);
  ASSERT_TRUE(d.constant_delay().has_value());
  EXPECT_DOUBLE_EQ(d.constant_delay()->sec(), 0.025);
  // The constant path must not consume trail positions.
  EXPECT_EQ(trail.choices().size(), 0u);
}

TEST(EnumeratedDelay, GridSpansTheHalfOpenIntervalUpToTheBound) {
  mc::ChoiceTrail trail;
  mc::EnumeratedDelay d(Duration::millis(60), 3, &trail);
  EXPECT_FALSE(d.constant_delay().has_value());
  EXPECT_DOUBLE_EQ(d.grid_point(0).sec(), 0.020);
  EXPECT_DOUBLE_EQ(d.grid_point(1).sec(), 0.040);
  EXPECT_DOUBLE_EQ(d.grid_point(2).sec(), 0.060);  // endpoint delta included
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng, 0, 1).sec(), 0.020);  // records choice 0
  EXPECT_EQ(trail.choices().size(), 1u);
  EXPECT_EQ(trail.choices()[0].arity, 3);
}

// ---------- Adversary-case enumeration ----------

TEST(ScheduleEnum, FaultFreeOnlyWhenDisabledOrNoBudget) {
  mc::McOptions opt;
  opt.n = 3;  // resolved f = 0: no break-in fits the budget
  opt.adversary = mc::McOptions::AdversaryMode::Smash;
  const auto proto = core::ProtocolParams::derive(opt.model(), opt.sync_int);
  auto cases = mc::enumerate_adversary_cases(opt, proto);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_TRUE(cases[0].schedule.empty());

  opt.adversary = mc::McOptions::AdversaryMode::None;
  opt.n = 4;
  const auto proto4 = core::ProtocolParams::derive(opt.model(), opt.sync_int);
  EXPECT_EQ(mc::enumerate_adversary_cases(opt, proto4).size(), 1u);
}

TEST(ScheduleEnum, EnumeratesVictimsStartsDwellsAndScales) {
  mc::McOptions opt;
  opt.n = 4;  // f = 1
  opt.adversary = mc::McOptions::AdversaryMode::Smash;
  opt.adv_start_choices = 2;
  opt.adv_dwell_choices = 2;
  opt.adv_scales = {0.9, 1.1};
  const auto proto = core::ProtocolParams::derive(opt.model(), opt.sync_int);
  const auto cases = mc::enumerate_adversary_cases(opt, proto);
  // 1 fault-free + 4 victims x 2 starts x 2 dwells x 2 scales.
  ASSERT_EQ(cases.size(), 33u);
  EXPECT_TRUE(cases[0].schedule.empty());
  for (std::size_t i = 1; i < cases.size(); ++i) {
    const auto& ivs = cases[i].schedule.intervals();
    ASSERT_EQ(ivs.size(), 1u);
    // Every schedule recovers strictly inside the horizon, so each case
    // exercises the resume path, and stays within the Definition-2
    // budget.
    EXPECT_LT(ivs[0].end, SimTau::zero() + opt.horizon);
    EXPECT_TRUE(
        cases[i].schedule.is_f_limited(opt.resolved_f(), opt.delta_period));
    EXPECT_EQ(cases[i].strategy, "clock-smash");
    EXPECT_FALSE(cases[i].label.empty());
  }
}

TEST(ScheduleEnum, SilentCollapsesTheScaleGrid) {
  mc::McOptions opt;
  opt.n = 4;
  opt.adversary = mc::McOptions::AdversaryMode::Silent;
  opt.adv_start_choices = 1;
  opt.adv_dwell_choices = 1;
  opt.adv_scales = {0.9, 1.1};  // magnitudes are meaningless when silent
  const auto proto = core::ProtocolParams::derive(opt.model(), opt.sync_int);
  EXPECT_EQ(mc::enumerate_adversary_cases(opt, proto).size(), 1u + 4u);
}

// ---------- Checker end-to-end ----------

TEST(Checker, FaultFreeSpaceIsExhaustivelyClean) {
  mc::McOptions opt;  // n=3, delays=2, biases=2, horizon 45s
  mc::Checker ck(opt);
  const mc::McResult r = ck.run();
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_FALSE(r.stats.budget_exhausted);
  // Deterministic enumeration: 7 canonical initial states (8 bias
  // combinations merged by translation symmetry) x 2^12 delay paths,
  // plus the one path pruned at its merged initial barrier.
  EXPECT_EQ(r.stats.paths, 28673u);
  EXPECT_GT(r.stats.rounds_completed, 0u);
  EXPECT_GT(r.stats.dedup_hits, 0u);
  EXPECT_EQ(r.stats.way_off_rounds, 0u);
}

TEST(Checker, SmashRecoverySpaceIsCleanAndExercisesWayOff) {
  mc::McOptions opt;
  opt.n = 4;
  opt.horizon = Duration::seconds(30);
  opt.delay_choices = 1;
  opt.adversary = mc::McOptions::AdversaryMode::Smash;
  mc::Checker ck(opt);
  const mc::McResult r = ck.run();
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_FALSE(r.stats.budget_exhausted);
  // A +-WayOff-scale smash forces the Figure 1 escape branch somewhere
  // in the space; the invariants must still hold through recovery.
  EXPECT_GT(r.stats.way_off_rounds, 0u);
}

TEST(Checker, PathBudgetRefusesHollowPass) {
  mc::McOptions opt;
  opt.max_paths = 3;
  mc::Checker ck(opt);
  const mc::McResult r = ck.run();
  EXPECT_TRUE(r.stats.budget_exhausted);
  EXPECT_EQ(r.stats.paths, 3u);
  EXPECT_FALSE(r.counterexample.has_value());
}

mc::McOptions mutation_scenario() {
  mc::McOptions opt;
  opt.n = 4;
  opt.f = 1;
  opt.horizon = Duration::seconds(30);
  opt.delay_choices = 1;
  opt.bias_choices = 1;
  opt.adversary = mc::McOptions::AdversaryMode::Lie;
  opt.adv_start_choices = 1;
  opt.adv_dwell_choices = 1;
  opt.adv_scales = {-12.0};
  return opt;
}

TEST(Checker, CorrectTrimSurvivesTheLiar) {
  mc::Checker ck(mutation_scenario());
  const mc::McResult r = ck.run();
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_FALSE(r.stats.budget_exhausted);
}

TEST(Checker, MutatedTrimProducesReplayableContainmentCounterexample) {
  mc::McOptions opt = mutation_scenario();
  opt.convergence = std::make_shared<const mc::MutatedBhhnConvergence>();
  mc::Checker ck(opt);
  const mc::McResult r = ck.run();
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->violation.kind,
            mc::Violation::Kind::Containment);
  EXPECT_FALSE(r.counterexample->choices.empty());

  // Differential replay: two captures through fresh worlds must
  // serialize byte-identically — the czsync-trace-v1 contract.
  const trace::TraceData a = ck.capture(r.counterexample->choices);
  const trace::TraceData b = ck.capture(r.counterexample->choices);
  ASSERT_FALSE(a.records.empty());
  EXPECT_TRUE(trace::diff_traces(a, b).identical);
  std::ostringstream sa, sb;
  trace::write_trace(sa, a);
  trace::write_trace(sb, b);
  EXPECT_EQ(sa.str(), sb.str());

  // The capture carries the checker's own barrier observations.
  bool saw_invariant_sample = false;
  bool saw_adjustment = false;
  for (const trace::TraceRecord& rec : a.records) {
    if (rec.kind == trace::RecordKind::InvariantSample) {
      saw_invariant_sample = true;
    }
    if (rec.kind == trace::RecordKind::AdjWrite) saw_adjustment = true;
  }
  EXPECT_TRUE(saw_invariant_sample);
  EXPECT_TRUE(saw_adjustment);
}

TEST(Checker, RoundEngineSpaceIsExhaustivelyClean) {
  mc::McOptions opt;
  opt.protocol = "round";
  opt.delay_choices = 2;
  mc::Checker ck(opt);
  const mc::McResult r = ck.run();
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_FALSE(r.stats.budget_exhausted);
  EXPECT_GT(r.stats.rounds_completed, 0u);
}

}  // namespace
}  // namespace czsync
