// Tests for the slab/free-list event pool behind sim::EventQueue and the
// SmallFn small-buffer callable storage it uses.
//
// Two layers:
//   * SmallFn unit tests (inline vs. fallback storage, move semantics);
//   * pool stress tests — push/cancel/pop churn checked against a
//     reference model, slot reuse, and generation-checked rejection of
//     stale EventIds after slot recycling.
// Full-run bit-identity of the simulator is guarded by the golden trace
// gate in trace_golden_test.cpp (tests/golden/e1.cztrace), which replaced
// the FNV-hash golden test that used to live here — the trace covers the
// same E1-style run record-by-record and reports the first divergent
// record instead of a bare hash mismatch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/small_fn.h"

namespace czsync::sim {
namespace {

// ---------- SmallFn ----------

TEST(SmallFnTest, SmallCapturesAreStoredInline) {
  int x = 0;
  SmallFn f([&x] { ++x; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(x, 2);
}

TEST(SmallFnTest, OversizedCapturesFallBackToHeap) {
  std::array<char, SmallFn::kInlineCapacity + 1> big{};
  big[0] = 5;
  int x = 0;
  SmallFn f([&x, big] { x += big[0]; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(x, 5);
}

TEST(SmallFnTest, MoveTransfersTheCallable) {
  int x = 0;
  SmallFn a([&x] { ++x; });
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);

  SmallFn c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(x, 2);
}

TEST(SmallFnTest, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* destructions;
    Probe(int* d) : destructions(d) {}
    Probe(Probe&& o) noexcept : destructions(o.destructions) {
      o.destructions = nullptr;
    }
    ~Probe() {
      if (destructions != nullptr) ++*destructions;
    }
    void operator()() const {}
  };
  int destructions = 0;
  {
    SmallFn f{Probe{&destructions}};
    SmallFn g{std::move(f)};
  }
  EXPECT_EQ(destructions, 1);
}

TEST(SmallFnTest, QueueCountsInlineVsFallbackStorage) {
  EventQueue q;
  q.push(SimTau(1.0), [] {});
  std::array<char, 2 * SmallFn::kInlineCapacity> big{};
  q.push(SimTau(2.0), [big] { (void)big; });
  EXPECT_EQ(q.stats().inline_actions, 1u);
  EXPECT_EQ(q.stats().fallback_allocs, 1u);
  SimTau t{};
  while (!q.empty()) q.pop(t)();
}

// ---------- pool stress ----------

TEST(EventPoolStressTest, ChurnMatchesReferenceModel) {
  // Random interleaving of push/cancel/pop checked against a reference
  // model: a multimap keyed by time (equal keys keep insertion order, the
  // same FIFO contract the queue advertises). Times are drawn from a
  // small discrete set to force heavy equal-time collisions.
  EventQueue q;
  Rng rng(20260805);
  using RefIt = std::multimap<double, int>::iterator;
  std::multimap<double, int> ref;         // live events, in fire order
  std::vector<std::pair<EventId, RefIt>> live;  // cancellable handles
  std::vector<int> fired, expected;
  int next_marker = 0;

  const auto pop_one = [&] {
    SimTau t{};
    q.pop(t)();
    ASSERT_FALSE(ref.empty());
    expected.push_back(ref.begin()->second);
    EXPECT_EQ(t.raw(), ref.begin()->first);
    std::erase_if(live, [&](const auto& e) { return e.second == ref.begin(); });
    ref.erase(ref.begin());
  };

  for (int step = 0; step < 20000; ++step) {
    const double p = rng.uniform01();
    if (p < 0.5) {
      const double t = static_cast<double>(rng.uniform_int(0, 9));
      const int marker = next_marker++;
      const EventId id =
          q.push(SimTau(t), [&fired, marker] { fired.push_back(marker); });
      live.emplace_back(id, ref.emplace(t, marker));
    } else if (p < 0.7) {
      if (live.empty()) continue;
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_TRUE(q.cancel(live[at].first));
      EXPECT_FALSE(q.cancel(live[at].first));  // second cancel must fail
      ref.erase(live[at].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      if (q.empty()) continue;
      pop_one();
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
    if (!ref.empty()) {
      ASSERT_EQ(q.next_time().raw(), ref.begin()->first);
    }
  }
  while (!q.empty()) pop_one();
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(q.stats().pushed, q.stats().popped + q.stats().cancelled);
}

TEST(EventPoolStressTest, SlotsAreReusedInSteadyState) {
  EventQueue q;
  for (int i = 0; i < 10000; ++i) {
    q.push(SimTau(static_cast<double>(i)), [] {});
    SimTau t{};
    q.pop(t)();
  }
  // One event in flight at a time -> the pool never grows past one slot.
  EXPECT_EQ(q.stats().peak_slots, 1u);
  EXPECT_EQ(q.stats().pushed, 10000u);
}

TEST(EventPoolStressTest, BoundedConcurrencyBoundsThePool) {
  EventQueue q;
  constexpr int kWindow = 37;
  for (int i = 0; i < 5000; ++i) {
    q.push(SimTau(static_cast<double>(i)), [] {});
    if (q.size() > kWindow) {
      SimTau t{};
      q.pop(t)();
    }
  }
  EXPECT_LE(q.stats().peak_slots, static_cast<std::size_t>(kWindow) + 1);
}

TEST(EventPoolStressTest, GenerationCheckRejectsStaleIdsAfterReuse) {
  EventQueue q;
  const EventId a = q.push(SimTau(1.0), [] {});
  SimTau t{};
  q.pop(t);  // frees a's slot
  const EventId b = q.push(SimTau(2.0), [] {});  // reuses the slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));  // stale handle must not cancel b
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
  // Reuse after a cancel-driven free, likewise.
  const EventId c = q.push(SimTau(3.0), [] {});
  EXPECT_NE(b, c);
  EXPECT_FALSE(q.cancel(b));
  EXPECT_TRUE(q.cancel(c));
  EXPECT_TRUE(q.empty());
}

// ---------- fanout trains ----------

TEST(EventPoolTrainTest, TrainEntriesInterleaveInGlobalFifoOrder) {
  // A 3-entry train whose stamps were reserved *between* plain pushes at
  // the same times must fire exactly where the equivalent independent
  // pushes would have: global (time, seq) order, FIFO at equal times.
  EventQueue q;
  std::vector<int> fired;
  std::vector<BatchStamp> stamps;
  q.push(SimTau(1.0), [&] { fired.push_back(10); });
  stamps.push_back({SimTau(1.0), q.reserve_seq()});  // after marker 10
  q.push(SimTau(1.0), [&] { fired.push_back(11); });
  stamps.push_back({SimTau(2.0), q.reserve_seq()});
  q.push(SimTau(2.0), [&] { fired.push_back(12); });  // after 2nd entry
  stamps.push_back({SimTau(3.0), q.reserve_seq()});
  int entry = 0;
  q.push_train(stamps.data(), 3, [&] { fired.push_back(entry++); });

  SimTau t{};
  std::vector<double> times;
  while (q.fire_next(&t)) times.push_back(t.raw());
  EXPECT_EQ(fired, (std::vector<int>{10, 0, 11, 1, 12, 2}));
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.0, 1.0, 2.0, 2.0, 3.0}));
  EXPECT_EQ(q.stats().fanout_batches, 1u);
  EXPECT_EQ(q.stats().fanout_entries, 3u);
  EXPECT_EQ(q.stats().pushed, q.stats().popped + q.stats().cancelled);
}

TEST(EventPoolTrainTest, TrainCountsAsOneEventUntilFullyDelivered) {
  EventQueue q;
  std::vector<BatchStamp> stamps;
  for (int i = 0; i < 4; ++i)
    stamps.push_back({SimTau(1.0 + i), q.reserve_seq()});
  q.push_train(stamps.data(), 4, [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.stats().peak_slots, 1u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.fire_next());
    EXPECT_EQ(q.size(), 1u);  // still the same slot, re-armed
  }
  ASSERT_TRUE(q.fire_next());  // last entry releases the slot
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().popped, 1u);
  EXPECT_EQ(q.stats().fanout_entries, 4u);
}

TEST(EventPoolTrainTest, CancelMidFlightDropsUndeliveredEntries) {
  // Deliver 2 of 5 entries, cancel, and check the generation machinery:
  // the undelivered remainder vanishes, the handle goes stale, and the
  // pushed == popped + cancelled invariant holds with the train counting
  // once on each side.
  EventQueue q;
  int delivered = 0;
  std::vector<BatchStamp> stamps;
  for (int i = 0; i < 5; ++i)
    stamps.push_back({SimTau(1.0 + i), q.reserve_seq()});
  const EventId train = q.push_train(stamps.data(), 5, [&] { ++delivered; });
  ASSERT_TRUE(q.fire_next());
  ASSERT_TRUE(q.fire_next());
  EXPECT_EQ(delivered, 2);

  EXPECT_TRUE(q.cancel(train));
  EXPECT_FALSE(q.cancel(train));  // second cancel must fail
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.fire_next());  // re-armed heap entry is stale, not fired
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(q.stats().fanout_batches, 1u);
  EXPECT_EQ(q.stats().fanout_entries, 2u);
  EXPECT_EQ(q.stats().fanout_cancelled, 1u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  EXPECT_EQ(q.stats().pushed, q.stats().popped + q.stats().cancelled);

  // The freed slot is reusable and the stale train handle cannot touch
  // its new occupant.
  const EventId next = q.push(SimTau(9.0), [] {});
  EXPECT_NE(train, next);
  EXPECT_FALSE(q.cancel(train));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(next));
}

TEST(EventPoolTrainTest, CancelFromInsideTrainCallbackIsSafe) {
  // A train entry cancelling its own train mid-fire: the re-armed entry
  // must go stale instead of firing, and the move-out/move-back of the
  // running callable must not resurrect a released slot.
  EventQueue q;
  int delivered = 0;
  EventId train = kNoEvent;
  std::vector<BatchStamp> stamps;
  for (int i = 0; i < 3; ++i)
    stamps.push_back({SimTau(1.0 + i), q.reserve_seq()});
  train = q.push_train(stamps.data(), 3, [&] {
    if (++delivered == 2) EXPECT_TRUE(q.cancel(train));
  });
  ASSERT_TRUE(q.fire_next());
  ASSERT_TRUE(q.fire_next());  // cancels itself during this fire
  EXPECT_FALSE(q.fire_next());
  EXPECT_EQ(delivered, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().fanout_cancelled, 1u);
  EXPECT_EQ(q.stats().pushed, q.stats().popped + q.stats().cancelled);
}

TEST(EventPoolStressTest, CancelledHeadEntriesAreSkippedViaGeneration) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.push(SimTau(1.0 + i), [] {}));
  }
  for (int i = 0; i < 99; ++i) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTau(100.0));
  SimTau t{};
  q.pop(t);
  EXPECT_TRUE(q.empty());
  // ids[0] was the cached-min entry when cancelled, so cancel()
  // invalidated it eagerly; only the 98 heap entries were skipped lazily
  // via the generation check.
  EXPECT_EQ(q.stats().stale_skipped, 98u);
}

}  // namespace
}  // namespace czsync::sim
