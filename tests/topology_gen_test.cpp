// Tests for the random-topology generators used by the §5 connectivity
// study (E16).
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "net/topology.h"

namespace czsync::net {
namespace {

TEST(GnpTest, ConnectedAndWithinEdgeBudget) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto t = Topology::gnp_connected(12, 0.5, rng);
    EXPECT_EQ(t.size(), 12);
    EXPECT_TRUE(t.is_connected());
    EXPECT_LE(t.edge_count(), 66u);
  }
}

TEST(GnpTest, DenseApproachesCompleteness) {
  Rng rng(2);
  const auto t = Topology::gnp_connected(10, 0.99, rng);
  EXPECT_GT(t.edge_count(), 38u);  // close to C(10,2) = 45
}

TEST(GnpTest, SparseFallbackStillConnected) {
  // p so small the raw sample can't connect: falls back to ring + edges.
  Rng rng(3);
  const auto t = Topology::gnp_connected(20, 0.001, rng);
  EXPECT_TRUE(t.is_connected());
}

TEST(GnpTest, DeterministicGivenRngState) {
  Rng a(7), b(7);
  const auto t1 = Topology::gnp_connected(10, 0.5, a);
  const auto t2 = Topology::gnp_connected(10, 0.5, b);
  EXPECT_EQ(t1.edge_count(), t2.edge_count());
  for (int x = 0; x < 10; ++x)
    for (int y = x + 1; y < 10; ++y)
      EXPECT_EQ(t1.has_edge(x, y), t2.has_edge(x, y));
}

class RandomRegularTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomRegularTest, MinDegreeReachedAndConnected) {
  const int d = GetParam();
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const auto t = Topology::random_regular(16, d, rng);
    EXPECT_TRUE(t.is_connected());
    EXPECT_GE(t.min_degree(), d);
    // Near-regularity: nobody should have wildly more than d+a few.
    for (int v = 0; v < 16; ++v) EXPECT_LE(t.degree(v), d + 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, RandomRegularTest,
                         ::testing::Values(3, 5, 7, 10));

TEST(RandomRegularTest2, ConnectivityScalesWithDegree) {
  Rng rng(13);
  const auto sparse = Topology::random_regular(16, 3, rng);
  const auto dense = Topology::random_regular(16, 10, rng);
  EXPECT_LE(sparse.vertex_connectivity(), dense.vertex_connectivity());
  EXPECT_GE(dense.vertex_connectivity(), 5);
}

}  // namespace
}  // namespace czsync::net

namespace czsync::analysis {
namespace {

TEST(CustomTopologyScenarioTest, ProtocolRunsOnRandomGraph) {
  Rng rng(21);
  Scenario s;
  s.model.n = 13;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.topology = Scenario::TopologyKind::Custom;
  s.custom_topology = net::Topology::random_regular(13, 8, rng);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::minutes(30);
  s.seed = 8;
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(CustomTopologyScenarioTest, RingTooSparseForTrimming) {
  // Degree 2 < f+1 = 3 finite peer estimates needed beyond self: with
  // f = 2 trimming over 3 entries, m/M are the extreme values and the
  // protocol cannot hold the ring together against drift.
  Scenario s;
  s.model.n = 10;
  s.model.f = 2;
  s.model.rho = 1e-3;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.topology = Scenario::TopologyKind::Ring;
  s.horizon = Duration::hours(6);
  s.warmup = Duration::zero();
  s.seed = 9;
  const auto r = run_scenario(s);
  // With only 3 estimates and f=2, select_low picks index 2 (the max!)
  // and select_high index 2 of descending (the min): no averaging force.
  EXPECT_GT(r.max_stable_deviation.sec(), r.bounds.max_deviation.sec());
}

}  // namespace
}  // namespace czsync::analysis
