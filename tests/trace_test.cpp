// Tests for the src/trace subsystem: record round-trips through the
// czsync-trace-v1 binary format, flight-recorder ring semantics, first-
// divergence diffing, and end-to-end determinism of sweep dumps across
// job counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/schedule.h"
#include "analysis/experiment.h"
#include "analysis/sweep.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace czsync::trace {
namespace {

std::vector<TraceRecord> one_of_each() {
  return {
      event_fire(SimTau(0.25), 17),
      msg_send(SimTau(1.5), 0, 3, 1),
      msg_deliver(SimTau(1.5 + 0.017), 0, 3, 1),
      msg_drop(SimTau(2.0), 4, 2, 0, DropReason::LinkFault),
      adv_break_in(SimTau(3600.0), 5),
      adv_leave(SimTau(4200.0), 5),
      adj_write(SimTau(4200.5), 5, AdjKind::Smash, Duration(-1.25), Duration(9.5)),
      round_open(SimTau(4260.0), 1, 71),
      round_close(SimTau(4260.1), 1, 71, kRoundWayOff | kRoundJoin),
      invariant_sample(SimTau(4270.0), 5, true, Duration(3.125e-3)),
  };
}

std::string to_bytes(const TraceData& data) {
  std::ostringstream os(std::ios::binary);
  write_trace(os, data);
  return std::move(os).str();
}

TraceData from_bytes(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return read_trace(is);
}

TEST(TraceFormatTest, EveryRecordKindRoundTripsExactly) {
  TraceData data;
  data.records = one_of_each();
  const TraceData back = from_bytes(to_bytes(data));
  ASSERT_EQ(back.records.size(), data.records.size());
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    EXPECT_EQ(back.records[i], data.records[i]) << "record " << i;
  }
  EXPECT_FALSE(back.truncated);
  EXPECT_EQ(back.dropped, 0u);
}

TEST(TraceFormatTest, DoublesAreBitExact) {
  // Doubles ride as raw IEEE-754 bits, so awkward values must survive:
  // denormals, negative zero, values with no short decimal expansion.
  const double uglies[] = {0.1,
                           -0.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::epsilon(),
                           1.0 / 3.0,
                           -987654.321e-13,
                           std::numeric_limits<double>::max()};
  TraceData data;
  for (double v : uglies) {
    data.records.push_back(adj_write(SimTau(v), 0, AdjKind::Sync, Duration(v), Duration(-v)));
  }
  const TraceData back = from_bytes(to_bytes(data));
  ASSERT_EQ(back.records.size(), data.records.size());
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    EXPECT_EQ(back.records[i], data.records[i]) << "double case " << i;
  }
}

TEST(TraceFormatTest, VarintBoundaryValuesRoundTrip) {
  TraceData data;
  for (std::uint64_t u :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{0xffffffffULL},
        std::numeric_limits<std::uint64_t>::max()}) {
    data.records.push_back(event_fire(SimTau(0.0), u));
  }
  const TraceData back = from_bytes(to_bytes(data));
  ASSERT_EQ(back.records.size(), data.records.size());
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    EXPECT_EQ(back.records[i].u, data.records[i].u) << "varint case " << i;
  }
}

TEST(TraceFormatTest, RejectsBadMagicAndTruncation) {
  EXPECT_THROW(from_bytes("definitely not a trace"), std::runtime_error);
  const std::string good = [] {
    TraceData d;
    d.records = one_of_each();
    return to_bytes(d);
  }();
  // Chopping the stream anywhere inside the record section must throw,
  // not fabricate records.
  EXPECT_THROW(from_bytes(good.substr(0, good.size() - 3)),
               std::runtime_error);
  EXPECT_THROW(from_bytes(good.substr(0, 15)), std::runtime_error);
}

TEST(TraceFormatTest, EmptyTraceRoundTripsAndDiffsIdentical) {
  const TraceData empty;
  const TraceData back = from_bytes(to_bytes(empty));
  EXPECT_TRUE(back.records.empty());
  EXPECT_FALSE(back.truncated);
  EXPECT_EQ(back.dropped, 0u);
  // Zero-record traces must compare as identical, not as a degenerate
  // divergence at record 0.
  const auto d = diff_traces(empty, back);
  EXPECT_TRUE(d.identical);
}

TEST(TraceFormatTest, HostileRecordCountDoesNotPreallocate) {
  // Forge a header claiming ~2^60 records with an empty record section.
  // The reader must fail on the short read, not pre-reserve petabytes
  // (which would raise bad_alloc — not a runtime_error — or OOM first).
  std::string bytes(kTraceMagic, sizeof kTraceMagic);
  bytes.push_back('\x01');  // version
  bytes.push_back('\x00');  // flags
  bytes.push_back('\x00');  // dropped
  std::uint64_t count = std::uint64_t{1} << 60;
  while (count >= 0x80) {
    bytes.push_back(static_cast<char>(0x80 | (count & 0x7f)));
    count >>= 7;
  }
  bytes.push_back(static_cast<char>(count));
  EXPECT_THROW(from_bytes(bytes), std::runtime_error);
}

TEST(TraceSinkTest, UnboundedSinkKeepsEverything) {
  TraceSink sink;
  for (int i = 0; i < 1000; ++i) {
    sink.record(event_fire(SimTau(static_cast<double>(i)),
                           static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(sink.total(), 1000u);
  EXPECT_EQ(sink.size(), 1000u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_FALSE(sink.truncated());
  const auto records = sink.snapshot();
  ASSERT_EQ(records.size(), 1000u);
  EXPECT_EQ(records.front().u, 0u);
  EXPECT_EQ(records.back().u, 999u);
}

TEST(TraceSinkTest, FlightRecorderWrapsAndReportsTruncation) {
  TraceSink sink = TraceSink::flight_recorder(16);
  for (int i = 0; i < 100; ++i) {
    sink.record(event_fire(SimTau(static_cast<double>(i)),
                           static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(sink.total(), 100u);
  EXPECT_EQ(sink.size(), 16u);
  EXPECT_EQ(sink.dropped(), 84u);
  EXPECT_TRUE(sink.truncated());
  // Snapshot unwraps the ring oldest-first: the LAST 16 records in order.
  const auto records = sink.snapshot();
  ASSERT_EQ(records.size(), 16u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].u, 84u + i);
  }
  // The truncation survives serialization.
  std::ostringstream os(std::ios::binary);
  write_trace(os, sink);
  const TraceData back = from_bytes(std::move(os).str());
  EXPECT_TRUE(back.truncated);
  EXPECT_EQ(back.dropped, 84u);
  ASSERT_EQ(back.records.size(), 16u);
  EXPECT_EQ(back.records.front().u, 84u);
}

TEST(TraceSinkTest, FlightRecorderBelowCapacityIsNotTruncated) {
  TraceSink sink = TraceSink::flight_recorder(64);
  for (int i = 0; i < 10; ++i) sink.record(event_fire(SimTau(0.0), 1));
  EXPECT_FALSE(sink.truncated());
  EXPECT_EQ(sink.snapshot().size(), 10u);
}

TEST(TraceDiffTest, IdenticalAndPrefixAndDivergent) {
  TraceData a;
  a.records = one_of_each();
  TraceData b = a;
  EXPECT_TRUE(diff_traces(a, b).identical);

  b.records.pop_back();  // strict prefix: diverges at min(size)
  auto d = diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.first_divergence, b.records.size());

  b = a;
  b.records[4] = adv_break_in(SimTau(3600.0), 6);  // same kind, different proc
  d = diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.first_divergence, 4u);

  std::ostringstream report;
  EXPECT_FALSE(print_diff(report, a, b, 2));
  EXPECT_NE(report.str().find("first divergence at record 4"),
            std::string::npos);
  EXPECT_NE(report.str().find("AdvBreakIn"), std::string::npos);
}

// ---------- end-to-end: runs, perturbation, sweep dumps ----------

analysis::Scenario small_scenario(std::uint64_t seed, net::ProcId victim = 0) {
  analysis::Scenario s;
  s.model.n = 5;
  s.model.f = 1;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::minutes(10);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(100);
  s.horizon = Duration::minutes(40);
  s.sample_period = Duration::seconds(30);
  s.seed = seed;
  // One pinned break-in: tests perturb the schedule by moving the victim.
  s.schedule = adversary::Schedule::single(victim, SimTau(600.0),
                                           SimTau(900.0));
  s.strategy = "clock-smash-random";
  s.strategy_scale = Duration::minutes(5);
  return s;
}

std::string trace_bytes_of_run(const analysis::Scenario& s) {
  TraceSink sink;
  (void)analysis::run_scenario(s, &sink);
  std::ostringstream os(std::ios::binary);
  write_trace(os, sink);
  return std::move(os).str();
}

TEST(TraceEndToEndTest, TracedAndUntracedRunsAgreeOnAllCounters) {
  const auto s = small_scenario(3);
  const auto plain = analysis::run_scenario(s);
  TraceSink sink;
  const auto traced = analysis::run_scenario(s, &sink);
  // The sink must be pure observation: bit-identical results.
  EXPECT_EQ(plain.events_executed, traced.events_executed);
  EXPECT_EQ(plain.messages_sent, traced.messages_sent);
  EXPECT_EQ(plain.rounds_completed, traced.rounds_completed);
  EXPECT_EQ(plain.max_stable_deviation.sec(),
            traced.max_stable_deviation.sec());
}

TEST(TraceEndToEndTest, PerturbedAdversaryScheduleDivergesAtFirstBreakIn) {
  // Same scenario and seed; the only difference is ONE adversary schedule
  // entry (victim 0 vs victim 1).
  const std::string a = trace_bytes_of_run(small_scenario(3, /*victim=*/0));
  const std::string b = trace_bytes_of_run(small_scenario(3, /*victim=*/1));
  ASSERT_NE(a, b);
  const TraceData ta = from_bytes(a);
  const TraceData tb = from_bytes(b);
  const TraceDiff d = diff_traces(ta, tb);
  ASSERT_FALSE(d.identical);
  // Until the break-in fires the two runs are the same system, so the
  // divergence cannot be at record 0; at the divergence point the records
  // must be the two AdvBreakIn entries naming the two victims.
  EXPECT_GT(d.first_divergence, 0u);
  ASSERT_LT(d.first_divergence, ta.records.size());
  ASSERT_LT(d.first_divergence, tb.records.size());
  const TraceRecord& ra = ta.records[d.first_divergence];
  const TraceRecord& rb = tb.records[d.first_divergence];
  EXPECT_EQ(ra.kind, RecordKind::AdvBreakIn);
  EXPECT_EQ(rb.kind, RecordKind::AdvBreakIn);
  EXPECT_EQ(ra.p, 0);
  EXPECT_EQ(rb.p, 1);
}

TEST(TraceEndToEndTest, SameScenarioTwiceIsByteIdentical) {
  const auto s = small_scenario(9);
  EXPECT_EQ(trace_bytes_of_run(s), trace_bytes_of_run(s));
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << path;
  std::ostringstream os(std::ios::binary);
  os << f.rdbuf();
  return std::move(os).str();
}

TEST(TraceSweepTest, DumpsAreByteIdenticalAcrossJobCounts) {
  const auto make = [](std::uint64_t seed) { return small_scenario(seed); };
  const auto dir = std::filesystem::temp_directory_path() /
                   "czsync_trace_sweep_test";
  std::filesystem::remove_all(dir);

  constexpr int kSeeds = 4;
  std::vector<std::string> baseline;
  for (int jobs : {1, 2, 7}) {
    const auto sub = dir / ("jobs" + std::to_string(jobs));
    std::filesystem::create_directories(sub);
    analysis::SweepTraceConfig cfg;
    cfg.path_prefix = sub.string() + "/";
    cfg.flight_capacity = 0;  // full capture so the whole run is compared
    cfg.dump_all = true;
    (void)analysis::run_sweep_parallel(make, 1, kSeeds, jobs, &cfg);
    std::vector<std::string> dumps;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      dumps.push_back(slurp(cfg.path_for_seed(seed)));
      EXPECT_FALSE(dumps.back().empty());
    }
    if (baseline.empty()) {
      baseline = std::move(dumps);
    } else {
      for (int i = 0; i < kSeeds; ++i) {
        EXPECT_EQ(dumps[static_cast<std::size_t>(i)],
                  baseline[static_cast<std::size_t>(i)])
            << "seed " << (i + 1) << " dump differs at jobs=" << jobs;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(TraceSweepTest, FlightRecorderDumpsOnlyFailingSeeds) {
  // convergence "none" never adjusts clocks, so the deviation bound is
  // violated deterministically — the auto-dump (failure-only) path.
  const auto make = [](std::uint64_t seed) {
    auto s = small_scenario(seed);
    s.convergence = "none";
    return s;
  };
  const auto dir = std::filesystem::temp_directory_path() /
                   "czsync_trace_flight_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  analysis::SweepTraceConfig cfg;
  cfg.path_prefix = dir.string() + "/";
  cfg.flight_capacity = 256;
  const auto sw = analysis::run_sweep_parallel(make, 1, 2, 2, &cfg);
  ASSERT_GT(sw.bound_violations, 0);
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto path = cfg.path_for_seed(seed);
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    const TraceData dump = read_trace_file(path);
    EXPECT_TRUE(dump.truncated);      // long run through a 256-slot ring
    EXPECT_LE(dump.records.size(), 256u);
    EXPECT_GT(dump.dropped, 0u);
  }

  // A healthy sweep through the same config must dump nothing.
  const auto healthy_dir = dir / "healthy";
  std::filesystem::create_directories(healthy_dir);
  analysis::SweepTraceConfig healthy;
  healthy.path_prefix = healthy_dir.string() + "/";
  healthy.flight_capacity = 256;
  const auto make_ok = [](std::uint64_t seed) { return small_scenario(seed); };
  const auto sw_ok = analysis::run_sweep_parallel(make_ok, 1, 2, 2, &healthy);
  EXPECT_EQ(sw_ok.bound_violations, 0);
  EXPECT_EQ(sw_ok.unrecovered_runs, 0);
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    EXPECT_FALSE(std::filesystem::exists(healthy.path_for_seed(seed)));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace czsync::trace
