// Unit tests for the clock substrate: drift models, hardware clocks
// (Eq. 2 invariant, alarms, rate changes), logical clocks (Def. 1).
#include <gtest/gtest.h>

#include <vector>

#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace czsync::clk {
namespace {

constexpr double kRho = 1e-4;

// ---------- drift models ----------

TEST(DriftModelTest, RateBand) {
  ConstantDrift m(kRho);
  EXPECT_DOUBLE_EQ(m.rho(), kRho);
  EXPECT_DOUBLE_EQ(m.min_rate(), 1.0 / (1.0 + kRho));
  EXPECT_DOUBLE_EQ(m.max_rate(), 1.0 + kRho);
}

TEST(ConstantDriftTest, InitialRateWithinBand) {
  ConstantDrift m(kRho);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double r = m.initial_rate(rng);
    EXPECT_GE(r, m.min_rate());
    EXPECT_LE(r, m.max_rate());
  }
}

TEST(ConstantDriftTest, NeverChanges) {
  ConstantDrift m(kRho);
  Rng rng(1);
  EXPECT_FALSE(m.next_change_after(rng).is_finite());
  EXPECT_DOUBLE_EQ(m.next_rate(1.00005, rng), 1.00005);
}

TEST(ConstantDriftTest, PinnedRate) {
  ConstantDrift m(kRho, 1.0 + kRho);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.initial_rate(rng), 1.0 + kRho);
}

TEST(WanderDriftTest, StepsStayWithinBand) {
  WanderDrift m(kRho, Duration::minutes(1));
  Rng rng(3);
  double r = m.initial_rate(rng);
  for (int i = 0; i < 5000; ++i) {
    r = m.next_rate(r, rng);
    EXPECT_GE(r, m.min_rate());
    EXPECT_LE(r, m.max_rate());
  }
}

TEST(WanderDriftTest, ChangeIntervalsPositiveFinite) {
  WanderDrift m(kRho, Duration::minutes(1));
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Duration d = m.next_change_after(rng);
    EXPECT_TRUE(d.is_finite());
    EXPECT_GT(d, Duration::zero());
  }
}

TEST(WanderDriftTest, RatesActuallyMove) {
  WanderDrift m(kRho, Duration::minutes(1));
  Rng rng(5);
  const double r0 = m.initial_rate(rng);
  double r = r0;
  bool moved = false;
  for (int i = 0; i < 10 && !moved; ++i) {
    r = m.next_rate(r, rng);
    moved = (r != r0);
  }
  EXPECT_TRUE(moved);
}

TEST(SinusoidalDriftTest, RatesTraceTheBandAndStayLegal) {
  SinusoidalDrift m(kRho, Duration::hours(1), 48);
  Rng rng(6);
  double r = m.initial_rate(rng);
  double lo = r, hi = r;
  for (int i = 0; i < 96; ++i) {  // two full cycles
    r = m.next_rate(r, rng);
    EXPECT_GE(r, m.min_rate());
    EXPECT_LE(r, m.max_rate());
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  // Full-amplitude wave: touches (close to) both band edges.
  EXPECT_LT(lo, m.min_rate() + 0.05 * (m.max_rate() - m.min_rate()));
  EXPECT_GT(hi, m.max_rate() - 0.05 * (m.max_rate() - m.min_rate()));
}

TEST(SinusoidalDriftTest, StepCadenceIsCycleFraction) {
  SinusoidalDrift m(kRho, Duration::hours(1), 48);
  Rng rng(7);
  EXPECT_DOUBLE_EQ(m.next_change_after(rng).sec(), 3600.0 / 48);
}

TEST(SinusoidalDriftTest, RandomPhasesDecorrelateClocks) {
  SinusoidalDrift m(kRho, Duration::hours(1));
  Rng a(1), b(2);
  // Separate instances (one per clock) with different rngs start at
  // different phases almost surely.
  SinusoidalDrift m2(kRho, Duration::hours(1));
  EXPECT_NE(m.initial_rate(a), m2.initial_rate(b));
}

TEST(SinusoidalDriftTest, HardwareClockHonorsEq2) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_sinusoidal_drift(1e-3, Duration::minutes(10)), Rng(8));
  double prev_h = hw.read().raw(), prev_t = 0.0;
  for (int i = 1; i <= 120; ++i) {
    sim.run_until(SimTau(i * 30.0));
    const double h = hw.read().raw(), t = sim.now().raw();
    EXPECT_GE(h - prev_h, (t - prev_t) / (1.0 + 1e-3) - 1e-9);
    EXPECT_LE(h - prev_h, (t - prev_t) * (1.0 + 1e-3) + 1e-9);
    prev_h = h;
    prev_t = t;
  }
  EXPECT_GT(hw.rate_changes(), 50u);
}

TEST(DriftFactoriesTest, Construct) {
  EXPECT_NE(make_constant_drift(kRho), nullptr);
  EXPECT_NE(make_pinned_drift(kRho, 1.0), nullptr);
  EXPECT_NE(make_wander_drift(kRho, Duration::minutes(5)), nullptr);
  EXPECT_NE(make_sinusoidal_drift(kRho, Duration::hours(1)), nullptr);
}

// ---------- hardware clock ----------

TEST(HardwareClockTest, InitialValue) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1), HwTime(42.0));
  EXPECT_DOUBLE_EQ(hw.read().raw(), 42.0);
}

TEST(HardwareClockTest, AdvancesAtPinnedRate) {
  sim::Simulator sim;
  const double rate = 1.0 + kRho;
  HardwareClock hw(sim, make_pinned_drift(kRho, rate), Rng(1));
  sim.run_until(SimTau(1000.0));
  EXPECT_NEAR(hw.read().raw(), 1000.0 * rate, 1e-9);
  EXPECT_DOUBLE_EQ(hw.rate(), rate);
}

TEST(HardwareClockTest, Eq2InvariantUnderWander) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_wander_drift(kRho, Duration::seconds(10)), Rng(7));
  double prev_h = hw.read().raw();
  double prev_t = 0.0;
  for (int step = 1; step <= 500; ++step) {
    sim.run_until(SimTau(step * 5.0));
    const double h = hw.read().raw();
    const double t = sim.now().raw();
    const double dh = h - prev_h;
    const double dt = t - prev_t;
    // Eq. 2 with a drop of slack for float rounding.
    EXPECT_GE(dh, dt / (1.0 + kRho) - 1e-9);
    EXPECT_LE(dh, dt * (1.0 + kRho) + 1e-9);
    EXPECT_GT(dh, 0.0);  // monotone
    prev_h = h;
    prev_t = t;
  }
  EXPECT_GT(hw.rate_changes(), 10u);
}

TEST(HardwareClockTest, AlarmFiresAtHardwareTarget) {
  sim::Simulator sim;
  const double rate = 1.0 / (1.0 + kRho);  // slow clock
  HardwareClock hw(sim, make_pinned_drift(kRho, rate), Rng(1));
  double fired_at = -1.0;
  hw.set_alarm_after(Duration::seconds(100), [&] { fired_at = sim.now().raw(); });
  sim.run_until(SimTau(1000.0));
  // 100 hardware-seconds take 100/rate real seconds.
  EXPECT_NEAR(fired_at, 100.0 / rate, 1e-6);
}

TEST(HardwareClockTest, AlarmCancel) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1));
  bool fired = false;
  const AlarmId id = hw.set_alarm_after(Duration::seconds(5), [&] { fired = true; });
  EXPECT_EQ(hw.pending_alarms(), 1u);
  EXPECT_TRUE(hw.cancel_alarm(id));
  EXPECT_EQ(hw.pending_alarms(), 0u);
  sim.run_until(SimTau(10.0));
  EXPECT_FALSE(fired);
  EXPECT_FALSE(hw.cancel_alarm(id));
}

TEST(HardwareClockTest, MultipleAlarmsOrdered) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1));
  std::vector<int> order;
  hw.set_alarm_after(Duration::seconds(3), [&] { order.push_back(3); });
  hw.set_alarm_after(Duration::seconds(1), [&] { order.push_back(1); });
  hw.set_alarm_after(Duration::seconds(2), [&] { order.push_back(2); });
  sim.run_until(SimTau(10.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(HardwareClockTest, AlarmSurvivesRateChanges) {
  // A wander clock re-targets pending alarms on every rate change; the
  // alarm must fire when H crosses the target, regardless.
  sim::Simulator sim;
  HardwareClock hw(sim, make_wander_drift(kRho, Duration::seconds(2)), Rng(11));
  const HwTime target = hw.read() + Duration::seconds(100);
  double fired_h = -1.0;
  hw.set_alarm_after(Duration::seconds(100), [&] { fired_h = hw.read().raw(); });
  sim.run_until(SimTau(200.0));
  EXPECT_NEAR(fired_h, target.raw(), 1e-6);
  EXPECT_GT(hw.rate_changes(), 5u);
}

TEST(HardwareClockTest, ZeroDelayAlarmFiresImmediately) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1));
  bool fired = false;
  hw.set_alarm_after(Duration::zero(), [&] { fired = true; });
  sim.run_until(SimTau(0.0));
  EXPECT_TRUE(fired);
}

TEST(HardwareClockTest, AlarmSetInsideAlarm) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1));
  std::vector<double> fires;
  std::function<void()> rearm = [&] {
    fires.push_back(sim.now().raw());
    if (fires.size() < 3) hw.set_alarm_after(Duration::seconds(10), rearm);
  };
  hw.set_alarm_after(Duration::seconds(10), rearm);
  sim.run_until(SimTau(100.0));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_NEAR(fires[0], 10.0, 1e-9);
  EXPECT_NEAR(fires[1], 20.0, 1e-9);
  EXPECT_NEAR(fires[2], 30.0, 1e-9);
}

// ---------- logical clock ----------

TEST(LogicalClockTest, ReadIsHardwarePlusAdjustment) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1), HwTime(100.0));
  LogicalClock lc(hw, Duration::seconds(5));
  EXPECT_DOUBLE_EQ(lc.read().raw(), 105.0);
  sim.schedule_after(Duration::seconds(10), [] {});
  sim.run_until(SimTau(10.0));
  EXPECT_DOUBLE_EQ(lc.read().raw(), 115.0);
}

TEST(LogicalClockTest, AdjustAccumulates) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1));
  LogicalClock lc(hw);
  lc.adjust(Duration::seconds(2));
  lc.adjust(Duration::seconds(-0.5));
  EXPECT_DOUBLE_EQ(lc.adjustment().sec(), 1.5);
  EXPECT_DOUBLE_EQ(lc.read().raw(), 1.5);
  EXPECT_EQ(lc.adjust_count(), 2u);
  EXPECT_DOUBLE_EQ(lc.last_adjustment().sec(), -0.5);
}

TEST(LogicalClockTest, AdversarySetClock) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1), HwTime(50.0));
  LogicalClock lc(hw);
  lc.adversary_set_clock(LogicalTime(1000.0));
  EXPECT_DOUBLE_EQ(lc.read().raw(), 1000.0);
  EXPECT_EQ(lc.smash_count(), 1u);
  // Hardware clock unaffected — only adj moved.
  EXPECT_DOUBLE_EQ(hw.read().raw(), 50.0);
}

TEST(LogicalClockTest, AdversarySetAdjustment) {
  sim::Simulator sim;
  HardwareClock hw(sim, make_pinned_drift(kRho, 1.0), Rng(1), HwTime(7.0));
  LogicalClock lc(hw);
  lc.adversary_set_adjustment(Duration::seconds(-3));
  EXPECT_DOUBLE_EQ(lc.read().raw(), 4.0);
}

TEST(LogicalClockTest, BiasEvolvesWithDriftOnly) {
  // With rate pinned high and no adjustments, the bias B = C - tau grows
  // at exactly (rate - 1) per real second.
  sim::Simulator sim;
  const double rate = 1.0 + kRho;
  HardwareClock hw(sim, make_pinned_drift(kRho, rate), Rng(1));
  LogicalClock lc(hw);
  sim.run_until(SimTau(10000.0));
  const double bias = lc.read().raw() - sim.now().raw();
  EXPECT_NEAR(bias, 10000.0 * kRho, 1e-6);
}

}  // namespace
}  // namespace czsync::clk
