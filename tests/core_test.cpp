// Unit tests for the core library: parameter derivation and the Theorem-5
// calculator, envelope algebra (Definition 6), the ping estimator
// (Definition 4 arithmetic) and the convergence functions (Figure 1).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/convergence.h"
#include "core/envelope.h"
#include "core/estimate.h"
#include "core/params.h"

namespace czsync::core {
namespace {

// ---------- params / Theorem 5 ----------

TEST(ModelParamsTest, ByzantineQuorum) {
  ModelParams m;
  m.n = 4;
  m.f = 1;
  EXPECT_TRUE(m.byzantine_quorum_ok());
  m.n = 3;
  EXPECT_FALSE(m.byzantine_quorum_ok());
  EXPECT_EQ(ModelParams::max_f(7), 2);
  EXPECT_EQ(ModelParams::max_f(9), 2);
  EXPECT_EQ(ModelParams::max_f(10), 3);
  EXPECT_EQ(ModelParams::max_f(4), 1);
}

TEST(ProtocolParamsTest, DeriveMatchesPaperFormulas) {
  ModelParams m;
  m.rho = 1e-4;
  m.delta = Duration::millis(50);
  m.delta_period = Duration::hours(1);
  const auto p = ProtocolParams::derive(m, Duration::minutes(1));
  EXPECT_DOUBLE_EQ(p.max_wait.sec(), 0.1);  // 2 delta
  const double T = 60.0 * (1.0 + 1e-4) + 0.2;
  const double eps = 0.05 * (1.0 + 1e-4);
  EXPECT_NEAR(p.way_off.sec(), 16 * eps + 18 * 1e-4 * T + eps, 1e-12);
}

TEST(TheoremBoundsTest, MatchesClosedForms) {
  ModelParams m;
  m.rho = 1e-4;
  m.delta = Duration::millis(50);
  m.delta_period = Duration::hours(1);
  const auto p = ProtocolParams::derive(m, Duration::minutes(1));
  const auto b = TheoremBounds::compute(m, p);

  const double T = 60.0 * 1.0001 + 0.2;
  EXPECT_NEAR(b.T.sec(), T, 1e-12);
  EXPECT_EQ(b.K, static_cast<int>(std::floor(3600.0 / T)));
  EXPECT_TRUE(b.k_precondition_ok);
  const double eps = 0.05 * 1.0001;
  EXPECT_NEAR(b.epsilon.sec(), eps, 1e-12);
  const double C = (17 * eps + 18 * 1e-4 * T) / std::pow(2.0, b.K - 3);
  EXPECT_NEAR(b.C.sec(), C, 1e-15);
  EXPECT_NEAR(b.max_deviation.sec(), 16 * eps + 18 * 1e-4 * T + 4 * C, 1e-12);
  EXPECT_NEAR(b.envelope_d.sec(), 8 * eps + 8 * 1e-4 * T + 2 * C, 1e-12);
  EXPECT_NEAR(b.logical_drift, 1e-4 + C / (2 * T), 1e-15);
  EXPECT_NEAR(b.discontinuity.sec(), eps + C / 2, 1e-15);
  // gamma = 2D + 2 rho T (Appendix A.3 consistency).
  EXPECT_NEAR(b.max_deviation.sec(),
              2 * b.envelope_d.sec() + 2 * 1e-4 * b.T.sec(), 1e-12);
}

TEST(TheoremBoundsTest, PenaltyVanishesAsKGrows) {
  ModelParams m;
  m.rho = 1e-4;
  m.delta = Duration::millis(50);
  m.delta_period = Duration::hours(1);
  double prev_c = 1e18;
  for (int k : {5, 10, 20, 40}) {
    const auto p = ProtocolParams::derive_for_k(m, k);
    const auto b = TheoremBounds::compute(m, p);
    EXPECT_GE(b.K, k - 1);
    EXPECT_LT(b.C.sec(), prev_c);
    prev_c = b.C.sec();
  }
  // At K = 40 the logical drift is essentially rho.
  const auto b40 = TheoremBounds::compute(m, ProtocolParams::derive_for_k(m, 40));
  EXPECT_NEAR(b40.logical_drift, m.rho, 1e-8);
}

TEST(TheoremBoundsTest, KPreconditionFlag) {
  ModelParams m;
  m.delta_period = Duration::minutes(2);
  const auto p = ProtocolParams::derive(m, Duration::minutes(1));
  const auto b = TheoremBounds::compute(m, p);
  EXPECT_LT(b.K, 5);
  EXPECT_FALSE(b.k_precondition_ok);
  EXPECT_NE(b.summary().find("WARNING"), std::string::npos);
}

TEST(ReadingErrorTest, Bound) {
  EXPECT_NEAR(reading_error_bound(1e-4, Duration::millis(50)).sec(),
              0.05 * 1.0001, 1e-12);
}

// ---------- envelope (Definition 6) ----------

TEST(EnvelopeTest, WidensWithDrift) {
  Envelope e(SimTau(100.0), {Duration::seconds(-1), Duration::seconds(1)}, 1e-3);
  const auto at0 = e.at(SimTau(100.0));
  EXPECT_DOUBLE_EQ(at0.lo.sec(), -1.0);
  EXPECT_DOUBLE_EQ(at0.hi.sec(), 1.0);
  EXPECT_DOUBLE_EQ(at0.width().sec(), 2.0);
  const auto at1k = e.at(SimTau(1100.0));
  EXPECT_DOUBLE_EQ(at1k.lo.sec(), -2.0);
  EXPECT_DOUBLE_EQ(at1k.hi.sec(), 2.0);
  EXPECT_DOUBLE_EQ(e.width_at(SimTau(1100.0)).sec(), 4.0);
}

TEST(EnvelopeTest, Membership) {
  Envelope e(SimTau(0.0), {Duration::seconds(0), Duration::seconds(1)}, 1e-3);
  EXPECT_TRUE(e.contains(SimTau(0.0), Duration::seconds(0.5)));
  EXPECT_FALSE(e.contains(SimTau(0.0), Duration::seconds(1.5)));
  EXPECT_TRUE(e.contains(SimTau(1000.0), Duration::seconds(1.5)));  // widened
  EXPECT_TRUE(e.not_above(SimTau(0.0), Duration::seconds(-5)));
  EXPECT_FALSE(e.not_above(SimTau(0.0), Duration::seconds(5)));
  EXPECT_TRUE(e.not_below(SimTau(0.0), Duration::seconds(5)));
  EXPECT_FALSE(e.not_below(SimTau(0.0), Duration::seconds(-5)));
}

TEST(EnvelopeTest, WidenByConstant) {
  Envelope e(SimTau(0.0), {Duration::seconds(-1), Duration::seconds(1)}, 0.0);
  const auto w = e.widen(Duration::seconds(0.5));
  EXPECT_DOUBLE_EQ(w.at(SimTau(0.0)).lo.sec(), -1.5);
  EXPECT_DOUBLE_EQ(w.at(SimTau(0.0)).hi.sec(), 1.5);
}

TEST(EnvelopeTest, AverageOfEnvelopes) {
  Envelope a(SimTau(0.0), {Duration::seconds(0), Duration::seconds(2)}, 1e-3);
  Envelope b(SimTau(0.0), {Duration::seconds(-2), Duration::seconds(0)}, 1e-3);
  const auto avg = Envelope::average(a, b);
  EXPECT_DOUBLE_EQ(avg.at(SimTau(0.0)).lo.sec(), -1.0);
  EXPECT_DOUBLE_EQ(avg.at(SimTau(0.0)).hi.sec(), 1.0);
}

TEST(EnvelopeTest, RebaseFreezesWidth) {
  Envelope e(SimTau(0.0), {Duration::seconds(-1), Duration::seconds(1)}, 1e-3);
  const auto r = e.rebase(SimTau(1000.0));
  EXPECT_EQ(r.tau0(), SimTau(1000.0));
  EXPECT_DOUBLE_EQ(r.width_at(SimTau(1000.0)).sec(),
                   e.width_at(SimTau(1000.0)).sec());
}

TEST(EnvelopeTest, DriftBoundPropertyOnClockTrace) {
  // A bias trajectory with |slope| <= rho starting inside E stays in E.
  const double rho = 1e-3;
  Envelope e(SimTau(0.0), {Duration::seconds(-0.5), Duration::seconds(0.5)}, rho);
  double bias = 0.4;
  for (int i = 1; i <= 1000; ++i) {
    bias += ((i % 2) ? rho : -rho) * 0.9;  // wiggle within the drift bound
    EXPECT_TRUE(e.contains(SimTau(static_cast<double>(i)), Duration::seconds(bias)));
  }
}

// ---------- estimation (§3.1 / Definition 4) ----------

TEST(EstimateTest, SymmetricPathExact) {
  // S = 10, R = 10.1; responder read 20.05 at the midpoint: d = 10.
  const auto e = estimate_from_ping(LogicalTime(10.0), LogicalTime(20.05),
                                    LogicalTime(10.1));
  EXPECT_NEAR(e.d.sec(), 10.0, 1e-12);
  EXPECT_NEAR(e.a.sec(), 0.05, 1e-12);
  EXPECT_FALSE(e.timed_out());
  EXPECT_NEAR(e.over().sec(), 10.05, 1e-12);
  EXPECT_NEAR(e.under().sec(), 9.95, 1e-12);
}

TEST(EstimateTest, ErrorBoundIsHalfRtt) {
  const auto e = estimate_from_ping(LogicalTime(0.0), LogicalTime(5.0),
                                    LogicalTime(0.08));
  EXPECT_DOUBLE_EQ(e.a.sec(), 0.04);
}

TEST(EstimateTest, Definition4Contract) {
  // Whatever the asymmetry, the true offset at the response instant lies
  // in [d-a, d+a]. Construct: requester clock runs at 1, responder offset
  // is `off`; forward delay fd, backward bd.
  for (double off : {-3.0, 0.0, 2.5}) {
    for (double fd : {0.01, 0.05}) {
      for (double bd : {0.01, 0.09}) {
        const double S = 100.0;
        const double respond_at = S + fd;           // requester-clock time
        const double R = respond_at + bd;
        const double C = respond_at + off;          // responder's clock
        const auto e = estimate_from_ping(LogicalTime(S), LogicalTime(C),
                                          LogicalTime(R));
        EXPECT_LE(e.under().sec(), off + 1e-12);
        EXPECT_GE(e.over().sec(), off - 1e-12);
      }
    }
  }
}

TEST(EstimateTest, TimeoutSentinel) {
  const auto t = Estimate::timeout();
  EXPECT_TRUE(t.timed_out());
  EXPECT_FALSE(t.over().is_finite());
  EXPECT_FALSE(t.under().is_finite());
  EXPECT_GT(t.over(), Duration::zero());
  EXPECT_LT(t.under(), Duration::zero());
}

TEST(EstimateTest, SelfEstimateExact) {
  const auto s = Estimate::self();
  EXPECT_DOUBLE_EQ(s.d.sec(), 0.0);
  EXPECT_DOUBLE_EQ(s.a.sec(), 0.0);
}

TEST(EstimateTest, BestOfPicksSmallestError) {
  const Estimate e1{Duration::seconds(1.0), Duration::seconds(0.05)};
  const Estimate e2{Duration::seconds(1.1), Duration::seconds(0.01)};
  const auto best = best_of({e1, Estimate::timeout(), e2});
  EXPECT_DOUBLE_EQ(best.d.sec(), 1.1);
  EXPECT_DOUBLE_EQ(best.a.sec(), 0.01);
  EXPECT_TRUE(best_of({}).timed_out());
}

// ---------- convergence functions ----------

std::vector<PeerEstimate> exact(std::initializer_list<double> offsets) {
  std::vector<PeerEstimate> v;
  for (double d : offsets) v.push_back({Duration::seconds(d), Duration::seconds(d)});
  return v;
}

TEST(SelectionTest, OrderStatistics) {
  const auto est = exact({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(select_low(est, 0).sec(), 1.0);   // smallest
  EXPECT_DOUBLE_EQ(select_low(est, 1).sec(), 2.0);   // 2nd smallest
  EXPECT_DOUBLE_EQ(select_high(est, 0).sec(), 5.0);  // largest
  EXPECT_DOUBLE_EQ(select_high(est, 1).sec(), 4.0);  // 2nd largest
  EXPECT_DOUBLE_EQ(select_high(est, 4).sec(), 1.0);
}

TEST(SelectionTest, TimeoutsSortToExtremes) {
  std::vector<PeerEstimate> est = exact({1, 2, 3});
  est.push_back(PeerEstimate::from(Estimate::timeout()));
  // Overestimate +inf is the largest; with f=1 the low pick skips nothing
  // at the bottom.
  EXPECT_DOUBLE_EQ(select_low(est, 1).sec(), 2.0);
  // Underestimate -inf is the smallest; high pick with f=1 gives 3's
  // neighbor.
  EXPECT_DOUBLE_EQ(select_high(est, 1).sec(), 2.0);
}

TEST(BhhnTest, InsideRangeAveragesTrimmedEndpoints) {
  // Estimates straddle zero: m = min(...)=-2 (f=0), M = 3.
  BhhnConvergence fn;
  const auto r = fn.apply(exact({-2, 0, 3}), 0, Duration::seconds(100));
  EXPECT_FALSE(r.way_off_branch);
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), (-2.0 + 3.0) / 2);
}

TEST(BhhnTest, OwnClockPreservedWhenExtreme) {
  // All peers are ahead (m, M > 0): the clock moves only M/2 toward them
  // — "half-way" per §3.2 — because min(m,0) = 0.
  BhhnConvergence fn;
  const auto r = fn.apply(exact({0, 4, 5, 6}), 0, Duration::seconds(100));
  EXPECT_FALSE(r.way_off_branch);
  // self-estimate 0 included: m = 0, M = 6 -> (0 + 6)/2 = 3.
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 3.0);
}

TEST(BhhnTest, BehindPeersWithoutSelfZero) {
  BhhnConvergence fn;
  // All estimates positive (clock behind): m=4 > 0 so min(m,0)=0, M=6.
  const auto r = fn.apply(exact({4, 5, 6}), 0, Duration::seconds(100));
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 3.0);
}

TEST(BhhnTest, WayOffBranchJumpsToMidrange) {
  BhhnConvergence fn;
  // m = 50 > WayOff triggers... m >= -WayOff holds; M = 60 > WayOff=10
  // violates step 10 -> escape branch: (m + M) / 2.
  const auto r = fn.apply(exact({50, 55, 60}), 0, Duration::seconds(10));
  EXPECT_TRUE(r.way_off_branch);
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 55.0);
}

TEST(BhhnTest, WayOffBranchNegativeSide) {
  BhhnConvergence fn;
  const auto r = fn.apply(exact({-50, -55, -60}), 0, Duration::seconds(10));
  EXPECT_TRUE(r.way_off_branch);
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), -55.0);
}

TEST(BhhnTest, TrimsFByzantineExtremes) {
  BhhnConvergence fn;
  // Two liars at +/- 1000 among 7 (f=2): both order statistics ignore
  // them entirely.
  const auto r =
      fn.apply(exact({-1000, -0.01, 0, 0.01, 0.02, 0.03, 1000}), 2,
               Duration::seconds(1));
  EXPECT_FALSE(r.way_off_branch);
  // m = 3rd smallest over = 0, M = 3rd largest under = 0.02 (the +1000
  // liar and the honest 0.03 are both above it).
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), (0.0 + 0.02) / 2);
}

TEST(BhhnTest, ToleratesFTimeouts) {
  BhhnConvergence fn;
  std::vector<PeerEstimate> est = exact({-0.02, 0, 0.02, 0.04});
  est.push_back(PeerEstimate::from(Estimate::timeout()));
  const auto r = fn.apply(est, 1, Duration::seconds(1));
  EXPECT_TRUE(r.adjustment.is_finite());
  EXPECT_FALSE(r.way_off_branch);
}

TEST(BhhnTest, TooManyTimeoutsNoAdjustment) {
  BhhnConvergence fn;
  std::vector<PeerEstimate> est;
  est.push_back(PeerEstimate::from(Estimate::self()));
  for (int i = 0; i < 4; ++i) est.push_back(PeerEstimate::from(Estimate::timeout()));
  const auto r = fn.apply(est, 1, Duration::seconds(1));
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 0.0);
}

TEST(BhhnTest, ErrorBoundsWidenSelection) {
  BhhnConvergence fn;
  // One estimate with a large error bound: over/under split drags m down
  // and M up conservatively.
  std::vector<PeerEstimate> est = {
      PeerEstimate::from(Estimate::self()),
      PeerEstimate::from(Estimate{Duration::seconds(1.0), Duration::seconds(0.5)}),
  };
  const auto r = fn.apply(est, 0, Duration::seconds(100));
  // overs = {0, 1.5}, unders = {0, 0.5}: m = 0, M = 0.5.
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 0.25);
}

TEST(MidpointTest, AlwaysJumpsToMidrange) {
  MidpointConvergence fn;
  const auto r = fn.apply(exact({0, 4, 6}), 0, Duration::seconds(100));
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 3.0);
}

TEST(CappedTest, ClampsCorrection) {
  CappedCorrectionConvergence fn(Duration::millis(100));
  // Raw BHHN normal-branch delta would be 3.0; cap clamps to 0.1.
  const auto r = fn.apply(exact({0, 4, 5, 6}), 0, Duration::seconds(100));
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 0.1);
  const auto rn = fn.apply(exact({0, -4, -5, -6}), 0, Duration::seconds(100));
  EXPECT_DOUBLE_EQ(rn.adjustment.sec(), -0.1);
}

TEST(CappedTest, SmallCorrectionsPassThrough) {
  CappedCorrectionConvergence fn(Duration::millis(100));
  const auto r = fn.apply(exact({-0.01, 0, 0.03}), 0, Duration::seconds(100));
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 0.01);
}

TEST(NullTest, NeverAdjusts) {
  NullConvergence fn;
  const auto r = fn.apply(exact({100, 200}), 0, Duration::seconds(1));
  EXPECT_DOUBLE_EQ(r.adjustment.sec(), 0.0);
  EXPECT_FALSE(r.way_off_branch);
}

TEST(ConvergenceFactoryTest, Names) {
  EXPECT_EQ(make_convergence("bhhn")->name(), "bhhn");
  EXPECT_EQ(make_convergence("midpoint")->name(), "midpoint");
  EXPECT_EQ(make_convergence("capped-correction")->name(), "capped-correction");
  EXPECT_EQ(make_convergence("none")->name(), "none");
  EXPECT_THROW(make_convergence("bogus"), std::invalid_argument);
}

// The convergence property at the heart of Lemma 7, distilled: applying
// the function simultaneously at every processor with exact estimates
// shrinks the bias spread.
TEST(BhhnTest, SimultaneousApplicationContracts) {
  std::vector<double> bias = {-1.0, -0.5, 0.0, 0.7, 1.0};
  const BhhnConvergence fn;
  double spread = 2.0;
  for (int round = 0; round < 20; ++round) {
    std::vector<double> next(bias.size());
    for (std::size_t p = 0; p < bias.size(); ++p) {
      std::vector<PeerEstimate> est;
      for (double bq : bias) {
        const double d = bq - bias[p];
        est.push_back({Duration::seconds(d), Duration::seconds(d)});
      }
      next[p] = bias[p] + fn.apply(est, 1, Duration::seconds(100)).adjustment.sec();
    }
    bias = next;
    const auto [mn, mx] = std::minmax_element(bias.begin(), bias.end());
    const double new_spread = *mx - *mn;
    EXPECT_LE(new_spread, spread + 1e-12);
    spread = new_spread;
  }
  EXPECT_LT(spread, 0.01);  // geometric contraction happened
}

}  // namespace
}  // namespace czsync::core
