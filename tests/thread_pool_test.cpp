// Tests for the worker pool underneath parallel sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace czsync {
namespace {

TEST(ThreadPoolTest, ConstructsAndShutsDownIdle) {
  for (std::size_t n : {1u, 2u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
    // Destructor joins idle workers without deadlock.
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, ResultsIndependentOfCompletionOrder) {
  // Tasks finish in scrambled order (earlier-submitted tasks sleep
  // longer); per-slot results must still land in their own slots and the
  // reduction over slots must be the submission-order reduction.
  ThreadPool pool(4);
  constexpr int kTasks = 24;
  std::vector<double> slot(kTasks, 0.0);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(pool.submit([&slot, i] {
      std::this_thread::sleep_for(
          std::chrono::microseconds((kTasks - i) * 100));
      slot[static_cast<std::size_t>(i)] = 1.0 / (1.0 + i);
    }));
  }
  for (auto& f : futs) f.get();
  double expect = 0.0;
  for (int i = 0; i < kTasks; ++i) expect += 1.0 / (1.0 + i);
  // Bit-exact: the fold happens in slot order on this thread, so the
  // result cannot depend on which worker finished first.
  EXPECT_EQ(std::accumulate(slot.begin(), slot.end(), 0.0), expect);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("boom from worker");
  });
  auto also_ok = pool.submit([] { return 3; });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom from worker");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(also_ok.get(), 3);
  EXPECT_EQ(pool.submit([] { return 4; }).get(), 4);
}

TEST(ThreadPoolTest, ReusableAfterDrain) {
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 16; ++i) {
      futs.push_back(pool.submit([&done] { ++done; }));
    }
    for (auto& f : futs) f.get();
    EXPECT_EQ(done.load(), 16);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      auto f = pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++done;
      });
      (void)f;  // deliberately not waited on; shutdown must still run it
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, StressManySmallTasksNoDeadlock) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<long> sum{0};
    std::vector<std::future<void>> futs;
    constexpr int kTasks = 400;
    futs.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futs.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& f : futs) f.get();
    EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
  }
}

}  // namespace
}  // namespace czsync
