// Tests for the §3.1 cached-estimation variant — including the
// Definition-4 violation it exists to demonstrate.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/schedule.h"
#include "analysis/experiment.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "core/sync_protocol.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace czsync::core {
namespace {

struct CacheNode {
  CacheNode(sim::Simulator& sim, net::Network& net, net::ProcId id,
            const SyncConfig& cfg, Duration initial_bias)
      : hw(sim, clk::make_pinned_drift(1e-6, 1.0), Rng(100 + id),
           HwTime(sim.now().raw()) + initial_bias),
        clock(hw),
        sync(sim.trace_port(), net, clock, id, cfg, Rng(200 + id)) {
    net.register_handler(id, [this](const net::Message& m) {
      sync.handle_message(m);
    });
  }
  clk::HardwareClock hw;
  clk::LogicalClock clock;
  SyncProcess sync;
};

class CachedEstimationTest : public ::testing::Test {
 protected:
  void build(const std::vector<double>& biases, Duration refresh, Duration max_age) {
    const int n = static_cast<int>(biases.size());
    net = std::make_unique<net::Network>(
        sim, net::Topology::full_mesh(n),
        net::make_fixed_delay(Duration::millis(10)), Rng(7));
    cfg.params.sync_int = Duration::seconds(60);
    cfg.params.max_wait = Duration::millis(20);
    cfg.params.way_off = Duration::seconds(1);
    cfg.f = 0;
    cfg.convergence = make_convergence("bhhn");
    cfg.random_phase = false;
    cfg.cached_estimation = true;
    cfg.cache_refresh = refresh;
    cfg.max_cache_age = max_age;
    for (int p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<CacheNode>(
          sim, *net, p, cfg, Duration::seconds(biases[static_cast<std::size_t>(p)])));
    }
    for (auto& nd : nodes) nd->sync.start();
  }

  sim::Simulator sim;
  SyncConfig cfg;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<CacheNode>> nodes;
};

TEST_F(CachedEstimationTest, FirstRoundSeesEmptyCache) {
  build({0.0, 0.3}, Duration::seconds(20), Duration::minutes(2));
  // Sync alarm and the first cache pings both fire at t=0; the cache has
  // no replies yet, so round 1 is all timeouts and adjusts nothing.
  sim.run_until(SimTau(0.5));
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 1u);
  EXPECT_GE(nodes[0]->sync.stats().timeouts, 1u);
  EXPECT_DOUBLE_EQ(nodes[0]->clock.adjustment().sec(), 0.0);
}

TEST_F(CachedEstimationTest, SecondRoundUsesCache) {
  build({0.0, 0.3}, Duration::seconds(20), Duration::minutes(2));
  sim.run_until(SimTau(65.0));  // round 2 at t=60, cache filled at ~0.01
  EXPECT_EQ(nodes[0]->sync.stats().rounds_completed, 2u);
  // BHHN with estimates {self 0, +0.3}: adjust by ~0.15.
  EXPECT_NEAR(nodes[0]->clock.adjustment().sec(), 0.15, 0.02);
}

TEST_F(CachedEstimationTest, StaleCacheNeverConverges) {
  // Refresh far beyond the horizon: every sync re-applies the ORIGINAL
  // +-0.3 view. Fresh estimation converges geometrically; the stale
  // cache oscillates and never settles — the Definition-4 violation.
  build({-0.15, 0.15}, Duration::hours(10), Duration::hours(20));
  sim.run_until(SimTau(20 * 60.0));
  const double offset =
      nodes[1]->clock.read().raw() - nodes[0]->clock.read().raw();
  EXPECT_GT(std::abs(nodes[0]->clock.adjustment().sec()) +
                std::abs(nodes[1]->clock.adjustment().sec()),
            0.25);                    // they did keep correcting
  EXPECT_GT(std::abs(offset), 0.05);  // ... yet never converged
}

TEST_F(CachedEstimationTest, FreshCacheTracksConvergence) {
  // Refresh faster than SyncInt: close to the fresh protocol.
  build({-0.15, 0.15}, Duration::seconds(10), Duration::seconds(30));
  sim.run_until(SimTau(20 * 60.0));
  const double offset =
      nodes[1]->clock.read().raw() - nodes[0]->clock.read().raw();
  EXPECT_LT(std::abs(offset), 0.05);
}

TEST_F(CachedEstimationTest, EntriesAgeOut) {
  build({0.0, 0.3}, Duration::hours(10), Duration::seconds(90));
  // Cache filled at ~0; by t=120 the entries exceed max_cache_age, so
  // round 3 (t=120) is timeouts again.
  sim.run_until(SimTau(125.0));
  EXPECT_GE(nodes[0]->sync.stats().timeouts, 2u);
}

TEST(CachedScenarioTest, RecoveryOscillatesWhenRefreshExceedsSyncInt) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(50);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.seed = 19;
  s.schedule = adversary::Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(10);

  auto fresh = s;
  const auto rf = analysis::run_scenario(fresh);
  EXPECT_EQ(rf.way_off_rounds, 1u);  // one clean jump

  s.cached_estimation = true;
  s.cache_refresh = Duration::seconds(300);
  const auto rc = analysis::run_scenario(s);
  EXPECT_GT(rc.way_off_rounds, 2u);  // the stale-cache bounce
}

TEST(CachedScenarioTest, SteadyStateStillBoundedWithFastRefresh) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.cached_estimation = true;
  s.cache_refresh = Duration::seconds(15);
  s.horizon = Duration::hours(4);
  s.warmup = Duration::minutes(30);
  s.seed = 20;
  const auto r = analysis::run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

}  // namespace
}  // namespace czsync::core
