// Tests for the registry-driven experiment harness: registration rules,
// lookup/filtering, run_harness argument handling and JSON emission, and
// a golden subprocess test pinning `czsync_bench --run E1` to the legacy
// bench_deviation output byte for byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/registry.h"
#include "experiments.h"

namespace czsync::analysis {
namespace {

Scenario tiny(std::uint64_t seed = 1) {
  Scenario s;
  s.model.n = 4;
  s.model.f = 1;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.horizon = Duration::minutes(30);
  s.sample_period = Duration::minutes(1);
  s.seed = seed;
  return s;
}

Experiment noop(const std::string& id, const std::string& title = "title") {
  return {id, title, "claim", [](ExperimentContext&) {}};
}

// ---------- registration ----------

TEST(ExperimentRegistryTest, RegistersInOrderAndFinds) {
  ExperimentRegistry reg;
  reg.add(noop("E1", "first"));
  reg.add(noop("E2", "second"));
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.experiments()[0].id, "E1");
  EXPECT_EQ(reg.experiments()[1].id, "E2");
  ASSERT_NE(reg.find("E2"), nullptr);
  EXPECT_EQ(reg.find("E2")->title, "second");
  EXPECT_EQ(reg.find("E3"), nullptr);
}

TEST(ExperimentRegistryTest, FindIsCaseInsensitive) {
  ExperimentRegistry reg;
  reg.add(noop("E7"));
  EXPECT_NE(reg.find("e7"), nullptr);
  EXPECT_NE(reg.find("E7"), nullptr);
  EXPECT_EQ(reg.find("e71"), nullptr);  // exact, not prefix
}

TEST(ExperimentRegistryTest, DuplicateIdThrows) {
  ExperimentRegistry reg;
  reg.add(noop("E1"));
  EXPECT_THROW(reg.add(noop("E1")), std::invalid_argument);
  EXPECT_THROW(reg.add(noop("e1")), std::invalid_argument);  // same id, case
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ExperimentRegistryTest, EmptyIdOrBodyThrows) {
  ExperimentRegistry reg;
  EXPECT_THROW(reg.add(noop("")), std::invalid_argument);
  EXPECT_THROW(reg.add(Experiment{"E1", "t", "c", nullptr}),
               std::invalid_argument);
}

TEST(ExperimentRegistryTest, MatchFiltersIdAndTitleSubstrings) {
  ExperimentRegistry reg;
  reg.add(noop("E1", "max deviation vs n"));
  reg.add(noop("E2", "recovery time"));
  reg.add(noop("E21", "WayOff ablation"));
  EXPECT_EQ(reg.match("").size(), 3u);  // empty matches everything
  EXPECT_EQ(reg.match("DEVIATION").size(), 1u);
  EXPECT_EQ(reg.match("e2").size(), 2u);  // E2 and E21 by id substring
  EXPECT_EQ(reg.match("nothing-like-this").size(), 0u);
}

TEST(ExperimentRegistryTest, PrintListShowsIdAndTitle) {
  ExperimentRegistry reg;
  reg.add(noop("E1", "alpha"));
  reg.add(noop("E10", "beta"));
  std::ostringstream os;
  reg.print_list(os);
  EXPECT_NE(os.str().find("E1"), std::string::npos);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
}

TEST(ExperimentRegistryTest, AllExperimentsRegistered) {
  ExperimentRegistry reg;
  bench::register_all_experiments(reg);
  ASSERT_EQ(reg.size(), 23u);
  for (int k = 1; k <= 23; ++k) {
    const std::string id = "E" + std::to_string(k);
    ASSERT_NE(reg.find(id), nullptr) << id;
    EXPECT_FALSE(reg.find(id)->claim.empty()) << id;
  }
}

// ---------- context ----------

TEST(ExperimentContextTest, RunRecordsMetricsAndAppliesSeedBase) {
  ExperimentContext ctx(/*jobs=*/1, /*seed_base=*/100);
  const auto r = ctx.run(tiny(1), "labelled");
  ASSERT_EQ(ctx.records().size(), 1u);
  const auto& rec = ctx.records()[0];
  EXPECT_EQ(rec.kind, RunRecord::Kind::Run);
  EXPECT_EQ(rec.label, "labelled");
  EXPECT_EQ(rec.seed, 101u);  // 1 + seed_base
  EXPECT_EQ(rec.runs, 1);
  EXPECT_TRUE(rec.metrics.contains("sim.events_executed"));
  EXPECT_TRUE(rec.metrics.contains("net.sent"));
  EXPECT_GT(r.events_executed, 0u);
  EXPECT_NE(rec.scenario.find("n=4"), std::string::npos);
  EXPECT_NE(rec.scenario.find("seed=101"), std::string::npos);
}

TEST(ExperimentContextTest, SeedBaseZeroIsIdentity) {
  ExperimentContext a(1, 0), b(1, 0);
  const auto ra = a.run(tiny(7));
  const auto rb = b.run(tiny(7));
  EXPECT_EQ(ra.max_stable_deviation.sec(), rb.max_stable_deviation.sec());
  EXPECT_EQ(a.records()[0].seed, 7u);
}

// ---------- harness ----------

int harness(const ExperimentRegistry& reg, std::vector<std::string> args,
            std::string* out_s = nullptr, std::string* err_s = nullptr) {
  std::ostringstream out, err;
  const int rc = run_harness(reg, args, out, err);
  if (out_s) *out_s = out.str();
  if (err_s) *err_s = err.str();
  return rc;
}

TEST(RunHarnessTest, ListPrintsEveryExperiment) {
  ExperimentRegistry reg;
  reg.add(noop("E1", "alpha"));
  reg.add(noop("E2", "beta"));
  std::string out;
  EXPECT_EQ(harness(reg, {"--list"}, &out), 0);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(RunHarnessTest, NoSelectionIsAUsageError) {
  ExperimentRegistry reg;
  reg.add(noop("E1"));
  std::string err;
  EXPECT_EQ(harness(reg, {}, nullptr, &err), 2);
  EXPECT_NE(err.find("czsync_bench:"), std::string::npos);
}

TEST(RunHarnessTest, UnknownIdAndEmptyFilterFail) {
  ExperimentRegistry reg;
  reg.add(noop("E1"));
  std::string err;
  EXPECT_EQ(harness(reg, {"--run", "E99"}, nullptr, &err), 2);
  EXPECT_NE(err.find("E99"), std::string::npos);
  err.clear();
  EXPECT_EQ(harness(reg, {"--filter", "zzz"}, nullptr, &err), 2);
  EXPECT_NE(err.find("zzz"), std::string::npos);
}

TEST(RunHarnessTest, BadJobsValuesAreErrors) {
  ExperimentRegistry reg;
  reg.add(noop("E1"));
  for (const char* bad : {"abc", "0", "-3", ""}) {
    std::string err;
    EXPECT_EQ(harness(reg, {"--run", "E1", "--jobs", bad}, nullptr, &err), 2)
        << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(RunHarnessTest, RunExecutesBodyWithResolvedContext) {
  ExperimentRegistry reg;
  int calls = 0;
  int seen_jobs = 0;
  std::uint64_t seen_base = 0;
  reg.add({"E1", "t", "c", [&](ExperimentContext& ctx) {
             ++calls;
             seen_jobs = ctx.jobs();
             seen_base = ctx.seed_base();
           }});
  // Experiment reports go to the real stdout (byte-compatible with the
  // legacy binaries), so capture it to see the shared header.
  ::testing::internal::CaptureStdout();
  const int rc =
      harness(reg, {"--run", "E1", "--jobs", "2", "--seed-base", "40"});
  const std::string stdout_text = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_jobs, 2);
  EXPECT_EQ(seen_base, 40u);
  // The shared header replaces the per-bench print_header copies.
  EXPECT_NE(stdout_text.find("E1: t"), std::string::npos);
  EXPECT_NE(stdout_text.find("Paper claim: c"), std::string::npos);
}

TEST(RunHarnessTest, FilterRunsMatchesInRegistrationOrder) {
  ExperimentRegistry reg;
  std::vector<std::string> ran;
  auto body = [&ran](const std::string& id) {
    return [&ran, id](ExperimentContext&) { ran.push_back(id); };
  };
  reg.add({"E1", "alpha test", "c", body("E1")});
  reg.add({"E2", "beta", "c", body("E2")});
  reg.add({"E3", "alpha again", "c", body("E3")});
  EXPECT_EQ(harness(reg, {"--filter", "alpha"}), 0);
  EXPECT_EQ(ran, (std::vector<std::string>{"E1", "E3"}));
}

TEST(RunHarnessTest, JsonEmitsRunRecordDocument) {
  ExperimentRegistry reg;
  reg.add({"E1", "t", "c",
           [](ExperimentContext& ctx) { ctx.run(tiny(5), "only"); }});
  const std::string path = ::testing::TempDir() + "rr.json";
  EXPECT_EQ(harness(reg, {"--run", "E1", "--json", path}), 0);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  for (const char* needle :
       {"\"schema\": \"czsync-runrecord-v1\"", "\"git_describe\"",
        "\"id\": \"E1\"", "\"label\": \"only\"", "\"seed\": 5",
        "\"sim.event_pool.pushed\"", "\"net.sent\"",
        "\"core.rounds_completed\"", "\"observer.samples\"",
        "\"sweep.runs\": 1", "\"sweep.wall_seconds\"",
        "\"sweep.runs_per_sec\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
  std::remove(path.c_str());
}

// ---------- golden: the harness reproduces the legacy binary ----------

#if defined(CZSYNC_BENCH_PATH) && defined(CZSYNC_SOURCE_DIR)
TEST(GoldenTest, RunE1MatchesLegacyBenchDeviation) {
  const std::string cmd = std::string(CZSYNC_BENCH_PATH) + " --run E1 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string got;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) got.append(buf, n);
  ASSERT_EQ(::pclose(pipe), 0);

  std::ifstream golden(std::string(CZSYNC_SOURCE_DIR) +
                       "/tests/golden/e1.txt");
  ASSERT_TRUE(golden.good());
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(got, want.str());
}
#endif

}  // namespace
}  // namespace czsync::analysis
