// End-to-end runs of the full system, asserting the paper's guarantees:
//   * Theorem 5 (i): deviation bound for stable processors;
//   * Theorem 5 (ii): accuracy (logical drift, discontinuity);
//   * Recovery (Def. 3 iii + Lemma 7 iii): processors rejoin after the
//     adversary leaves, and far-off clocks jump via the WayOff branch;
//   * Section 1.1: minimal-correction baselines recover slowly or never;
//   * Section 5: the two-cliques counterexample drifts apart;
//   * Definition 2 necessity: budgets beyond f break the guarantee.
#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace czsync::analysis {
namespace {

using adversary::Schedule;

/// Canonical WAN-ish scenario: n=7, f=2, delta=50ms, rho=1e-4, Delta=1h,
/// SyncInt=60s -> K=59, gamma ~ 0.91s.
Scenario base_scenario() {
  Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::hours(4);
  s.warmup = Duration::minutes(30);
  s.sample_period = Duration::seconds(15);
  s.seed = 1;
  return s;
}

TEST(FaultFree, DeviationWithinTheoremBound) {
  auto s = base_scenario();
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.bounds.k_precondition_ok);
  EXPECT_GT(r.samples, 100u);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(FaultFree, ConvergesWellBelowBound) {
  auto s = base_scenario();
  const auto r = run_scenario(s);
  // In practice the steady state is far below gamma: a few epsilon.
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation * 0.5);
  EXPECT_LT(r.final_stable_deviation, r.bounds.max_deviation.sec() * 0.25);
}

TEST(FaultFree, NoWayOffRoundsInSteadyState) {
  auto s = base_scenario();
  const auto r = run_scenario(s);
  EXPECT_EQ(r.way_off_rounds, 0u);
}

TEST(FaultFree, AccuracyDiscontinuityAndRate) {
  auto s = base_scenario();
  s.initial_spread = Duration::millis(20);  // start synchronized
  const auto r = run_scenario(s);
  // Discontinuity (largest single adjustment) vs psi = eps + C/2. The
  // bound is per-Sync; the measured value should be comfortably inside.
  EXPECT_LT(r.max_stable_discontinuity, r.bounds.discontinuity * 2.0);
  // Observed rate over >= 150 s windows: rho~ plus the discontinuity
  // allowance psi spread over the window.
  const double window = 150.0;
  const double allowed =
      r.bounds.logical_drift + r.bounds.discontinuity.sec() / window + 1e-6;
  EXPECT_LT(r.max_rate_excess, allowed * 2.0);
}

TEST(FaultFree, WanderDriftStillWithinBound) {
  auto s = base_scenario();
  s.drift = Scenario::DriftKind::Wander;
  s.wander_interval = Duration::minutes(2);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(FaultFree, SinusoidalDriftWithinBound) {
  // Thermal-cycle drift at full amplitude: the hardest legal Eq.-2 shape
  // because clocks swing between the band edges within hours.
  auto s = base_scenario();
  s.drift = Scenario::DriftKind::Sinusoidal;
  s.sinusoid_cycle = Duration::hours(1);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(FaultFree, AsymmetricDelaysWithinBound) {
  auto s = base_scenario();
  s.delay = Scenario::DelayKind::Asymmetric;
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(FaultFree, JitterDelaysWithinBound) {
  auto s = base_scenario();
  s.delay = Scenario::DelayKind::Jitter;
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(FaultFree, DeterministicGivenSeed) {
  auto s = base_scenario();
  s.horizon = Duration::hours(1);
  s.warmup = Duration::zero();
  const auto r1 = run_scenario(s);
  const auto r2 = run_scenario(s);
  EXPECT_EQ(r1.max_stable_deviation.sec(), r2.max_stable_deviation.sec());
  EXPECT_EQ(r1.messages_sent, r2.messages_sent);
  EXPECT_EQ(r1.events_executed, r2.events_executed);
  // A different seed draws different phases/biases/delays, which shows up
  // in the continuous metrics (counts are structural and may coincide).
  auto s2 = s;
  s2.seed = 999;
  const auto r3 = run_scenario(s2);
  EXPECT_NE(r1.max_stable_deviation.sec(), r3.max_stable_deviation.sec());
}

// ---------- recovery ----------

TEST(Recovery, FarOffClockJumpsViaWayOff) {
  auto s = base_scenario();
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.initial_spread = Duration::millis(20);
  // One break-in at t=1h for 10 min; the clock is smashed +1 hour.
  s.schedule = Schedule::single(3, SimTau(3600.0), SimTau(4200.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::hours(1);
  const auto r = run_scenario(s);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_TRUE(r.all_recovered());
  // The WayOff escape recovers in O(SyncInt), far inside Delta.
  EXPECT_LT(r.max_recovery_time(), Duration::minutes(5));
  EXPECT_GE(r.way_off_rounds, 1u);
  // The stable majority must not have been dragged.
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(Recovery, ModeratelyOffClockHalvesBackWithinDelta) {
  auto s = base_scenario();
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.initial_spread = Duration::millis(20);
  s.schedule = Schedule::single(2, SimTau(3600.0), SimTau(3900.0));
  s.strategy = "clock-smash";
  // Just below WayOff (~0.96s): the normal branch must walk it back by
  // halving (Lemma 7 iii).
  s.strategy_scale = Duration::millis(800);
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_LT(r.max_recovery_time(), s.model.delta_period);
}

TEST(Recovery, NegativeSmashAlsoRecovers) {
  auto s = base_scenario();
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.schedule = Schedule::single(5, SimTau(3600.0), SimTau(4200.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::seconds(-300);
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_LT(r.max_recovery_time(), Duration::minutes(5));
}

TEST(Recovery, CappedCorrectionBaselineFailsToRecoverInTime) {
  // The §1.1 claim: minimal-correction designs delay or never complete
  // recovery. A 100ms-per-round cap against a 1-hour offset needs ~36000
  // rounds = 25 days; within our horizon it must NOT recover...
  auto s = base_scenario();
  s.convergence = "capped-correction";
  s.capped_correction_cap = Duration::millis(100);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::zero();
  s.schedule = Schedule::single(3, SimTau(3600.0), SimTau(4200.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::hours(1);
  const auto r = run_scenario(s);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_FALSE(r.recoveries[0].recovered);
  // ... while BHHN on the identical scenario recovers in minutes.
  auto s2 = s;
  s2.convergence = "bhhn";
  const auto r2 = run_scenario(s2);
  EXPECT_TRUE(r2.all_recovered());
  EXPECT_LT(r2.max_recovery_time(), Duration::minutes(5));
}

// ---------- mobile Byzantine adversary at full budget ----------

Scenario adversarial_scenario(const std::string& strategy, Duration scale,
                              std::uint64_t seed = 11) {
  auto s = base_scenario();
  s.horizon = Duration::hours(8);
  s.warmup = Duration::minutes(30);
  s.seed = seed;
  s.schedule = Schedule::random_mobile(
      s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
      Duration::minutes(20), SimTau((8.0 - 1.5) * 3600.0), Rng(seed * 7 + 1));
  s.strategy = strategy;
  s.strategy_scale = scale;
  return s;
}

TEST(MobileAdversary, SilentFaultsWithinBound) {
  const auto r = run_scenario(adversarial_scenario("silent", Duration::zero()));
  EXPECT_GT(r.break_ins, 3u);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
}

TEST(MobileAdversary, ClockSmashWithinBoundAndRecovers) {
  const auto r = run_scenario(
      adversarial_scenario("clock-smash-random", Duration::minutes(10)));
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
  EXPECT_LT(r.max_recovery_time(), r.bounds.T * 10.0);
}

TEST(MobileAdversary, ConstantLieWithinBound) {
  const auto r =
      run_scenario(adversarial_scenario("constant-lie", Duration::seconds(30)));
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(MobileAdversary, TwoFacedWithinBound) {
  const auto r =
      run_scenario(adversarial_scenario("two-faced", Duration::seconds(30)));
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(MobileAdversary, MaxPullWithinBound) {
  const auto r = run_scenario(adversarial_scenario("max-pull", Duration::zero()));
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(MobileAdversary, RandomLieWithinBound) {
  const auto r =
      run_scenario(adversarial_scenario("random-lie", Duration::seconds(60)));
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(MobileAdversary, DelayedReplyWithinBound) {
  // Hold-back just under MaxWait (100ms) maximizes the reading error the
  // attacker can inject while still being counted.
  const auto r =
      run_scenario(adversarial_scenario("delayed-reply", Duration::millis(80)));
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(MobileAdversary, LargerNetworkN10F3) {
  auto s = adversarial_scenario("two-faced", Duration::seconds(30));
  s.model.n = 10;
  s.model.f = 3;
  s.schedule = Schedule::random_mobile(10, 3, s.model.delta_period,
                                       Duration::minutes(5), Duration::minutes(20),
                                       SimTau(6.5 * 3600.0), Rng(5));
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
  EXPECT_TRUE(r.all_recovered());
}

TEST(MobileAdversary, MinimumQuorumN4F1) {
  auto s = adversarial_scenario("two-faced", Duration::seconds(30));
  s.model.n = 4;
  s.model.f = 1;
  s.schedule = Schedule::random_mobile(4, 1, s.model.delta_period,
                                       Duration::minutes(5), Duration::minutes(20),
                                       SimTau(6.5 * 3600.0), Rng(6));
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

// ---------- breakdown beyond the model's budget ----------

TEST(Breakdown, MoreThanFConcurrentByzantineBreaksDeviation) {
  // 4 two-faced liars among n=7 while the protocol trims only f=2: the
  // liars control both order statistics and split the correct clocks.
  auto s = base_scenario();
  s.horizon = Duration::hours(2);
  s.warmup = Duration::zero();
  std::vector<adversary::ControlInterval> ivs;
  for (net::ProcId p = 0; p < 4; ++p)
    ivs.push_back({p, SimTau(600.0), SimTau(2 * 3600.0)});
  s.schedule = Schedule(ivs);
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  // NOTE: this schedule is NOT f-limited for f=2 — that is the point.
  EXPECT_FALSE(s.schedule.is_f_limited(s.model.f, s.model.delta_period));
  const auto r = run_scenario(s);
  EXPECT_GT(r.max_stable_deviation, r.bounds.max_deviation);
}

TEST(Breakdown, AtExactBudgetStillFine) {
  // Control: the same attack with only f=2 concurrent liars stays bounded.
  auto s = base_scenario();
  s.horizon = Duration::hours(2);
  s.warmup = Duration::zero();
  std::vector<adversary::ControlInterval> ivs;
  for (net::ProcId p = 0; p < 2; ++p)
    ivs.push_back({p, SimTau(600.0), SimTau(2 * 3600.0)});
  s.schedule = Schedule(ivs);
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

// ---------- Section 5: two-cliques counterexample ----------

TEST(TwoCliques, CliquesDriftApartDespiteConnectivity) {
  Scenario s;
  s.model.n = 8;  // 6f+2 with f=1
  s.model.f = 1;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.topology = Scenario::TopologyKind::TwoCliques;
  s.drift = Scenario::DriftKind::OpposedHalves;  // clique A fast, B slow
  s.initial_spread = Duration::zero();
  s.horizon = Duration::hours(6);
  s.warmup = Duration::zero();
  s.record_series = true;
  s.seed = 3;
  const auto r = run_scenario(s);
  ASSERT_FALSE(r.series.empty());
  const auto& last = r.series.back();
  // Intra-clique spread stays tiny; the cliques as wholes separate by
  // about 2 * rho/(1+rho) * horizon ~ 4.3 s >> gamma.
  double a_min = 1e18, a_max = -1e18, b_min = 1e18, b_max = -1e18;
  for (int p = 0; p < 4; ++p) {
    a_min = std::min(a_min, last.bias[static_cast<std::size_t>(p)]);
    a_max = std::max(a_max, last.bias[static_cast<std::size_t>(p)]);
  }
  for (int p = 4; p < 8; ++p) {
    b_min = std::min(b_min, last.bias[static_cast<std::size_t>(p)]);
    b_max = std::max(b_max, last.bias[static_cast<std::size_t>(p)]);
  }
  EXPECT_LT(a_max - a_min, r.bounds.max_deviation.sec());
  EXPECT_LT(b_max - b_min, r.bounds.max_deviation.sec());
  EXPECT_GT(a_min - b_max, r.bounds.max_deviation.sec());  // divergence
}

TEST(TwoCliques, FullMeshControlStaysTogether) {
  // The same opposed drifts on a full mesh of 8 stay synchronized: the
  // counterexample is about the topology, not the drift pattern.
  Scenario s;
  s.model.n = 8;
  s.model.f = 1;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.topology = Scenario::TopologyKind::FullMesh;
  s.drift = Scenario::DriftKind::OpposedHalves;
  s.initial_spread = Duration::zero();
  s.horizon = Duration::hours(6);
  s.warmup = Duration::zero();
  s.seed = 3;
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

}  // namespace
}  // namespace czsync::analysis
