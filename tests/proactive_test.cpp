// Tests for the proactive-security substrate (the paper's motivating
// application): epoch arithmetic, share refresh lifecycle, the capture
// auditor, and the end-to-end claim that synchronized clocks keep the
// sharing safe while a stuck clock lets the mobile adversary win.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/adversary.h"
#include "analysis/world.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "proactive/audit.h"
#include "proactive/epoch.h"
#include "proactive/refresh.h"
#include "proactive/secret_sharing.h"
#include "sim/simulator.h"

namespace czsync::proactive {
namespace {

// ---------- epoch arithmetic ----------

TEST(EpochTest, EpochOf) {
  const Duration len = Duration::seconds(100);
  EXPECT_EQ(epoch_of(LogicalTime(0.0), len), 0u);
  EXPECT_EQ(epoch_of(LogicalTime(99.9), len), 0u);
  EXPECT_EQ(epoch_of(LogicalTime(100.0), len), 1u);
  EXPECT_EQ(epoch_of(LogicalTime(250.0), len), 2u);
  EXPECT_EQ(epoch_of(LogicalTime(-50.0), len), 0u);  // smashed-negative clamps
}

TEST(EpochTest, UntilNextEpoch) {
  const Duration len = Duration::seconds(100);
  EXPECT_NEAR(until_next_epoch(LogicalTime(30.0), len).sec(), 70.0, 1e-9);
  EXPECT_NEAR(until_next_epoch(LogicalTime(199.0), len).sec(), 1.0, 1e-9);
  // At an exact boundary the next boundary is a full period away.
  EXPECT_NEAR(until_next_epoch(LogicalTime(100.0), len).sec(), 100.0, 1e-9);
  EXPECT_GT(until_next_epoch(LogicalTime(0.0), len), Duration::zero());
}

// ---------- shares ----------

TEST(ShareTest, DeriveDeterministicAndDistinct) {
  const auto a = derive_share(42, 0, 1);
  EXPECT_EQ(a, derive_share(42, 0, 1));
  EXPECT_NE(a, derive_share(42, 1, 1));  // per-processor
  EXPECT_NE(a, derive_share(42, 0, 2));  // per-epoch
  EXPECT_NE(a, derive_share(43, 0, 1));  // per-secret
}

TEST(ShareStoreTest, RefreshReplacesShare) {
  ShareStore store(3, 7);
  const auto v0 = store.share(1).value;
  EXPECT_EQ(store.share(1).epoch, 0u);
  store.refresh(1, 5);
  EXPECT_EQ(store.share(1).epoch, 5u);
  EXPECT_NE(store.share(1).value, v0);
  EXPECT_EQ(store.refresh_count(), 1u);
  EXPECT_EQ(store.share(0).epoch, 0u);  // others untouched
}

// ---------- auditor ----------

TEST(AuditorTest, ExposureCounting) {
  ShareStore store(5, 9);
  Auditor audit(store);
  EXPECT_EQ(audit.worst_epoch_exposure(), 0);
  store.refresh(0, 3);
  store.refresh(1, 3);
  audit.capture(0);
  audit.capture(1);
  EXPECT_EQ(audit.worst_epoch_exposure(), 2);
  EXPECT_FALSE(audit.compromised(3));
  store.refresh(2, 3);
  audit.capture(2);
  EXPECT_TRUE(audit.compromised(3));
  EXPECT_EQ(audit.captures(), 3u);
}

TEST(AuditorTest, SameProcessorSameEpochCountsOnce) {
  ShareStore store(3, 9);
  Auditor audit(store);
  audit.capture(0);
  audit.capture(0);
  EXPECT_EQ(audit.worst_epoch_exposure(), 1);
}

TEST(AuditorTest, DifferentEpochsDoNotCombine) {
  ShareStore store(4, 9);
  Auditor audit(store);
  audit.capture(0);            // epoch 0
  store.refresh(1, 1);
  audit.capture(1);            // epoch 1
  store.refresh(2, 2);
  audit.capture(2);            // epoch 2
  EXPECT_EQ(audit.worst_epoch_exposure(), 1);
  EXPECT_FALSE(audit.compromised(2));
}

// ---------- refresh daemon on a live clock ----------

class RefreshTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Network net{sim, net::Topology::full_mesh(2),
                   net::make_fixed_delay(Duration::millis(10)), Rng(1)};
  clk::HardwareClock hw{sim, clk::make_pinned_drift(1e-6, 1.0), Rng(2)};
  clk::LogicalClock clock{hw};
  ShareStore store{2, 99};
};

TEST_F(RefreshTest, FiresAtEveryBoundary) {
  RefreshProcess rp(clock, net, 0, store, Duration::seconds(100), /*announce=*/false);
  rp.start();
  sim.run_until(SimTau(350.0));
  EXPECT_EQ(rp.refreshes_done(), 3u);  // epochs 1, 2, 3
  EXPECT_EQ(rp.last_epoch(), 3u);
  EXPECT_EQ(store.share(0).epoch, 3u);
}

TEST_F(RefreshTest, AnnouncesToPeers) {
  int announces = 0;
  net.register_handler(1, [&](const net::Message& m) {
    if (std::holds_alternative<net::RefreshAnnounce>(m.body)) ++announces;
  });
  RefreshProcess rp(clock, net, 0, store, Duration::seconds(100));
  rp.start();
  sim.run_until(SimTau(250.0));
  EXPECT_EQ(announces, 2);
}

TEST_F(RefreshTest, ClockJumpForwardSkipsToCurrentEpoch) {
  RefreshProcess rp(clock, net, 0, store, Duration::seconds(100), false);
  rp.start();
  sim.run_until(SimTau(50.0));
  clock.adjust(Duration::seconds(500));  // jump from epoch 0 into epoch 5
  sim.run_until(SimTau(120.0));   // next boundary alarm revalidates
  EXPECT_GE(rp.last_epoch(), 5u);
}

TEST_F(RefreshTest, ClockSetBackRearmsWithoutDoubleRefresh) {
  RefreshProcess rp(clock, net, 0, store, Duration::seconds(100), false);
  rp.start();
  sim.run_until(SimTau(150.0));
  EXPECT_EQ(rp.last_epoch(), 1u);
  clock.adjust(Duration::seconds(-60));  // back inside epoch 0
  sim.run_until(SimTau(500.0));
  // Re-derived alarms; refreshes continue monotonically, no duplicates.
  EXPECT_EQ(rp.last_epoch(), epoch_of(clock.read(), Duration::seconds(100)));
}

TEST_F(RefreshTest, SuspendResumeLifecycle) {
  RefreshProcess rp(clock, net, 0, store, Duration::seconds(100), false);
  rp.start();
  sim.run_until(SimTau(150.0));
  rp.suspend();
  EXPECT_TRUE(rp.suspended());
  sim.run_until(SimTau(450.0));
  EXPECT_EQ(rp.refreshes_done(), 1u);  // nothing while suspended
  rp.resume();
  sim.run_until(SimTau(520.0));
  // Catches up at the next boundary with the current epoch (5).
  EXPECT_EQ(rp.last_epoch(), 5u);
}

// ---------- end-to-end: sync keeps the sharing safe ----------

// Wires RefreshProcesses into an analysis::World and runs a mobile
// adversary with share capture. With BHHN sync the exposure per epoch
// stays <= f; with convergence "none" and a smashed (stuck) clock the
// stale share lets exposure exceed f.
struct ProactiveWorld {
  explicit ProactiveWorld(const std::string& convergence, Duration smash,
                          std::uint64_t seed) {
    analysis::Scenario s;
    s.model.n = 7;
    s.model.f = 2;
    s.model.rho = 1e-4;
    s.model.delta = Duration::millis(50);
    s.model.delta_period = Duration::hours(1);
    s.sync_int = Duration::minutes(1);
    s.convergence = convergence;
    s.initial_spread = Duration::millis(100);
    s.horizon = Duration::hours(10);
    s.seed = seed;
    // Sweeping adversary: every period it holds a fresh pair of victims.
    s.schedule = adversary::Schedule::round_robin_sweep(
        7, 2, s.model.delta_period, Duration::minutes(10), Duration::minutes(1),
        SimTau(600.0), SimTau(9.0 * 3600.0));
    s.strategy = "clock-smash";
    s.strategy_scale = smash;
    world = std::make_unique<analysis::World>(s);

    store = std::make_unique<ShareStore>(7, 0xfeedULL);
    auditor = std::make_unique<Auditor>(*store);
    // Epoch length = Delta: one refresh per adversary period.
    for (int p = 0; p < 7; ++p) {
      auto& node = world->node(p);
      refreshers.push_back(std::make_unique<RefreshProcess>(
          node.clock(), world->network(), p, *store, s.model.delta_period,
          /*announce=*/false));
      node.app_suspend = [rp = refreshers.back().get()] { rp->suspend(); };
      node.app_resume = [rp = refreshers.back().get()] { rp->resume(); };
    }
    // Capture shares at break-in by observing the adversary's schedule:
    // schedule break-in capture events directly (the engine's strategy
    // hook is already wired to clock smashing).
    for (const auto& iv : s.schedule.intervals()) {
      world->simulator().schedule_at(iv.start, [this, p = iv.proc] {
        auditor->capture(p);
      });
    }
    for (auto& rp : refreshers) rp->start();
  }

  void run() { world->run(); }

  std::unique_ptr<analysis::World> world;
  std::unique_ptr<ShareStore> store;
  std::unique_ptr<Auditor> auditor;
  std::vector<std::unique_ptr<RefreshProcess>> refreshers;
};

TEST(ProactiveEndToEnd, SynchronizedClocksKeepExposureAtF) {
  ProactiveWorld pw("bhhn", Duration::minutes(30), 21);
  pw.run();
  EXPECT_GT(pw.auditor->captures(), 10u);
  // f+1 = 3 shares of one epoch would reconstruct the secret.
  EXPECT_LE(pw.auditor->worst_epoch_exposure(), 2);
  EXPECT_FALSE(pw.auditor->compromised(3));
}

TEST(ProactiveEndToEnd, UnsynchronizedClocksGetCompromised) {
  // Without clock sync, a -2h smash leaves each victim's clock (and so
  // its epoch counter) far behind; its share goes stale and the adversary
  // accumulates >= f+1 shares of one epoch across periods.
  ProactiveWorld pw("none", Duration::hours(-2), 21);
  pw.run();
  EXPECT_TRUE(pw.auditor->compromised(3));
}

}  // namespace
}  // namespace czsync::proactive
