// Tests for the broadcast comparator: the toy authenticator, the ST
// engine's acceptance/relay/recovery mechanics, majority resilience,
// multi-hop propagation, and the signature-replay exposure (A4).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/capture.h"
#include "adversary/schedule.h"
#include "adversary/sig_replay.h"
#include "analysis/experiment.h"
#include "broadcast/auth.h"
#include "proactive/audit.h"
#include "proactive/secret_sharing.h"
#include "broadcast/st_sync.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/logical_clock.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace czsync::broadcast {
namespace {

// ---------- authenticator ----------

TEST(AuthTest, SignVerifyRoundTrip) {
  Authenticator auth(42);
  const auto sig = auth.sign(3, 777);
  EXPECT_EQ(sig.signer, 3);
  EXPECT_TRUE(auth.verify(sig, 777));
}

TEST(AuthTest, WrongPayloadRejected) {
  Authenticator auth(42);
  const auto sig = auth.sign(3, 777);
  EXPECT_FALSE(auth.verify(sig, 778));
}

TEST(AuthTest, ForgedSignerRejected) {
  Authenticator auth(42);
  auto sig = auth.sign(3, 777);
  sig.signer = 4;  // claim someone else signed it
  EXPECT_FALSE(auth.verify(sig, 777));
  net::Signature junk{2, 12345};
  EXPECT_FALSE(auth.verify(junk, 777));
  EXPECT_FALSE(auth.verify(net::Signature{-1, 0}, 0));
}

TEST(AuthTest, DifferentMasterSecretsDisagree) {
  Authenticator a(1), b(2);
  const auto sig = a.sign(0, 9);
  EXPECT_FALSE(b.verify(sig, 9));
}

TEST(AuthTest, CountValidDedupesSigners) {
  Authenticator auth(7);
  std::vector<net::Signature> sigs = {
      auth.sign(0, 5), auth.sign(1, 5), auth.sign(0, 5),  // duplicate signer
      auth.sign(2, 6),                                    // wrong payload
      {3, 999},                                           // forged
  };
  EXPECT_EQ(auth.count_valid(sigs, 5), 2);
}

// ---------- ST engine mechanics ----------

struct StNode {
  StNode(sim::Simulator& sim, net::Network& net, net::ProcId id,
         const StConfig& cfg, std::shared_ptr<const Authenticator> auth,
         Duration initial_bias)
      : hw(sim, clk::make_pinned_drift(1e-6, 1.0), Rng(100 + id),
           HwTime(sim.now().raw()) + initial_bias),
        clock(hw),
        proto(net, clock, id, cfg, std::move(auth)) {
    net.register_handler(id, [this](const net::Message& m) {
      proto.handle_message(m);
    });
  }
  clk::HardwareClock hw;
  clk::LogicalClock clock;
  StSyncProcess proto;
};

class StSyncTest : public ::testing::Test {
 protected:
  void build(int n, int f, net::Topology topo, const std::vector<double>& biases) {
    net = std::make_unique<net::Network>(
        sim, std::move(topo), net::make_fixed_delay(Duration::millis(10)), Rng(7));
    auth = std::make_shared<Authenticator>(99);
    cfg.period = Duration::seconds(60);
    cfg.skew_allowance = Duration::millis(100);
    cfg.f = f;
    for (int p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<StNode>(
          sim, *net, p, cfg, auth,
          Duration::seconds(biases[static_cast<std::size_t>(p)])));
    }
    for (auto& nd : nodes) nd->proto.start();
  }

  sim::Simulator sim;
  StConfig cfg;
  std::shared_ptr<Authenticator> auth;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<StNode>> nodes;
};

TEST_F(StSyncTest, AcceptsRoundsAndSynchronizes) {
  build(4, 1, net::Topology::full_mesh(4), {-0.2, -0.1, 0.1, 0.2});
  sim.run_until(SimTau(200.0));
  for (auto& nd : nodes) {
    EXPECT_GE(nd->proto.last_accepted(), 3u);
    EXPECT_EQ(nd->proto.replays_accepted(), 0u);
  }
  // After an accept all clocks equal T_k + skew; between rounds they only
  // drift apart by rho * P.
  double lo = 1e18, hi = -1e18;
  for (auto& nd : nodes) {
    lo = std::min(lo, nd->clock.read().raw());
    hi = std::max(hi, nd->clock.read().raw());
  }
  EXPECT_LT(hi - lo, 0.05);
}

TEST_F(StSyncTest, NeedsFPlusOneSigners) {
  // n = 3, f = 2: only 3 potential signers, acceptance needs 3 — all of
  // them. Kill one (never start it) and nobody ever accepts.
  net = std::make_unique<net::Network>(sim, net::Topology::full_mesh(3),
                                       net::make_fixed_delay(Duration::millis(10)),
                                       Rng(7));
  auth = std::make_shared<Authenticator>(99);
  cfg.period = Duration::seconds(60);
  cfg.f = 2;
  for (int p = 0; p < 3; ++p) {
    nodes.push_back(std::make_unique<StNode>(sim, *net, p, cfg, auth, Duration::zero()));
  }
  nodes[0]->proto.start();
  nodes[1]->proto.start();  // node 2 stays silent
  sim.run_until(SimTau(500.0));
  EXPECT_EQ(nodes[0]->proto.last_accepted(), 0u);
  EXPECT_EQ(nodes[1]->proto.last_accepted(), 0u);
}

TEST_F(StSyncTest, MultiHopPropagationOnRing) {
  build(8, 1, net::Topology::ring(8), std::vector<double>(8, 0.0));
  sim.run_until(SimTau(200.0));
  for (auto& nd : nodes) EXPECT_GE(nd->proto.last_accepted(), 2u);
  double lo = 1e18, hi = -1e18;
  for (auto& nd : nodes) {
    lo = std::min(lo, nd->clock.read().raw());
    hi = std::max(hi, nd->clock.read().raw());
  }
  // Spread bounded by the relay depth (diameter * delivery).
  EXPECT_LT(hi - lo, 0.2);
}

TEST_F(StSyncTest, StaleBundleRejectedByCorrectProcessor) {
  build(4, 1, net::Topology::full_mesh(4), {0.0, 0.0, 0.0, 0.0});
  sim.run_until(SimTau(200.0));  // everyone past round 3
  const auto before = nodes[0]->proto.last_accepted();
  ASSERT_GE(before, 3u);
  // Replay a genuine round-1 bundle at node 0.
  std::vector<net::Signature> sigs = {auth->sign(1, 1), auth->sign(2, 1)};
  net->send(1, 0, net::StRoundMsg{1, sigs});
  sim.run_until(SimTau(201.0));
  EXPECT_EQ(nodes[0]->proto.last_accepted(), before);
  EXPECT_EQ(nodes[0]->proto.replays_accepted(), 0u);
}

TEST_F(StSyncTest, ForgedBundleIgnored) {
  build(4, 1, net::Topology::full_mesh(4), {0.0, 0.0, 0.0, 0.0});
  sim.run_until(SimTau(30.0));  // before round 1 (at t=60)
  // Garbage signatures for a huge round: must not be accepted.
  std::vector<net::Signature> junk = {{1, 123}, {2, 456}};
  net->send(1, 0, net::StRoundMsg{50, junk});
  sim.run_until(SimTau(35.0));
  EXPECT_EQ(nodes[0]->proto.last_accepted(), 0u);
}

TEST_F(StSyncTest, RecoveredProcessorAcceptsReplay) {
  // The A4 exposure in isolation: node 0 loses its round state and is
  // then fed a genuine stale bundle — it accepts and its clock snaps to
  // the stale round's time.
  build(4, 1, net::Topology::full_mesh(4), {0.0, 0.0, 0.0, 0.0});
  sim.run_until(SimTau(400.0));  // past round 6
  ASSERT_GE(nodes[0]->proto.last_accepted(), 5u);
  nodes[0]->proto.suspend();
  sim.run_until(SimTau(405.0));
  nodes[0]->proto.resume();  // last_accepted reset to 0
  std::vector<net::Signature> sigs = {auth->sign(1, 1), auth->sign(2, 1)};
  net->send(1, 0, net::StRoundMsg{1, sigs});
  sim.run_until(SimTau(406.0));
  EXPECT_EQ(nodes[0]->proto.last_accepted(), 1u);
  EXPECT_EQ(nodes[0]->proto.replays_accepted(), 1u);
  EXPECT_NEAR(nodes[0]->clock.read().raw(), 60.0 + 0.1, 1.0);  // yanked back
  // The next honest round pulls it forward again.
  sim.run_until(SimTau(500.0));
  EXPECT_GT(nodes[0]->proto.last_accepted(), 6u);
}

// ---------- replay strategy ----------

TEST(SigReplayStrategyTest, HarvestsAndReplaysOldest) {
  adversary::SigReplayStrategy strat(4);
  EXPECT_EQ(strat.stored_rounds(), 0u);
  EXPECT_EQ(strat.name(), "sig-replay");
}

// ---------- capture + replay through recovery ----------

// An StNode the adversary engine can hold: inbound messages are routed
// to the strategy while controlled, exactly the analysis::Node dispatch,
// but over the broadcast engine so the replay harvest is live.
class ControlledStNode final : public adversary::ControlledProcess {
 public:
  ControlledStNode(sim::Simulator& sim, net::Network& net, net::ProcId id,
                   const StConfig& cfg,
                   std::shared_ptr<const Authenticator> auth)
      : net_(net),
        id_(id),
        hw_(sim, clk::make_pinned_drift(1e-6, 1.0), Rng(100 + id),
            HwTime(sim.now().raw())),
        clock_(hw_),
        proto(net, clock_, id, cfg, std::move(auth)) {
    net.register_handler(id, [this](const net::Message& m) {
      if (adv != nullptr && adv->is_controlled(id_)) {
        adv->deliver_to_strategy(*this, m);
      } else {
        proto.handle_message(m);
      }
    });
  }

  [[nodiscard]] net::ProcId id() const override { return id_; }
  clk::LogicalClock& clock() override { return clock_; }
  void send(net::ProcId to, net::Body body) override {
    net_.send(id_, to, std::move(body));
  }
  [[nodiscard]] std::span<const net::ProcId> peers() const override {
    return net_.topology().neighbors(id_);
  }
  void suspend_protocol() override { proto.suspend(); }
  void resume_protocol() override { proto.resume(); }

  adversary::Adversary* adv = nullptr;

 private:
  net::Network& net_;
  net::ProcId id_;
  clk::HardwareClock hw_;
  clk::LogicalClock clock_;

 public:
  StSyncProcess proto;  // last: construction needs the members above
};

// The CapturingStrategy decorator composed with SigReplayStrategy over a
// live run: every break-in both grabs the victim's share (audit) and
// arms the spam loop (inner strategy), including the re-break-in that
// lands inside the victim's own recovery window.
TEST(CaptureReplayRecoveryTest, RecoveryWindowCaptureFeedsAuditAndReplay) {
  sim::Simulator sim;
  net::Network net(sim, net::Topology::full_mesh(4),
                   net::make_fixed_delay(Duration::millis(10)), Rng(7));
  auto auth = std::make_shared<Authenticator>(99);
  StConfig cfg;
  cfg.period = Duration::seconds(60);
  cfg.skew_allowance = Duration::millis(100);
  cfg.f = 1;
  std::vector<std::unique_ptr<ControlledStNode>> nodes;
  for (int p = 0; p < 4; ++p) {
    nodes.push_back(
        std::make_unique<ControlledStNode>(sim, net, p, cfg, auth));
  }

  proactive::ShareStore store(4, 0xfeedULL);
  proactive::Auditor auditor(store);
  auto replayer = std::make_shared<adversary::SigReplayStrategy>();
  auto capturing =
      std::make_shared<adversary::CapturingStrategy>(replayer, auditor);
  EXPECT_EQ(capturing->name(), "sig-replay");  // pure decorator

  adversary::WorldSpy spy;
  spy.n = 4;
  spy.f = 1;
  spy.way_off = Duration::seconds(1);
  spy.read_clock = [&nodes](net::ProcId q) {
    return nodes[static_cast<std::size_t>(q)]->clock().read();
  };
  // The A4 attacker: processor 3 harvests round-1 bundles and spams them
  // past processor 1's recovery at t=190, then breaks into 1 AGAIN at
  // t=205 — while 1 is still inside the replay-poisoned recovery window.
  // Holding two processors at once deliberately exceeds the f=1 budget;
  // that is the attack class assumption A4 exists to rule out.
  adversary::Adversary adv(
      sim,
      adversary::Schedule({{3, SimTau(50.0), SimTau(200.0)},
                           {1, SimTau(130.0), SimTau(190.0)},
                           {1, SimTau(205.0), SimTau(235.0)}}),
      capturing, std::move(spy), Rng(5));
  std::vector<adversary::ControlledProcess*> raw;
  for (auto& nd : nodes) {
    nd->adv = &adv;
    raw.push_back(nd.get());
  }
  adv.attach(std::move(raw));
  for (auto& nd : nodes) nd->proto.start();
  sim.run_until(SimTau(500.0));

  // Delegation reached the inner strategy: bundles were harvested while
  // controlled and the freshly recovered processor 1 accepted a stale
  // round-1 replay (its clock yanked back ~130s).
  EXPECT_GE(replayer->stored_rounds(), 1u);
  EXPECT_GT(replayer->replays_sent(), 0u);
  EXPECT_GE(nodes[1]->proto.replays_accepted(), 1u);

  // Audit bookkeeping across the same run: three break-ins, three
  // captures; the recovery-window capture grabs the SAME epoch-0 share
  // of processor 1 (no refresh happened), so exposure counts it once —
  // yet two distinct epoch-0 shares is already f+1 = secret compromised.
  EXPECT_EQ(adv.break_ins(), 3u);
  EXPECT_EQ(auditor.captures(), 3u);
  ASSERT_TRUE(auditor.by_epoch().contains(0));
  EXPECT_EQ(auditor.by_epoch().at(0), (std::set<int>{1, 3}));
  EXPECT_EQ(auditor.worst_epoch_exposure(), 2);
  EXPECT_TRUE(auditor.compromised(cfg.f + 1));

  // Recovery still completes: once honest rounds resume, processor 1 is
  // pulled forward again and tracks the live round number.
  EXPECT_GT(nodes[1]->proto.last_accepted(), 3u);
}

// ---------- end-to-end scenarios ----------

analysis::Scenario st_scenario(std::uint64_t seed) {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.protocol = "st-broadcast";
  s.initial_spread = Duration::millis(100);
  s.horizon = Duration::hours(4);
  s.warmup = Duration::minutes(30);
  s.seed = seed;
  return s;
}

TEST(StScenarioTest, FaultFreeTightSync) {
  const auto r = analysis::run_scenario(st_scenario(21));
  EXPECT_LT(r.max_stable_deviation.sec(), 0.2);
  EXPECT_EQ(r.replays_accepted, 0u);
}

TEST(StScenarioTest, SurvivesMinorityFaultsBeyondThird) {
  // f_actual = 3 at n = 7: more than a third, less than half. The
  // trimming protocol breaks here (see E9/E20); the broadcast engine
  // needs only 4 = f+1 correct signers.
  auto s = st_scenario(22);
  s.model.f = 3;
  s.horizon = Duration::hours(6);
  s.schedule = adversary::Schedule::random_mobile(
      7, 3, s.model.delta_period, Duration::minutes(5), Duration::minutes(20),
      SimTau(4.5 * 3600.0), Rng(221));
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  const auto r = analysis::run_scenario(s);
  EXPECT_LT(r.max_stable_deviation.sec(), 0.5);
}

TEST(StScenarioTest, SynchronizesRing) {
  auto s = st_scenario(23);
  s.model.n = 10;
  s.topology = analysis::Scenario::TopologyKind::Ring;
  const auto r = analysis::run_scenario(s);
  EXPECT_LT(r.max_stable_deviation.sec(), 0.5);
}

TEST(StScenarioTest, ReplayAdversaryScoresHits) {
  auto s = st_scenario(24);
  s.horizon = Duration::hours(8);
  s.warmup = Duration::minutes(40);
  // Interleaved pairs: when the first victim of a pair recovers, the
  // second is still controlled and spamming stale bundles. Still
  // f-limited for f = 2 (pairs are Delta apart).
  std::vector<adversary::ControlInterval> ivs;
  double t = 1000.0;
  int p = 0;
  while (t + 900.0 < 7.5 * 3600.0) {
    ivs.push_back({p % 7, SimTau(t), SimTau(t + 600.0)});
    ivs.push_back({(p + 3) % 7, SimTau(t + 300.0), SimTau(t + 900.0)});
    t += 900.0 + s.model.delta_period.sec() + 60.0;
    ++p;
  }
  s.schedule = adversary::Schedule(ivs);
  ASSERT_TRUE(s.schedule.is_f_limited(2, s.model.delta_period));
  s.strategy = "sig-replay";
  const auto r = analysis::run_scenario(s);
  // Recovered processors got yanked to stale rounds at least once.
  EXPECT_GT(r.replays_accepted, 0u);
  // The same adversary against the convergence protocol is a no-op.
  auto s2 = s;
  s2.protocol = "sync";
  const auto r2 = analysis::run_scenario(s2);
  EXPECT_EQ(r2.replays_accepted, 0u);
  EXPECT_LT(r2.max_stable_deviation, r2.bounds.max_deviation);
}

}  // namespace
}  // namespace czsync::broadcast
