// compile-fail: a span compares to a span, not to a unitless scalar.
#include "util/time_domain.h"

using namespace czsync;

bool trigger(Duration d) { return d == 1.0; }
