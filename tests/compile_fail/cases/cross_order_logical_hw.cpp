// compile-fail: ordering across domains would silently compare different axes.
#include "util/time_domain.h"

using namespace czsync;

bool trigger(LogicalTime c, HwTime h) { return c < h; }
