// compile-fail: a time point must not implicitly decay to double (use .raw()).
#include "util/time_domain.h"

using namespace czsync;

double trigger(SimTau t) { return t; }
