// compile-fail: a raw double must not implicitly become a time point.
#include "util/time_domain.h"

using namespace czsync;

void take(SimTau t);
void trigger() { take(1.0); }
