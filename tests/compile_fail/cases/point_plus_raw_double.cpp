// compile-fail: shifting a point needs a Duration, not a bare scalar.
#include "util/time_domain.h"

using namespace czsync;

SimTau trigger(SimTau t) { return t + 2.0; }
