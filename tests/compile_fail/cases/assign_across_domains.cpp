// compile-fail: a hardware reading is not a logical clock value (use from_hw).
#include "util/time_domain.h"

using namespace czsync;

LogicalTime trigger(HwTime h) { return h; }
