// compile-fail: real time and a hardware reading live on different axes.
#include "util/time_domain.h"

using namespace czsync;

bool trigger(SimTau t, HwTime h) { return t == h; }
