// compile-fail: tau minus H is not a Duration on any axis.
#include "util/time_domain.h"

using namespace czsync;

Duration trigger(SimTau t, HwTime h) { return t - h; }
