// compile-fail: even within one domain, instant + instant is meaningless.
#include "util/time_domain.h"

using namespace czsync;

auto trigger(SimTau a, SimTau b) { return a + b; }
