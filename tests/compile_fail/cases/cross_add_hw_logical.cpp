// compile-fail: two points cannot be added, least of all across domains.
#include "util/time_domain.h"

using namespace czsync;

auto trigger(HwTime h, LogicalTime c) { return h + c; }
