#!/usr/bin/env python3
"""ctest runner for the time-domain compile-fail harness.

Configures tests/compile_fail/ as a throwaway CMake project (which
try_compiles every cases/*.cpp expecting failure, plus control.cpp
expecting success) and turns the result into a test verdict:

  exit 0  every illegal expression was rejected AND the control built
  exit 1  some case compiled, the control failed, or < 8 cases ran

Run via `ctest -R compile_fail` or directly:
  python3 tests/compile_fail/run_compile_fail.py \
      --source-dir . --build-dir build
"""

import argparse
import os
import re
import shutil
import subprocess
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--source-dir", required=True,
                    help="repo root (holds tests/compile_fail/)")
    ap.add_argument("--build-dir", required=True,
                    help="main build dir; the harness configures into "
                         "<build-dir>/compile_fail_check")
    ap.add_argument("--cmake", default="cmake")
    ap.add_argument("--cxx-compiler", default=None,
                    help="compiler of the main build, so rejections match "
                         "what a developer building the tree would see")
    args = ap.parse_args()

    # try_compile runs in its own temp dir, so a relative include path
    # would silently break every case (missing header != illegal code).
    source_dir = os.path.abspath(args.source_dir)
    work = f"{os.path.abspath(args.build_dir)}/compile_fail_check"
    shutil.rmtree(work, ignore_errors=True)
    cmd = [
        args.cmake,
        "-S", f"{source_dir}/tests/compile_fail",
        "-B", work,
        f"-DCZSYNC_SOURCE_DIR={source_dir}",
    ]
    if args.cxx_compiler:
        cmd.append(f"-DCMAKE_CXX_COMPILER={args.cxx_compiler}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    sys.stdout.write(proc.stdout)

    rejected = len(re.findall(r"compile-fail OK: \S+ rejected", proc.stdout))
    control_ok = "compile-fail OK: control" in proc.stdout
    print(f"compile-fail: {rejected} illegal expression(s) rejected, "
          f"control {'ok' if control_ok else 'BROKEN'}")
    if proc.returncode != 0:
        print("compile-fail: configure reported errors (see above)")
        return 1
    if rejected < 8 or not control_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
