// Control: the legal time-domain algebra MUST compile — if this file
// fails, every "rejected" case result is meaningless (the harness would
// be measuring a broken include path, not the type system).
//
// Includes the core/ facade rather than util/time_domain.h directly so
// the harness also proves the facade re-exports everything.
#include "core/time_domain.h"

using namespace czsync;

double legal() {
  SimTau t = SimTau(1.5);
  t += Duration::seconds(1);
  const Duration since_epoch = t - SimTau::zero();

  HwTime h = HwTime::from_tau_unsafe(t) + since_epoch;
  h -= Duration::millis(2);
  const Duration rtt = h - HwTime::zero();

  const LogicalTime c = LogicalTime::from_hw(h, Duration::millis(3));
  const Duration adj = c.minus_hw(h);

  const bool ordered = c > LogicalTime::zero() && rtt < Duration::infinity();
  static_assert(is_time_point_v<SimTau> && !is_time_point_v<Duration>);
  return c.raw() + adj.sec() + (ordered ? 1.0 : 0.0);
}
