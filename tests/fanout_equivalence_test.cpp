// Batched-vs-unbatched fanout equivalence (DESIGN.md §4.11).
//
// The batched fanout path replaces n per-message simulator events with
// one pooled train that re-arms itself through the same (time, seq)
// stamps the unbatched path would have pushed. The design claim is that
// this is a pure mechanical optimization: trace bytes, protocol
// counters, clock trajectories — everything observable — must be
// bit-identical with batching forced on and off. This test proves it
// dynamically, in the style of hash_perturbation_test: run the same
// scenario both ways and compare the serialized czsync-trace-v1 stream
// plus the full metric registry.
//
// The only legitimate divergences are the pool's own bookkeeping
// (sim.event_pool.*: a train occupies one slot where n events occupied
// n, and the batch counters only fire on the batched path) and the
// events_pending gauge (a mid-run train counts as one pending event).
// Everything else — sim.events_executed included, because each train
// entry still fires as its own simulator event — must match exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "adversary/schedule.h"
#include "analysis/experiment.h"
#include "analysis/scenario.h"
#include "net/link_faults.h"
#include "trace/format.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace czsync {
namespace {

struct Captured {
  std::string trace;
  analysis::RunResult result;
};

Captured run(const analysis::Scenario& base, bool batched) {
  analysis::Scenario s = base;
  s.batched_fanout = batched;
  trace::TraceSink sink;
  Captured c;
  c.result = analysis::run_scenario(s, &sink);
  std::ostringstream os(std::ios::binary);
  trace::write_trace(os, sink);
  c.trace = std::move(os).str();
  return c;
}

// Pool-internal keys that legitimately differ between the two modes.
bool exempt(const std::string& key) {
  return key.rfind("sim.event_pool.", 0) == 0 || key == "sim.events_pending";
}

void expect_equivalent(const analysis::Scenario& base) {
  const Captured on = run(base, /*batched=*/true);
  const Captured off = run(base, /*batched=*/false);

  EXPECT_EQ(on.trace, off.trace) << "trace bytes diverged under batching";
  EXPECT_GT(on.result.metrics.value("sim.event_pool.fanout_batches"), 0.0);
  EXPECT_EQ(off.result.metrics.value("sim.event_pool.fanout_batches"), 0.0);

  const auto& a = on.result.metrics.entries();
  const auto& b = off.result.metrics.entries();
  for (const auto& [key, entry] : a) {
    if (exempt(key)) continue;
    ASSERT_TRUE(b.contains(key)) << "metric only in batched run: " << key;
    EXPECT_EQ(entry.value, b.at(key).value) << "metric diverged: " << key;
  }
  for (const auto& [key, entry] : b) {
    if (exempt(key)) continue;
    EXPECT_TRUE(a.contains(key)) << "metric only in unbatched run: " << key;
  }
}

analysis::Scenario base_scenario() {
  analysis::Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::minutes(10);
  s.sample_period = Duration::seconds(15);
  s.seed = 21;
  return s;
}

TEST(FanoutEquivalence, NoRoundsEngine) { expect_equivalent(base_scenario()); }

TEST(FanoutEquivalence, NoRoundsEngineUnderAdversary) {
  analysis::Scenario s = base_scenario();
  s.schedule = adversary::Schedule::random_mobile(
      s.model.n, s.model.f, s.model.delta_period, Duration::minutes(1),
      Duration::minutes(3), SimTau(0.75 * 600.0), Rng(1007));
  s.strategy = "clock-smash-random";
  s.strategy_scale = Duration::minutes(10);
  expect_equivalent(s);
}

TEST(FanoutEquivalence, RoundEngine) {
  analysis::Scenario s = base_scenario();
  s.protocol = "round";
  s.seed = 22;
  expect_equivalent(s);
}

TEST(FanoutEquivalence, BroadcastEngine) {
  analysis::Scenario s = base_scenario();
  s.protocol = "st-broadcast";
  s.seed = 23;
  expect_equivalent(s);
}

TEST(FanoutEquivalence, MultiPingWithLinkFaults) {
  // pings_per_peer widens each train; link faults exercise the per-add
  // precheck drops inside a batch.
  analysis::Scenario s = base_scenario();
  s.pings_per_peer = 3;
  s.link_faults = net::LinkFaultSet(
      {{0, 1, SimTau(0.0), SimTau(300.0)},
       {2, 3, SimTau(120.0), SimTau(480.0)}});
  s.seed = 24;
  expect_equivalent(s);
}

}  // namespace
}  // namespace czsync
