// Tests for the multi-seed sweep harness.
#include <gtest/gtest.h>

#include "adversary/schedule.h"
#include "analysis/sweep.h"

namespace czsync::analysis {
namespace {

Scenario quick_scenario(std::uint64_t seed) {
  Scenario s;
  s.model.n = 4;
  s.model.f = 1;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.horizon = Duration::hours(1);
  s.sample_period = Duration::minutes(1);
  s.seed = seed;
  return s;
}

TEST(SweepTest, AggregatesAcrossSeeds) {
  const auto r = run_sweep(quick_scenario, 1, 5);
  EXPECT_EQ(r.runs, 5);
  EXPECT_EQ(r.max_deviation.count(), 5u);
  EXPECT_GT(r.max_deviation.mean(), 0.0);
  EXPECT_EQ(r.bound_violations, 0);
  EXPECT_EQ(r.unrecovered_runs, 0);
  EXPECT_GT(r.bound.sec(), 0.0);
  // Different seeds produce different trajectories.
  EXPECT_GT(r.max_deviation.max(), r.max_deviation.min());
}

TEST(SweepTest, RecoveryStatsOnlyFromRecoveredRuns) {
  auto make = [](std::uint64_t seed) {
    auto s = quick_scenario(seed);
    s.horizon = Duration::hours(3);
    s.schedule = adversary::Schedule::single(1, SimTau(1800.0),
                                             SimTau(1860.0));
    s.strategy = "clock-smash";
    s.strategy_scale = Duration::minutes(5);
    return s;
  };
  const auto r = run_sweep(make, 10, 3);
  EXPECT_EQ(r.unrecovered_runs, 0);
  EXPECT_EQ(r.max_recovery.count(), 3u);
  EXPECT_GT(r.max_recovery.mean(), 0.0);
  EXPECT_LT(r.max_recovery.max(), 3600.0);
}

// Regression: SweepResult used to keep only the LAST run's gamma, so a
// family that mixed bounds was silently mis-reported. It must keep the
// first run's bound and count the runs that disagree.
TEST(SweepTest, MixedBoundsAreCountedNotTruncated) {
  auto make = [](std::uint64_t seed) {
    auto s = quick_scenario(seed);
    // Seeds 1..4 -> SyncInt 60 s, 120 s, 180 s, 240 s: four distinct
    // gammas; the last one differs from the first, which the old
    // last-wins behavior would have reported as THE bound.
    s.sync_int = Duration::minutes(static_cast<double>(seed));
    return s;
  };
  const auto r = run_sweep(make, 1, 4);
  const Duration first = run_scenario(make(1)).bounds.max_deviation;
  const Duration last = run_scenario(make(4)).bounds.max_deviation;
  EXPECT_NE(first.sec(), last.sec());
  EXPECT_EQ(r.bound.sec(), first.sec());
  EXPECT_EQ(r.bound_mismatches, 3);
}

TEST(SweepTest, UniformBoundFamilyHasNoMismatches) {
  const auto r = run_sweep(quick_scenario, 1, 3);
  EXPECT_EQ(r.bound_mismatches, 0);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.seeds_per_sec(), 0.0);
}

TEST(SweepTest, DetectsViolations) {
  // Force violations: ring topology with f = 1 trimming over degree-2
  // neighborhoods cannot synchronize against strong drift.
  auto make = [](std::uint64_t seed) {
    auto s = quick_scenario(seed);
    s.model.n = 8;
    s.model.rho = 1e-3;
    s.topology = Scenario::TopologyKind::Ring;
    s.horizon = Duration::hours(6);
    return s;
  };
  const auto r = run_sweep(make, 1, 2);
  EXPECT_EQ(r.bound_violations, 2);
}

}  // namespace
}  // namespace czsync::analysis
