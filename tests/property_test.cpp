// Property-style parameterized sweeps (TEST_P): the paper's guarantees
// must hold across seeds, network sizes, fault budgets, drift regimes,
// delay shapes and attack strategies — not just in hand-picked runs.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/experiment.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "core/estimate.h"
#include "net/delay_model.h"
#include "sim/simulator.h"

namespace czsync::analysis {
namespace {

using adversary::Schedule;

Scenario sweep_base(std::uint64_t seed) {
  Scenario s;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::hours(3);
  s.warmup = Duration::minutes(30);
  s.sample_period = Duration::seconds(20);
  s.seed = seed;
  return s;
}

// ---------- deviation bound across (n, f) and seeds ----------

class DeviationSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(DeviationSweep, FaultFreeBoundHolds) {
  const auto [n, seed] = GetParam();
  auto s = sweep_base(seed);
  s.model.n = n;
  s.model.f = core::ModelParams::max_f(n);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation)
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    NSeedGrid, DeviationSweep,
    ::testing::Combine(::testing::Values(4, 5, 7, 10, 13, 16),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- deviation bound across attack strategies and seeds ----------

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(StrategySweep, ByzantineBoundHoldsAtFullBudget) {
  const auto& [strategy, seed] = GetParam();
  auto s = sweep_base(seed);
  s.model.n = 7;
  s.model.f = 2;
  s.horizon = Duration::hours(6);
  s.schedule = Schedule::random_mobile(7, 2, s.model.delta_period,
                                       Duration::minutes(5), Duration::minutes(20),
                                       SimTau(4.5 * 3600.0), Rng(seed + 77));
  s.strategy = strategy;
  s.strategy_scale =
      strategy == "delayed-reply" ? Duration::millis(80) : Duration::seconds(20);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation)
      << strategy << " seed=" << seed;
  EXPECT_TRUE(r.all_recovered()) << strategy << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    StrategyGrid, StrategySweep,
    ::testing::Combine(::testing::Values("silent", "clock-smash-random",
                                         "constant-lie", "two-faced",
                                         "max-pull", "random-lie",
                                         "delayed-reply"),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------- recovery time scales logarithmically with the offset ----------

class RecoverySweep : public ::testing::TestWithParam<double> {};

TEST_P(RecoverySweep, RecoversWithinDelta) {
  const double offset_s = GetParam();
  auto s = sweep_base(5);
  s.model.n = 7;
  s.model.f = 2;
  s.warmup = Duration::zero();
  s.initial_spread = Duration::millis(20);
  s.horizon = Duration::hours(3);
  s.schedule = Schedule::single(1, SimTau(3600.0), SimTau(3660.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::seconds(offset_s);
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.all_recovered()) << "offset " << offset_s;
  EXPECT_LT(r.max_recovery_time(), s.model.delta_period) << offset_s;
}

INSTANTIATE_TEST_SUITE_P(OffsetGrid, RecoverySweep,
                         ::testing::Values(0.5, 0.9, 2.0, 10.0, 100.0, 3600.0,
                                           -0.9, -10.0, -3600.0),
                         [](const auto& info) {
                           const double v = info.param;
                           std::string s = (v < 0 ? "neg" : "pos") +
                                           std::to_string(static_cast<long>(
                                               std::abs(v) * 10));
                           return s;
                         });

// ---------- drift regimes x delay shapes ----------

class EnvironmentSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(EnvironmentSweep, BoundHolds) {
  const auto [drift_i, delay_i, seed] = GetParam();
  auto s = sweep_base(seed);
  s.model.n = 7;
  s.model.f = 2;
  s.drift = static_cast<Scenario::DriftKind>(drift_i);
  s.delay = static_cast<Scenario::DelayKind>(delay_i);
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

INSTANTIATE_TEST_SUITE_P(
    DriftDelayGrid, EnvironmentSweep,
    ::testing::Combine(::testing::Values(0, 1),        // Constant, Wander
                       ::testing::Values(0, 1, 2, 3),  // all delay kinds
                       ::testing::Values(4u)),
    [](const auto& info) {
      return "drift" + std::to_string(std::get<0>(info.param)) + "_delay" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- rho sensitivity ----------

class RhoSweep : public ::testing::TestWithParam<double> {};

TEST_P(RhoSweep, BoundHoldsAcrossDriftMagnitudes) {
  auto s = sweep_base(9);
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = GetParam();
  const auto r = run_scenario(s);
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

INSTANTIATE_TEST_SUITE_P(RhoGrid, RhoSweep,
                         ::testing::Values(1e-6, 1e-5, 1e-4, 1e-3),
                         [](const auto& info) {
                           return "rho1e" +
                                  std::to_string(static_cast<int>(
                                      -std::log10(info.param)));
                         });

// ---------- Definition 4 contract of the live estimator ----------

// Run the real ping exchange over every delay model and check that the
// returned interval [d-a, d+a] brackets an actual offset during the
// exchange, and a <= eps (Def. 4 with eps = delta(1+rho)).
class EstimatorContractSweep : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorContractSweep, IntervalBracketsTruthAndErrorBounded) {
  auto s = sweep_base(13);
  s.model.n = 4;
  s.model.f = 1;
  s.delay = static_cast<Scenario::DelayKind>(GetParam());
  s.horizon = Duration::hours(1);
  s.warmup = Duration::zero();
  const auto r = run_scenario(s);
  // The run asserts internally (delay bound, monotone clocks). Check the
  // externally visible consequence: deviation never exceeds the bound
  // even with the worst-shape delays.
  EXPECT_LT(r.max_stable_deviation, r.bounds.max_deviation);
}

INSTANTIATE_TEST_SUITE_P(DelayKinds, EstimatorContractSweep,
                         ::testing::Values(0, 1, 2, 3));

// ---------- hardware clock drift-bound property ----------

class ClockPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockPropertySweep, Eq2HoldsOverRandomWanderTraces) {
  const double rho = 5e-4;
  sim::Simulator sim;
  clk::HardwareClock hw(sim, clk::make_wander_drift(rho, Duration::seconds(30)),
                        Rng(GetParam()));
  double h0 = hw.read().raw(), t0 = 0.0;
  Rng step_rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 300; ++i) {
    sim.run_until(SimTau(sim.now().raw() + step_rng.uniform(1.0, 120.0)));
    const double h = hw.read().raw(), t = sim.now().raw();
    EXPECT_GE(h - h0, (t - t0) / (1.0 + rho) - 1e-9);
    EXPECT_LE(h - h0, (t - t0) * (1.0 + rho) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockPropertySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------- schedule generator property ----------

class ScheduleGenSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(ScheduleGenSweep, RandomMobileAlwaysFLimited) {
  const auto [n, f, seed] = GetParam();
  const Duration delta = Duration::minutes(15);
  const auto sched =
      Schedule::random_mobile(n, f, delta, Duration::minutes(1), Duration::minutes(10),
                              SimTau(24 * 3600.0), Rng(seed));
  EXPECT_TRUE(sched.is_f_limited(f, delta));
}

INSTANTIATE_TEST_SUITE_P(
    NFGrid, ScheduleGenSweep,
    ::testing::Combine(::testing::Values(4, 7, 10), ::testing::Values(1, 2, 3),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace czsync::analysis
