// Determinism-equivalence suite for the parallel sweep engine.
//
// The contract under test: run_sweep_parallel(make, seed, count, jobs)
// returns a SweepResult BIT-IDENTICAL to serial run_sweep for any job
// count — every RunningStats field, every counter, and the recorded
// bound — because per-seed runs are fully isolated and the reduction is
// applied in seed order regardless of completion order. All double
// comparisons below are exact (EXPECT_EQ), not approximate: "close
// enough" would hide reduction-order bugs, which are precisely the bug
// family this suite exists to catch.
#include <gtest/gtest.h>

#include <stdexcept>

#include "adversary/schedule.h"
#include "analysis/sweep.h"

namespace czsync::analysis {
namespace {

/// WAN-style family (n = 7, f = 2, 50 ms delay) with a per-seed mobile
/// adversary schedule, so simulator, Rng and adversary isolation are all
/// exercised. Horizon kept short to keep the suite fast.
Scenario wan_family(std::uint64_t seed) {
  Scenario s;
  s.model.n = 7;
  s.model.f = 2;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.initial_spread = Duration::millis(200);
  s.horizon = Duration::hours(2);
  s.warmup = Duration::minutes(30);
  s.sample_period = Duration::seconds(30);
  s.seed = seed;
  s.schedule = adversary::Schedule::random_mobile(
      s.model.n, s.model.f, s.model.delta_period, Duration::minutes(5),
      Duration::minutes(20), SimTau(1.5 * 3600.0), Rng(seed * 31 + 7));
  s.strategy = "two-faced";
  s.strategy_scale = Duration::seconds(30);
  return s;
}

/// Failure family: the adversary smashes processor 2's clock 30 minutes
/// off and leaves, but every link of processor 2 is cut from the break-in
/// to the end of the run, so it can never estimate anyone and never
/// rejoins — the judged recovery fails (unrecovered_runs) and, once the
/// Delta window expires and it counts as stable again, its offset blows
/// the deviation bound (bound_violations). Both hard-failure counters
/// must merge identically too.
Scenario failing_family(std::uint64_t seed) {
  Scenario s;
  s.model.n = 5;
  s.model.f = 1;
  s.model.rho = 1e-4;
  s.model.delta = Duration::millis(50);
  s.model.delta_period = Duration::hours(1);
  s.sync_int = Duration::minutes(1);
  s.horizon = Duration::hours(3);
  s.sample_period = Duration::minutes(1);
  s.seed = seed;
  s.schedule =
      adversary::Schedule::single(2, SimTau(1800.0), SimTau(1860.0));
  s.strategy = "clock-smash";
  s.strategy_scale = Duration::minutes(30);
  s.link_faults = net::LinkFaultSet::isolate_partially(
      2, {0, 1, 3, 4}, SimTau(1800.0), SimTau(3600.0 * 3));
  return s;
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b,
                            const char* name) {
  SCOPED_TRACE(name);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  expect_stats_identical(a.max_deviation, b.max_deviation, "max_deviation");
  expect_stats_identical(a.mean_deviation, b.mean_deviation, "mean_deviation");
  expect_stats_identical(a.max_discontinuity, b.max_discontinuity,
                         "max_discontinuity");
  expect_stats_identical(a.max_rate_excess, b.max_rate_excess,
                         "max_rate_excess");
  expect_stats_identical(a.max_recovery, b.max_recovery, "max_recovery");
  EXPECT_EQ(a.bound_violations, b.bound_violations);
  EXPECT_EQ(a.unrecovered_runs, b.unrecovered_runs);
  EXPECT_EQ(a.bound.sec(), b.bound.sec());
  EXPECT_EQ(a.bound_mismatches, b.bound_mismatches);
}

TEST(SweepParallelTest, EquivalentToSerialOnWanFamily) {
  const auto serial = run_sweep(wan_family, 40, 6);
  ASSERT_EQ(serial.runs, 6);
  // Sanity: the family actually produces nontrivial distributions.
  EXPECT_GT(serial.max_deviation.max(), serial.max_deviation.min());
  for (int jobs : {1, 2, 7}) {
    SCOPED_TRACE(jobs);
    const auto parallel = run_sweep_parallel(wan_family, 40, 6, jobs);
    expect_identical(serial, parallel);
  }
}

TEST(SweepParallelTest, EquivalentToSerialWithFailureCounters) {
  const auto serial = run_sweep(failing_family, 3, 4);
  // The point of this family: both hard-failure counters are exercised.
  EXPECT_GT(serial.bound_violations, 0);
  EXPECT_GT(serial.unrecovered_runs, 0);
  for (int jobs : {2, 7}) {
    SCOPED_TRACE(jobs);
    const auto parallel = run_sweep_parallel(failing_family, 3, 4, jobs);
    expect_identical(serial, parallel);
  }
}

TEST(SweepParallelTest, MixedBoundFamilyCountsMismatches) {
  // make(seed) alternates SyncInt, so gamma differs between runs; the
  // sweep must keep the FIRST run's bound and count the others instead
  // of silently keeping whichever ran last (the pre-fix behavior).
  auto make = [](std::uint64_t seed) {
    auto s = wan_family(seed);
    s.schedule = adversary::Schedule();
    s.horizon = Duration::hours(1);
    s.warmup = Duration::zero();
    s.sync_int = seed % 2 == 0 ? Duration::minutes(1) : Duration::minutes(2);
    return s;
  };
  const auto serial = run_sweep(make, 2, 4);  // seeds 2,3,4,5 -> alternating
  const Duration first_bound = run_scenario(make(2)).bounds.max_deviation;
  EXPECT_EQ(serial.bound.sec(), first_bound.sec());
  EXPECT_EQ(serial.bound_mismatches, 2);
  const auto parallel = run_sweep_parallel(make, 2, 4, 2);
  expect_identical(serial, parallel);
}

TEST(SweepParallelTest, JobsDefaultAndClampBehave) {
  // jobs <= 0 means "hardware default"; more jobs than seeds is fine.
  auto make = [](std::uint64_t seed) {
    auto s = wan_family(seed);
    s.schedule = adversary::Schedule();
    s.horizon = Duration::hours(1);
    s.warmup = Duration::zero();
    return s;
  };
  const auto serial = run_sweep(make, 7, 2);
  expect_identical(serial, run_sweep_parallel(make, 7, 2, 0));
  expect_identical(serial, run_sweep_parallel(make, 7, 2, 16));
}

TEST(SweepParallelTest, PropagatesFactoryExceptions) {
  auto make = [](std::uint64_t seed) -> Scenario {
    if (seed == 11) throw std::runtime_error("bad seed");
    auto s = wan_family(seed);
    s.schedule = adversary::Schedule();
    s.horizon = Duration::hours(1);
    return s;
  };
  EXPECT_THROW((void)run_sweep_parallel(make, 10, 4, 2), std::runtime_error);
}

TEST(SweepParallelTest, ReportsWallClockAndThroughput) {
  auto make = [](std::uint64_t seed) {
    auto s = wan_family(seed);
    s.schedule = adversary::Schedule();
    s.horizon = Duration::hours(1);
    s.warmup = Duration::zero();
    return s;
  };
  const auto r = run_sweep_parallel(make, 1, 2, 2);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.seeds_per_sec(), 0.0);
}

TEST(SweepParallelTest, RunScenariosParallelPreservesInputOrder) {
  std::vector<Scenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto s = wan_family(seed);
    s.schedule = adversary::Schedule();
    s.horizon = Duration::hours(1);
    s.warmup = Duration::zero();
    scenarios.push_back(s);
  }
  const auto serial = run_scenarios_parallel(scenarios, 1);
  const auto parallel = run_scenarios_parallel(scenarios, 4);
  ASSERT_EQ(serial.size(), scenarios.size());
  ASSERT_EQ(parallel.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].max_stable_deviation.sec(),
              parallel[i].max_stable_deviation.sec());
    EXPECT_EQ(serial[i].mean_stable_deviation.sec(),
              parallel[i].mean_stable_deviation.sec());
    EXPECT_EQ(serial[i].messages_sent, parallel[i].messages_sent);
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
  }
}

}  // namespace
}  // namespace czsync::analysis
